//! Criterion bench: cost of the Section-5 construction itself — encoding a
//! permutation's execution and decoding it back (the workload behind
//! experiments E4/E6).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fence_trade::lowerbound;
use fence_trade::prelude::*;

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowerbound_encode");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for n in [4usize, 6, 8] {
        let inst = build_ordering(LockKind::Bakery, n, ObjectKind::Counter);
        let pi: Vec<usize> = (0..n).rev().collect();
        group.bench_with_input(BenchmarkId::new("bakery_reverse_pi", n), &n, |b, _| {
            b.iter(|| encode_permutation(&inst, &pi, &EncodeOptions::default()).unwrap());
        });
    }
    group.finish();
}

fn bench_decode_and_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowerbound_decode");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    let n = 6;
    let inst = build_ordering(LockKind::Bakery, n, ObjectKind::Counter);
    let pi: Vec<usize> = (0..n).rev().collect();
    let enc = encode_permutation(&inst, &pi, &EncodeOptions::default()).unwrap();
    let initial = proof_machine(&inst);

    group.bench_function("decode_final_stacks", |b| {
        b.iter(|| decode(&initial, &enc.stacks, &DecodeOptions::default()).unwrap());
    });

    group.bench_function("serialize_deserialize", |b| {
        b.iter(|| {
            let bits = lowerbound::serialize_stacks(&enc.stacks);
            lowerbound::deserialize_stacks(&bits, n).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode_and_codec);
criterion_main!(benches);
