//! Criterion bench: state-exploration throughput of the model checker's
//! engines (clone-based DFS vs undo-log DFS vs parallel sweep vs DPOR
//! reduction vs work-stealing parallel DPOR) on seed lock configurations.
//! The dpor/pardpor rows explore fewer states by design, so compare them
//! on wall-clock per full verdict, not states/sec.
//!
//! Besides the usual stdout report, a machine-readable summary — states,
//! mean wall-clock per full exploration, and states/sec per engine, plus
//! the speedup of each engine over the clone-DFS baseline — is written to
//! `BENCH_explore.json` at the repository root. Every row records its
//! `effective_threads` (requested workers clamped to the detected cores);
//! on a single-core host the multi-threaded engine rows are **not timed**
//! (a 1-core "parallel" measurement is pure coordination overhead and
//! would be quoted as if it meant something) — they are emitted with
//! `"skipped_single_core": true` and zeroed timing fields instead.

use std::fmt::Write as _;
use std::time::Duration;

use criterion::Criterion;
use fence_trade::prelude::*;
use modelcheck::Stats;

struct Workload {
    label: &'static str,
    inst: OrderingInstance,
    model: MemoryModel,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            label: "peterson2_pso",
            inst: build_mutex(LockKind::Peterson, 2, FenceMask::ALL),
            model: MemoryModel::Pso,
        },
        Workload {
            label: "bakery2_pso",
            inst: build_mutex(LockKind::Bakery, 2, FenceMask::ALL),
            model: MemoryModel::Pso,
        },
        Workload {
            label: "ttas3_pso",
            inst: build_mutex(LockKind::Ttas, 3, FenceMask::ALL),
            model: MemoryModel::Pso,
        },
        Workload {
            label: "filter3_pso",
            inst: build_mutex(LockKind::Filter, 3, FenceMask::ALL),
            model: MemoryModel::Pso,
        },
    ]
}

fn engines() -> Vec<(&'static str, Engine)> {
    vec![
        ("clone_dfs", Engine::CloneDfs),
        ("undo", Engine::Undo),
        ("parallel_2", Engine::Parallel { threads: 2 }),
        ("parallel_4", Engine::Parallel { threads: 4 }),
        (
            "dpor",
            Engine::Dpor {
                reorder_bound: None,
            },
        ),
        (
            "pardpor_2",
            Engine::ParallelDpor {
                threads: 2,
                reorder_bound: None,
            },
        ),
        (
            "pardpor_4",
            Engine::ParallelDpor {
                threads: 4,
                reorder_bound: None,
            },
        ),
    ]
}

/// Worker count an engine actually runs with (requested, clamped by the
/// host — the multi-threaded engines spawn what they are told, but on a
/// smaller host those workers time-share cores).
fn engine_threads(engine: Engine) -> usize {
    match engine {
        Engine::Parallel { threads } | Engine::ParallelDpor { threads, .. } => threads,
        _ => 1,
    }
}

struct Row {
    workload: &'static str,
    engine: &'static str,
    threads: usize,
    effective_threads: usize,
    states: usize,
    mean_ns: f64,
    states_per_sec: f64,
    speedup_vs_clone: f64,
    skipped_single_core: bool,
}

fn main() {
    let cfg_base = CheckConfig {
        check_termination: false,
        max_states: 500_000,
        ..CheckConfig::default()
    };
    let cores = ft_bench::available_cores();

    let mut c = Criterion::default();
    let mut rows: Vec<Row> = Vec::new();

    for w in &workloads() {
        let mut clone_mean_ns = 0f64;
        for (engine_label, engine) in engines() {
            let threads = engine_threads(engine);
            let effective_threads = threads.min(cores);
            let cfg = cfg_base.clone().with_engine(engine);
            // One untimed run for the state count (identical across the
            // exhaustive engines — asserted by the differential tests —
            // and legitimately smaller for dpor/pardpor: that gap is the
            // reduction factor).
            let stats: Stats = check(&w.inst.machine(w.model), &cfg).stats();

            // A multi-threaded engine on a single core measures only
            // contention; emit a marked, untimed row instead.
            let skipped_single_core = threads > 1 && cores == 1;
            let mean_ns = if skipped_single_core {
                0.0
            } else {
                let mut group = c.benchmark_group(format!("explore/{}", w.label));
                group
                    .sample_size(10)
                    .measurement_time(Duration::from_secs(2));
                group.bench_function(engine_label, |b| {
                    b.iter(|| check(&w.inst.machine(w.model), &cfg).stats().states)
                });
                group.finish();
                c.results().last().expect("recorded").mean_ns()
            };
            if engine_label == "clone_dfs" {
                clone_mean_ns = mean_ns;
            }
            rows.push(Row {
                workload: w.label,
                engine: engine_label,
                threads,
                effective_threads,
                states: stats.states,
                mean_ns,
                states_per_sec: if mean_ns > 0.0 {
                    stats.states as f64 / (mean_ns / 1e9)
                } else {
                    0.0
                },
                speedup_vs_clone: if mean_ns > 0.0 {
                    clone_mean_ns / mean_ns
                } else {
                    0.0
                },
                skipped_single_core,
            });
        }
    }

    let json = render_json(&rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    std::fs::write(path, &json).expect("write BENCH_explore.json");
    println!("\nwrote {path}");
}

fn render_json(rows: &[Row]) -> String {
    // Detected once and cached (`ft_bench::available_cores`): the old
    // per-call `available_parallelism()` read could land during startup
    // affinity churn and record `1` on multi-core hosts. `ft_threads` is
    // the *effective* worker count (env override clamped to detected
    // cores) — always a number, never null.
    let cores = ft_bench::available_cores();
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"bench\": \"explore\",");
    let _ = writeln!(s, "  \"available_cores\": {cores},");
    let _ = writeln!(s, "  \"ft_threads\": {},", ft_bench::parallelism());
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"threads\": {}, \
             \"effective_threads\": {}, \"states\": {}, \
             \"mean_ns_per_exploration\": {:.0}, \"states_per_sec\": {:.0}, \
             \"speedup_vs_clone\": {:.3}, \"skipped_single_core\": {}}}",
            r.workload,
            r.engine,
            r.threads,
            r.effective_threads,
            r.states,
            r.mean_ns,
            r.states_per_sec,
            r.speedup_vs_clone,
            r.skipped_single_core
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
