//! Criterion bench: uncontended acquire/release latency of the hardware
//! lock family (the workload behind experiment E7).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fence_trade::prelude::*;

fn bench_uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("hw_uncontended_passage");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    let n = 8;
    let bakery = HwBakery::new(n);
    group.bench_function(BenchmarkId::new("bakery", n), |b| {
        b.iter(|| {
            bakery.acquire(0);
            bakery.release(0);
        });
    });

    let gt2 = HwGt::new(n, 2);
    group.bench_function(BenchmarkId::new("gt_f2", n), |b| {
        b.iter(|| {
            gt2.acquire(0);
            gt2.release(0);
        });
    });

    let tournament = HwTournament::new(n);
    group.bench_function(BenchmarkId::new("tournament", n), |b| {
        b.iter(|| {
            tournament.acquire(0);
            tournament.release(0);
        });
    });

    let peterson = HwPeterson::new();
    group.bench_function("peterson/2", |b| {
        b.iter(|| {
            peterson.acquire(0);
            peterson.release(0);
        });
    });

    group.finish();
}

fn bench_counting_object(c: &mut Criterion) {
    let mut group = c.benchmark_group("hw_counting_solo");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    let counter = CountingLock::new(HwGt::new(8, 2));
    group.bench_function("gt_f2_count_next", |b| {
        b.iter(|| counter.next(0));
    });
    group.finish();
}

criterion_group!(benches, bench_uncontended, bench_counting_object);
criterion_main!(benches);
