//! Criterion bench: simulator cost of one uncontended passage for each
//! lock family (the workload behind experiments E1–E3).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fence_trade::prelude::*;

fn bench_solo_passages(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_solo_passage");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    let n = 64;
    for (label, kind) in [
        ("bakery", LockKind::Bakery),
        ("gt_f2", LockKind::Gt { f: 2 }),
        ("gt_f3", LockKind::Gt { f: 3 }),
        ("tournament", LockKind::Tournament),
    ] {
        let inst = build_ordering(kind, n, ObjectKind::Counter);
        group.bench_with_input(BenchmarkId::new(label, n), &inst, |b, inst| {
            b.iter(|| {
                let mut m = inst.machine(MemoryModel::Pso);
                m.run_solo(ProcId(0), 10_000_000)
            });
        });
    }
    group.finish();
}

fn bench_contended_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_contended_run");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for n in [4usize, 8] {
        let inst = build_ordering(LockKind::Gt { f: 2 }, n, ObjectKind::Counter);
        group.bench_with_input(
            BenchmarkId::new("gt_f2_round_robin", n),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut m = inst.machine(MemoryModel::Pso);
                    assert!(fence_trade::simlocks::run_to_completion(
                        &mut m,
                        100_000_000
                    ));
                    m.counters().rho()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solo_passages, bench_contended_runs);
criterion_main!(benches);
