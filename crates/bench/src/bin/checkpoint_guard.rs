//! **checkpoint_guard** — the durable checkpoint/resume CI gates.
//!
//! Two gates over `filter3_pso` under sequential DPOR (an n = 3
//! workload, the regime long runs actually interrupt in):
//!
//! 1. **Kill-and-resume smoke** (always): run with a tiny deterministic
//!    budget (`stop_after` transition cut — the same code path a
//!    wall-clock expiry or SIGINT flag takes), assert a checkpoint is
//!    produced, resume it, and assert the final verdict matches a fresh
//!    unbudgeted run.
//! 2. **Resume overhead** (always): interrupted-then-resumed wall clock
//!    must stay within `FT_CKPT_OVERHEAD` (default 1.10, the ≤10%
//!    budget) of the uninterrupted wall clock — median of paired
//!    alternating rounds, independent retry attempts, the same noise
//!    defenses as `pardpor_guard`. The gate runs in the diagnostic
//!    (disabled-reduction) bound, where the checkpoint partitions the
//!    edge multiset exactly and the measured gap is purely durability
//!    cost: snapshot write + fsync + read + frontier replay. Reduced
//!    mode additionally re-explores what the discarded worker-local
//!    dominance table would have pruned — a deliberate soundness
//!    tradeoff measured (but not gated) by E15.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use fence_trade::prelude::*;

fn env_or(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

fn ckpt_path() -> PathBuf {
    std::env::temp_dir().join(format!("ft_checkpoint_guard_{}.ckpt", std::process::id()))
}

/// One uninterrupted run.
fn fresh_run(inst: &OrderingInstance, cfg: &CheckConfig) -> (Duration, Verdict) {
    let start = Instant::now();
    let v = check(&inst.machine(MemoryModel::Pso), cfg);
    (start.elapsed(), v)
}

/// One interrupted-at-`cut`-then-resumed run (checkpoint write + read
/// included in the measured time — that is the overhead under test).
fn split_run(
    inst: &OrderingInstance,
    cfg: &CheckConfig,
    cut: u64,
    path: &std::path::Path,
) -> (Duration, Verdict) {
    let start = Instant::now();
    let stopped = check(
        &inst.machine(MemoryModel::Pso),
        &cfg.clone()
            .with_checkpoint(CheckpointPolicy::at(path).stop_after(cut)),
    );
    let Some(cp) = stopped.coverage().and_then(|c| c.checkpoint) else {
        ft_bench::fail(
            "checkpoint_guard",
            format!(
                "interrupted run produced no checkpoint (verdict `{}`)",
                stopped.label()
            ),
        );
    };
    let v = resume(&inst.machine(MemoryModel::Pso), cfg, &cp);
    (start.elapsed(), v)
}

#[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
fn main() -> ExitCode {
    let trials = (env_or("FT_CKPT_TRIALS", 5.0) as usize).max(1);
    let attempts = (env_or("FT_CKPT_ATTEMPTS", 3.0) as usize).max(1);
    let max_overhead = env_or("FT_CKPT_OVERHEAD", 1.10);

    let inst = build_mutex(LockKind::Filter, 3, FenceMask::ALL);
    let cfg = CheckConfig {
        check_termination: false,
        max_states: 500_000,
        ..CheckConfig::default()
    }
    .with_engine(Engine::Dpor {
        reorder_bound: None,
    });
    let path = ckpt_path();

    // --- Gate 1: kill-and-resume smoke.
    let (_, fresh) = fresh_run(&inst, &cfg);
    if !fresh.is_ok() {
        ft_bench::fail(
            "checkpoint_guard",
            format!("filter3_pso must verify, got `{}`", fresh.label()),
        );
    }
    let cut = (fresh.stats().transitions as u64 / 2).max(1);
    let (_, resumed) = split_run(&inst, &cfg, cut, &path);
    if resumed.label() != fresh.label() {
        ft_bench::fail(
            "checkpoint_guard",
            format!(
                "resumed verdict `{}` diverges from fresh `{}`",
                resumed.label(),
                fresh.label()
            ),
        );
    }
    println!(
        "filter3_pso/dpor: interrupt at {cut} transitions + resume == fresh \
         verdict `{}` — smoke OK",
        fresh.label()
    );

    // --- Gate 2: resume overhead ≤ the budget, in the exact-partition
    // diagnostic bound (see module docs).
    let cfg = CheckConfig {
        max_states: 5_000_000,
        ..cfg
    }
    .with_engine(Engine::Dpor {
        reorder_bound: Some(u32::MAX),
    });
    let (_, fresh) = fresh_run(&inst, &cfg);
    let cut = (fresh.stats().transitions as u64 / 2).max(1);
    let mut best = f64::INFINITY;
    for attempt in 1..=attempts {
        let mut ratios = Vec::with_capacity(trials);
        for round in 0..trials {
            let (split, whole) = if round % 2 == 0 {
                let s = split_run(&inst, &cfg, cut, &path).0;
                let w = fresh_run(&inst, &cfg).0;
                (s, w)
            } else {
                let w = fresh_run(&inst, &cfg).0;
                let s = split_run(&inst, &cfg, cut, &path).0;
                (s, w)
            };
            ratios.push(split.as_secs_f64() / whole.as_secs_f64().max(1e-12));
        }
        ratios.sort_by(f64::total_cmp);
        let median = ratios[ratios.len() / 2];
        best = best.min(median);
        println!(
            "filter3_pso/dpor: interrupted+resumed vs uninterrupted wall-clock \
             x{median:.3} (median of {trials} paired rounds, budget x{max_overhead})"
        );
        if best <= max_overhead {
            println!("checkpoint guard: OK");
            let _ = std::fs::remove_file(&path);
            return ExitCode::SUCCESS;
        }
        if attempt < attempts {
            println!("  attempt {attempt}/{attempts} over budget; re-measuring");
        }
    }

    let _ = std::fs::remove_file(&path);
    eprintln!(
        "FAIL: resume overhead x{best:.3} exceeds the x{max_overhead} budget in all \
         {attempts} attempts"
    );
    ExitCode::FAILURE
}
