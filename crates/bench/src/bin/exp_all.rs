//! Run every experiment binary (E1–E9) in sequence — a convenience wrapper
//! for regenerating all results. Each experiment writes its table to
//! `results/`; this runner also records a manifest with timings.
//!
//! ```text
//! cargo run --release -p ft-bench --bin exp_all
//! ```

use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "exp_e1_bakery",
    "exp_e2_gt_family",
    "exp_e3_tradeoff",
    "exp_e4_encoding",
    "exp_e5_separation",
    "exp_e6_stack_invariants",
    "exp_e7_hw",
    "exp_e8_ablation",
    "exp_e9_cas",
    "exp_e10_steady_state",
    "exp_e11_crash_recovery",
    "exp_e12_reduction",
    "exp_e14_scaling",
    "exp_e15_resume",
];

fn main() {
    let this = std::env::current_exe()
        .unwrap_or_else(|e| ft_bench::fail("exp_all: locating current executable", e));
    let Some(bin_dir) = this.parent().map(std::path::Path::to_path_buf) else {
        ft_bench::fail("exp_all", "executable path has no parent directory");
    };

    let mut manifest = String::from("experiment            seconds  status\n");
    let mut failed = 0;
    for exp in EXPERIMENTS {
        let path = bin_dir.join(exp);
        println!("==================== {exp} ====================");
        let start = Instant::now();
        let status = Command::new(&path).status();
        let secs = start.elapsed().as_secs_f64();
        let ok = matches!(&status, Ok(s) if s.success());
        if !ok {
            failed += 1;
            eprintln!("{exp}: FAILED ({status:?})");
        }
        manifest.push_str(&format!(
            "{exp:<20} {secs:>8.2}  {}\n",
            if ok { "ok" } else { "FAILED" }
        ));
    }

    let path = ft_bench::results_dir().join("manifest.txt");
    if let Err(e) = std::fs::write(&path, &manifest) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    println!("\n{manifest}");
    if failed != 0 {
        ft_bench::fail("exp_all", format!("{failed} experiment(s) failed"));
    }
}
