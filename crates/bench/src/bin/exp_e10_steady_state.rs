//! **E10 — steady-state amortized passage costs.** The paper's complexity
//! measures are *per passage*; a one-shot run mixes in cold-cache effects
//! (every first read of a register is remote). Here each process performs
//! `K` passages and we amortize: steady-state costs separate algorithms
//! whose RMRs are genuinely recurring (Bakery's scans, TTAS's invalidation
//! storms) from ones that merely pay a cold start (MCS), and show the GT_f
//! tradeoff curve survives amortization.

use fence_trade::prelude::*;
use ft_bench::{f as fmt, Table};

fn main() {
    let passages = 8usize;
    let mut t = Table::new(
        "e10_steady_state",
        "E10: amortized per-passage costs over 8 passages/process (round-robin, PSO)",
        &[
            "n",
            "lock",
            "fences/psg",
            "RMRs/psg",
            "one-shot RMRs/psg",
            "amortization",
        ],
    );

    for n in [4usize, 8, 16, 32] {
        for kind in [
            LockKind::Bakery,
            LockKind::Gt { f: 2 },
            LockKind::Tournament,
            LockKind::Ttas,
            LockKind::Mcs,
        ] {
            if kind == LockKind::Tournament && !n.is_power_of_two() {
                continue;
            }
            let steady = fence_trade::simlocks::build_steady_state(kind, n, passages);
            let mut m = steady.machine(MemoryModel::Pso);
            assert!(
                fence_trade::simlocks::run_to_completion(&mut m, 1_000_000_000),
                "{} stuck at n={n}",
                steady.name
            );
            let total = m.counters().total();
            let per = |x: u64| x as f64 / (n * passages) as f64;

            let one_shot = build_ordering(kind, n, ObjectKind::Counter);
            let mut m1 = one_shot.machine(MemoryModel::Pso);
            assert!(fence_trade::simlocks::run_to_completion(
                &mut m1,
                500_000_000
            ));
            let one_shot_rmrs = m1.counters().rho() as f64 / n as f64;

            t.row(&[
                n.to_string(),
                kind.to_string(),
                fmt(per(total.fences), 1),
                fmt(per(total.rmrs), 1),
                fmt(one_shot_rmrs, 1),
                fmt(per(total.rmrs) / one_shot_rmrs, 2),
            ]);
        }
    }

    t.note(
        "Amortization < 1 means part of the one-shot cost was cold-cache; \
         ≈ 1 means the cost recurs every passage. Bakery and GT_f keep paying \
         their scans each passage (the tradeoff is about *recurring* RMRs); \
         TTAS's invalidation cost recurs too; MCS stays O(1) either way. \
         Fence counts per passage are schedule- and repetition-independent, \
         as the model predicts.",
    );
    t.finish();
}
