//! **E11 — crash-fault injection and recoverable mutual exclusion**: the
//! model checker explores crash schedules (a crash wipes a process's local
//! state, restarts it at its recovery entry, and — under the discard
//! semantics — drops its buffered writes). The naive locks wedge: a crash
//! inside the critical section, or one that discards a buffered release
//! write, leaves shared state claiming a passage that never completes. The
//! recoverable variants repair their announcements on restart and keep both
//! mutual exclusion and deadlock-freedom. Also demonstrates the wall-clock
//! budget: a zero-budget run returns `inconclusive` with coverage stats.
//!
//! Set `FT_E11_FAST=1` to skip the (slow) three-process sweep — the CI gate
//! does this.

use std::time::Duration;

use fence_trade::prelude::*;
use fence_trade::simlocks::ANNOT_IN_CS;
use fence_trade::wbmem::{SchedElem, SoloOutcome, StepOutcome};
use ft_bench::{f as fmt, Table};

const LOCKS: &[(&str, LockKind)] = &[
    ("ttas", LockKind::Ttas),
    ("bakery", LockKind::Bakery),
    ("r-ttas", LockKind::RecoverableTtas),
    ("r-bakery", LockKind::RecoverableBakery),
];

fn crash_check(
    kind: LockKind,
    n: usize,
    model: MemoryModel,
    sem: CrashSemantics,
    crashes: u32,
) -> Verdict {
    crash_check_observed(kind, n, model, sem, crashes, &ftobs::Recorder::disabled())
}

fn crash_check_observed(
    kind: LockKind,
    n: usize,
    model: MemoryModel,
    sem: CrashSemantics,
    crashes: u32,
    rec: &ftobs::Recorder,
) -> Verdict {
    let cfg = CheckConfig {
        check_termination: true,
        max_states: 5_000_000,
        ..CheckConfig::default()
    }
    .with_crashes(sem, crashes)
    .with_recorder(rec.clone());
    let inst = build_mutex(kind, n, FenceMask::ALL);
    check(&inst.machine(model), &cfg)
}

fn main() {
    // ---- Table 1: full sweep at n = 2. ----
    let mut t = Table::new(
        "e11_crash_recovery",
        "E11: mutex + deadlock-freedom under injected crashes (2 processes, \
         verdict columns: no crashes / ≤2 crashes discarding buffers / ≤2 \
         crashes draining buffers)",
        &[
            "lock",
            "model",
            "crash-free",
            "discard",
            "drain",
            "states(discard)",
            "kstates/s",
        ],
    );
    let mut cells: Vec<(&str, LockKind, MemoryModel)> = Vec::new();
    for &(name, kind) in LOCKS {
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            cells.push((name, kind, model));
        }
    }
    let rows = ft_bench::par_map(&cells, |&(name, kind, model)| {
        let plain = crash_check(kind, 2, model, CrashSemantics::DiscardBuffer, 0);
        let discard = crash_check(kind, 2, model, CrashSemantics::DiscardBuffer, 2);
        let drain = crash_check(kind, 2, model, CrashSemantics::DrainBuffer, 2);
        (name, model, plain, discard, drain)
    });
    for (name, model, plain, discard, drain) in &rows {
        let s = discard.stats();
        t.row(&[
            (*name).to_string(),
            model.to_string(),
            plain.label().to_string(),
            discard.label().to_string(),
            drain.label().to_string(),
            s.states.to_string(),
            fmt(s.states_per_sec() / 1e3, 1),
        ]);
    }
    t.note(
        "The naive TTAS is crash-exposed: with up to two crashes the checker \
         finds a schedule whose crash strands the lock word (the holder dies \
         in its critical section, or a buffered release write is discarded) \
         and the run reports NO-TERMINATION. The recoverable r-ttas \
         self-releases on restart and stays `ok` everywhere. The naive \
         Bakery happens to self-repair — a restart re-executes the doorway \
         and overwrites its stale announcements — but r-bakery's eager \
         ticket retraction still halves the crashy state space.",
    );
    t.finish();

    // ---- Table 2: three processes, PSO, discard semantics. ----
    let fast = std::env::var("FT_E11_FAST").is_ok_and(|v| v == "1");
    if !fast {
        let mut t2 = Table::new(
            "e11b_crash_recovery_n3",
            "E11b: three processes under PSO, discard semantics (≤1 crash)",
            &["lock", "crash-free", "≤1 crash", "states", "kstates/s"],
        );
        let rows = ft_bench::par_map(LOCKS, |&(name, kind)| {
            let plain = crash_check(kind, 3, MemoryModel::Pso, CrashSemantics::DiscardBuffer, 0);
            let crashy = crash_check(kind, 3, MemoryModel::Pso, CrashSemantics::DiscardBuffer, 1);
            (name, plain, crashy)
        });
        for (name, plain, crashy) in &rows {
            let s = crashy.stats();
            t2.row(&[
                (*name).to_string(),
                plain.label().to_string(),
                crashy.label().to_string(),
                s.states.to_string(),
                fmt(s.states_per_sec() / 1e3, 1),
            ]);
        }
        t2.note(
            "The separation persists at n = 3: one crash wedges the naive \
             TTAS, the recoverable variants stay live through every \
             crash-and-restart schedule. The naive Bakery's doorway \
             re-execution blows the crashy state space past the 5M-state \
             budget (`state-limit`); r-bakery's retraction keeps it \
             tractable.",
        );
        t2.finish();
    }

    // ---- The checker's counterexample for the naive lock, saved as a
    // replayable artifact (with the metrics snapshot at failure time). ----
    let cex_rec = ftobs::Recorder::builder()
        .meta("workload", "e11_cex_ttas_crash")
        .quiet(true)
        .build();
    if let Verdict::NoTermination(_, cex) = crash_check_observed(
        LockKind::Ttas,
        2,
        MemoryModel::Pso,
        CrashSemantics::DiscardBuffer,
        1,
        &cex_rec,
    ) {
        println!(
            "NO-TERMINATION counterexample for naive ttas (PSO, ≤1 crash, \
             discard semantics):\n{cex}"
        );
        let inst = build_mutex(LockKind::Ttas, 2, FenceMask::ALL);
        let traced = inst.machine_from(
            MachineConfig::new(MemoryModel::Pso, inst.layout.clone())
                .with_crashes(CrashSemantics::DiscardBuffer, 1)
                .with_trace(),
        );
        let path = ft_bench::save_counterexample(
            "e11_cex_ttas_crash",
            "E11: naive ttas (2 procs, PSO, ≤1 crash discarding buffers) \
             reaches a state that cannot terminate",
            traced,
            &cex.schedule,
            &cex_rec,
        );
        println!("saved replayable counterexample to {}\n", path.display());
    }

    // ---- Scripted replay: a crash drops a buffered release write. ----
    println!("Replay: a crash discarding a buffered release write wedges the rival.");
    let inst = build_mutex(LockKind::Ttas, 2, FenceMask::ALL);
    let mcfg = MachineConfig::new(MemoryModel::Pso, inst.layout.clone())
        .with_crashes(CrashSemantics::DiscardBuffer, 1);
    let mut m = inst.machine_from(mcfg);
    let p0 = ProcId(0);
    // Drive p0 into its critical section, then through the release write,
    // which parks in the write buffer under PSO.
    while m.annotation(p0) != ANNOT_IN_CS {
        m.step(SchedElem::op(p0));
    }
    while m.annotation(p0) == ANNOT_IN_CS {
        m.step(SchedElem::op(p0));
    }
    m.step(SchedElem::op(p0)); // the buffered release write
    match m.step(SchedElem::crash(p0)) {
        StepOutcome::Stepped(e) => println!("  {e}"),
        StepOutcome::NoOp => println!("  crash refused (unexpected)"),
    }
    match m.solo_outcome(ProcId(1), 100_000) {
        SoloOutcome::Diverges { .. } => println!(
            "  p1 running solo DIVERGES: the release write died in p0's \
             buffer, so the lock word is held forever."
        ),
        other => println!("  p1 solo outcome: {other:?} (unexpected)"),
    }
    println!();

    // ---- The wall-clock budget: a zero-budget run is inconclusive. ----
    let inst = build_mutex(LockKind::Bakery, 3, FenceMask::ALL);
    let cfg = CheckConfig {
        check_termination: false,
        ..CheckConfig::default()
    }
    .with_budget(Duration::ZERO);
    let v = check(&inst.machine(MemoryModel::Pso), &cfg);
    let Some(cov) = v.coverage() else {
        ft_bench::fail(
            "exp_e11",
            format!("zero-budget run unexpectedly finished: {}", v.label()),
        );
    };
    println!(
        "Zero-budget bakery[3]/PSO run: verdict `{}` after {} states \
         explored, {} states still on the frontier.",
        v.label(),
        v.stats().states,
        cov.frontier,
    );
}
