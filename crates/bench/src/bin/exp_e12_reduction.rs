//! **E12 — partial-order reduction factors**: how much of the schedule
//! space does `Engine::Dpor` (sleep sets + ample process sets over wbmem's
//! dependence footprints, `crates/por`) discharge, and what does that buy?
//!
//! Three sections:
//!
//! 1. **Reduction factors at n = 2** — every lock/model cell of the E5/E8
//!    safety sweeps, exhaustive (`Engine::Undo`) vs reduced, with the
//!    state and transition reduction factors. Verdicts must coincide (the
//!    differential suite asserts this; the table shows it).
//! 2. **n = 3** — the same sweep one process up, where exhaustive
//!    exploration starts hitting its state budget: the reduced engine
//!    completes configurations the undo engine cannot.
//! 3. **n = 4** — reduced-engine-only frontier: configurations that are
//!    far out of exhaustive reach.
//!
//! A DPOR-found counterexample is saved to `results/` as a replayable
//! artifact, and the measured rows are appended to `BENCH_explore.json`.
//!
//! Set `FT_E12_FAST=1` to run only the n = 2 section — the CI gate does
//! this.

use std::sync::Arc;

use fence_trade::prelude::*;
use ft_bench::{f as fmt, Table};
use ftobs::{JsonlSink, Recorder};

fn dpor() -> Engine {
    Engine::Dpor {
        reorder_bound: None,
    }
}

/// Worker count for the work-stealing DPOR rows: at least 2 (a 1-thread
/// run *is* `Engine::Dpor`), honoring `FT_THREADS`/core clamping above
/// that.
fn pardpor_threads() -> usize {
    ft_bench::parallelism().max(2)
}

fn pardpor() -> Engine {
    Engine::ParallelDpor {
        threads: pardpor_threads(),
        reorder_bound: None,
    }
}

/// (verdict, wall-clock seconds) of one check.
fn timed(inst: &OrderingInstance, model: MemoryModel, cfg: &CheckConfig) -> (Verdict, f64) {
    let start = std::time::Instant::now();
    let v = check(&inst.machine(model), cfg);
    (v, start.elapsed().as_secs_f64())
}

/// Attach a per-cell recorder to `cfg`: events stream to the shared
/// `results/obs/e12_reduction.jsonl` sink, tagged with the workload and
/// the engine label so `obs_report` can group them. Quiet — cells run
/// under `par_map`, and interleaved stderr heartbeats would be noise; the
/// JSONL stream keeps everything.
fn with_obs(cfg: CheckConfig, sink: &Arc<JsonlSink>, workload: &str) -> CheckConfig {
    let rec = Recorder::builder()
        .meta("workload", workload)
        .meta("engine", cfg.engine.label())
        .sink(sink.clone())
        .quiet(true)
        .build();
    cfg.with_recorder(rec)
}

fn factor(full: usize, reduced: usize) -> String {
    if reduced == 0 {
        "-".into()
    } else {
        format!("{}x", fmt(full as f64 / reduced as f64, 1))
    }
}

fn main() {
    let fast = std::env::var("FT_E12_FAST").is_ok_and(|v| v == "1");
    let mut json_rows: Vec<String> = Vec::new();

    // One JSONL stream for the whole experiment; one progress recorder
    // replacing the ad-hoc println!/eprintln! lines so fast and full runs
    // share a reporting path (`obs_report` renders the result).
    let sink = Arc::new(
        JsonlSink::create(ft_bench::obs_dir().join("e12_reduction.jsonl")).unwrap_or_else(|e| {
            ft_bench::fail("exp_e12: creating results/obs/e12_reduction.jsonl", e)
        }),
    );
    let progress = Recorder::builder()
        .meta("experiment", "e12")
        .sink(sink.clone())
        .heartbeat_ms(0)
        .build();

    // ---- Section 1: reduction factors at n = 2. ----
    let base = CheckConfig {
        check_termination: false, // ample pruning on (see DESIGN.md)
        max_states: 3_000_000,
        ..CheckConfig::default()
    };
    let locks: &[(&str, LockKind)] = &[
        ("peterson", LockKind::Peterson),
        ("ttas", LockKind::Ttas),
        ("bakery", LockKind::Bakery),
        ("filter", LockKind::Filter),
    ];
    let mut t = Table::new(
        "e12_reduction",
        "E12: DPOR reduction factors (2 processes, mutex check, full fences)",
        &[
            "lock", "model", "verdict", "states", "dpor", "factor", "trans", "dpor", "factor",
        ],
    );
    let mut cells: Vec<(&str, LockKind, MemoryModel)> = Vec::new();
    for &(name, kind) in locks {
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            cells.push((name, kind, model));
        }
    }
    let rows = ft_bench::par_map(&cells, |&(name, kind, model)| {
        let inst = build_mutex(kind, 2, FenceMask::ALL);
        let wl = format!("e12_{}2_{}", name, model.to_string().to_lowercase());
        let (full, _) = timed(&inst, model, &with_obs(base.clone(), &sink, &wl));
        let (red, red_secs) = timed(
            &inst,
            model,
            &with_obs(base.clone().with_engine(dpor()), &sink, &wl),
        );
        (name, model, full, red, red_secs)
    });
    for (name, model, full, red, red_secs) in &rows {
        assert_eq!(full.label(), red.label(), "{name}/{model}: engines agree");
        let (fs, rs) = (full.stats(), red.stats());
        t.row(&[
            (*name).to_string(),
            model.to_string(),
            red.label().to_string(),
            fs.states.to_string(),
            rs.states.to_string(),
            factor(fs.states, rs.states),
            fs.transitions.to_string(),
            rs.transitions.to_string(),
            factor(fs.transitions, rs.transitions),
        ]);
        json_rows.push(format!(
            "{{\"workload\": \"e12_{}2_{}\", \"engine\": \"dpor\", \"states\": {}, \
             \"undo_states\": {}, \"state_reduction\": {:.2}, \"wall_ms\": {:.1}}}",
            name,
            model.to_string().to_lowercase(),
            rs.states,
            fs.states,
            fs.states as f64 / rs.states.max(1) as f64,
            red_secs * 1e3,
        ));
    }
    t.note(
        "Same verdict, far fewer states: the ample rule schedules a process \
         alone whenever its next steps provably commute with every rival's \
         future (static per-pc access summaries + pending buffer contents), \
         and sleep sets drop transitions whose interleaving was already \
         covered. The factor is the tentpole: it is what makes n = 3 and \
         n = 4 routine below.",
    );
    t.finish();

    // ---- A DPOR counterexample, saved as a replayable artifact (the
    // artifact carries the recorder's metrics snapshot at failure time). ----
    let witness = FenceMask::only(&[simlocks::peterson::SITE_VICTIM]);
    let inst = build_mutex(LockKind::Peterson, 2, witness);
    let cex_cfg = with_obs(
        base.clone().with_engine(dpor()),
        &sink,
        "e12_cex_peterson_pso",
    );
    if let Verdict::MutexViolation(_, cex) = check(&inst.machine(MemoryModel::Pso), &cex_cfg) {
        let traced = inst
            .machine_from(MachineConfig::new(MemoryModel::Pso, inst.layout.clone()).with_trace());
        let path = ft_bench::save_counterexample(
            "e12_cex_dpor_peterson_pso",
            "E12: mutex violation found by the REDUCED search (Peterson, \
             victim fence only, PSO) — replays on the unreduced machine",
            traced,
            &cex.schedule,
            &cex_cfg.recorder,
        );
        progress.info(&format!("saved DPOR counterexample to {}", path.display()));
    }

    if fast {
        ft_bench::append_bench_explore_rows(&json_rows);
        progress.info(&format!(
            "appended {} dpor rows to BENCH_explore.json; FT_E12_FAST=1: \
             skipping the n = 3 / n = 4 sections",
            json_rows.len()
        ));
        progress.flush();
        return;
    }

    // ---- Section 2: n = 3 — where exhaustive checking hits the wall. ----
    let cap = CheckConfig {
        check_termination: false,
        max_states: 2_000_000, // the exhaustive budget the factor is measured against
        ..CheckConfig::default()
    };
    let uncapped = CheckConfig {
        check_termination: false,
        max_states: 50_000_000,
        ..CheckConfig::default()
    };
    let locks3: &[(&str, LockKind)] = &[
        ("ttas", LockKind::Ttas),
        ("bakery", LockKind::Bakery),
        ("filter", LockKind::Filter),
        ("gt_f2", LockKind::Gt { f: 2 }),
    ];
    let cores = ft_bench::available_cores();
    let mut t3 = Table::new(
        "e12b_reduction_n3",
        "E12b: three processes under PSO (mutex check, full fences, \
         exhaustive engine capped at 2M states)",
        &[
            "lock",
            "undo",
            "states",
            "dpor",
            "states",
            "factor",
            "dpor_s",
            "pardpor_s",
            "speedup",
        ],
    );
    let rows = ft_bench::par_map(locks3, |&(name, kind)| {
        let inst = build_mutex(kind, 3, FenceMask::ALL);
        let wl = format!("e12_{name}3_pso");
        let (full, _) = timed(&inst, MemoryModel::Pso, &with_obs(cap.clone(), &sink, &wl));
        let (red, red_secs) = timed(
            &inst,
            MemoryModel::Pso,
            &with_obs(uncapped.clone().with_engine(dpor()), &sink, &wl),
        );
        let (par, par_secs) = timed(
            &inst,
            MemoryModel::Pso,
            &with_obs(uncapped.clone().with_engine(pardpor()), &sink, &wl),
        );
        (name, full, red, red_secs, par, par_secs)
    });
    for (name, full, red, red_secs, par, par_secs) in &rows {
        assert_eq!(red.label(), par.label(), "{name}: dpor/pardpor agree");
        let (fs, rs) = (full.stats(), red.stats());
        // On a single-core host the pardpor wall-clock measures
        // time-slicing, not scaling — the cells stay but are marked.
        let single_core = cores == 1;
        t3.row(&[
            (*name).to_string(),
            full.label().to_string(),
            fs.states.to_string(),
            red.label().to_string(),
            rs.states.to_string(),
            if matches!(full, Verdict::StateLimit(_)) {
                format!(">{}", factor(fs.states, rs.states))
            } else {
                factor(fs.states, rs.states)
            },
            fmt(*red_secs, 2),
            if single_core {
                "skipped".into()
            } else {
                fmt(*par_secs, 2)
            },
            if single_core {
                "-".into()
            } else {
                format!("{}x", fmt(red_secs / par_secs.max(1e-9), 2))
            },
        ]);
        json_rows.push(format!(
            "{{\"workload\": \"e12_{name}3_pso\", \"engine\": \"dpor\", \"states\": {}, \
             \"undo_states\": {}, \"undo_verdict\": \"{}\", \"wall_ms\": {:.1}}}",
            rs.states,
            fs.states,
            full.label(),
            red_secs * 1e3,
        ));
        json_rows.push(format!(
            "{{\"workload\": \"e12_{name}3_pso_pardpor\", \"engine\": \"pardpor\", \
             \"threads\": {}, \"effective_threads\": {}, \"states\": {}, \
             \"dpor_wall_ms\": {:.1}, \"wall_ms\": {:.1}, \"skipped_single_core\": {}}}",
            pardpor_threads(),
            pardpor_threads().min(cores),
            par.stats().states,
            red_secs * 1e3,
            par_secs * 1e3,
            single_core,
        ));
    }
    t3.note(
        "A `state-limit` row is the infeasibility the subsystem removes: \
         the exhaustive engine gave up at its 2M-state budget while the \
         reduced engine finished the full proof with the states shown \
         (the factor is then a lower bound). The pardpor columns time the \
         work-stealing parallel DPOR engine on the same sweep (skipped on \
         single-core hosts, where parallel wall-clock measures \
         time-slicing).",
    );
    t3.finish();

    // ---- Section 3: n = 4 — past the exhaustive engine's reach. ----
    let mut t4 = Table::new(
        "e12c_reduction_n4",
        "E12c: four processes under PSO (mutex check, full fences, \
         exhaustive engine capped at 2M states)",
        &[
            "lock",
            "undo",
            "states",
            "dpor",
            "states",
            "Mstates/s",
            "factor",
        ],
    );
    let locks4: &[(&str, LockKind)] = &[
        ("ttas", LockKind::Ttas),
        ("gt_f2", LockKind::Gt { f: 2 }),
        ("tournament", LockKind::Tournament),
    ];
    let rows = ft_bench::par_map(locks4, |&(name, kind)| {
        let inst = build_mutex(kind, 4, FenceMask::ALL);
        let wl = format!("e12_{name}4_pso");
        let (full, _) = timed(&inst, MemoryModel::Pso, &with_obs(cap.clone(), &sink, &wl));
        let (red, secs) = timed(
            &inst,
            MemoryModel::Pso,
            &with_obs(uncapped.clone().with_engine(dpor()), &sink, &wl),
        );
        (name, full, red, secs)
    });
    for (name, full, red, secs) in &rows {
        let (fs, rs) = (full.stats(), red.stats());
        t4.row(&[
            (*name).to_string(),
            full.label().to_string(),
            fs.states.to_string(),
            red.label().to_string(),
            rs.states.to_string(),
            fmt(rs.states as f64 / secs.max(1e-9) / 1e6, 2),
            if matches!(full, Verdict::StateLimit(_)) {
                format!(">{}", factor(fs.states, rs.states))
            } else {
                factor(fs.states, rs.states)
            },
        ]);
        json_rows.push(format!(
            "{{\"workload\": \"e12_{name}4_pso\", \"engine\": \"dpor\", \"states\": {}, \
             \"undo_states\": {}, \"undo_verdict\": \"{}\", \"verdict\": \"{}\", \
             \"wall_ms\": {:.1}}}",
            rs.states,
            fs.states,
            full.label(),
            red.label(),
            secs * 1e3,
        ));
    }
    t4.note(
        "A `state-limit` / `ok` pair is the acceptance demonstration: a \
         configuration the seed checker could not finish at its 2M-state \
         budget, completed as a full proof by the reduced engine.",
    );
    t4.finish();

    ft_bench::append_bench_explore_rows(&json_rows);
    progress.info(&format!(
        "appended {} dpor rows to BENCH_explore.json",
        json_rows.len()
    ));
    progress.flush();
}
