//! **E14 — work-stealing DPOR scaling** (EXPERIMENTS.md E14).
//!
//! Full `Engine::ParallelDpor` explorations of the n = 3 seed workloads
//! at 1, 2, and 4 workers, against the sequential `Engine::Dpor`
//! baseline. Reports wall-clock per full verdict and the speedup over
//! the baseline; verdicts are asserted equal across all rows (the
//! engine's contract — the differential suite pins it down, this table
//! shows it holding at scale). State counts are reported per row: these
//! runs use ample pruning, whose dropped-state set is traversal-
//! dependent (the cycle proviso consults the reaching path), so the
//! counts can differ by a sliver across engines — exact state equality
//! is pinned by the sleep-sets-only and diagnostic differential tests.
//!
//! On a single-core host the multi-worker rows are **not timed** (the
//! measurement would be time-slicing overhead, not scaling): the rows
//! are emitted with `skipped` wall-clock cells and
//! `"skipped_single_core": true` in `BENCH_explore.json`, exactly like
//! the explore bench. The `pardpor_guard` binary enforces the ≥1.5×
//! floor on multi-core hosts; this experiment records the whole curve.

use fence_trade::prelude::*;
use ft_bench::{f as fmt, Table};

/// (verdict, wall-clock seconds) of one check.
fn timed(inst: &OrderingInstance, cfg: &CheckConfig) -> (Verdict, f64) {
    let start = std::time::Instant::now();
    let v = check(&inst.machine(MemoryModel::Pso), cfg);
    (v, start.elapsed().as_secs_f64())
}

fn main() {
    let cores = ft_bench::available_cores();
    let base = CheckConfig {
        check_termination: false,
        max_states: 50_000_000,
        ..CheckConfig::default()
    };
    let workloads: &[(&str, LockKind)] = &[
        ("ttas3", LockKind::Ttas),
        ("bakery3", LockKind::Bakery),
        ("filter3", LockKind::Filter),
    ];
    let thread_counts: &[usize] = &[1, 2, 4];

    let mut t = Table::new(
        "e14_scaling",
        &format!(
            "E14: work-stealing parallel DPOR scaling under PSO \
             ({cores} core(s) detected)"
        ),
        &[
            "lock", "engine", "threads", "verdict", "states", "wall_s", "speedup",
        ],
    );
    let mut json_rows: Vec<String> = Vec::new();

    for &(name, kind) in workloads {
        let inst = build_mutex(kind, 3, FenceMask::ALL);
        let (seq, seq_secs) = timed(
            &inst,
            &base.clone().with_engine(Engine::Dpor {
                reorder_bound: None,
            }),
        );
        t.row(&[
            name.to_string(),
            "dpor".to_string(),
            "1".to_string(),
            seq.label().to_string(),
            seq.stats().states.to_string(),
            fmt(seq_secs, 2),
            "1.00x".to_string(),
        ]);
        for &threads in thread_counts {
            let cfg = base.clone().with_engine(Engine::ParallelDpor {
                threads,
                reorder_bound: None,
            });
            // threads == 1 dispatches to the sequential engine — timed
            // anyway as the zero-overhead row. Multi-worker rows are
            // skipped on single-core hosts.
            let skipped = threads > 1 && cores == 1;
            let (row_label, row_states, secs) = if skipped {
                let v = check(&inst.machine(MemoryModel::Pso), &cfg);
                (v.label().to_string(), v.stats().states, None)
            } else {
                let (v, s) = timed(&inst, &cfg);
                (v.label().to_string(), v.stats().states, Some(s))
            };
            assert_eq!(seq.label(), row_label, "{name}/{threads}: verdicts agree");
            t.row(&[
                name.to_string(),
                "pardpor".to_string(),
                threads.to_string(),
                row_label,
                row_states.to_string(),
                secs.map_or_else(|| "skipped".to_string(), |s| fmt(s, 2)),
                secs.map_or_else(
                    || "-".to_string(),
                    |s| format!("{}x", fmt(seq_secs / s.max(1e-9), 2)),
                ),
            ]);
            json_rows.push(format!(
                "{{\"workload\": \"e14_{name}_pso_t{threads}\", \"engine\": \"pardpor\", \
                 \"threads\": {threads}, \"effective_threads\": {}, \"states\": {row_states}, \
                 \"dpor_wall_ms\": {:.1}, \"wall_ms\": {}, \"skipped_single_core\": {}}}",
                threads.min(cores),
                seq_secs * 1e3,
                secs.map_or_else(|| "0".to_string(), |s| format!("{:.1}", s * 1e3)),
                skipped,
            ));
        }
    }
    t.note(
        "Same verdict on every row — the work-stealing engine changes \
         wall-clock, never the answer (state counts can differ by a sliver \
         under ample pruning; see the differential suite for the exact-\
         equality modes). Speedup is sequential dpor wall-clock over the \
         row's; the threads=1 row measures the dispatch overhead \
         (pardpor_guard budgets it at ≤5%).",
    );
    t.finish();
    ft_bench::append_bench_explore_rows(&json_rows);
}
