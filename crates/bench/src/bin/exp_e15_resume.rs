//! **E15 — resume overhead** (EXPERIMENTS.md): what does durability
//! cost? For each workload × engine cell, run the exploration three
//! ways — uninterrupted, interrupted at half the transitions (snapshot
//! to disk), and resumed from that snapshot — and tabulate the combined
//! interrupted+resumed wall clock against the uninterrupted baseline,
//! along with the snapshot size and the serialized frontier it carried.
//!
//! Every run records into `results/obs/e15_resume.jsonl`, so `obs_report`
//! renders the `checkpoint_written` / `checkpoint_bytes` /
//! `resume_replayed` counters in its Resilience table from real data.
//!
//! Set `FT_E15_FAST=1` to run single trials (the CI smoke path).
//!
//! ```text
//! cargo run --release -p ft-bench --bin exp_e15_resume
//! ```

use std::sync::Arc;
use std::time::Instant;

use fence_trade::prelude::*;
use ftobs::JsonlSink;

fn median_ms(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

#[allow(clippy::cast_precision_loss)]
fn main() {
    let fast = std::env::var("FT_E15_FAST").is_ok_and(|v| v == "1");
    let trials = if fast { 1 } else { 3 };
    let sink = Arc::new(
        JsonlSink::create(ft_bench::obs_dir().join("e15_resume.jsonl")).unwrap_or_else(|e| {
            ft_bench::fail("exp_e15: creating results/obs/e15_resume.jsonl", e)
        }),
    );

    let threads = ft_bench::parallelism().clamp(2, 4);
    let cells: Vec<(&str, LockKind, usize, Engine)> = vec![
        ("peterson2_pso", LockKind::Peterson, 2, Engine::Undo),
        (
            "tournament2_pso",
            LockKind::Tournament,
            2,
            Engine::Dpor {
                reorder_bound: None,
            },
        ),
        (
            "filter3_pso",
            LockKind::Filter,
            3,
            Engine::Dpor {
                reorder_bound: None,
            },
        ),
        (
            "filter3_pso",
            LockKind::Filter,
            3,
            Engine::ParallelDpor {
                threads,
                reorder_bound: None,
            },
        ),
    ];

    let mut t = ft_bench::Table::new(
        "e15_resume",
        "E15 — resume overhead: interrupted-at-half + resumed vs uninterrupted",
        &[
            "workload", "engine", "fresh ms", "split ms", "overhead", "ckpt KiB", "frontier",
        ],
    );

    for (workload, kind, n, engine) in cells {
        let inst = build_mutex(kind, n, FenceMask::ALL);
        let cfg = CheckConfig {
            check_termination: false,
            max_states: 500_000,
            ..CheckConfig::default()
        }
        .with_engine(engine);
        let path = std::env::temp_dir().join(format!(
            "ft_e15_{}_{}_{}.ckpt",
            workload,
            engine.label(),
            std::process::id()
        ));

        let probe = check(&inst.machine(MemoryModel::Pso), &cfg);
        if !probe.is_ok() {
            ft_bench::fail(
                "exp_e15",
                format!("{workload} must verify, got `{}`", probe.label()),
            );
        }
        let cut = (probe.stats().transitions as u64 / 2).max(1);

        let mut fresh_ms = Vec::with_capacity(trials);
        let mut split_ms = Vec::with_capacity(trials);
        let mut ckpt_bytes = 0u64;
        let mut frontier = 0usize;
        for _ in 0..trials {
            let rec = ftobs::Recorder::builder()
                .meta("workload", workload)
                .meta("engine", engine.label())
                .sink(sink.clone())
                .heartbeat_ms(0)
                .quiet(true)
                .build();

            let start = Instant::now();
            let fresh = check(&inst.machine(MemoryModel::Pso), &cfg);
            fresh_ms.push(start.elapsed().as_secs_f64() * 1e3);

            let start = Instant::now();
            let stopped = check(
                &inst.machine(MemoryModel::Pso),
                &cfg.clone()
                    .with_recorder(rec.clone())
                    .with_checkpoint(CheckpointPolicy::at(&path).stop_after(cut)),
            );
            let Some(cov) = stopped.coverage() else {
                ft_bench::fail(
                    "exp_e15",
                    format!(
                        "{workload}/{}: cut at {cut} produced no checkpoint (`{}`)",
                        engine.label(),
                        stopped.label()
                    ),
                );
            };
            let Some(cp) = cov.checkpoint else {
                ft_bench::fail(
                    "exp_e15",
                    format!("{workload}/{}: checkpoint write failed", engine.label()),
                );
            };
            let resumed = resume(
                &inst.machine(MemoryModel::Pso),
                &cfg.clone().with_recorder(rec.clone()),
                &cp,
            );
            split_ms.push(start.elapsed().as_secs_f64() * 1e3);
            if resumed.label() != fresh.label() {
                ft_bench::fail(
                    "exp_e15",
                    format!(
                        "{workload}/{}: resumed `{}` != fresh `{}`",
                        engine.label(),
                        resumed.label(),
                        fresh.label()
                    ),
                );
            }
            ckpt_bytes = std::fs::metadata(&cp).map(|m| m.len()).unwrap_or(0);
            frontier = cov.frontier;
            rec.emit_snapshot(&[("verdict", ftobs::J::s(resumed.label()))]);
        }
        let fresh = median_ms(fresh_ms);
        let split = median_ms(split_ms);
        t.row(&[
            workload.to_string(),
            engine.label().to_string(),
            ft_bench::f(fresh, 1),
            ft_bench::f(split, 1),
            format!("x{}", ft_bench::f(split / fresh.max(1e-9), 3)),
            ft_bench::f(ckpt_bytes as f64 / 1024.0, 1),
            frontier.to_string(),
        ]);
        let _ = std::fs::remove_file(&path);
    }

    t.note(format!(
        "Median of {trials} trial(s). `split` = interrupted at half the transitions \
         (checkpoint written, fsynced, renamed) + resumed to completion (snapshot read, \
         fingerprint table pre-seeded, frontier replayed). Reduced-mode overhead also \
         includes re-exploring what the discarded worker-local dominance table would \
         have pruned; pure durability cost (write + read + replay) is what \
         checkpoint_guard gates at <=10%, in the exact-partition diagnostic bound. \
         `frontier` is the number of open fork points the snapshot serialized."
    ));
    t.finish();
}
