//! **E16 — CEGAR fence synthesis and the fence/RMR Pareto frontier**
//! (EXPERIMENTS.md E16).
//!
//! The rest of the bench suite *verifies* hand-placed fences; this
//! experiment *discovers* placements from scratch. For fence-stripped
//! Bakery and Tournament instances, `ftsynth::synthesize` runs the CEGAR
//! loop (strip → check → reorder-edge cores → weighted hitting set →
//! re-check → minimize) under PSO and TSO, then:
//!
//! 1. re-verifies every synthesized placement across engines and all
//!    three memory models (the differential suite pins the full
//!    engine × crash matrix; this table shows the result),
//! 2. measures the solo passage cost (β fences, ρ RMRs) of the
//!    synthesized placement against the hand-fenced original and the
//!    paper's `GT_f` analytic scales (`predicted_gt_fences` /
//!    `predicted_gt_rmrs`): Bakery should sit at the O(1)-fence/O(n)-RMR
//!    corner (`GT_1`), Tournament at O(log n)/O(log n) (`GT_{log n}`),
//! 3. sweeps the hitting-set weighting from fence-averse to RMR-averse
//!    (`ftsynth::pareto_explore`) — every sweep point is a placement that
//!    re-verified clean, so the emitted curve consists exclusively of
//!    correct algorithms.
//!
//! Tables land in `results/e16_synthesis.txt`, rows in
//! `BENCH_explore.json` (`e16_synth_*` / `e16_pareto_*` workload keys),
//! and synthesis counters stream to `results/obs/e16_synthesis.jsonl`
//! for `obs_report`'s Synthesis section.
//!
//! Set `FT_E16_FAST=1` to run only the n = 2 instances — the CI gate
//! does this.

use std::sync::Arc;

use fence_trade::analysis::{predicted_gt_fences, predicted_gt_rmrs};
use fence_trade::prelude::*;
use ft_bench::{f as fmt, Table};
use ftobs::{JsonlSink, Recorder};
use ftsynth::{pareto_explore, solo_cost, synthesize, SynthConfig, Synthesis};

const SOLO_STEPS: usize = 10_000_000;

/// Fence-weight/RMR-weight pairs, fence-averse to RMR-averse.
const SWEEP: [(u64, u64); 4] = [(1, 4), (1, 1), (4, 1), (8, 1)];

fn synth_cfg(n: usize, rec: Recorder) -> SynthConfig {
    SynthConfig {
        models: vec![MemoryModel::Pso, MemoryModel::Tso],
        // n = 3 state spaces need the work-stealing engine (termination
        // checking disables ample pruning — see DESIGN.md).
        engine: if n >= 3 {
            Engine::ParallelDpor {
                threads: ft_bench::parallelism().max(2),
                reorder_bound: None,
            }
        } else {
            Engine::Dpor {
                reorder_bound: None,
            }
        },
        max_states: 20_000_000,
        recorder: rec,
        ..SynthConfig::default()
    }
}

/// Re-verify `s` under every model for each engine; returns the verdict
/// labels joined, asserting they are all ok.
fn verify(s: &Synthesis, engines: &[Engine]) -> String {
    for &engine in engines {
        let cfg = CheckConfig {
            max_states: 50_000_000,
            ..CheckConfig::default().with_engine(engine)
        };
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let v = check(&s.instance.machine(model), &cfg);
            assert!(
                v.is_ok(),
                "{}: synthesized placement failed re-verification under \
                 {engine:?}/{model}: {}",
                s.instance.name,
                v.label()
            );
        }
    }
    "ok".to_string()
}

fn main() {
    let fast = std::env::var("FT_E16_FAST").is_ok_and(|v| v == "1");
    let sink = Arc::new(
        JsonlSink::create(ft_bench::obs_dir().join("e16_synthesis.jsonl")).unwrap_or_else(|e| {
            ft_bench::fail("exp_e16: creating results/obs/e16_synthesis.jsonl", e)
        }),
    );
    let mut json_rows: Vec<String> = Vec::new();

    let mut t = Table::new(
        "e16_synthesis",
        "E16: CEGAR fence synthesis — placements, verification, solo cost vs GT_f scale",
        &[
            "lock",
            "n",
            "iters",
            "cores",
            "fences",
            "verified",
            "beta",
            "rho",
            "beta(orig)",
            "rho(orig)",
            "GT_f scale",
            "beta^",
            "rho^",
        ],
    );

    // Tournament only exists at power-of-two n, so the full run extends
    // Bakery to n = 3 and Tournament to n = 4.
    let mut cells: Vec<(&str, LockKind, usize)> = vec![
        ("bakery", LockKind::Bakery, 2),
        ("tournament", LockKind::Tournament, 2),
    ];
    if !fast {
        cells.push(("bakery", LockKind::Bakery, 3));
        cells.push(("tournament", LockKind::Tournament, 4));
    }
    let mut pareto_src: Vec<(String, Synthesis)> = Vec::new();

    {
        for &(name, kind, n) in &cells {
            let inst = build_mutex(kind, n, FenceMask::ALL);
            let rec = Recorder::builder()
                .meta("workload", format!("e16_synth_{name}{n}"))
                .meta("engine", "cegar")
                .sink(sink.clone())
                .quiet(true)
                .build();
            let start = std::time::Instant::now();
            let out = synthesize(&inst, &synth_cfg(n, rec.clone()));
            let wall = start.elapsed().as_secs_f64();
            rec.emit_snapshot(&[(
                "verdict",
                ftobs::J::s(if out.synthesis().is_some() {
                    "synthesized"
                } else {
                    "failed"
                }),
            )]);
            let Some(s) = out.synthesis() else {
                ft_bench::fail(
                    &format!("exp_e16: {} did not synthesize", inst.name),
                    format!("{out:?}"),
                );
            };
            // Exhaustive cross-check only where it is tractable.
            let engines: Vec<Engine> = if n <= 2 {
                vec![
                    Engine::Undo,
                    Engine::Dpor {
                        reorder_bound: None,
                    },
                    Engine::ParallelDpor {
                        threads: ft_bench::parallelism().max(2),
                        reorder_bound: None,
                    },
                ]
            } else {
                vec![Engine::ParallelDpor {
                    threads: ft_bench::parallelism().max(2),
                    reorder_bound: None,
                }]
            };
            let verified = verify(s, &engines);
            let (beta, rho) = solo_cost(&s.instance, MemoryModel::Pso, SOLO_STEPS);
            let orig = solo_passage(&inst, MemoryModel::Pso, SOLO_STEPS);
            // The analytic corner each lock realizes: Bakery ≈ GT_1,
            // Tournament ≈ GT_{log2 n} (f clamps to ≥ 1 at n = 2).
            let f = match kind {
                LockKind::Bakery => 1,
                _ => ((n as f64).log2().round() as usize).max(1),
            };
            t.row(&[
                name.to_string(),
                n.to_string(),
                s.iterations.to_string(),
                s.cores.len().to_string(),
                s.fences_inserted().to_string(),
                verified.clone(),
                beta.to_string(),
                rho.to_string(),
                fmt(orig.fences, 0),
                fmt(orig.rmrs, 0),
                format!("GT_{f}"),
                fmt(predicted_gt_fences(f), 0),
                fmt(predicted_gt_rmrs(n, f), 0),
            ]);
            json_rows.push(format!(
                "{{\"workload\": \"e16_synth_{name}{n}\", \"engine\": \"cegar\", \"n\": {n}, \
                 \"iterations\": {}, \"cores\": {}, \"fences_inserted\": {}, \
                 \"total_states\": {}, \"solo_fences\": {beta}, \"solo_rmrs\": {rho}, \
                 \"orig_fences\": {}, \"orig_rmrs\": {}, \"verified\": true, \
                 \"wall_ms\": {:.1}}}",
                s.iterations,
                s.cores.len(),
                s.fences_inserted(),
                s.total_states,
                fmt(orig.fences, 0),
                fmt(orig.rmrs, 0),
                wall * 1e3,
            ));
            if n == 2 {
                pareto_src.push((name.to_string(), s.clone()));
            }
        }
    }
    t.note(
        "Synthesis never sees the hand placement: it strips every fence and \
         rediscovers ordering from counterexamples alone. β/ρ are solo-passage \
         fence steps and RMRs of the synthesized placement under PSO; the \
         GT_f columns are the paper's analytic per-passage scales (constants \
         differ — the claim is the corner each lock family occupies: Bakery \
         at O(1) fences/O(n) RMRs like GT_1, Tournament at O(log n)/O(log n) \
         like GT_{log n}).",
    );
    t.finish();

    // ---- Pareto sweep over the hitting-set weighting (n = 2). ----
    let mut pt = Table::new(
        "e16_pareto",
        "E16: fence/RMR Pareto sweep — synthesis under swept site weights (n = 2, PSO)",
        &[
            "lock", "w_fence", "w_rmr", "fences", "beta", "rho", "iters", "states",
        ],
    );
    for (name, s) in &pareto_src {
        let rec = Recorder::builder()
            .meta("workload", format!("e16_pareto_{name}2"))
            .meta("engine", "cegar")
            .sink(sink.clone())
            .quiet(true)
            .build();
        let base = synth_cfg(2, rec.clone());
        let points = pareto_explore(&s.baseline, &SWEEP, &base, MemoryModel::Pso, SOLO_STEPS);
        rec.emit_snapshot(&[("verdict", ftobs::J::s("pareto"))]);
        assert!(
            !points.is_empty(),
            "{name}: the Pareto sweep lost every point"
        );
        for p in &points {
            pt.row(&[
                name.clone(),
                p.fence_weight.to_string(),
                p.rmr_weight.to_string(),
                p.fences_inserted.to_string(),
                p.solo_fences.to_string(),
                p.solo_rmrs.to_string(),
                p.iterations.to_string(),
                p.total_states.to_string(),
            ]);
            json_rows.push(format!(
                "{{\"workload\": \"e16_pareto_{name}2_f{}_r{}\", \"engine\": \"cegar\", \
                 \"fence_weight\": {}, \"rmr_weight\": {}, \"fences_inserted\": {}, \
                 \"solo_fences\": {}, \"solo_rmrs\": {}, \"iterations\": {}, \
                 \"total_states\": {}}}",
                p.fence_weight,
                p.rmr_weight,
                p.fence_weight,
                p.rmr_weight,
                p.fences_inserted,
                p.solo_fences,
                p.solo_rmrs,
                p.iterations,
                p.total_states,
            ));
        }
    }
    pt.note(
        "Every row is a placement that re-verified clean under PSO and TSO — \
         the sweep trades *which* correct placement the hitting set prefers, \
         never correctness. At n = 2 the frontier is narrow (the tradeoff \
         spectrum opens up with n); the full-matrix differential suite keeps \
         each point honest.",
    );
    pt.finish();
    ft_bench::append_bench_explore_rows(&json_rows);
}
