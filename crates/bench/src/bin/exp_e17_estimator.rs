//! **E17 — progress estimation accuracy + causal trace validation**
//! (EXPERIMENTS.md): two guards over the observability layer's new
//! predictive surface.
//!
//! **Section 1 — estimator accuracy.** For each workload × engine cell
//! of the n = 2 / n = 3 matrix, explore exhaustively (the truth), then
//! re-run the same cell cut deterministically at 25/50/75/90% of the
//! true transition count (`CheckpointPolicy::stop_after`) and tabulate
//! the Knuth path-sampling projection the `Inconclusive` coverage
//! carries (`est_total_states`) against the true state count. The
//! traversals are deterministic, so the whole table is a regression
//! test, not a statistical one. The gate is the acceptance bound —
//! **within 2× either way at the 90% cut** — enforced on every cell
//! except `filter3/undo`: a DFS prefix of a dedup-heavy exhaustive
//! search samples only deep, pre-saturation paths for a long time, so
//! the estimate converges late there (the known DFS-prefix bias,
//! DESIGN.md §6a); the row stays in the table as documentation of that
//! caveat, and the reduced engine — the one actually used at scale —
//! is gated.
//!
//! **Section 2 — traced runs.** With tracing on, run (a) the
//! work-stealing engine on the tournament lock (`FT_PARDPOR_SEQ=0` so
//! the parallel path actually engages), and (b) an interrupted Undo run
//! resumed from its checkpoint. The resulting span stream must pass
//! [`validate_spans`] (unique ids, parent < id, no orphan steal edges),
//! contain `task` spans whose steal edges resolve, contain at least one
//! `publish` instant (a real donation), and contain a `resume` span
//! whose `prev_run`/`run` fields link the two runs. The stream is also
//! exported through [`chrome_trace`] to `results/obs/e17_trace.json` —
//! the artifact a human loads into Perfetto.
//!
//! Set `FT_E17_FAST=1` for the CI smoke path (fewer cells, fewer
//! donation retries).
//!
//! ```text
//! cargo run --release -p ft-bench --bin exp_e17_estimator
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use fence_trade::prelude::*;
use ftobs::{chrome_trace, parse_spans, validate_spans, JsonlSink, Recorder, SpanRow};

#[allow(clippy::cast_precision_loss)]
fn ratio(est: u64, truth: usize) -> f64 {
    est as f64 / (truth as f64).max(1.0)
}

/// One estimator-accuracy cell: truth run, then deterministic cuts at
/// each fraction of the true transition count. Returns the true state
/// count and the est/true ratio per cut (`None` = no estimate carried).
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
fn accuracy_cell(
    inst: &OrderingInstance,
    engine: Engine,
    fracs: &[f64],
    ckpt: &std::path::Path,
) -> (usize, Vec<Option<f64>>) {
    let base = CheckConfig {
        check_termination: false,
        max_states: 2_000_000,
        ..CheckConfig::default()
    }
    .with_engine(engine);
    let truth = check(&inst.machine(MemoryModel::Pso), &base);
    assert!(truth.is_ok(), "truth run must verify: {}", truth.label());
    let states = truth.stats().states;
    let transitions = truth.stats().transitions as f64;

    let ratios = fracs
        .iter()
        .map(|&frac| {
            let cut = ((transitions * frac) as u64).max(1);
            let v = check(
                &inst.machine(MemoryModel::Pso),
                &base
                    .clone()
                    .with_checkpoint(CheckpointPolicy::at(ckpt).stop_after(cut)),
            );
            let cov = v
                .coverage()
                .unwrap_or_else(|| panic!("cut run must be inconclusive, got {}", v.label()));
            cov.est_total_states.map(|e| ratio(e, states))
        })
        .collect();
    (states, ratios)
}

/// Run the traced section once; returns the parsed spans. The stream is
/// recreated per attempt so retries never mix forests across runs.
fn traced_runs(
    threads: usize,
    trace_path: &std::path::Path,
    ckpt: &std::path::Path,
) -> Vec<SpanRow> {
    let sink = Arc::new(
        JsonlSink::create(trace_path)
            .unwrap_or_else(|e| ft_bench::fail("exp_e17: creating trace stream", e)),
    );
    let rec = || {
        Recorder::builder()
            .meta("experiment", "e17")
            .sink(sink.clone())
            .trace(true)
            .quiet(true)
            .heartbeat_ms(0)
            .build()
    };

    // (a) Work-stealing DPOR over the tournament lock, tracing on.
    let inst = build_mutex(LockKind::Tournament, 2, FenceMask::ALL);
    let cfg = CheckConfig {
        check_termination: false,
        max_states: 2_000_000,
        ..CheckConfig::default()
    }
    .with_engine(Engine::ParallelDpor {
        threads,
        reorder_bound: None,
    })
    .with_recorder(rec());
    let v = check(&inst.machine(MemoryModel::Pso), &cfg);
    assert!(
        v.is_ok(),
        "traced tournament2_pso must verify: {}",
        v.label()
    );

    // (b) Interrupted Undo run + resume, tracing on: the resume span must
    // link the predecessor run id recorded in the snapshot.
    let pinst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
    let ucfg = CheckConfig {
        check_termination: false,
        max_states: 2_000_000,
        ..CheckConfig::default()
    }
    .with_engine(Engine::Undo)
    .with_recorder(rec());
    let cut_v = check(
        &pinst.machine(MemoryModel::Pso),
        &ucfg
            .clone()
            .with_checkpoint(CheckpointPolicy::at(ckpt).stop_after(200)),
    );
    assert!(
        cut_v.coverage().is_some(),
        "interrupted run must checkpoint, got {}",
        cut_v.label()
    );
    let resumed = resume(&pinst.machine(MemoryModel::Pso), &ucfg, ckpt);
    assert!(
        resumed.is_ok(),
        "resumed run must verify: {}",
        resumed.label()
    );

    drop((cfg, ucfg)); // drop the recorders' sink handles...
    drop(sink); // ...then publish the stream (rename .partial -> final)
    let text = std::fs::read_to_string(trace_path)
        .unwrap_or_else(|e| ft_bench::fail("exp_e17: reading trace stream", e));
    parse_spans(&text)
}

#[allow(clippy::cast_precision_loss)]
fn main() -> ExitCode {
    let fast = std::env::var("FT_E17_FAST").is_ok_and(|v| v == "1");
    // The seq-fallback gate would route small workloads around the
    // work-stealing path, and a traced run without workers has no steal
    // edges to validate. Must be set before any check runs.
    std::env::set_var("FT_PARDPOR_SEQ", "0");
    let threads = ft_bench::parallelism().clamp(2, 4);

    let obs = ft_bench::obs_dir();
    let ckpt = obs.join("e17_ckpt.bin");

    // ---- Section 1: estimator accuracy across deterministic cuts. ----
    let dpor = Engine::Dpor {
        reorder_bound: None,
    };
    // (workload, kind, n, engine, gated): every cell tabulates, gated
    // cells enforce the 2x acceptance bound at the last (90%) cut.
    let mut cells: Vec<(&str, LockKind, usize, Engine, bool)> = vec![
        ("peterson2_pso", LockKind::Peterson, 2, Engine::Undo, true),
        ("peterson2_pso", LockKind::Peterson, 2, dpor, true),
    ];
    if !fast {
        cells.push(("bakery2_pso", LockKind::Bakery, 2, Engine::Undo, true));
        cells.push(("bakery2_pso", LockKind::Bakery, 2, dpor, true));
        cells.push(("filter3_pso", LockKind::Filter, 3, Engine::Undo, false));
        cells.push(("filter3_pso", LockKind::Filter, 3, dpor, true));
    }
    let fracs: &[f64] = if fast {
        &[0.5, 0.9]
    } else {
        &[0.25, 0.5, 0.75, 0.9]
    };
    let mut headers: Vec<String> = vec!["workload".into(), "engine".into(), "true states".into()];
    headers.extend(fracs.iter().map(|f| format!("est/true @{:.0}%", f * 100.0)));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = ft_bench::Table::new(
        "e17_estimator",
        "E17 — Knuth path-sampling estimate vs true state count, per cut fraction",
        &header_refs,
    );
    let mut worst: f64 = 1.0;
    for (workload, kind, n, engine, gated) in cells {
        let inst = build_mutex(kind, n, FenceMask::ALL);
        let label = engine.label();
        let (truth, ratios) = accuracy_cell(&inst, engine, fracs, &ckpt);
        let mut row = vec![workload.to_string(), label.to_string(), truth.to_string()];
        row.extend(
            ratios
                .iter()
                .map(|r| r.map_or_else(|| "-".into(), |r| format!("{}x", ft_bench::f(r, 2)))),
        );
        t.row(&row);
        let last = ratios.last().copied().flatten();
        if gated {
            let Some(r) = last.filter(|r| (0.5..=2.0).contains(r)) else {
                eprintln!(
                    "FAIL: {workload}/{label} estimate at the 90% cut is {} the true \
                     {truth} states (gate: within 2x)",
                    last.map_or_else(
                        || "absent for".into(),
                        |r| format!("{}x", ft_bench::f(r, 2))
                    ),
                );
                return ExitCode::FAILURE;
            };
            worst = worst.max(if r < 1.0 { 1.0 / r } else { r });
        }
    }
    t.note(format!(
        "gate: est/true within 2x at the last cut on every cell but filter3/undo \
         (DFS-prefix bias on a dedup-heavy exhaustive search converges late — DESIGN.md \
         §6a); worst gated factor {}",
        ft_bench::f(worst, 2)
    ));
    t.finish();

    // ---- Section 2: traced work-stealing + resume, forest validation. ----
    // A donation needs an idle thief at the right moment; on a tiny
    // workload a lucky scheduling can finish without one, so retry the
    // (cheap) traced section rather than gate on one scheduling.
    let trace_path = obs.join("e17_trace.jsonl");
    let attempts = if fast { 2 } else { 4 };
    let mut rows = Vec::new();
    let mut publishes = 0usize;
    for attempt in 1..=attempts {
        rows = traced_runs(threads, &trace_path, &ckpt);
        publishes = rows.iter().filter(|r| r.name == "publish").count();
        if publishes > 0 {
            break;
        }
        eprintln!("attempt {attempt}/{attempts}: no donation happened; re-running traced section");
    }
    if let Err(e) = validate_spans(&rows) {
        eprintln!("FAIL: traced stream violates the span-forest invariants: {e}");
        return ExitCode::FAILURE;
    }
    let tasks: Vec<&SpanRow> = rows.iter().filter(|r| r.name == "task").collect();
    let stolen = tasks.iter().filter(|r| r.parent != 0).count();
    let resume_span = rows.iter().find(|r| r.name == "resume");
    let linked = resume_span.is_some_and(|r| {
        r.fields.get("prev_run").is_some_and(|v| v != "0")
            && r.fields.get("run").is_some_and(|v| v != "0")
    });
    println!(
        "trace: {} spans, {} tasks ({} with steal edges), {} publish instants, resume linked: {}",
        rows.len(),
        tasks.len(),
        stolen,
        publishes,
        linked
    );
    if tasks.is_empty() || publishes == 0 {
        eprintln!(
            "FAIL: traced parallel run produced {} task spans and {publishes} publish \
             instants — the work-stealing path never engaged",
            tasks.len()
        );
        return ExitCode::FAILURE;
    }
    if !linked {
        eprintln!("FAIL: no resume span linking the predecessor run id");
        return ExitCode::FAILURE;
    }

    let json = chrome_trace(&rows);
    let out = obs.join("e17_trace.json");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("FAIL: could not write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    let _ = std::fs::remove_file(&ckpt);
    println!(
        "wrote {} (load in Perfetto / chrome://tracing)",
        out.display()
    );
    println!("e17 estimator + trace guard: OK");
    ExitCode::SUCCESS
}
