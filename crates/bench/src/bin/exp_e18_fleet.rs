//! **E18 — fault-tolerant fleet** (EXPERIMENTS.md): what does surviving
//! worker death cost, and does the fleet stay exact while doing it?
//!
//! For a small lock × model set, run each cell three ways — a fresh
//! single-process `ParallelDpor` baseline, a fault-free worker fleet,
//! and a fleet under mixed `FT_CHAOS` fault injection (startup deaths,
//! heartbeat stalls, torn commits) — and tabulate wall-clock plus the
//! supervision counters (leases issued/reassigned, workers lost,
//! poisoned leases). Every cell runs in diagnostic mode, so the fleet
//! verdicts' stats must be **bit-identical** to the baseline; a mismatch
//! fails the experiment, not just the table.
//!
//! Every run records into `results/obs/e18_fleet.jsonl`, so `obs_report`
//! renders the `leases_issued` / `leases_reassigned` / `workers_lost` /
//! `poisoned_leases` counters in its Fleet table from real data.
//!
//! Set `FT_E18_FAST=1` to trim the matrix (the CI smoke path). Requires
//! the `ft_worker` binary next to this one (`cargo build --release`
//! builds both); `FT_WORKER_BIN` overrides the location.
//!
//! ```text
//! cargo run --release -p ft-bench --bin exp_e18_fleet
//! ```

use std::sync::Arc;
use std::time::Instant;

use fence_trade::prelude::*;
use ftfleet::{run_fleet, FleetConfig, FleetReport, JobSpec, ProgramSpec};
use ftobs::JsonlSink;

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ft_e18_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        ft_bench::fail(&format!("exp_e18: creating {}", dir.display()), e);
    }
    dir
}

#[allow(clippy::cast_precision_loss)]
fn main() {
    let fast = std::env::var("FT_E18_FAST").is_ok_and(|v| v == "1");
    let Some(worker) = ftfleet::locate_worker() else {
        ft_bench::fail(
            "exp_e18",
            "ft_worker binary not found next to this executable — run \
             `cargo build --release` first, or set FT_WORKER_BIN",
        );
    };
    let sink = Arc::new(
        JsonlSink::create(ft_bench::obs_dir().join("e18_fleet.jsonl"))
            .unwrap_or_else(|e| ft_bench::fail("exp_e18: creating results/obs/e18_fleet.jsonl", e)),
    );

    // Mixed chaos on every injection point, 40% per (point, lease,
    // attempt): enough faults to exercise reassignment and poisoning
    // without starving the run of successful attempts.
    let chaos = "startup,heartbeat,commit:40:18";
    let mut cells: Vec<(&str, LockKind, MemoryModel)> = vec![
        ("peterson2_tso", LockKind::Peterson, MemoryModel::Tso),
        ("ttas2_pso", LockKind::Ttas, MemoryModel::Pso),
    ];
    if !fast {
        cells.push(("peterson2_rmo", LockKind::Peterson, MemoryModel::Rmo));
        cells.push(("bakery2_tso", LockKind::Bakery, MemoryModel::Tso));
    }

    let mut t = ft_bench::Table::new(
        "e18_fleet",
        "E18 — fault-tolerant fleet: exactness and supervision cost under chaos",
        &[
            "workload",
            "mode",
            "ms",
            "verdict",
            "leases",
            "reassigned",
            "lost",
            "poisoned",
        ],
    );

    for (workload, lock, model) in cells {
        let mut job = JobSpec::new(ProgramSpec::new(lock, 2, FenceMask::ALL, model));
        job.heartbeat_ms = 25;
        let machine = job.program.machine();

        let start = Instant::now();
        let baseline = check(&machine, &job.config(ftobs::Recorder::enabled()));
        let base_ms = start.elapsed().as_secs_f64() * 1e3;
        t.row(&[
            workload.to_string(),
            "single".to_string(),
            ft_bench::f(base_ms, 1),
            baseline.label().to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);

        for (mode, chaos_spec) in [("fleet", None), ("fleet+chaos", Some(chaos))] {
            let dir = scratch(&format!("{workload}_{mode}"));
            let mut fleet = FleetConfig::new(worker.clone(), dir.clone());
            fleet.workers = ft_bench::parallelism().clamp(2, 4);
            fleet.leases = 4;
            fleet.prime_transitions = 200;
            fleet.chaos = chaos_spec.map(str::to_string);
            let rec = ftobs::Recorder::builder()
                .meta("workload", workload)
                .meta("engine", mode)
                .sink(sink.clone())
                .heartbeat_ms(0)
                .quiet(true)
                .build();
            let start = Instant::now();
            let FleetReport { verdict, stats } = run_fleet(&job, &fleet, rec.clone());
            let ms = start.elapsed().as_secs_f64() * 1e3;
            if verdict.label() != baseline.label() || verdict.stats() != baseline.stats() {
                ft_bench::fail(
                    "exp_e18",
                    format!(
                        "{workload}/{mode}: fleet `{}` diverges from single-process `{}` \
                         (diagnostic stats must be bit-identical)",
                        verdict.label(),
                        baseline.label()
                    ),
                );
            }
            rec.emit_snapshot(&[("verdict", ftobs::J::s(verdict.label()))]);
            t.row(&[
                workload.to_string(),
                mode.to_string(),
                ft_bench::f(ms, 1),
                verdict.label().to_string(),
                stats.leases_issued.to_string(),
                stats.leases_reassigned.to_string(),
                stats.workers_lost.to_string(),
                stats.poisoned_leases.to_string(),
            ]);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    t.note(format!(
        "Every cell runs in diagnostic mode (reduction off), so both fleet modes' \
         verdict stats are asserted bit-identical to the single-process baseline — \
         the table only exists if the exactness property held. `fleet+chaos` injects \
         `FT_CHAOS={chaos}`: per-(point, lease, attempt) deterministic faults at \
         worker startup (exit before work), heartbeat (silent stall, supervisor must \
         kill), and commit (torn half-written result file, supervisor must reject). \
         `reassigned` counts lease retries (faults and stale-seed rejections), `lost` \
         counts dead/stalled/torn worker attempts, `poisoned` counts leases that \
         exhausted their fault budget and fell through to the in-process endgame."
    ));
    t.finish();
}
