//! **E1 — Bakery: O(1) fences, Θ(n) RMRs per passage** (paper §1 and §3,
//! Algorithm 1).
//!
//! Solo and contended passages of the Bakery-protected counter as `n`
//! grows: fences stay constant, RMRs grow linearly (solo) and the tradeoff
//! product `f·(log(r/f)+1)` tracks `log n` — i.e. Bakery *meets* the lower
//! bound at the `f = O(1)` endpoint.

use fence_trade::prelude::*;
use ft_bench::{f, Table};

fn main() {
    let mut t = Table::new(
        "e1_bakery",
        "E1: Bakery counter passage cost vs n (PSO write-buffer machine)",
        &[
            "n",
            "solo fences",
            "solo RMRs",
            "RMRs/n",
            "contended RMRs/passage",
            "f(log(r/f)+1)/log n",
        ],
    );

    for n in [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
        let inst = build_ordering(LockKind::Bakery, n, ObjectKind::Counter);
        let solo = solo_passage(&inst, MemoryModel::Pso, 50_000_000);
        let contended = if n <= 128 {
            Some(contended_passage(&inst, MemoryModel::Pso, 500_000_000))
        } else {
            None
        };
        t.row(&[
            n.to_string(),
            f(solo.fences, 0),
            f(solo.rmrs, 0),
            f(solo.rmrs / n as f64, 2),
            contended.map_or_else(|| "-".into(), |c| f(c.rmrs, 1)),
            f(normalized_tradeoff(solo.fences, solo.rmrs, n), 2),
        ]);
    }

    t.note(
        "Paper claim: constant fences (3 acquire + 1 release; +2 for the Count \
         object's own fence and the final pre-return fence), Θ(n) RMRs, and \
         f·(log(r/f)+1) ∈ Θ(log n). The RMRs/n column converging to a constant \
         and the last column staying in a constant band reproduce the claim.",
    );
    t.finish();
}
