//! **E2 — the `GT_f` family sweeps the tradeoff spectrum** (paper §3,
//! Figure 1 and equation (2)).
//!
//! For each `n` and each height `f`, measure fences and RMRs per solo
//! passage and compare with the predictions `4f + 2` and `Θ(f·n^(1/f))`.

use fence_trade::prelude::*;
use ft_bench::{f as fmt, Table};

fn main() {
    let mut t = Table::new(
        "e2_gt_family",
        "E2: GT_f fences and RMRs per solo passage (PSO machine)",
        &[
            "n",
            "f",
            "b",
            "fences",
            "pred fences",
            "RMRs",
            "pred f*n^(1/f)",
            "RMRs/pred",
        ],
    );

    for n in [16usize, 64, 256, 1024, 4096] {
        let log_n = (n as f64).log2().round() as usize;
        let mut fs: Vec<usize> = vec![1, 2, 3, 4];
        fs.push(log_n);
        fs.dedup();
        for f in fs {
            if f > log_n {
                continue;
            }
            let inst = build_ordering(LockKind::Gt { f }, n, ObjectKind::Counter);
            let cost = solo_passage(&inst, MemoryModel::Pso, 100_000_000);
            let pred = predicted_gt_rmrs(n, f);
            t.row(&[
                n.to_string(),
                f.to_string(),
                fence_trade::simlocks::branching_factor(n, f).to_string(),
                fmt(cost.fences, 0),
                fmt(predicted_gt_fences(f), 0),
                fmt(cost.rmrs, 0),
                fmt(pred, 0),
                fmt(cost.rmrs / pred, 2),
            ]);
        }
    }

    t.note(
        "Paper claim (eq. 2): GT_f incurs O(f) fences and O(f·n^(1/f)) RMRs. \
         Measured fences equal 4f+2 exactly; the RMRs/pred ratio stays within a \
         small constant band across three orders of magnitude of n, so the \
         family realizes every point of the tradeoff curve. GT_1 is Bakery and \
         GT_log n is the binary tournament (endpoints of Figure 1).",
    );
    t.finish();
}
