//! **E3 — tightness of equation (1):** `f·(log(r/f)+1) / log n` is Θ(1)
//! everywhere on the spectrum, for both solo and contended executions.

use fence_trade::prelude::*;
use ft_bench::{f as fmt, Table};

fn main() {
    let mut t = Table::new(
        "e3_tradeoff",
        "E3: normalized tradeoff product f(log(r/f)+1)/log n across locks and n",
        &[
            "n",
            "lock",
            "fences",
            "RMRs",
            "norm product (solo)",
            "norm product (contended)",
        ],
    );

    for n in [16usize, 64, 256] {
        let log_n = (n as f64).log2().round() as usize;
        let kinds = vec![
            LockKind::Bakery,
            LockKind::Gt { f: 2 },
            LockKind::Gt { f: 3 },
            LockKind::Gt { f: log_n },
            LockKind::Tournament,
            LockKind::Filter,
        ];
        for kind in kinds {
            let inst = build_ordering(kind, n, ObjectKind::Counter);
            let solo = solo_passage(&inst, MemoryModel::Pso, 100_000_000);
            let contended = if n <= 64 {
                let c = contended_passage(&inst, MemoryModel::Pso, 500_000_000);
                Some(normalized_tradeoff(c.fences, c.rmrs, n))
            } else {
                None
            };
            t.row(&[
                n.to_string(),
                kind.to_string(),
                fmt(solo.fences, 0),
                fmt(solo.rmrs, 0),
                fmt(normalized_tradeoff(solo.fences, solo.rmrs, n), 2),
                contended.map_or_else(|| "-".into(), |x| fmt(x, 2)),
            ]);
        }
    }

    t.note(
        "Theorem 4.2 (per-process form): f(log(r/f)+1) ∈ Ω(log n), and §3's \
         algorithms show it is O(log n) too. The normalized column staying in a \
         constant band — for wildly different (f, r) splits — is the tradeoff's \
         tightness. One cannot push the product below the band by trading \
         fences for RMRs in either direction. The Filter lock is the contrast \
         case: Θ(n) fences AND Θ(n) RMRs, so its normalized product GROWS like \
         n/log n — the bound is a floor, not a guarantee of optimality.",
    );
    t.finish();
}
