//! **E4 — the lower-bound encoding, measured** (paper §4–5, Theorem 4.2).
//!
//! For random permutations π, construct and encode `E_π` for the Bakery
//! and `GT_f` counters; report commands `m`, value sum `v`, actual code
//! bits `B`, the analytic bound `β(log(ρ/β)+1)`, and the information floor
//! `log₂ n!` — and verify the round trip π → stacks → bits → stacks → E_π
//! → π for every sample.

use fence_trade::lowerbound::{self, log2_factorial};
use fence_trade::prelude::*;
use ft_bench::{f as fmt, par_map, random_permutations, Table};

fn run_family(t: &mut Table, kind: LockKind, cases: &[(usize, usize)]) {
    for &(n, samples) in cases {
        let inst = build_ordering(kind, n, ObjectKind::Counter);
        let perms = random_permutations(n, samples, 0xE4 + n as u64);
        // Each seeded permutation encodes and round-trips independently, so
        // the samples run on `FT_THREADS` workers; the aggregation below is
        // order-independent, so the table does not change with thread count.
        let measured = par_map(&perms, |pi| {
            let enc = encode_permutation(&inst, pi, &EncodeOptions::default())
                .unwrap_or_else(|e| panic!("{kind} n={n} pi={pi:?}: {e}"));
            assert_eq!(enc.recovered_permutation(), *pi, "injectivity");
            let bits = lowerbound::serialize_stacks(&enc.stacks);
            let back = lowerbound::deserialize_stacks(&bits, n)
                .unwrap_or_else(|e| ft_bench::fail("exp_e4: deserializing stack bits", e));
            let out = decode(&proof_machine(&inst), &back, &DecodeOptions::default())
                .unwrap_or_else(|e| ft_bench::fail("exp_e4: decoding round-tripped stacks", e));
            assert_eq!(recover_permutation(&out.machine), *pi, "bit round trip");
            (
                enc.commands as f64,
                enc.value_sum as f64,
                bits.len(),
                enc.beta as f64,
                enc.rho as f64,
                theorem_lhs(enc.beta, enc.rho),
            )
        });
        let (mut sm, mut sv, mut sb, mut sbeta, mut srho, mut slhs) =
            (0f64, 0f64, 0f64, 0f64, 0f64, 0f64);
        let mut max_bits = 0usize;
        for &(m, v, bits, beta, rho, lhs) in &measured {
            sm += m;
            sv += v;
            sb += bits as f64;
            sbeta += beta;
            srho += rho;
            slhs += lhs;
            max_bits = max_bits.max(bits);
        }
        let k = perms.len() as f64;
        t.row(&[
            kind.to_string(),
            n.to_string(),
            fmt(sm / k, 0),
            fmt(sv / k, 0),
            fmt(sbeta / k, 0),
            fmt(srho / k, 0),
            fmt(sb / k, 0),
            fmt(slhs / k, 0),
            fmt(log2_factorial(n), 0),
            fmt((sb / k) / n_log_n(n).max(1.0), 2),
        ]);
    }
}

fn main() {
    let mut t = Table::new(
        "e4_encoding",
        "E4: lower-bound encodings of E_pi (averages over seeded random permutations)",
        &[
            "algorithm",
            "n",
            "cmds m",
            "value v",
            "beta",
            "rho",
            "code bits B",
            "beta(log(rho/beta)+1)",
            "log2(n!)",
            "B / n log n",
        ],
    );

    run_family(
        &mut t,
        LockKind::Bakery,
        &[(4, 3), (8, 3), (12, 3), (16, 3), (20, 2), (24, 1)],
    );
    run_family(&mut t, LockKind::Gt { f: 2 }, &[(4, 3), (8, 3), (16, 3)]);
    run_family(&mut t, LockKind::Gt { f: 3 }, &[(8, 2)]);
    run_family(&mut t, LockKind::Tournament, &[(4, 2), (8, 2), (16, 1)]);
    run_family(&mut t, LockKind::Filter, &[(4, 2), (6, 2)]);

    // E4b: exhaustive codebooks — every permutation, literal injectivity.
    let mut t2 = Table::new(
        "e4b_codebooks",
        "E4b: exhaustive codebooks (EVERY permutation encoded)",
        &[
            "algorithm",
            "n",
            "n!",
            "injective",
            "min bits",
            "mean bits",
            "max bits",
            "log2(n!)",
        ],
    );
    let codebook_cases = [
        (LockKind::Bakery, 4usize),
        (LockKind::Bakery, 5),
        (LockKind::Gt { f: 2 }, 4),
        (LockKind::Tournament, 4),
    ];
    // The exhaustive codebooks (n! encodings each) are the heavy part of
    // this binary; each is independent, so build them in parallel.
    let codebook_rows = par_map(&codebook_cases, |&(kind, n)| {
        let inst = build_ordering(kind, n, ObjectKind::Counter);
        let book = fence_trade::lowerbound::build_codebook(&inst, &EncodeOptions::default())
            .unwrap_or_else(|e| panic!("{kind} n={n}: {e}"));
        vec![
            kind.to_string(),
            n.to_string(),
            book.permutations.to_string(),
            book.injective.to_string(),
            book.min_bits.to_string(),
            fmt(book.mean_bits, 1),
            book.max_bits.to_string(),
            fmt(log2_factorial(n), 1),
        ]
    });
    for row in &codebook_rows {
        t2.row(row);
    }
    t2.note(
        "The counting argument, literally: n! pairwise-distinct codes, every \
         one of them longer than log2(n!) bits — so *some* execution must pay \
         Ω(n log n) in the beta/rho currency the code length is made of.",
    );
    t2.finish();

    t.note(
        "Theorem 4.2's chain, measured: every permutation's stacks serialize to \
         B bits; B tracks beta(log(rho/beta)+1) (both O(m log(v/m))); and since \
         all n! codes are distinct (asserted by the round trip on every sample \
         and exhaustively for n=4 in the test suite), some code needs log2(n!) \
         bits — so B/(n log n) must stay bounded below away from 0, which the \
         last column shows. Commands m scale with beta, value v with rho, \
         exactly as Lemmas 5.3-5.11 require (checked by `lowerbound::check_all`).",
    );
    t.finish();
}
