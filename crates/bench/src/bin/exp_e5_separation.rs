//! **E5 — separating memory models** (paper §1, §3): exhaustive model
//! checking shows Peterson's lock with one store–load fence is correct
//! under TSO and broken under PSO, and prints the violating schedule. Also
//! regenerates the Algorithm-1 listing-order counterexample (broken even
//! under SC).

use fence_trade::prelude::*;
use fence_trade::simlocks::peterson::{SITE_FLAG, SITE_RELEASE, SITE_VICTIM};
use ft_bench::{f as fmt, Table};

fn main() {
    let cfg = CheckConfig {
        check_termination: false,
        ..CheckConfig::default()
    };
    let models = [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso];

    let mut t = Table::new(
        "e5_separation",
        "E5: Peterson fence placements, model-checked exhaustively (2 processes)",
        &[
            "fences",
            "#",
            "SC",
            "TSO",
            "PSO",
            "states(PSO)",
            "kstates/s(PSO)",
        ],
    );
    // Each placement is an independent model-checking job; sweep them on
    // `FT_THREADS` workers (row order is preserved by `par_map`).
    let masks = simlocks_masks();
    let rows = ft_bench::par_map(&masks, |&mask| {
        let inst = build_mutex(LockKind::Peterson, 2, mask);
        let mut labels = Vec::new();
        let mut pso = modelcheck::Stats::default();
        for model in models {
            let v = check(&inst.machine(model), &cfg);
            if model == MemoryModel::Pso {
                pso = v.stats();
            }
            labels.push(v.label().to_string());
        }
        (mask, labels, pso)
    });
    for (mask, labels, pso) in &rows {
        t.row(&[
            mask.describe(3),
            mask.count_enabled(3).to_string(),
            labels[0].clone(),
            labels[1].clone(),
            labels[2].clone(),
            pso.states.to_string(),
            fmt(pso.states_per_sec() / 1e3, 1),
        ]);
    }
    t.note(
        "Separation: with only the store-load fence f1 (+release), TSO is `ok` \
         while PSO reports MUTEX-VIOLATION — write reordering is exactly the \
         capability the lower bound charges for. With both write fences, PSO is \
         ok. With none, even TSO fails. (f0 = after flag write, f1 = after \
         victim write, f2 = release.)",
    );
    t.finish();

    // Print the PSO counterexample for the separating placement and save
    // it under `results/` as a replayable artifact. The check runs with a
    // recorder so the artifact carries the metrics snapshot at failure.
    let witness = FenceMask::only(&[SITE_VICTIM, SITE_RELEASE]);
    let inst = build_mutex(LockKind::Peterson, 2, witness);
    let cex_rec = ftobs::Recorder::builder()
        .meta("workload", "e5_cex_peterson_pso")
        .quiet(true)
        .build();
    if let Verdict::MutexViolation(_, cex) = check(
        &inst.machine(MemoryModel::Pso),
        &cfg.clone().with_recorder(cex_rec.clone()),
    ) {
        println!("PSO counterexample for {}:\n{cex}", witness.describe(3));
        let traced = inst
            .machine_from(MachineConfig::new(MemoryModel::Pso, inst.layout.clone()).with_trace());
        let path = ft_bench::save_counterexample(
            "e5_cex_peterson_pso",
            &format!(
                "E5: Peterson (2 procs, fences {}) violates mutual exclusion under PSO",
                witness.describe(3)
            ),
            traced,
            &cex.schedule,
            &cex_rec,
        );
        println!("saved replayable counterexample to {}\n", path.display());
    }

    // The paper's printed Bakery listing, under SC.
    let mut t2 = Table::new(
        "e5b_paper_listing",
        "E5b: Algorithm 1 exactly as printed (C[i]:=0 before T[i]:=tmp) vs Lamport's order",
        &["variant", "SC", "TSO", "PSO"],
    );
    for (label, kind) in [
        ("paper listing order", LockKind::BakeryPaperListing),
        ("Lamport order (ours)", LockKind::Bakery),
    ] {
        let inst = build_mutex(kind, 2, FenceMask::ALL);
        let mut cells = vec![label.to_string()];
        for model in models {
            cells.push(check(&inst.machine(model), &cfg).label().to_string());
        }
        t2.row(&cells);
    }
    t2.note(
        "The extended abstract's Algorithm 1 lists the doorway close before the \
         ticket write; our checker shows that order violates mutual exclusion \
         even under sequential consistency. The reproduction uses Lamport's \
         original order (ticket inside the doorway), which passes everywhere; \
         fence counts and the complexity claims are unaffected.",
    );
    t2.finish();

    let _ = SITE_FLAG;
}

fn simlocks_masks() -> Vec<FenceMask> {
    FenceMask::enumerate(3)
}
