//! **E6 — Table 1 / Lemma 5.1 structural invariants, empirically** (paper
//! §5): command-stack composition, the I4/I10 ordering rules, Lemma 5.11's
//! fences-vs-stack-size relation, and the value-vs-RMR relations of Lemmas
//! 5.3/5.7, across many random permutations.

use fence_trade::lowerbound::{check_all, Command};
use fence_trade::prelude::*;
use ft_bench::{f as fmt, random_permutations, Table};

fn main() {
    let mut t = Table::new(
        "e6_stack_invariants",
        "E6: command composition of the encodings (per-command-type counts, averaged)",
        &[
            "algorithm",
            "n",
            "proceed",
            "commit",
            "wait-hidden",
            "wait-read",
            "wait-local",
            "violations",
            "max |S_p| vs 4*fences+13",
        ],
    );

    let cases: Vec<(LockKind, ObjectKind, usize, usize)> = vec![
        (LockKind::Bakery, ObjectKind::Counter, 6, 4),
        (LockKind::Bakery, ObjectKind::Counter, 10, 3),
        (LockKind::Gt { f: 2 }, ObjectKind::Counter, 8, 3),
        (LockKind::Gt { f: 3 }, ObjectKind::Counter, 8, 2),
        (LockKind::Tournament, ObjectKind::Counter, 8, 2),
        (LockKind::Gt { f: 2 }, ObjectKind::NoisyCounter, 8, 3),
        (LockKind::Tournament, ObjectKind::NoisyCounter, 8, 2),
    ];

    for (kind, object, n, samples) in cases {
        let inst = build_ordering(kind, n, object);
        let mut counts = [0f64; 5];
        let mut violations = 0usize;
        let mut slack_ok = true;
        for pi in random_permutations(n, samples, 0xE6 + n as u64) {
            let enc = encode_permutation(&inst, &pi, &EncodeOptions::default())
                .unwrap_or_else(|e| panic!("{kind} n={n}: {e}"));
            violations += check_all(&enc).len();
            for i in 0..n {
                let p = wbmem::ProcId::from(i);
                for c in enc.stacks.commands_of(p) {
                    counts[usize::from(c.tag())] += 1.0;
                }
                // Lemma 5.11 (rearranged): |S_p| <= 4*(fences + 3) + 1.
                let fences = enc.outcome.machine.counters().proc(i).fences;
                if enc.stacks.len_of(p) as u64 > 4 * (fences + 3) + 1 {
                    slack_ok = false;
                }
            }
        }
        let k = samples as f64;
        t.row(&[
            format!("{object}/{kind}"),
            n.to_string(),
            fmt(counts[0] / k, 1),
            fmt(counts[1] / k, 1),
            fmt(counts[2] / k, 1),
            fmt(counts[3] / k, 1),
            fmt(counts[4] / k, 1),
            violations.to_string(),
            if slack_ok {
                "holds".into()
            } else {
                "VIOLATED".to_string()
            },
        ]);
    }

    t.note(
        "`violations` aggregates the executable checks of Lemma 5.1 (I2, I4, \
         I6, I10) and Lemmas 5.3/5.7 — zero everywhere. The last column is \
         Lemma 5.11: stack sizes are bounded by the fence counts, i.e. the \
         number of commands really is O(beta). Bakery encodings are dominated \
         by proceed/commit pairs plus one wait-local-finish per process; tree \
         locks add wait-read-finish/wait-hidden-commit as parallelism appears.",
    );
    t.finish();

    // A direct probe: make sure the exotic command types are exercised
    // somewhere in the sampled encodings (so the table above is not
    // trivially zero by construction).
    let inst = build_ordering(LockKind::Bakery, 6, ObjectKind::Counter);
    let enc = encode_permutation(&inst, &[5, 3, 1, 0, 2, 4], &EncodeOptions::default())
        .unwrap_or_else(|e| ft_bench::fail("exp_e6: encoding the probe permutation", e));
    let has_wlf = (0..6).any(|i| {
        enc.stacks
            .commands_of(wbmem::ProcId::from(i))
            .iter()
            .any(|c| matches!(c, Command::WaitLocalFinish(..)))
    });
    println!("probe: wait-local-finish present in a bakery encoding: {has_wlf} (expected true)\n");
}
