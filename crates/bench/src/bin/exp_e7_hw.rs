//! **E7 — the tradeoff's shape on real hardware** (paper §1 motivation):
//! uncontended latency, contended throughput, and fence counts of the lock
//! family on `std::sync::atomic`, with `parking_lot::Mutex` as an
//! engineering baseline.
//!
//! Absolute numbers are machine-specific (this harness may run on a single
//! core, where contended spin locks serialize through the scheduler); the
//! *shape* — fences per op constant for Bakery vs logarithmic for trees,
//! and uncontended cost tracking fence count — is the reproduced claim.

use std::time::Instant;

use fence_trade::prelude::*;
use ft_bench::{f as fmt, Table};

fn uncontended<L: RawLock>(lock: &L, iters: usize) -> (f64, f64) {
    let t = Instant::now();
    for _ in 0..iters {
        lock.acquire(0);
        lock.release(0);
    }
    let ns = t.elapsed().as_nanos() as f64 / iters as f64;
    (ns, lock.fences() as f64 / iters as f64)
}

fn contended<L: RawLock>(lock: &L, threads: usize, iters: usize) -> f64 {
    let counter = CountingLock::new(ByRef(lock));
    let t = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let counter = &counter;
            scope.spawn(move || {
                for _ in 0..iters {
                    counter.next(tid);
                }
            });
        }
    });
    (threads * iters) as f64 / t.elapsed().as_secs_f64()
}

/// Adapter: treat a borrowed lock as a lock (so one instance serves both
/// the uncontended and contended phases with a single fence counter).
struct ByRef<'a, L: RawLock>(&'a L);
impl<L: RawLock> RawLock for ByRef<'_, L> {
    fn max_threads(&self) -> usize {
        self.0.max_threads()
    }
    fn acquire(&self, tid: usize) {
        self.0.acquire(tid);
    }
    fn release(&self, tid: usize) {
        self.0.release(tid);
    }
    fn fences(&self) -> u64 {
        self.0.fences()
    }
    fn name(&self) -> String {
        self.0.name()
    }
}

/// `parking_lot`'s raw mutex wrapped as a `RawLock` baseline (it uses
/// atomic RMW instructions rather than fences; fence count reported as 0).
struct PlMutex(parking_lot::RawMutex);
impl PlMutex {
    fn new() -> Self {
        use parking_lot::lock_api::RawMutex as _;
        PlMutex(parking_lot::RawMutex::INIT)
    }
}
impl RawLock for PlMutex {
    fn max_threads(&self) -> usize {
        usize::MAX
    }
    fn acquire(&self, _tid: usize) {
        use parking_lot::lock_api::RawMutex as _;
        self.0.lock();
    }
    fn release(&self, _tid: usize) {
        use parking_lot::lock_api::RawMutex as _;
        // SAFETY: release is only called by the thread that acquired.
        unsafe { self.0.unlock() }
    }
    fn fences(&self) -> u64 {
        0
    }
    fn name(&self) -> String {
        "parking_lot (baseline)".into()
    }
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get()).clamp(2, 8);
    let n = threads.next_power_of_two().max(2);
    let iters_u = 50_000;
    let iters_c = 2_000;

    let tput_hdr = format!("ops/s ({threads} thr)");
    let mut t = Table::new(
        "e7_hw",
        "E7: hardware lock costs (uncontended ns/op, fences/op, contended ops/s)",
        &["lock", "ns/op (solo)", "fences/op", tput_hdr.as_str()],
    );

    macro_rules! bench {
        ($lock:expr) => {{
            let lock = $lock;
            let (ns, fences) = uncontended(&lock, iters_u);
            let tput = contended(&lock, threads, iters_c);
            t.row(&[lock.name(), fmt(ns, 0), fmt(fences, 1), fmt(tput, 0)]);
        }};
    }

    bench!(HwBakery::new(n));
    bench!(HwGt::new(n, 2));
    if n >= 4 {
        bench!(HwGt::new(n, 3));
    }
    bench!(HwTournament::new(n));
    bench!(HwTtas::new());
    bench!(HwMcs::new(n));
    bench!(PlMutex::new());

    t.note(format!(
        "Machine: {threads} worker threads, {} cores. Fences/op reproduces the \
         simulator's beta exactly (4 for Bakery, 4f for GT_f, 3·log2(n) for the \
         tournament; the counting object adds none here since only lock fences \
         are counted). Uncontended latency grows with both the fence count and \
         the scan width — Bakery's O(n) scan is visible against the trees. \
         Contended throughput on few cores is scheduler-bound; treat it as a \
         smoke check, not a scalability result.",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    ));
    t.finish();
}
