//! **E7 — the tradeoff's shape on real hardware** (paper §1 motivation):
//! uncontended latency, contended throughput, and fence counts of the lock
//! family on `std::sync::atomic`, with `std::sync::Mutex` as an
//! engineering baseline.
//!
//! Absolute numbers are machine-specific (this harness may run on a single
//! core, where contended spin locks serialize through the scheduler); the
//! *shape* — fences per op constant for Bakery vs logarithmic for trees,
//! and uncontended cost tracking fence count — is the reproduced claim.

use std::time::Instant;

use fence_trade::prelude::*;
use ft_bench::{f as fmt, Table};

fn uncontended<L: RawLock>(lock: &L, iters: usize) -> (f64, f64) {
    let t = Instant::now();
    for _ in 0..iters {
        lock.acquire(0);
        lock.release(0);
    }
    let ns = t.elapsed().as_nanos() as f64 / iters as f64;
    (ns, lock.fences() as f64 / iters as f64)
}

fn contended<L: RawLock>(lock: &L, threads: usize, iters: usize) -> f64 {
    let counter = CountingLock::new(ByRef(lock));
    let t = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let counter = &counter;
            scope.spawn(move || {
                for _ in 0..iters {
                    counter.next(tid);
                }
            });
        }
    });
    (threads * iters) as f64 / t.elapsed().as_secs_f64()
}

/// Adapter: treat a borrowed lock as a lock (so one instance serves both
/// the uncontended and contended phases with a single fence counter).
struct ByRef<'a, L: RawLock>(&'a L);
impl<L: RawLock> RawLock for ByRef<'_, L> {
    fn max_threads(&self) -> usize {
        self.0.max_threads()
    }
    fn acquire(&self, tid: usize) {
        self.0.acquire(tid);
    }
    fn release(&self, tid: usize) {
        self.0.release(tid);
    }
    fn fences(&self) -> u64 {
        self.0.fences()
    }
    fn name(&self) -> String {
        self.0.name()
    }
}

/// `std::sync::Mutex` + `Condvar` as a binary semaphore, wrapped as a
/// `RawLock` engineering baseline (a `MutexGuard` cannot be parked across
/// the trait's split acquire/release calls, so the guard-free semaphore
/// shape is used; it uses atomic RMW instructions rather than explicit
/// fences, so fence count is reported as 0).
struct StdMutex {
    held: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}
impl StdMutex {
    fn new() -> Self {
        StdMutex {
            held: std::sync::Mutex::new(false),
            cv: std::sync::Condvar::new(),
        }
    }
}
impl RawLock for StdMutex {
    fn max_threads(&self) -> usize {
        usize::MAX
    }
    fn acquire(&self, _tid: usize) {
        // A benchmark-thread panic poisons the mutex; the boolean it
        // guards is still coherent, so keep going rather than cascading.
        let mut held = self.held.lock().unwrap_or_else(|p| p.into_inner());
        while *held {
            held = self.cv.wait(held).unwrap_or_else(|p| p.into_inner());
        }
        *held = true;
    }
    fn release(&self, _tid: usize) {
        *self.held.lock().unwrap_or_else(|p| p.into_inner()) = false;
        self.cv.notify_one();
    }
    fn fences(&self) -> u64 {
        0
    }
    fn name(&self) -> String {
        "std Mutex+Condvar (baseline)".into()
    }
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map_or(2, |p| p.get())
        .clamp(2, 8);
    let n = threads.next_power_of_two().max(2);
    let iters_u = 50_000;
    let iters_c = 2_000;

    let tput_hdr = format!("ops/s ({threads} thr)");
    let mut t = Table::new(
        "e7_hw",
        "E7: hardware lock costs (uncontended ns/op, fences/op, contended ops/s)",
        &["lock", "ns/op (solo)", "fences/op", tput_hdr.as_str()],
    );

    macro_rules! bench {
        ($lock:expr) => {{
            let lock = $lock;
            let (ns, fences) = uncontended(&lock, iters_u);
            let tput = contended(&lock, threads, iters_c);
            t.row(&[lock.name(), fmt(ns, 0), fmt(fences, 1), fmt(tput, 0)]);
        }};
    }

    bench!(HwBakery::new(n));
    bench!(HwGt::new(n, 2));
    if n >= 4 {
        bench!(HwGt::new(n, 3));
    }
    bench!(HwTournament::new(n));
    bench!(HwTtas::new());
    bench!(HwMcs::new(n));
    bench!(StdMutex::new());

    t.note(format!(
        "Machine: {threads} worker threads, {} cores. Fences/op reproduces the \
         simulator's beta exactly (4 for Bakery, 4f for GT_f, 3·log2(n) for the \
         tournament; the counting object adds none here since only lock fences \
         are counted). Uncontended latency grows with both the fence count and \
         the scan width — Bakery's O(n) scan is visible against the trees. \
         Contended throughput on few cores is scheduler-bound; treat it as a \
         smoke check, not a scalability result.",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    ));
    t.finish();
}
