//! **E8 — fence ablation across the lock family**: for every fence
//! placement of Peterson and (a subset for) Bakery, model-check mutual
//! exclusion under each memory model and report the minimal fence budget
//! each model requires. This is the design-choice ablation behind the
//! paper's thesis that *fences are mostly needed for ordering writes*.
//!
//! The candidate placements are independent model-checking jobs, so they
//! are swept on `ft_bench::parallelism()` worker threads (`FT_THREADS`
//! overrides; each individual check stays sequential, so the table is
//! identical at any thread count).

use std::time::Duration;

use fence_trade::prelude::*;
use ft_bench::{f as fmt, Table};
use modelcheck::{minimal_fences, ElisionRow};

fn ablation_table(name: &str, title: &str, rows: &[ElisionRow], models: &[MemoryModel]) -> Table {
    let mut t = Table::new(
        name,
        title,
        &["fences", "SC", "TSO", "PSO", "states", "kstates/s"],
    );
    for row in rows {
        let mut cells = vec![row.mask_desc.clone()];
        cells.extend(row.verdicts.iter().map(|&(_, label, _)| label.to_string()));
        let states = row.total_states();
        let secs = row.total_elapsed().as_secs_f64();
        cells.push(states.to_string());
        cells.push(if secs > 0.0 {
            fmt(states as f64 / secs / 1e3, 1)
        } else {
            "-".into()
        });
        t.row(&cells);
    }
    for &model in models {
        t.note(format!(
            "minimal total fences for {model}: {:?}",
            minimal_fences(rows, model)
        ));
    }
    t
}

fn main() {
    let cfg = CheckConfig {
        check_termination: false,
        max_states: 3_000_000,
        ..CheckConfig::default()
    };
    let models = [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso];
    let threads = ft_bench::parallelism();

    // --- Peterson: all 8 placements over its 3 sites. ---
    let start = std::time::Instant::now();
    let rows = elision_table(
        LockKind::Peterson,
        2,
        &FenceMask::enumerate(3),
        &models,
        &cfg,
        threads,
    );
    let wall_peterson = start.elapsed();
    let mut t = ablation_table(
        "e8_ablation_peterson",
        "E8a: Peterson fence ablation (all placements, 2 processes)",
        &rows,
        &models,
    );
    note_throughput(&mut t, &rows, wall_peterson, threads);
    t.finish();

    // --- Bakery (2 processes): all 16 placements over its 4 sites. ---
    let start = std::time::Instant::now();
    let rows = elision_table(
        LockKind::Bakery,
        2,
        &FenceMask::enumerate(4),
        &models,
        &cfg,
        threads,
    );
    let wall_bakery = start.elapsed();
    let mut t = ablation_table(
        "e8_ablation_bakery",
        "E8b: Bakery fence ablation (all placements, 2 processes)",
        &rows,
        &models,
    );
    note_throughput(&mut t, &rows, wall_bakery, threads);
    t.note(
        "(f0 = doorway open, f1 = doorway close, f2 = ticket, f3 = release; \
         the final pre-return fence is always present, so a buffered write is \
         never delayed past its process's return — elisions change *when* \
         writes order, not whether they eventually commit.)",
    );
    t.finish();
}

fn note_throughput(t: &mut Table, rows: &[ElisionRow], wall: Duration, threads: usize) {
    let states: usize = rows.iter().map(ElisionRow::total_states).sum();
    let cpu: Duration = rows.iter().map(ElisionRow::total_elapsed).sum();
    t.note(format!(
        "swept {} placements on {threads} thread(s): {states} states in {} wall \
         ({} kstates/s wall, {} cpu)",
        rows.len(),
        fmt(wall.as_secs_f64(), 2),
        fmt(states as f64 / wall.as_secs_f64().max(1e-9) / 1e3, 1),
        fmt(cpu.as_secs_f64(), 2),
    ));
}
