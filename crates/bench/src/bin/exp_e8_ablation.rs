//! **E8 — fence ablation across the lock family**: for every fence
//! placement of Peterson and (a subset for) Bakery, model-check mutual
//! exclusion under each memory model and report the minimal fence budget
//! each model requires. This is the design-choice ablation behind the
//! paper's thesis that *fences are mostly needed for ordering writes*.

use fence_trade::prelude::*;
use ft_bench::Table;
use modelcheck::minimal_fences;

fn main() {
    let cfg = CheckConfig {
        check_termination: false,
        max_states: 3_000_000,
        ..CheckConfig::default()
    };
    let models = [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso];

    // --- Peterson: all 8 placements over its 3 sites. ---
    let rows = elision_table(LockKind::Peterson, 2, &FenceMask::enumerate(3), &models, &cfg);
    let mut t = Table::new(
        "e8_ablation_peterson",
        "E8a: Peterson fence ablation (all placements, 2 processes)",
        &["fences", "SC", "TSO", "PSO"],
    );
    for row in &rows {
        let mut cells = vec![row.mask_desc.clone()];
        cells.extend(row.verdicts.iter().map(|&(_, label, _)| label.to_string()));
        t.row(&cells);
    }
    for model in models {
        t.note(format!(
            "minimal total fences for {model}: {:?}",
            minimal_fences(&rows, model)
        ));
    }
    t.finish();

    // --- Bakery (2 processes): all 16 placements over its 4 sites. ---
    let rows = elision_table(LockKind::Bakery, 2, &FenceMask::enumerate(4), &models, &cfg);
    let mut t = Table::new(
        "e8_ablation_bakery",
        "E8b: Bakery fence ablation (all placements, 2 processes)",
        &["fences", "SC", "TSO", "PSO"],
    );
    for row in &rows {
        let mut cells = vec![row.mask_desc.clone()];
        cells.extend(row.verdicts.iter().map(|&(_, label, _)| label.to_string()));
        t.row(&cells);
    }
    for model in models {
        t.note(format!(
            "minimal total fences for {model}: {:?}",
            minimal_fences(&rows, model)
        ));
    }
    t.note(
        "(f0 = doorway open, f1 = doorway close, f2 = ticket, f3 = release; \
         the final pre-return fence is always present, so a buffered write is \
         never delayed past its process's return — elisions change *when* \
         writes order, not whether they eventually commit.)",
    );
    t.finish();
}
