//! **E9 — comparison primitives don't dodge the tradeoff** (paper §6):
//! a CAS-based test-and-test-and-set lock has O(1) fences and O(1) solo
//! RMRs — but under contention every release invalidates every spinner, so
//! its per-passage RMRs grow linearly with n, while `GT_2` pays a few more
//! fences for Θ(√n) and the tournament for Θ(log n).

use fence_trade::prelude::*;
use ft_bench::{f as fmt, Table};

fn main() {
    let mut t = Table::new(
        "e9_cas",
        "E9: strong primitives (TTAS via CAS, MCS via swap) vs read/write locks (PSO machine)",
        &[
            "n",
            "lock",
            "fences/psg",
            "CAS/psg",
            "swap/psg",
            "solo RMRs",
            "contended RMRs",
        ],
    );

    for n in [4usize, 8, 16, 32, 64] {
        for kind in [
            LockKind::Ttas,
            LockKind::Mcs,
            LockKind::Gt { f: 2 },
            LockKind::Tournament,
        ] {
            if kind == LockKind::Tournament && !n.is_power_of_two() {
                continue;
            }
            let inst = build_ordering(kind, n, ObjectKind::Counter);
            let solo = solo_passage(&inst, MemoryModel::Pso, 10_000_000);
            let mut m = inst.machine(MemoryModel::Pso);
            assert!(
                fence_trade::simlocks::run_to_completion(&mut m, 500_000_000),
                "{} stuck at n={n}",
                inst.name
            );
            let total = m.counters().total();
            t.row(&[
                n.to_string(),
                kind.to_string(),
                fmt(total.fences as f64 / n as f64, 1),
                fmt(total.cas_ops as f64 / n as f64, 1),
                fmt(total.swap_ops as f64 / n as f64, 1),
                fmt(solo.rmrs, 0),
                fmt(total.rmrs as f64 / n as f64, 1),
            ]);
        }
    }

    t.note(
        "TTAS: one fence and ~3 RMRs solo — seemingly beating the read/write \
         tradeoff — but its contended RMRs grow ~linearly in n (each release \
         invalidates every spinner's cached lock word), landing back on the \
         Bakery end of the curve. MCS (fetch-and-store + local spinning) is \
         the strong-primitive success story: O(1) RMRs per passage even \
         contended. GT_2 and the tournament keep their O(f·n^(1/f)) shapes. \
         This is the §6 remark made concrete: strong primitives are also \
         subject to the fence/RMR structure of the machine; escaping the \
         *contention* costs takes an RMR-conscious algorithm (MCS), exactly \
         the theme of the paper's reference [12].",
    );
    t.finish();

    // Model-check the TTAS mutex for small n under every model.
    let cfg = CheckConfig {
        check_termination: false,
        ..CheckConfig::default()
    };
    let mut t2 = Table::new(
        "e9b_cas_check",
        "E9b: strong-primitive locks, model-checked exhaustively",
        &["lock", "n", "SC", "TSO", "PSO"],
    );
    for kind in [LockKind::Ttas, LockKind::Mcs] {
        for n in [2usize, 3] {
            let inst = build_mutex(kind, n, FenceMask::ALL);
            let mut cells = vec![kind.to_string(), n.to_string()];
            for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
                cells.push(check(&inst.machine(model), &cfg).label().to_string());
            }
            t2.row(&cells);
        }
    }
    t2.note(
        "CAS's implicit buffer drain makes TTAS correct under every model with \
             only the release fence — strong primitives trade fence count for \
             contention, not for freedom from the tradeoff.",
    );
    t2.finish();
}
