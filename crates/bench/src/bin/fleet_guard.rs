//! **fleet_guard** — the multi-process fleet resilience gate
//! (EXPERIMENTS.md E18, `scripts/ci.sh`).
//!
//! A kill-some-workers chaos smoke over `peterson2_tso` in diagnostic
//! mode, pinning the fleet's exactness contract:
//!
//! 1. a **fault-free fleet** run must match a fresh single-process
//!    `ParallelDpor` baseline — same verdict, bit-identical stats
//!    (states, transitions, terminals, deterministic metrics) — and must
//!    lose no workers;
//! 2. a **chaos fleet** run (deterministic `FT_CHAOS` startup faults,
//!    seeded so the first lease's first attempt is guaranteed to die)
//!    must lose at least one worker, *reassign* the orphaned lease, and
//!    still produce the same verdict and bit-identical stats as the
//!    fault-free fleet run.
//!
//! On a single-core host the guard is **skipped** with a message (like
//! `pardpor_guard`'s scaling gate): one core cannot host a supervisor
//! and concurrent workers without the schedule degenerating into
//! time-slicing, and the in-tree chaos differential suite already covers
//! the logic. Requires the `ft_worker` binary next to this one
//! (`cargo build --release`); `FT_WORKER_BIN` overrides.

use std::process::ExitCode;

use fence_trade::prelude::*;
use ftfleet::{run_fleet, ChaosPoint, ChaosSpec, FleetConfig, FleetReport, JobSpec, ProgramSpec};

/// A 50% startup-chaos spec whose seed is chosen (deterministically) so
/// lease 0's attempt 0 is a guaranteed hit — the "kill one worker" the
/// smoke needs — while later attempts still draw independently.
fn chaos_killing_first_attempt() -> String {
    for seed in 0..1000u64 {
        let spec = format!("startup:50:{seed}");
        let parsed = ChaosSpec::parse(&spec).expect("literal chaos spec parses");
        if parsed.hit(ChaosPoint::Startup, 0, 0) && !parsed.hit(ChaosPoint::Startup, 0, 1) {
            return spec;
        }
    }
    unreachable!("a 50% hash leaves no (hit, miss) seed in 1000 draws")
}

fn fleet_config(worker: std::path::PathBuf, name: &str) -> FleetConfig {
    let dir = std::env::temp_dir().join(format!("ft_fleet_guard_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        ft_bench::fail(&format!("fleet_guard: creating {}", dir.display()), e);
    }
    let mut cfg = FleetConfig::new(worker, dir);
    cfg.workers = ft_bench::parallelism().clamp(2, 4);
    cfg.leases = 4;
    cfg.prime_transitions = 200;
    cfg
}

fn main() -> ExitCode {
    let cores = ft_bench::available_cores();
    if cores < 2 {
        println!(
            "fleet guard: SKIPPED (single core — a supervisor plus concurrent \
             workers would measure time-slicing; the chaos differential suite \
             covers the logic in-process)"
        );
        return ExitCode::SUCCESS;
    }
    let Some(worker) = ftfleet::locate_worker() else {
        eprintln!(
            "FAIL: ft_worker binary not found next to this executable — run \
             `cargo build --release` first, or set FT_WORKER_BIN"
        );
        return ExitCode::FAILURE;
    };

    let mut job = JobSpec::new(ProgramSpec::new(
        LockKind::Peterson,
        2,
        FenceMask::ALL,
        MemoryModel::Tso,
    ));
    job.heartbeat_ms = 25;
    let baseline = check(
        &job.program.machine(),
        &job.config(ftobs::Recorder::enabled()),
    );

    let clean_cfg = fleet_config(worker.clone(), "clean");
    let clean: FleetReport = run_fleet(&job, &clean_cfg, ftobs::Recorder::enabled());

    let chaos = chaos_killing_first_attempt();
    let mut chaos_cfg = fleet_config(worker, "chaos");
    chaos_cfg.chaos = Some(chaos.clone());
    let chaotic: FleetReport = run_fleet(&job, &chaos_cfg, ftobs::Recorder::enabled());

    println!(
        "peterson2_tso, {} cores, {} workers: single `{}`; fleet `{}` \
         ({} leases, {} lost); chaos[{chaos}] `{}` ({} leases, {} lost, {} reassigned)",
        cores,
        clean_cfg.workers,
        baseline.label(),
        clean.verdict.label(),
        clean.stats.leases_issued,
        clean.stats.workers_lost,
        chaotic.verdict.label(),
        chaotic.stats.leases_issued,
        chaotic.stats.workers_lost,
        chaotic.stats.leases_reassigned,
    );

    let mut ok = true;
    if clean.verdict.label() != baseline.label() || clean.verdict.stats() != baseline.stats() {
        eprintln!(
            "FAIL: fault-free fleet `{}` diverges from single-process `{}` \
             (diagnostic stats must be bit-identical)",
            clean.verdict.label(),
            baseline.label()
        );
        ok = false;
    }
    if clean.stats.workers_lost != 0 || clean.stats.poisoned_leases != 0 {
        eprintln!(
            "FAIL: fault-free fleet lost {} worker(s) and poisoned {} lease(s) \
             with no chaos injected",
            clean.stats.workers_lost, clean.stats.poisoned_leases
        );
        ok = false;
    }
    if chaotic.verdict.label() != clean.verdict.label()
        || chaotic.verdict.stats() != clean.verdict.stats()
    {
        eprintln!(
            "FAIL: chaos fleet `{}` diverges from fault-free fleet `{}` \
             (killed workers must cost retries, never exactness)",
            chaotic.verdict.label(),
            clean.verdict.label()
        );
        ok = false;
    }
    if chaotic.stats.workers_lost == 0 || chaotic.stats.leases_reassigned == 0 {
        eprintln!(
            "FAIL: chaos run killed {} worker(s) and reassigned {} lease(s) — the \
             seeded injection guarantees at least one of each, so the fault path \
             never ran",
            chaotic.stats.workers_lost, chaotic.stats.leases_reassigned
        );
        ok = false;
    }

    for cfg in [&clean_cfg, &chaos_cfg] {
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }
    if ok {
        println!("fleet guard: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
