//! **obs_overhead** — the recorder overhead guard (EXPERIMENTS.md E13).
//!
//! Measures full explorations of `bakery3_pso` (undo engine, ~66k states,
//! a few hundred milliseconds per exploration) in two modes and enforces
//! the observability budget. The workload is deliberately *large*: on
//! sub-millisecond checks (e.g. `peterson2` at 383 states) the per-check
//! fixed cost of rendering the final `snapshot` event dominates and the
//! ratio measures JSON encoding, not the per-step recording cost the
//! budget is about.
//!
//! 1. **Enabled vs disabled** (always on): with a live quiet recorder the
//!    run must stay within `FT_OVERHEAD_MAX` (default 1.05 — the ≤5%
//!    target) of the `Recorder::disabled()` wall-clock.
//! 2. **Disabled vs baseline** (same-machine regression guard): the
//!    disabled-recorder throughput is compared against
//!    `results/obs/overhead_baseline.txt`. A first run writes the baseline
//!    and passes; later runs fail if throughput drops by more than
//!    `FT_OVERHEAD_TOL` (default 1.10). This gate exists to catch *gross*
//!    disabled-path regressions — a heartbeat left on, instrumentation
//!    that stopped honoring `Recorder::disabled()` — which cost tens of
//!    percent; the tolerance sits above the ±8% ambient throughput noise
//!    a shared container exhibits, because a tighter bound fires on load
//!    spikes rather than code. `FT_OVERHEAD_REBASE=1` rewrites the
//!    baseline (required after changing machines — the file records
//!    wall-clock, which is not portable).
//!
//! One measurement attempt is `FT_OVERHEAD_TRIALS` rounds (default 8),
//! each timing `FT_OVERHEAD_ITERS` explorations (default 3) per mode
//! back-to-back in alternating order. Two noise defenses, both needed on
//! a shared container:
//!
//! * The overhead gate uses the **median of per-round ratios**: a round's
//!   two timings are adjacent in time and share whatever the machine was
//!   doing, so their ratio cancels slow load drift — whereas comparing
//!   each mode's best-of-rounds lets one lucky quiet window for the
//!   disabled mode inflate the ratio for the whole run. The order
//!   alternates because with a fixed order any drift *within* the ~1.5 s
//!   round systematically penalises whichever mode runs second.
//! * A failing attempt is retried (up to `FT_OVERHEAD_ATTEMPTS` attempts
//!   total, default 2) and each gate fails only if **every** attempt
//!   exceeds its budget — the two gates may clear in different attempts.
//!   A genuine regression fails every attempt; a multi-second ambient
//!   load spike — which shows up as both gates failing at once — does
//!   not survive an independent re-measurement.
use std::process::ExitCode;
use std::time::{Duration, Instant};

use fence_trade::prelude::*;
use ftobs::Recorder;

fn env_or(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

fn trial(inst: &OrderingInstance, cfg: &CheckConfig, iters: usize) -> (Duration, usize) {
    let start = Instant::now();
    let mut states = 0usize;
    for _ in 0..iters {
        let v = check(&inst.machine(MemoryModel::Pso), cfg);
        assert!(v.is_ok(), "bakery3_pso must verify: {}", v.label());
        states = std::hint::black_box(v.stats().states);
    }
    (start.elapsed(), states)
}

struct Attempt {
    /// Median of per-round enabled/disabled wall-clock ratios.
    ratio: f64,
    /// Best-round disabled throughput in states/sec.
    dis_rate: f64,
    /// Best-round enabled throughput in states/sec.
    en_rate: f64,
    states: usize,
}

#[allow(clippy::cast_precision_loss)]
fn measure(
    inst: &OrderingInstance,
    disabled_cfg: &CheckConfig,
    enabled_cfg: &CheckConfig,
    trials: usize,
    iters: usize,
) -> Attempt {
    let (_, states) = trial(inst, disabled_cfg, 1); // warm-up
    let mut best_disabled = Duration::MAX;
    let mut best_enabled = Duration::MAX;
    let mut ratios = Vec::with_capacity(trials);
    for round in 0..trials.max(1) {
        let (d, e) = if round % 2 == 0 {
            let d = trial(inst, disabled_cfg, iters).0;
            let e = trial(inst, enabled_cfg, iters).0;
            (d, e)
        } else {
            let e = trial(inst, enabled_cfg, iters).0;
            let d = trial(inst, disabled_cfg, iters).0;
            (d, e)
        };
        best_disabled = best_disabled.min(d);
        best_enabled = best_enabled.min(e);
        ratios.push(e.as_secs_f64() / d.as_secs_f64().max(1e-12));
    }
    ratios.sort_by(f64::total_cmp);
    let per_sec = |d: Duration| states as f64 * iters as f64 / d.as_secs_f64().max(1e-12);
    Attempt {
        ratio: ratios[ratios.len() / 2],
        dis_rate: per_sec(best_disabled),
        en_rate: per_sec(best_enabled),
        states,
    }
}

#[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
fn main() -> ExitCode {
    let iters = env_or("FT_OVERHEAD_ITERS", 3.0) as usize;
    let trials = env_or("FT_OVERHEAD_TRIALS", 8.0) as usize;
    let attempts = (env_or("FT_OVERHEAD_ATTEMPTS", 2.0) as usize).max(1);
    let max_enabled = env_or("FT_OVERHEAD_MAX", 1.05);
    let tol_disabled = env_or("FT_OVERHEAD_TOL", 1.10);

    let inst = build_mutex(LockKind::Bakery, 3, FenceMask::ALL);
    let base = CheckConfig {
        check_termination: false,
        max_states: 500_000,
        ..CheckConfig::default()
    }
    .with_engine(Engine::Undo);
    let disabled_cfg = base.clone(); // default recorder is Recorder::disabled()
    let enabled_cfg = base.with_recorder(
        Recorder::builder()
            .quiet(true)
            .heartbeat_ms(0) // measure the recording cost, not stderr I/O
            .build(),
    );

    let baseline_path = ft_bench::obs_dir().join("overhead_baseline.txt");
    let rebase = std::env::var("FT_OVERHEAD_REBASE").is_ok_and(|v| v == "1");
    let baseline: Option<f64> = (!rebase)
        .then(|| std::fs::read_to_string(&baseline_path).ok())
        .flatten()
        .and_then(|s| s.split_whitespace().next().and_then(|t| t.parse().ok()));

    // Each gate passes as soon as any attempt clears it — the two gates
    // need not clear in the same attempt, since each attempt samples an
    // independent window of ambient machine load.
    let mut best_ratio = f64::INFINITY;
    let mut best_dis_rate: f64 = 0.0;
    for attempt in 1..=attempts {
        let a = measure(&inst, &disabled_cfg, &enabled_cfg, trials, iters);
        println!(
            "bakery3_pso ({} states, undo engine, {trials} rounds x {iters} explorations):\n  \
             disabled recorder: {:>10.0} states/s (best round)\n  \
             enabled  recorder: {:>10.0} states/s (best round)\n  \
             overhead:          x{:.3} wall-clock (median of per-round ratios)",
            a.states, a.dis_rate, a.en_rate, a.ratio
        );
        if let Some(b) = baseline {
            println!(
                "  baseline:          {b:>10.0} states/s  (x{:.3} vs this run)",
                b / a.dis_rate.max(1e-12)
            );
        }
        best_ratio = best_ratio.min(a.ratio);
        best_dis_rate = best_dis_rate.max(a.dis_rate);
        let overhead_ok = best_ratio <= max_enabled;
        let baseline_ok = baseline.map_or(true, |b| b / best_dis_rate.max(1e-12) <= tol_disabled);
        if overhead_ok && baseline_ok {
            if baseline.is_none() {
                let line = format!(
                    "{best_dis_rate:.0} states/s, bakery3_pso undo, best of {trials} rounds x {iters} explorations\n",
                );
                if let Err(e) = std::fs::write(&baseline_path, line) {
                    eprintln!("warning: could not write {}: {e}", baseline_path.display());
                } else {
                    println!("  wrote baseline {}", baseline_path.display());
                }
            }
            println!("overhead guard: OK");
            return ExitCode::SUCCESS;
        }
        if attempt < attempts {
            println!(
                "  attempt {attempt}/{attempts} over budget \
                 (overhead {}, baseline {}); re-measuring",
                if overhead_ok { "ok" } else { "OVER" },
                if baseline_ok { "ok" } else { "OVER" },
            );
        }
    }

    if best_ratio > max_enabled {
        eprintln!(
            "FAIL: enabled-recorder overhead x{best_ratio:.3} exceeds the x{max_enabled} \
             budget in all {attempts} attempts"
        );
    }
    if let Some(b) = baseline {
        let slowdown = b / best_dis_rate.max(1e-12);
        if slowdown > tol_disabled {
            eprintln!(
                "FAIL: disabled-recorder path regressed x{slowdown:.3} vs {} in all \
                 {attempts} attempts (budget x{tol_disabled}; FT_OVERHEAD_REBASE=1 to \
                 reset after machine changes)",
                baseline_path.display()
            );
        }
    }
    ExitCode::FAILURE
}
