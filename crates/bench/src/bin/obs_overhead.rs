//! **obs_overhead** — the recorder overhead guard (EXPERIMENTS.md E13).
//!
//! Measures full explorations of `bakery3_pso` (undo engine, ~66k states,
//! a few hundred milliseconds per exploration) in two modes and enforces
//! the observability budget. The workload is deliberately *large*: on
//! sub-millisecond checks (e.g. `peterson2` at 383 states) the per-check
//! fixed cost of rendering the final `snapshot` event dominates and the
//! ratio measures JSON encoding, not the per-step recording cost the
//! budget is about.
//!
//! 1. **Enabled vs disabled** (always on): with a live quiet recorder the
//!    run must stay within `FT_OVERHEAD_MAX` (default 1.05 — the ≤5%
//!    target) of the `Recorder::disabled()` wall-clock. The same budget
//!    is enforced a second time with **causal tracing on** (spans
//!    streaming to a real JSONL sink), so the trace layer's buffered
//!    span writes are covered by the guard and not just the counters.
//!    When the traced gate fails, the guard reads the span stream back
//!    and names the offending phase — the one whose spans dominate
//!    wall-clock — in a one-line diagnostic.
//! 2. **Disabled vs baseline** (same-machine regression guard): the
//!    disabled-recorder throughput is compared against
//!    `results/obs/overhead_baseline.txt`. A first run writes the baseline
//!    and passes; later runs fail if throughput drops by more than
//!    `FT_OVERHEAD_TOL` (default 1.10). This gate exists to catch *gross*
//!    disabled-path regressions — a heartbeat left on, instrumentation
//!    that stopped honoring `Recorder::disabled()` — which cost tens of
//!    percent; the tolerance sits above the ±8% ambient throughput noise
//!    a shared container exhibits, because a tighter bound fires on load
//!    spikes rather than code. `FT_OVERHEAD_REBASE=1` rewrites the
//!    baseline (required after changing machines — the file records
//!    wall-clock, which is not portable).
//!
//! One measurement attempt is `FT_OVERHEAD_TRIALS` rounds (default 8),
//! each timing `FT_OVERHEAD_ITERS` explorations (default 3) per mode
//! back-to-back in alternating order. Two noise defenses, both needed on
//! a shared container:
//!
//! * The overhead gate uses the **median of per-round ratios**: a round's
//!   two timings are adjacent in time and share whatever the machine was
//!   doing, so their ratio cancels slow load drift — whereas comparing
//!   each mode's best-of-rounds lets one lucky quiet window for the
//!   disabled mode inflate the ratio for the whole run. The order
//!   alternates because with a fixed order any drift *within* the ~1.5 s
//!   round systematically penalises whichever mode runs second.
//! * A failing attempt is retried (up to `FT_OVERHEAD_ATTEMPTS` attempts
//!   total, default 2) and each gate fails only if **every** attempt
//!   exceeds its budget — the two gates may clear in different attempts.
//!   A genuine regression fails every attempt; a multi-second ambient
//!   load spike — which shows up as both gates failing at once — does
//!   not survive an independent re-measurement.
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fence_trade::prelude::*;
use ftobs::{parse_spans, JsonlSink, Recorder};

fn env_or(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

fn trial(inst: &OrderingInstance, cfg: &CheckConfig, iters: usize) -> (Duration, usize) {
    let start = Instant::now();
    let mut states = 0usize;
    for _ in 0..iters {
        let v = check(&inst.machine(MemoryModel::Pso), cfg);
        assert!(v.is_ok(), "bakery3_pso must verify: {}", v.label());
        states = std::hint::black_box(v.stats().states);
    }
    (start.elapsed(), states)
}

struct Attempt {
    /// Median of per-round enabled/disabled wall-clock ratios.
    ratio: f64,
    /// Median of per-round traced/disabled wall-clock ratios.
    tr_ratio: f64,
    /// Best-round disabled throughput in states/sec.
    dis_rate: f64,
    /// Best-round enabled throughput in states/sec.
    en_rate: f64,
    /// Best-round traced throughput in states/sec.
    tr_rate: f64,
    states: usize,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

#[allow(clippy::cast_precision_loss)]
fn measure(
    inst: &OrderingInstance,
    disabled_cfg: &CheckConfig,
    enabled_cfg: &CheckConfig,
    traced_cfg: &CheckConfig,
    trials: usize,
    iters: usize,
) -> Attempt {
    let (_, states) = trial(inst, disabled_cfg, 1); // warm-up
    let mut best = [Duration::MAX; 3];
    let mut en_ratios = Vec::with_capacity(trials);
    let mut tr_ratios = Vec::with_capacity(trials);
    let cfgs = [disabled_cfg, enabled_cfg, traced_cfg];
    for round in 0..trials.max(1) {
        // Rotate the in-round order so drift within a round never
        // systematically penalises the same mode (the two-mode version
        // alternated for the same reason).
        let mut took = [Duration::ZERO; 3];
        for k in 0..3 {
            let mode = (round + k) % 3;
            took[mode] = trial(inst, cfgs[mode], iters).0;
        }
        for (b, t) in best.iter_mut().zip(took) {
            *b = (*b).min(t);
        }
        let d = took[0].as_secs_f64().max(1e-12);
        en_ratios.push(took[1].as_secs_f64() / d);
        tr_ratios.push(took[2].as_secs_f64() / d);
    }
    let per_sec = |d: Duration| states as f64 * iters as f64 / d.as_secs_f64().max(1e-12);
    Attempt {
        ratio: median(en_ratios),
        tr_ratio: median(tr_ratios),
        dis_rate: per_sec(best[0]),
        en_rate: per_sec(best[1]),
        tr_rate: per_sec(best[2]),
        states,
    }
}

/// The one-line diagnostic for a failed traced gate: read the span
/// stream back and name the phase whose spans account for the most
/// wall-clock — that is where the trace cost concentrates.
fn hottest_phase(sink: &JsonlSink) -> Option<String> {
    sink.flush();
    // The sink is still open, so the bytes live in the `.partial` file.
    let mut partial = sink.path().to_path_buf().into_os_string();
    partial.push(".partial");
    let text = std::fs::read_to_string(partial)
        .or_else(|_| std::fs::read_to_string(sink.path()))
        .ok()?;
    let rows = parse_spans(&text);
    let mut agg: std::collections::BTreeMap<&str, (u64, u64)> = std::collections::BTreeMap::new();
    for r in &rows {
        let e = agg.entry(r.name.as_str()).or_insert((0, 0));
        e.0 += 1;
        e.1 += r.dur_us;
    }
    let (name, (n, dur)) = agg.into_iter().max_by_key(|(_, (_, d))| *d)?;
    #[allow(clippy::cast_precision_loss)]
    Some(format!(
        "offending phase: \"{name}\" ({n} spans, {:.1} ms total span time)",
        dur as f64 / 1000.0
    ))
}

#[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
fn main() -> ExitCode {
    let iters = env_or("FT_OVERHEAD_ITERS", 3.0) as usize;
    let trials = env_or("FT_OVERHEAD_TRIALS", 8.0) as usize;
    let attempts = (env_or("FT_OVERHEAD_ATTEMPTS", 2.0) as usize).max(1);
    let max_enabled = env_or("FT_OVERHEAD_MAX", 1.05);
    let tol_disabled = env_or("FT_OVERHEAD_TOL", 1.10);

    let inst = build_mutex(LockKind::Bakery, 3, FenceMask::ALL);
    let base = CheckConfig {
        check_termination: false,
        max_states: 500_000,
        ..CheckConfig::default()
    }
    .with_engine(Engine::Undo);
    let disabled_cfg = base.clone(); // default recorder is Recorder::disabled()
    let enabled_cfg = base.clone().with_recorder(
        Recorder::builder()
            .quiet(true)
            .heartbeat_ms(0) // measure the recording cost, not stderr I/O
            .build(),
    );
    // Tracing measured against a *real* sink: the span cost worth
    // guarding is the buffered JSONL writes, not just the id counter.
    let trace_sink = Arc::new(
        JsonlSink::create(ft_bench::obs_dir().join("overhead_trace.jsonl"))
            .unwrap_or_else(|e| ft_bench::fail("obs_overhead: creating trace stream", e)),
    );
    let traced_cfg = base.with_recorder(
        Recorder::builder()
            .quiet(true)
            .heartbeat_ms(0)
            .trace(true)
            .sink(trace_sink.clone())
            .build(),
    );

    let baseline_path = ft_bench::obs_dir().join("overhead_baseline.txt");
    let rebase = std::env::var("FT_OVERHEAD_REBASE").is_ok_and(|v| v == "1");
    let baseline: Option<f64> = (!rebase)
        .then(|| std::fs::read_to_string(&baseline_path).ok())
        .flatten()
        .and_then(|s| s.split_whitespace().next().and_then(|t| t.parse().ok()));

    // Each gate passes as soon as any attempt clears it — the two gates
    // need not clear in the same attempt, since each attempt samples an
    // independent window of ambient machine load.
    let mut best_ratio = f64::INFINITY;
    let mut best_tr_ratio = f64::INFINITY;
    let mut best_dis_rate: f64 = 0.0;
    for attempt in 1..=attempts {
        let a = measure(
            &inst,
            &disabled_cfg,
            &enabled_cfg,
            &traced_cfg,
            trials,
            iters,
        );
        println!(
            "bakery3_pso ({} states, undo engine, {trials} rounds x {iters} explorations):\n  \
             disabled recorder: {:>10.0} states/s (best round)\n  \
             enabled  recorder: {:>10.0} states/s (best round)\n  \
             traced   recorder: {:>10.0} states/s (best round)\n  \
             overhead:          x{:.3} enabled, x{:.3} traced (medians of per-round ratios)",
            a.states, a.dis_rate, a.en_rate, a.tr_rate, a.ratio, a.tr_ratio
        );
        if let Some(b) = baseline {
            println!(
                "  baseline:          {b:>10.0} states/s  (x{:.3} vs this run)",
                b / a.dis_rate.max(1e-12)
            );
        }
        best_ratio = best_ratio.min(a.ratio);
        best_tr_ratio = best_tr_ratio.min(a.tr_ratio);
        best_dis_rate = best_dis_rate.max(a.dis_rate);
        let overhead_ok = best_ratio <= max_enabled && best_tr_ratio <= max_enabled;
        let baseline_ok = baseline.map_or(true, |b| b / best_dis_rate.max(1e-12) <= tol_disabled);
        if overhead_ok && baseline_ok {
            if baseline.is_none() {
                let line = format!(
                    "{best_dis_rate:.0} states/s, bakery3_pso undo, best of {trials} rounds x {iters} explorations\n",
                );
                // A baseline that cannot be written means the regression
                // gate silently never arms — fail loudly instead.
                if let Err(e) = std::fs::write(&baseline_path, line) {
                    ft_bench::fail(
                        &format!("obs_overhead: writing {}", baseline_path.display()),
                        e,
                    );
                }
                println!("  wrote baseline {}", baseline_path.display());
            }
            println!("overhead guard: OK");
            return ExitCode::SUCCESS;
        }
        if attempt < attempts {
            println!(
                "  attempt {attempt}/{attempts} over budget \
                 (overhead {}, baseline {}); re-measuring",
                if overhead_ok { "ok" } else { "OVER" },
                if baseline_ok { "ok" } else { "OVER" },
            );
        }
    }

    if best_ratio > max_enabled {
        eprintln!(
            "FAIL: enabled-recorder overhead x{best_ratio:.3} exceeds the x{max_enabled} \
             budget in all {attempts} attempts"
        );
    }
    if best_tr_ratio > max_enabled {
        eprintln!(
            "FAIL: traced-recorder overhead x{best_tr_ratio:.3} exceeds the x{max_enabled} \
             budget in all {attempts} attempts; {}",
            hottest_phase(&trace_sink).unwrap_or_else(|| "no spans recorded".into())
        );
    }
    if let Some(b) = baseline {
        let slowdown = b / best_dis_rate.max(1e-12);
        if slowdown > tol_disabled {
            eprintln!(
                "FAIL: disabled-recorder path regressed x{slowdown:.3} vs {} in all \
                 {attempts} attempts (budget x{tol_disabled}; FT_OVERHEAD_REBASE=1 to \
                 reset after machine changes)",
                baseline_path.display()
            );
        }
    }
    ExitCode::FAILURE
}
