//! **obs_report** — render JSONL observability streams into a Markdown
//! report: per-engine comparison table (states, transitions, fences, RMRs,
//! crashes, sleep/dedup hits), histogram sketches, hottest-pc top-k, and a
//! heartbeat summary.
//!
//! Usage:
//!
//! ```text
//! obs_report [stream.jsonl ...]
//! ```
//!
//! With no arguments, every `*.jsonl` under `results/obs/` is read (the
//! streams `exp_e12_reduction` and the examples produce), plus any
//! `*.jsonl.partial` stream a crashed run left behind. The report goes
//! to stdout and to `results/obs/report.md`. Exits non-zero when no event
//! line parses — the CI smoke run relies on that to catch an empty or
//! corrupt stream. Malformed lines *inside* a stream (interleaved
//! writers, disk corruption) and a *trailing* truncated line (the
//! signature of a process killed mid-write) are skipped and counted —
//! warnings, never errors: one bad line must not cost the report.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths: Vec<PathBuf> = if args.is_empty() {
        let dir = ft_bench::obs_dir();
        let rd = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| ft_bench::fail(&format!("reading {}", dir.display()), e));
        let mut found: Vec<PathBuf> = rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "jsonl")
                    || p.to_string_lossy().ends_with(".jsonl.partial")
            })
            .collect();
        found.sort();
        found
    } else {
        args.iter().map(PathBuf::from).collect()
    };
    if paths.is_empty() {
        eprintln!("obs_report: no JSONL streams found under results/obs/ (run exp_e12_reduction first, or pass paths)");
        return ExitCode::FAILURE;
    }

    let mut lines: Vec<String> = Vec::new();
    let mut sources: Vec<String> = Vec::new();
    let mut truncated = 0usize;
    let mut partials = 0usize;
    let mut lines_skipped = 0usize;
    for p in &paths {
        match std::fs::read_to_string(p) {
            Ok(text) => {
                let scan = ftobs::report::scan_stream(&text);
                if let Some(tail) = scan.torn_tail {
                    truncated += 1;
                    eprintln!(
                        "obs_report: {}: skipped a truncated trailing line ({} bytes)",
                        p.display(),
                        tail.len()
                    );
                }
                if scan.lines_skipped > 0 {
                    lines_skipped += scan.lines_skipped;
                    eprintln!(
                        "obs_report: warning: {}: skipped {} malformed mid-file line(s)",
                        p.display(),
                        scan.lines_skipped
                    );
                }
                if p.to_string_lossy().ends_with(".partial") {
                    partials += 1;
                    eprintln!(
                        "obs_report: {}: crashed-run artifact (stream never renamed on close)",
                        p.display()
                    );
                }
                lines.extend(scan.lines);
                sources.push(p.display().to_string());
            }
            Err(e) => eprintln!("obs_report: skipping {}: {e}", p.display()),
        }
    }

    let title = format!("fence-trade observability report ({})", sources.join(", "));
    let mut report = ftobs::report::render_report(&title, &lines);
    if truncated > 0 || partials > 0 || lines_skipped > 0 {
        report.push_str(&format!(
            "_{lines_skipped} malformed line(s) and {truncated} truncated trailing line(s) \
             skipped; {partials} crashed-run `.partial` stream(s) scanned._\n"
        ));
    }
    print!("{report}");

    if !lines.iter().any(|l| ftobs::report::parse_line(l).is_some()) {
        eprintln!("obs_report: no well-formed event lines in the given streams");
        return ExitCode::FAILURE;
    }

    let out = ft_bench::obs_dir().join("report.md");
    if let Err(e) = std::fs::write(&out, &report) {
        eprintln!("obs_report: could not write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out.display());
    ExitCode::SUCCESS
}
