//! **obs_trace** — the causal-trace consumer: turn `kind:"span"` JSONL
//! streams into Chrome trace-event JSON that Perfetto (or
//! `chrome://tracing`) loads directly, validate the span forest, and
//! attribute wall-clock to phases.
//!
//! Usage:
//!
//! ```text
//! obs_trace [--follow] [stream.jsonl ...]
//! ```
//!
//! With no paths, every `*.jsonl` (and crashed-run `*.jsonl.partial`)
//! under `results/obs/` is scanned — the same discovery rule as
//! `obs_report`, so the two tools always see the same streams. The
//! default mode:
//!
//! 1. parses spans out of every stream (torn trailing lines are
//!    tolerated, exactly like the metrics report),
//! 2. **validates** the forest — unique nonzero ids, parent edges
//!    pointing strictly at earlier spans, no orphan steal edges — and
//!    exits non-zero on the first violation (CI runs this as a guard),
//! 3. writes `results/obs/trace.json` in Chrome trace-event format, and
//! 4. prints the per-phase wall-time table and appends it to
//!    `results/obs/report.md` under a `## Trace phases` heading, so the
//!    Markdown report carries the attribution next to the metric tables.
//!
//! `--follow` instead tails one live stream (the newest by default) and
//! prints a human line per heartbeat / watchdog trip / final snapshot —
//! including the estimator's projected total and ETA once the engine has
//! sampled enough of the tree. The tail survives the sink's crash-safe
//! `.partial` → final rename. `FT_FOLLOW_IDLE_MS` bounds how long the
//! tail waits without new data before exiting (default: forever).

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use ftobs::report::{parse_line, scan_stream};
use ftobs::{chrome_trace, follow_line, parse_spans, phase_table, validate_spans, SpanRow};

/// Every readable stream under `results/obs/`, including crashed-run
/// `.partial` artifacts (their spans are still attributable).
fn discover() -> Vec<PathBuf> {
    let dir = ft_bench::obs_dir();
    let rd = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| ft_bench::fail(&format!("reading {}", dir.display()), e));
    let mut found: Vec<PathBuf> = rd
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "jsonl")
                || p.to_string_lossy().ends_with(".jsonl.partial")
        })
        .collect();
    found.sort();
    found
}

/// The stream a bare `--follow` should watch: the most recently modified
/// discovered stream, preferring a live `.partial` over finished files.
fn newest(paths: &[PathBuf]) -> Option<PathBuf> {
    paths
        .iter()
        .max_by_key(|p| {
            let live = u8::from(p.to_string_lossy().ends_with(".partial"));
            let mtime = std::fs::metadata(p)
                .and_then(|m| m.modified())
                .unwrap_or(std::time::UNIX_EPOCH);
            (live, mtime)
        })
        .cloned()
}

/// Tail `path`, rendering each complete event line through
/// [`follow_line`]. Tracks a byte offset rather than keeping the file
/// open so the crash-safe rename (`x.jsonl.partial` → `x.jsonl`) does
/// not strand the tail: when the watched file disappears, its renamed
/// sibling is picked up at the same offset.
fn follow(path: &Path, idle_limit: Option<Duration>) -> ExitCode {
    let mut watched = path.to_path_buf();
    let mut offset = 0usize;
    let mut carry = String::new();
    let mut last_new = Instant::now();
    println!("following {} (ctrl-c to stop)", watched.display());
    loop {
        if !watched.exists() {
            let s = watched.to_string_lossy();
            let renamed = s
                .strip_suffix(".partial")
                .map(PathBuf::from)
                .filter(|p| p.exists());
            if let Some(p) = renamed {
                watched = p;
            }
        }
        let text = std::fs::read_to_string(&watched).unwrap_or_default();
        if text.len() < offset {
            // Recreated from scratch (new run over the same path).
            offset = 0;
            carry.clear();
        }
        if text.len() > offset {
            last_new = Instant::now();
            let mut chunk = std::mem::take(&mut carry);
            chunk.push_str(&text[offset..]);
            offset = text.len();
            let complete = match chunk.rfind('\n') {
                Some(nl) => {
                    carry = chunk[nl + 1..].to_string();
                    chunk[..=nl].to_string()
                }
                None => {
                    carry = chunk;
                    String::new()
                }
            };
            for line in complete.lines() {
                if let Some(out) = parse_line(line).as_ref().and_then(follow_line) {
                    println!("{out}");
                }
            }
            let _ = std::io::stdout().flush();
        } else if idle_limit.is_some_and(|lim| last_new.elapsed() > lim) {
            println!(
                "no new events for {} ms; exiting",
                last_new.elapsed().as_millis()
            );
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

fn main() -> ExitCode {
    let mut follow_mode = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for a in std::env::args().skip(1) {
        if a == "--follow" {
            follow_mode = true;
        } else {
            paths.push(PathBuf::from(a));
        }
    }
    if paths.is_empty() {
        paths = discover();
    }
    if paths.is_empty() {
        eprintln!(
            "obs_trace: no JSONL streams under results/obs/ (run a traced experiment \
             first — e.g. FT_OBS_TRACE=1 exp_e17_estimator — or pass paths)"
        );
        return ExitCode::FAILURE;
    }

    if follow_mode {
        let idle = std::env::var("FT_FOLLOW_IDLE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis);
        let Some(target) = (if paths.len() == 1 {
            Some(paths.remove(0))
        } else {
            newest(&paths)
        }) else {
            eprintln!("obs_trace: nothing to follow");
            return ExitCode::FAILURE;
        };
        return follow(&target, idle);
    }

    let mut rows: Vec<SpanRow> = Vec::new();
    let mut torn = 0usize;
    let mut lines_skipped = 0usize;
    for p in &paths {
        match std::fs::read_to_string(p) {
            Ok(text) => {
                let scan = scan_stream(&text);
                if scan.torn_tail.is_some() {
                    torn += 1;
                }
                if scan.lines_skipped > 0 {
                    lines_skipped += scan.lines_skipped;
                    eprintln!(
                        "obs_trace: warning: {}: skipped {} malformed mid-file line(s)",
                        p.display(),
                        scan.lines_skipped
                    );
                }
                rows.extend(parse_spans(&text));
            }
            Err(e) => eprintln!("obs_trace: skipping {}: {e}", p.display()),
        }
    }
    if rows.is_empty() {
        eprintln!(
            "obs_trace: no span events in {} stream(s) — were the runs traced \
             (Recorder::builder().trace(true) or FT_OBS_TRACE=1)?",
            paths.len()
        );
        return ExitCode::FAILURE;
    }
    // Streams are independent forests; span ids are process-global and
    // monotonic, so the union still satisfies the forest invariants.
    rows.sort_by_key(|r| (r.ts_us, r.id));
    if let Err(e) = validate_spans(&rows) {
        eprintln!("obs_trace: INVALID span forest: {e}");
        return ExitCode::FAILURE;
    }

    let tasks = rows.iter().filter(|r| r.name == "task").count();
    let steals = rows.iter().filter(|r| r.name == "publish").count();
    let json = chrome_trace(&rows);
    let out = ft_bench::obs_dir().join("trace.json");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("obs_trace: could not write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }

    let table = phase_table(&rows);
    println!("## Trace phases\n\n{table}");
    println!(
        "{} spans ({tasks} tasks, {steals} publish edges) from {} stream(s), \
         {torn} torn tail(s) and {lines_skipped} malformed line(s) skipped",
        rows.len(),
        paths.len()
    );
    println!(
        "wrote {} (load in Perfetto / chrome://tracing)",
        out.display()
    );

    let report = ft_bench::obs_dir().join("report.md");
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&report)
        .and_then(|mut f| writeln!(f, "\n## Trace phases\n\n{table}"));
    match appended {
        Ok(()) => eprintln!("appended phase table to {}", report.display()),
        Err(e) => {
            eprintln!("obs_trace: could not append to {}: {e}", report.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
