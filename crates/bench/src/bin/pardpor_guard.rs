//! **pardpor_guard** — the work-stealing parallel DPOR performance gates
//! (EXPERIMENTS.md E14).
//!
//! Two gates over `filter3_pso` (the largest seed workload the DPOR
//! engines reduce well), using the same noise defenses as `obs_overhead`
//! (paired alternating rounds, median of per-round ratios, independent
//! retry attempts):
//!
//! 1. **Scaling** (multi-core hosts only): a full `Engine::ParallelDpor`
//!    exploration on `FT_PARDPOR_THREADS` workers (default 4, clamped to
//!    the detected cores) must be at least `FT_PARDPOR_SPEEDUP` (default
//!    1.5) times faster than sequential `Engine::Dpor`. On a single-core
//!    host this gate is **skipped** — parallel wall-clock there measures
//!    time-slicing, not the engine — and reported as such.
//! 2. **Sequential regression** (always): `Engine::ParallelDpor` with
//!    `threads: 1` — the dispatch path this PR added in front of the
//!    sequential engine — must stay within `FT_PARDPOR_REGRESSION`
//!    (default 1.05, the ≤5% budget) of a direct `Engine::Dpor` run.
//!    This pins the cost of the new engine's plumbing (threshold probe,
//!    dispatch) at effectively zero for everyone not opting in.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use fence_trade::prelude::*;

fn env_or(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

fn trial(inst: &OrderingInstance, cfg: &CheckConfig, iters: usize) -> (Duration, usize) {
    let start = Instant::now();
    let mut states = 0usize;
    for _ in 0..iters {
        let v = check(&inst.machine(MemoryModel::Pso), cfg);
        assert!(v.is_ok(), "filter3_pso must verify: {}", v.label());
        states = std::hint::black_box(v.stats().states);
    }
    (start.elapsed(), states)
}

/// Median of per-round `numerator/denominator` wall-clock ratios over
/// paired alternating rounds (see `obs_overhead` for why pairing beats
/// best-of-rounds on a shared container).
fn paired_ratio(
    inst: &OrderingInstance,
    numerator_cfg: &CheckConfig,
    denominator_cfg: &CheckConfig,
    trials: usize,
    iters: usize,
) -> f64 {
    let _ = trial(inst, denominator_cfg, 1); // warm-up
    let mut ratios = Vec::with_capacity(trials);
    for round in 0..trials.max(1) {
        let (num, den) = if round % 2 == 0 {
            let n = trial(inst, numerator_cfg, iters).0;
            let d = trial(inst, denominator_cfg, iters).0;
            (n, d)
        } else {
            let d = trial(inst, denominator_cfg, iters).0;
            let n = trial(inst, numerator_cfg, iters).0;
            (n, d)
        };
        ratios.push(num.as_secs_f64() / den.as_secs_f64().max(1e-12));
    }
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

#[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
fn main() -> ExitCode {
    let iters = (env_or("FT_PARDPOR_ITERS", 1.0) as usize).max(1);
    let trials = (env_or("FT_PARDPOR_TRIALS", 5.0) as usize).max(1);
    let attempts = (env_or("FT_PARDPOR_ATTEMPTS", 2.0) as usize).max(1);
    let min_speedup = env_or("FT_PARDPOR_SPEEDUP", 1.5);
    let max_regression = env_or("FT_PARDPOR_REGRESSION", 1.05);
    let threads = (env_or("FT_PARDPOR_THREADS", 4.0) as usize).max(2);
    let cores = ft_bench::available_cores();

    let inst = build_mutex(LockKind::Filter, 3, FenceMask::ALL);
    let base = CheckConfig {
        check_termination: false,
        max_states: 500_000,
        ..CheckConfig::default()
    };
    let seq_cfg = base.clone().with_engine(Engine::Dpor {
        reorder_bound: None,
    });
    let par_cfg = base.clone().with_engine(Engine::ParallelDpor {
        threads: threads.min(cores.max(2)),
        reorder_bound: None,
    });
    let one_cfg = base.with_engine(Engine::ParallelDpor {
        threads: 1,
        reorder_bound: None,
    });

    let run_speedup_gate = cores >= 2;
    let mut best_speedup: f64 = 0.0;
    let mut best_regression = f64::INFINITY;
    for attempt in 1..=attempts {
        if run_speedup_gate {
            // seq/par: >1 means the parallel engine is faster.
            let speedup = 1.0 / paired_ratio(&inst, &par_cfg, &seq_cfg, trials, iters).max(1e-12);
            best_speedup = best_speedup.max(speedup);
            println!(
                "filter3_pso, {} cores: pardpor x{} vs dpor speedup x{speedup:.2} \
                 (median of {trials} paired rounds, floor x{min_speedup})",
                cores,
                threads.min(cores.max(2))
            );
        }
        let regression = paired_ratio(&inst, &one_cfg, &seq_cfg, trials, iters);
        best_regression = best_regression.min(regression);
        println!(
            "filter3_pso: pardpor(threads=1) vs dpor wall-clock x{regression:.3} \
             (budget x{max_regression})"
        );
        let speedup_ok = !run_speedup_gate || best_speedup >= min_speedup;
        let regression_ok = best_regression <= max_regression;
        if speedup_ok && regression_ok {
            if !run_speedup_gate {
                println!(
                    "scaling gate: SKIPPED (single core — parallel wall-clock would \
                     measure time-slicing, not the engine)"
                );
            }
            println!("pardpor guard: OK");
            return ExitCode::SUCCESS;
        }
        if attempt < attempts {
            println!(
                "  attempt {attempt}/{attempts} over budget (speedup {}, regression {}); \
                 re-measuring",
                if speedup_ok { "ok" } else { "UNDER" },
                if regression_ok { "ok" } else { "OVER" },
            );
        }
    }

    if run_speedup_gate && best_speedup < min_speedup {
        eprintln!(
            "FAIL: pardpor speedup x{best_speedup:.2} below the x{min_speedup} floor in \
             all {attempts} attempts"
        );
    }
    if best_regression > max_regression {
        eprintln!(
            "FAIL: pardpor(threads=1) dispatch overhead x{best_regression:.3} exceeds the \
             x{max_regression} budget in all {attempts} attempts"
        );
    }
    ExitCode::FAILURE
}
