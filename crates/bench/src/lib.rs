//! Shared harness utilities for the experiment binaries (`exp_e1` …
//! `exp_e8`): aligned-table rendering, result persistence under
//! `results/`, seeded permutation sampling, and a small scoped-thread
//! parallel map ([`par_map`]) honouring the `FT_THREADS` environment
//! variable ([`parallelism`]).

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A simple aligned text table that renders to stdout and to
/// `results/<name>.txt`.
#[derive(Debug)]
pub struct Table {
    name: String,
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Start a table named `name` (the results file stem) with a title line.
    #[must_use]
    pub fn new(name: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a free-form note printed under the table.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render the table.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}\n", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for i in 0..ncols {
                let _ = write!(s, "{:>w$}  ", cells[i], w = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * ncols)
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n{n}");
        }
        out
    }

    /// Print to stdout and persist to `results/<name>.txt`.
    pub fn finish(&self) {
        let rendered = self.render();
        println!("{rendered}");
        let path = results_dir().join(format!("{}.txt", self.name));
        if let Err(e) = fs::write(&path, &rendered) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Write a model-checker counterexample to `results/<name>.txt` as a
/// replayable artifact: a header, the schedule one element per line
/// (`op p0` / `commit p0 r3` / `crash p1` — exactly the three
/// [`wbmem::SchedElem`] shapes, in replay order), the event trace the
/// schedule produces (one event per line via [`wbmem::Trace::to_lines`]),
/// the schedule's **reorder edges** (`reorder-edge:` lines via
/// [`wbmem::reorder_edges`] — the write-buffer program-order inversions
/// that enabled the violation, the same edges fence synthesis refines on),
/// and — when `recorder` is enabled — a `metrics:` line carrying the
/// [`ftobs::MetricsSnapshot`] at failure time as one flat JSON object.
/// The save is also routed through the recorder's event log as a
/// `counterexample` event, so JSONL streams record that (and where) an
/// artifact was written.
///
/// `m` must be configured the way the checker ran (same model, same crash
/// bound) *plus* trace recording
/// ([`MachineConfig::with_trace`](wbmem::MachineConfig::with_trace));
/// the schedule is replayed on it here. Returns the artifact path.
/// [`parse_counterexample_schedule`] recovers the schedule from the
/// artifact text for replay tests.
pub fn save_counterexample<P: wbmem::Process>(
    name: &str,
    header: &str,
    mut m: wbmem::Machine<P>,
    schedule: &[wbmem::SchedElem],
    recorder: &ftobs::Recorder,
) -> PathBuf {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# {header}");
    let _ = writeln!(
        out,
        "# Replay: feed each `schedule:` line to Machine::step in order \
         (machine configured as above)."
    );
    // Extract reorder edges before `m` is consumed by the replay below
    // (reorder_edges replays its own clone).
    let edges = wbmem::reorder_edges(&m, schedule);
    for &e in schedule {
        let _ = write!(out, "schedule: ");
        let _ = match (e.crash, e.reg) {
            (true, _) => writeln!(out, "crash p{}", e.proc.0),
            (false, Some(r)) => writeln!(out, "commit p{} r{}", e.proc.0, r.0),
            (false, None) => writeln!(out, "op p{}", e.proc.0),
        };
        let stepped = !matches!(m.step(e), wbmem::StepOutcome::NoOp);
        debug_assert!(stepped, "counterexample schedules never no-op");
    }
    let _ = writeln!(out, "trace:");
    for line in m.trace().to_lines() {
        let _ = writeln!(out, "  {line}");
    }
    for edge in &edges {
        let _ = writeln!(out, "reorder-edge: {edge}");
    }
    if recorder.is_enabled() {
        let snap = recorder.snapshot();
        let fields = snap.to_json_fields();
        let refs: Vec<(&str, &ftobs::J)> = fields.iter().map(|(k, v)| (k.as_str(), v)).collect();
        let _ = writeln!(
            out,
            "metrics: {}",
            ftobs::encode_line(refs, std::iter::empty())
        );
    }
    let path = results_dir().join(format!("{name}.txt"));
    if let Err(e) = fs::write(&path, &out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    recorder.event(
        "counterexample",
        &[
            ("artifact", ftobs::J::s(path.display().to_string())),
            ("schedule_len", ftobs::J::U(schedule.len() as u64)),
        ],
    );
    path
}

/// Recover the schedule from a [`save_counterexample`] artifact: every
/// `schedule:` line, parsed back into the [`wbmem::SchedElem`] it rendered.
/// Malformed lines are skipped (the artifact format is line-oriented, so a
/// hand-edited file degrades gracefully).
#[must_use]
pub fn parse_counterexample_schedule(text: &str) -> Vec<wbmem::SchedElem> {
    text.lines()
        .filter_map(|l| l.trim().strip_prefix("schedule: "))
        .filter_map(|rest| {
            let mut it = rest.split_whitespace();
            let kind = it.next()?;
            let p: u32 = it.next()?.strip_prefix('p')?.parse().ok()?;
            let proc = wbmem::ProcId(p);
            match kind {
                "op" => Some(wbmem::SchedElem::op(proc)),
                "crash" => Some(wbmem::SchedElem::crash(proc)),
                "commit" => {
                    let r: u32 = it.next()?.strip_prefix('r')?.parse().ok()?;
                    Some(wbmem::SchedElem::commit(proc, wbmem::RegId(r)))
                }
                _ => None,
            }
        })
        .collect()
}

/// The `results/obs/` directory for JSONL event streams and rendered
/// observability reports (created on demand).
#[must_use]
pub fn obs_dir() -> PathBuf {
    let dir = results_dir().join("obs");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Append pre-rendered JSON row objects to the `"results"` array of
/// `BENCH_explore.json` at the workspace root (created with an empty array
/// if the bench has not been run yet). Each element of `rows` must be a
/// complete JSON object literal without trailing comma. Idempotent: an
/// existing row with the same `"workload"` value as an incoming row is
/// dropped first, so re-running an experiment refreshes its rows instead
/// of duplicating them.
pub fn append_bench_explore_rows(rows: &[String]) {
    if rows.is_empty() {
        return;
    }
    let path = workspace_root().join("BENCH_explore.json");
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|_| "{\n  \"bench\": \"explore\",\n  \"results\": [\n  ]\n}\n".to_string());
    let workload_of = |row: &str| {
        row.split("\"workload\": \"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .map(str::to_string)
    };
    let incoming: Vec<String> = rows.iter().filter_map(|r| workload_of(r)).collect();
    let text: String = text
        .lines()
        .filter(|line| {
            let stale = line.trim_start().starts_with('{')
                && workload_of(line).is_some_and(|w| incoming.contains(&w));
            !stale
        })
        .map(|line| {
            // A kept row that preceded a dropped tail row may leave a
            // trailing comma before `]`; normalize it below via rfind.
            format!("{line}\n")
        })
        .collect();
    let Some(end) = text.rfind("  ]") else {
        eprintln!(
            "warning: {} has no results array; rows not appended",
            path.display()
        );
        return;
    };
    let mut body = text[..end].trim_end().to_string();
    if body.ends_with(',') {
        body.pop();
    }
    let rendered: String = rows
        .iter()
        .map(|r| format!("    {r}"))
        .collect::<Vec<_>>()
        .join(",\n");
    if body.ends_with('[') {
        body.push('\n');
    } else {
        body.push_str(",\n");
    }
    body.push_str(&rendered);
    body.push('\n');
    body.push_str(&text[end..]);
    if let Err(e) = fs::write(&path, &body) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Print a one-line diagnostic and exit nonzero. The `exp_*` binaries
/// route I/O and parse failures here so a `ci.sh` failure is
/// attributable to a specific binary and cause, instead of surfacing as
/// a panic backtrace with exit code 101.
pub fn fail(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("error: {context}: {err}");
    std::process::exit(1);
}

/// The repository `results/` directory (created on demand).
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

fn workspace_root() -> PathBuf {
    // crates/bench -> crates -> root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root exists")
        .to_path_buf()
}

/// `count` seeded random permutations of `0..n`.
#[must_use]
pub fn random_permutations(n: usize, count: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut v: Vec<usize> = (0..n).collect();
            v.shuffle(&mut rng);
            v
        })
        .collect()
}

/// Format a float with `digits` decimals.
#[must_use]
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// The number of cores available to this process, detected once and
/// cached. `std::thread::available_parallelism` consults the cgroup /
/// affinity mask on every call and can transiently report `1` early in
/// process startup on some hosts; caching the first successful reading
/// keeps every bench row and JSON header consistent within a run.
#[must_use]
pub fn available_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

/// The worker count for embarrassingly-parallel sweeps: `FT_THREADS` if set
/// to a positive integer, otherwise [`available_cores`] — and never more
/// than [`available_cores`] either way. Oversubscribing a timing sweep
/// only adds scheduler noise to the measurements, so a too-large
/// `FT_THREADS` is clamped rather than honored. This is the *effective*
/// thread count — the value bench rows must record (`effective_threads`
/// in `BENCH_explore.json`).
#[must_use]
pub fn parallelism() -> usize {
    let requested = match std::env::var("FT_THREADS") {
        Ok(s) => s
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(available_cores),
        Err(_) => available_cores(),
    };
    requested.min(available_cores())
}

/// Map `f` over `items` on up to [`parallelism`] scoped threads, preserving
/// input order in the output. `f` must be independent per item (the sweeps
/// this serves — seeded permutations, fence-elision candidates, lock×model
/// cells — all are). Falls back to a plain sequential map for one worker or
/// one item.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = parallelism().min(items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    local.push((i, f(item)));
                }
                collected.lock().expect("unpoisoned").extend(local);
            });
        }
    });
    let mut pairs = collected.into_inner().expect("unpoisoned");
    pairs.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("t", "Test", &["a", "bbb"]);
        t.row(&["1".into(), "2".into()]);
        t.note("note");
        let r = t.render();
        assert!(r.contains("Test"));
        assert!(r.contains("bbb"));
        assert!(r.contains("note"));
    }

    #[test]
    fn permutations_are_permutations_and_seeded() {
        let a = random_permutations(6, 3, 9);
        let b = random_permutations(6, 3, 9);
        assert_eq!(a, b, "seeding is deterministic");
        for p in &a {
            let mut s = p.clone();
            s.sort_unstable();
            assert_eq!(s, (0..6).collect::<Vec<usize>>());
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("t", "T", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn cores_detected_once_and_positive() {
        let a = available_cores();
        assert!(a >= 1);
        assert_eq!(a, available_cores(), "cached reading is stable");
        assert!(parallelism() >= 1);
    }

    #[test]
    fn parallelism_never_exceeds_available_cores() {
        // Whatever FT_THREADS says (this process may inherit one), the
        // effective worker count is clamped to the detected cores.
        assert!(parallelism() <= available_cores());
    }

    #[test]
    fn schedule_lines_roundtrip() {
        use wbmem::{ProcId, RegId, SchedElem};
        let sched = vec![
            SchedElem::op(ProcId(0)),
            SchedElem::commit(ProcId(1), RegId(3)),
            SchedElem::crash(ProcId(1)),
            SchedElem::op(ProcId(2)),
        ];
        let mut text = String::from("# header\n");
        for e in &sched {
            text.push_str("schedule: ");
            text.push_str(&match (e.crash, e.reg) {
                (true, _) => format!("crash p{}\n", e.proc.0),
                (false, Some(r)) => format!("commit p{} r{}\n", e.proc.0, r.0),
                (false, None) => format!("op p{}\n", e.proc.0),
            });
        }
        text.push_str("trace:\n  read p0 r1\nmetrics: {\"states\":4}\n");
        assert_eq!(parse_counterexample_schedule(&text), sched);
        assert!(parse_counterexample_schedule("no schedule here").is_empty());
    }
}
