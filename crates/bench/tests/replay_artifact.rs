//! A saved counterexample artifact is *replayable*: parsing the
//! `schedule:` lines back out of the text and feeding them to a fresh
//! machine reproduces the violation the checker reported, and the artifact
//! carries the metrics snapshot taken at failure time.

use ft_bench::{parse_counterexample_schedule, save_counterexample};
use modelcheck::{check, CheckConfig, Engine, Recorder, Verdict};
use simlocks::{build_mutex, FenceMask, LockKind, ANNOT_IN_CS};
use wbmem::{MachineConfig, MemoryModel};

#[test]
fn saved_artifact_replays_to_the_same_verdict() {
    // The separation witness: Peterson with only the victim fence violates
    // mutual exclusion under PSO.
    let witness = FenceMask::only(&[simlocks::peterson::SITE_VICTIM]);
    let inst = build_mutex(LockKind::Peterson, 2, witness);
    let rec = Recorder::builder().quiet(true).build();
    let cfg = CheckConfig::default()
        .with_engine(Engine::Dpor {
            reorder_bound: None,
        })
        .with_recorder(rec.clone());
    let Verdict::MutexViolation(_, cex) = check(&inst.machine(MemoryModel::Pso), &cfg) else {
        panic!("the witness placement must violate mutex under PSO");
    };

    let traced =
        inst.machine_from(MachineConfig::new(MemoryModel::Pso, inst.layout.clone()).with_trace());
    let path = save_counterexample(
        "test_replay_artifact",
        "test: replayable artifact round-trip",
        traced,
        &cex.schedule,
        &rec,
    );
    let text = std::fs::read_to_string(&path).expect("artifact written");
    let _ = std::fs::remove_file(&path); // test scratch, not a results deliverable

    // The schedule round-trips through the text format.
    let parsed = parse_counterexample_schedule(&text);
    assert_eq!(parsed, cex.schedule, "schedule lines round-trip");

    // The artifact carries the failure-time metrics snapshot.
    let metrics_line = text
        .lines()
        .find_map(|l| l.strip_prefix("metrics: "))
        .expect("artifact has a metrics line");
    let fields = ftobs::report::parse_line(metrics_line).expect("metrics line is flat JSON");
    let states: u64 = fields["states"].parse().expect("states field");
    assert!(states > 0, "snapshot saw the search");
    assert_eq!(
        states,
        rec.snapshot().states(),
        "artifact snapshot matches the recorder at failure time"
    );

    // The artifact annotates the write-buffer inversions that enabled the
    // violation — a PSO mutex break with only the victim fence needs at
    // least one reordered write.
    assert!(
        text.lines().any(|l| l.starts_with("reorder-edge: ")),
        "artifact carries reorder-edge annotations"
    );

    // Replaying the parsed schedule on a fresh machine reproduces the
    // verdict: both processes end up annotated in-CS simultaneously.
    let mut m = inst.machine(MemoryModel::Pso);
    let mut overlap = false;
    for e in parsed {
        m.step(e);
        let in_cs = (0..2u32)
            .filter(|&p| m.annotation(wbmem::ProcId(p)) == ANNOT_IN_CS)
            .count();
        overlap |= in_cs >= 2;
    }
    assert!(overlap, "replay reproduces the mutual-exclusion violation");
}
