//! A small, dependency-free stand-in for the subset of the [`criterion`]
//! crate this workspace uses: `criterion_group!` / `criterion_main!`,
//! benchmark groups with `sample_size` / `measurement_time`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`
//! and `black_box`.
//!
//! The build environment is fully offline, so the real crate cannot be
//! fetched. Measurement is deliberately simple — warm up briefly, then
//! time batches of iterations until the measurement budget is spent, and
//! report min/mean/max ns per iteration — with no statistical analysis,
//! plotting, or saved baselines. Numbers print to stdout in a stable
//! `name … time: [min mean max]` shape.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-exported opaque-value barrier (inference-preserving).
pub use std::hint::black_box;

/// One timed measurement: iterations and total elapsed time.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Iterations in this sample.
    pub iters: u64,
    /// Wall clock for all `iters` together.
    pub elapsed: Duration,
}

impl Sample {
    /// Nanoseconds per iteration.
    #[must_use]
    pub fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

/// A completed benchmark: its full id and per-sample timings.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// `group/function` (or `group/function/param`).
    pub id: String,
    /// All measured samples.
    pub samples: Vec<Sample>,
}

impl BenchResult {
    /// Mean nanoseconds per iteration over all samples.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(Sample::ns_per_iter).sum::<f64>() / self.samples.len() as f64
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Sample>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Measure `f`, called repeatedly; each call is one iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: grow the batch until it
        // costs ≳1ms or the routine is clearly slow.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        // Measurement: `sample_size` samples or until the time budget is
        // spent, whichever comes first (always at least one sample).
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size.max(1) {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(Sample {
                iters: batch,
                elapsed: t.elapsed(),
            });
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// A parameterized benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id for `function_name` at `parameter`.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Conversion into a printable benchmark label (accepts `&str`, `String`
/// and [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The label to report under.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// A named set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Set the per-benchmark measurement time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.group_name, id.into_label());
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        self.criterion.record(label, samples);
        self
    }

    /// Run one benchmark that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (printing happens per-benchmark; this is a
    /// API-compatibility no-op).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            group_name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Run one stand-alone benchmark (an implicit single-entry group).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = id.into_label();
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        };
        f(&mut bencher);
        self.record(label, samples);
        self
    }

    fn record(&mut self, id: String, samples: Vec<Sample>) {
        let result = BenchResult { id, samples };
        let (mut min, mut max) = (f64::INFINITY, 0f64);
        for s in &result.samples {
            min = min.min(s.ns_per_iter());
            max = max.max(s.ns_per_iter());
        }
        println!(
            "{:<48} time: [{} {} {}]",
            result.id,
            fmt_ns(min),
            fmt_ns(result.mean_ns()),
            fmt_ns(max)
        );
        self.results.push(result);
    }

    /// All results recorded so far (for custom reporters).
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_measures_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).measurement_time(Duration::from_millis(30));
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].id, "g/noop");
        assert_eq!(c.results()[1].id, "g/sum/10");
        assert!(c.results().iter().all(|r| !r.samples.is_empty()));
        assert!(c.results()[0].mean_ns() >= 0.0);
    }
}
