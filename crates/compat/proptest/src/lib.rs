//! A small, dependency-free stand-in for the subset of the [`proptest`]
//! crate this workspace uses.
//!
//! The build environment is fully offline, so the real crate cannot be
//! fetched. This implementation keeps the same *surface*: the
//! [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//! [`prop_oneof!`] macros, the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, [`Just`], [`any`], range and tuple strategies, and
//! the `prop::{collection, option, sample}` modules — but deliberately
//! omits *shrinking*: a failing case reports its inputs (via the panic
//! message) without minimizing them. Case generation is deterministic:
//! the RNG is seeded from the test's module path and name, so failures
//! reproduce exactly across runs.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------------
// Test-case RNG
// ---------------------------------------------------------------------------

/// The deterministic generator driving strategy sampling (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded from an arbitrary byte string (e.g. the test
    /// name), so every test gets a distinct but stable stream.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform sample from `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample below 0");
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }
}

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// A failed test case (carries the failure reason).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the current case with `reason`.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate and run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; this workspace's properties
        // exercise whole-machine executions per case, so the compat
        // default trades a little coverage for wall clock.
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice among boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                let off = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

impl Strategy for Range<char> {
    type Value = char;
    fn sample(&self, rng: &mut TestRng) -> char {
        let (a, b) = (self.start as u32, self.end as u32);
        assert!(a < b, "cannot sample from empty range");
        loop {
            let off = ((u128::from(rng.next_u64()) * u128::from(u64::from(b - a))) >> 64) as u32;
            if let Some(c) = char::from_u32(a + off) {
                return c;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// `any` / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical strategy (the subset this workspace uses).
pub trait Arbitrary: Sized {
    /// The canonical strategy's concrete type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// A strategy backed by a plain function pointer.
pub struct FnStrategy<T>(fn(&mut TestRng) -> T);

impl<T> Strategy for FnStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl Arbitrary for bool {
    type Strategy = FnStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        FnStrategy(|rng| rng.next_u64() & 1 == 1)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = FnStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                FnStrategy(|rng| rng.next_u64() as $t)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// prop::{collection, option, sample}
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A number-of-elements specification: an exact count or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Generates `Option`s from `inner` (`Some` with probability 1/2).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// A strategy for `Option<T>` values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, FnStrategy, Strategy, TestRng};

    /// Uniform choice from a fixed set of values.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// A strategy choosing uniformly among `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }

    /// An index into a not-yet-known-length collection: sampled as raw
    /// entropy, projected with [`Index::index`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// This index projected onto `0..len` (`len` must be non-zero).
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index requires a non-empty collection");
            ((u128::from(self.0) * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        type Strategy = FnStrategy<Index>;
        fn arbitrary() -> Self::Strategy {
            FnStrategy(|rng: &mut TestRng| Index(rng.next_u64()))
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests: `proptest! { #[test] fn name(x in strategy) { … } }`.
///
/// Differences from the real crate: no shrinking, and the failing case's
/// index (not its minimized inputs) is reported in the panic message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config: $crate::ProptestConfig = $cfg;
                let mut __pt_rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __pt_case in 0..__pt_config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __pt_rng);)+
                    let __pt_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __pt_result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), __pt_case, __pt_config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`: fail the
/// current case (without panicking) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)`: fail the current case when `a != b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// `prop_oneof![s1, s2, …]`: uniform choice among strategies of a common
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The `prop` namespace and common items (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// The `prop::…` module namespace.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_tuples_and_vecs_sample_in_bounds() {
        let mut rng = crate::TestRng::from_name("t1");
        let s = prop::collection::vec((0u8..8, 0u8..16), 0..40);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v.len() < 40);
            assert!(v.iter().all(|&(a, b)| a < 8 && b < 16));
        }
    }

    #[test]
    fn exact_size_vec_and_option() {
        let mut rng = crate::TestRng::from_name("t2");
        let s = prop::collection::vec(prop::option::of(0u32..3), 6);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert_eq!(v.len(), 6);
            assert!(v.iter().flatten().all(|&x| x < 3));
        }
    }

    #[test]
    fn oneof_map_flat_map_select() {
        let mut rng = crate::TestRng::from_name("t3");
        let s = (1usize..4).prop_flat_map(|n| {
            (
                Just(n),
                prop_oneof![
                    (0u64..5).prop_map(|x| x * 2),
                    prop::sample::select(vec![100u64, 200]),
                ],
            )
        });
        let mut saw_even_small = false;
        let mut saw_select = false;
        for _ in 0..200 {
            let (n, x) = s.sample(&mut rng);
            assert!((1..4).contains(&n));
            if x < 10 {
                assert_eq!(x % 2, 0);
                saw_even_small = true;
            } else {
                assert!(x == 100 || x == 200);
                saw_select = true;
            }
        }
        assert!(saw_even_small && saw_select);
    }

    #[test]
    fn index_projects_in_bounds() {
        let mut rng = crate::TestRng::from_name("t4");
        let s = any::<prop::sample::Index>();
        for _ in 0..100 {
            let idx = s.sample(&mut rng);
            for len in [1usize, 2, 7, 1000] {
                assert!(idx.index(len) < len);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: sampled values respect their strategies and
        /// `prop_assert!`/`?` plumbing compiles.
        #[test]
        fn macro_end_to_end(x in 0u32..10, v in prop::collection::vec(0u8..4, 0..9)) {
            prop_assert!(x < 10);
            prop_assert_eq!(v.iter().filter(|&&b| b > 3).count(), 0);
            let parsed: Result<u32, _> = "7".parse::<u32>().map_err(|e| {
                TestCaseError::fail(format!("{e}"))
            });
            let seven = parsed?;
            prop_assert_eq!(seven, 7);
        }
    }
}
