//! A tiny, dependency-free stand-in for the subset of the [`rand`] crate
//! this workspace uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The build environment is fully offline, so the real crate cannot be
//! fetched; everything here is deterministic, seedable, and good enough
//! for test-case generation and seeded experiment sampling (xoshiro256++
//! core, SplitMix64 seeding). Stream values differ from the real `rand`,
//! so seeded outputs are stable *within* this workspace only.
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level uniform word generation.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_uniform(&range, self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 <= p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `range`.
    fn sample_uniform<R: RngCore>(range: &Range<Self>, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(range: &Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift bounded sampling; bias is < 2^-32 for the
                // small spans used in tests.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                range.start + hi as $t
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(range: &Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

/// Frequently used items.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values appear in 1000 draws");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements virtually never fixed"
        );
    }
}
