//! Tying measurement to theory: passage-cost measurement helpers and the
//! tradeoff formulas of the paper.

use simlocks::OrderingInstance;
use wbmem::{MemoryModel, ProcId, SoloOutcome};

/// Fence and RMR cost of lock passages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PassageCost {
    /// Fence steps per passage.
    pub fences: f64,
    /// Remote steps (RMRs) per passage.
    pub rmrs: f64,
}

/// Measure one **uncontended** passage: process 0 runs alone on a fresh
/// machine.
///
/// # Panics
///
/// Panics if the passage does not complete within `max_steps`.
#[must_use]
pub fn solo_passage(inst: &OrderingInstance, model: MemoryModel, max_steps: usize) -> PassageCost {
    let mut m = inst.machine(model);
    let out = m.run_solo(ProcId(0), max_steps);
    assert!(
        matches!(out, SoloOutcome::Terminates { .. }),
        "{}: solo passage did not terminate ({out:?})",
        inst.name
    );
    let c = m.counters().proc(0);
    PassageCost {
        fences: c.fences as f64,
        rmrs: c.rmrs as f64,
    }
}

/// Measure the **average contended** passage: all `n` processes run under a
/// fair round-robin scheduler to completion; totals are divided by `n`.
///
/// # Panics
///
/// Panics if the instance does not complete within `max_steps`.
#[must_use]
pub fn contended_passage(
    inst: &OrderingInstance,
    model: MemoryModel,
    max_steps: usize,
) -> PassageCost {
    let mut m = inst.machine(model);
    let done = simlocks::run_to_completion(&mut m, max_steps);
    assert!(done, "{}: contended run did not complete", inst.name);
    let n = inst.n as f64;
    PassageCost {
        fences: m.counters().beta() as f64 / n,
        rmrs: m.counters().rho() as f64 / n,
    }
}

/// The left-hand side of the paper's per-passage tradeoff (equation (1)):
/// `f·(log₂(r/f) + 1)`. The theorem says this is `Ω(log n)` for ordering
/// algorithms under write reordering.
#[must_use]
pub fn tradeoff_lhs(fences: f64, rmrs: f64) -> f64 {
    if fences <= 0.0 {
        return 0.0;
    }
    fences * ((rmrs / fences).max(1.0).log2() + 1.0)
}

/// The tradeoff product normalized by `log₂ n`: `f·(log₂(r/f)+1) / log₂ n`.
/// Along the `GT_f` family this should be Θ(1) — the bound is tight at
/// every point of the spectrum.
#[must_use]
pub fn normalized_tradeoff(fences: f64, rmrs: f64, n: usize) -> f64 {
    assert!(n >= 2, "tradeoff is trivial below two processes");
    tradeoff_lhs(fences, rmrs) / (n as f64).log2()
}

/// The aggregate form of Theorem 4.2:
/// `β(E)·(log₂(ρ(E)/β(E)) + 1)` against `n·log₂ n`.
#[must_use]
pub fn theorem_lhs(beta: u64, rho: u64) -> f64 {
    tradeoff_lhs(beta as f64, rho as f64)
}

/// `n · log₂ n`, the right-hand side of Theorem 4.2 (up to a constant).
#[must_use]
pub fn n_log_n(n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    n as f64 * (n as f64).log2()
}

/// Predicted per-passage fences of `GT_f`: `4f` node fences plus the
/// object fence and the final pre-return fence.
#[must_use]
pub fn predicted_gt_fences(f: usize) -> f64 {
    4.0 * f as f64 + 2.0
}

/// Predicted per-passage RMR *scale* of `GT_f`: `f · ⌈n^(1/f)⌉` (equation
/// (2) of the paper, up to a constant factor).
#[must_use]
pub fn predicted_gt_rmrs(n: usize, f: usize) -> f64 {
    f as f64 * simlocks::branching_factor(n, f) as f64
}

/// Least-squares slope of `log y` against `log x`: the empirical scaling
/// exponent of a cost curve. A Θ(n) curve yields ≈ 1, Θ(√n) ≈ 0.5,
/// Θ(log n) ≈ 0 (slowly decaying).
///
/// # Panics
///
/// Panics if fewer than two points are given or any coordinate is
/// non-positive.
#[must_use]
pub fn scaling_exponent(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(x > 0.0 && y > 0.0, "log-log fit needs positive data");
            (x.ln(), y.ln())
        })
        .collect();
    let k = logs.len() as f64;
    let (sx, sy): (f64, f64) = logs
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
    let (mx, my) = (sx / k, sy / k);
    let num: f64 = logs.iter().map(|&(x, y)| (x - mx) * (y - my)).sum();
    let den: f64 = logs.iter().map(|&(x, _)| (x - mx) * (x - mx)).sum();
    num / den
}

/// Measure the solo RMR scaling exponent of a lock family over a sweep of
/// `n` values: build the counter instance at each `n`, measure one solo
/// passage, and fit `log(rmrs)` against `log(n)`.
#[must_use]
pub fn solo_rmr_exponent(
    build: impl Fn(usize) -> OrderingInstance,
    ns: &[usize],
    max_steps: usize,
) -> f64 {
    let points: Vec<(f64, f64)> = ns
        .iter()
        .map(|&n| {
            let cost = solo_passage(&build(n), MemoryModel::Pso, max_steps);
            (n as f64, cost.rmrs.max(1.0))
        })
        .collect();
    scaling_exponent(&points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simlocks::{build_ordering, LockKind, ObjectKind};

    #[test]
    fn tradeoff_lhs_matches_hand_computation() {
        // f = 2, r = 8: 2·(log2(4)+1) = 6.
        assert!((tradeoff_lhs(2.0, 8.0) - 6.0).abs() < 1e-9);
        // r < f clamps the ratio at 1: f·(0+1) = f.
        assert!((tradeoff_lhs(4.0, 2.0) - 4.0).abs() < 1e-9);
        assert_eq!(tradeoff_lhs(0.0, 10.0), 0.0);
    }

    #[test]
    fn n_log_n_values() {
        assert_eq!(n_log_n(1), 0.0);
        assert!((n_log_n(8) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn solo_bakery_costs_match_theory() {
        for n in [4usize, 16, 64] {
            let inst = build_ordering(LockKind::Bakery, n, ObjectKind::Counter);
            let cost = solo_passage(&inst, MemoryModel::Pso, 1_000_000);
            assert_eq!(cost.fences, 6.0, "n={n}: 4 lock + object + final");
            assert!(
                cost.rmrs >= 2.0 * (n as f64 - 1.0),
                "n={n}: rmrs={}",
                cost.rmrs
            );
            assert!(
                cost.rmrs <= 4.0 * n as f64 + 8.0,
                "n={n}: rmrs={}",
                cost.rmrs
            );
        }
    }

    #[test]
    fn normalized_tradeoff_is_bounded_across_the_gt_family() {
        let n = 64;
        for f in [1usize, 2, 3, 6] {
            let inst = build_ordering(LockKind::Gt { f }, n, ObjectKind::Counter);
            let cost = solo_passage(&inst, MemoryModel::Pso, 1_000_000);
            let norm = normalized_tradeoff(cost.fences, cost.rmrs, n);
            assert!(
                (0.5..=12.0).contains(&norm),
                "f={f}: normalized tradeoff {norm} out of the constant band"
            );
        }
    }

    #[test]
    fn contended_costs_exceed_solo_costs() {
        let inst = build_ordering(LockKind::Gt { f: 2 }, 8, ObjectKind::Counter);
        let solo = solo_passage(&inst, MemoryModel::Pso, 1_000_000);
        let cont = contended_passage(&inst, MemoryModel::Pso, 50_000_000);
        assert!(
            cont.rmrs >= solo.rmrs * 0.9,
            "contention should not reduce RMRs"
        );
        assert_eq!(
            cont.fences, solo.fences,
            "fence count per passage is schedule-independent"
        );
    }

    #[test]
    fn predictions_are_monotone_in_the_right_direction() {
        assert!(predicted_gt_fences(1) < predicted_gt_fences(4));
        assert!(predicted_gt_rmrs(256, 1) > predicted_gt_rmrs(256, 2));
        assert!(predicted_gt_rmrs(256, 2) > predicted_gt_rmrs(256, 4));
    }

    #[test]
    fn scaling_exponent_recovers_known_powers() {
        let linear: Vec<(f64, f64)> = (1..=8).map(|n| (n as f64, 3.0 * n as f64)).collect();
        assert!((scaling_exponent(&linear) - 1.0).abs() < 1e-9);
        let sqrt: Vec<(f64, f64)> = (1..=8).map(|n| (n as f64, (n as f64).sqrt())).collect();
        assert!((scaling_exponent(&sqrt) - 0.5).abs() < 1e-9);
        let constant: Vec<(f64, f64)> = (1..=8).map(|n| (n as f64, 7.0)).collect();
        assert!(scaling_exponent(&constant).abs() < 1e-9);
    }

    #[test]
    fn measured_exponents_match_the_tradeoff() {
        let ns = [16usize, 32, 64, 128, 256, 512];
        let bakery = solo_rmr_exponent(
            |n| build_ordering(LockKind::Bakery, n, ObjectKind::Counter),
            &ns,
            10_000_000,
        );
        assert!(
            (0.9..=1.1).contains(&bakery),
            "bakery exponent {bakery} should be ~1"
        );

        let gt2 = solo_rmr_exponent(
            |n| build_ordering(LockKind::Gt { f: 2 }, n, ObjectKind::Counter),
            &ns,
            10_000_000,
        );
        assert!(
            (0.35..=0.65).contains(&gt2),
            "GT_2 exponent {gt2} should be ~0.5"
        );

        let tournament = solo_rmr_exponent(
            |n| build_ordering(LockKind::Tournament, n, ObjectKind::Counter),
            &ns,
            10_000_000,
        );
        assert!(
            (0.0..=0.35).contains(&tournament),
            "tournament exponent {tournament} should be near 0 (logarithmic)"
        );

        let ttas = solo_rmr_exponent(
            |n| build_ordering(LockKind::Ttas, n, ObjectKind::Counter),
            &ns,
            10_000_000,
        );
        assert!(
            ttas.abs() < 0.05,
            "solo TTAS exponent {ttas} should be ~0 (constant)"
        );
    }
}
