//! # fence-trade — the fence/RMR tradeoff, executable
//!
//! A full reproduction of **Attiya, Hendler, Woelfel, “Trading Fences with
//! RMRs and Separating Memory Models”, PODC 2015**, as a Rust workspace:
//!
//! | Piece | Crate (re-exported here) | Paper section |
//! |---|---|---|
//! | Write-buffer machine, RMR accounting | [`wbmem`] | §2 (model) |
//! | Algorithm IR + interpreter | [`fencevm`] | §2 (processes) |
//! | Bakery / Peterson / tournament / `GT_f`, ordering objects | [`simlocks`] | §3, §4 |
//! | Command-stack encoder/decoder, bit codec, invariants | [`lowerbound`] | §5 |
//! | Exhaustive model checker, fence-elision search | [`modelcheck`] | §1/§3 separation |
//! | Real-atomics lock family | [`hwlocks`] | §1 motivation |
//!
//! The [`analysis`] module ties measurements back to the theorems: the
//! per-passage tradeoff `f·(log(r/f)+1) ∈ Ω(log n)` (equation (1)), its
//! tightness along `GT_f` (equation (2)), and the aggregate Theorem 4.2.
//!
//! ## Quickstart
//!
//! ```
//! use fence_trade::prelude::*;
//!
//! // Build the paper's Count object over GT_2 for 16 processes and
//! // measure one uncontended passage in the PSO write-buffer machine.
//! let inst = build_ordering(LockKind::Gt { f: 2 }, 16, ObjectKind::Counter);
//! let cost = solo_passage(&inst, MemoryModel::Pso, 1_000_000);
//!
//! // O(f) fences, O(f·n^(1/f)) RMRs — and the tradeoff product is Θ(log n).
//! assert_eq!(cost.fences, 10.0); // 4·f lock fences + object + final
//! let norm = normalized_tradeoff(cost.fences, cost.rmrs, 16);
//! assert!(norm >= 1.0 && norm <= 12.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;

pub use fencevm;
pub use ftobs;
pub use hwlocks;
pub use lowerbound;
pub use modelcheck;
pub use simlocks;
pub use wbmem;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::analysis::{
        contended_passage, n_log_n, normalized_tradeoff, predicted_gt_fences, predicted_gt_rmrs,
        scaling_exponent, solo_passage, solo_rmr_exponent, theorem_lhs, tradeoff_lhs, PassageCost,
    };
    pub use hwlocks::{
        CountingLock, HwBakery, HwGt, HwMcs, HwPeterson, HwTournament, HwTtas, RawLock,
    };
    pub use lowerbound::{
        decode, encode_permutation, proof_machine, recover_permutation, DecodeOptions,
        EncodeOptions,
    };
    pub use modelcheck::{
        check, elision_table, resume, CheckConfig, CheckError, CheckpointPolicy, Coverage, Engine,
        MetricsSnapshot, Recorder, Verdict,
    };
    pub use simlocks::{
        build_mutex, build_ordering, FenceMask, LockKind, ObjectKind, OrderingInstance,
    };
    pub use wbmem::{
        CrashSemantics, Machine, MachineConfig, MemoryLayout, MemoryModel, ProcId, RegId, Value,
    };
}
