//! Static per-pc access analysis for assembled programs.
//!
//! The partial-order reduction engine (`crates/por`) needs to know, for a
//! process paused at instruction `pc`, which shared registers the process
//! could *ever* touch again, and whether performing the poised operation
//! could change the property-visible annotation. Both questions are answered
//! here once per [`Program`](crate::Program), by a value-insensitive
//! fixpoint over the control-flow graph:
//!
//! * `Src::Imm` register operands contribute exactly that register;
//! * `Src::Loc` operands (dynamic addressing, e.g. array walks) poison the
//!   summary to "any register" — sound, and cheap to test against;
//! * both branches of every conditional jump are followed.
//!
//! The summaries are over-approximations by construction: a register the
//! analysis misses would break the reduction's soundness, while a register
//! it over-reports only costs reduction.

use wbmem::{RegId, RegSet};

use crate::instr::{Instr, Src};

/// The static access summary for one program point: everything the program
/// may read or write from this instruction (inclusive) onward.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub(crate) struct PcSummary {
    /// Registers possibly read (plain reads, CAS, swap).
    pub reads: RegSet,
    /// Registers possibly written (writes, CAS, swap).
    pub writes: RegSet,
    /// The program may read a dynamically computed register.
    pub reads_all: bool,
    /// The program may write a dynamically computed register.
    pub writes_all: bool,
    /// Performing the memory operation at this pc may execute an `Annot`
    /// before control reaches the next memory operation.
    pub annot_next: bool,
}

fn static_reg(src: Src) -> Option<RegId> {
    match src {
        // A negative immediate is a malformed address and panics at
        // runtime; classifying it as "no register" is fine because the
        // instruction can then never execute as a memory step.
        Src::Imm(x) => u32::try_from(x).ok().map(RegId),
        Src::Loc(_) => None,
    }
}

/// Control-flow successors of `pc` (instruction indices).
fn successors(instrs: &[Instr], pc: usize, out: &mut Vec<usize>) {
    out.clear();
    match instrs[pc] {
        Instr::Return { .. } => {}
        Instr::Jmp { target } => out.push(target),
        Instr::JmpIf { target, .. } => {
            out.push(target);
            if pc + 1 < instrs.len() {
                out.push(pc + 1);
            }
        }
        _ => {
            if pc + 1 < instrs.len() {
                out.push(pc + 1);
            }
        }
    }
}

/// Whether settling past the memory instruction at `pc` can execute an
/// `Annot` before the interpreter parks on the next memory instruction.
fn annot_reachable_internally(instrs: &[Instr], pc: usize) -> bool {
    if matches!(instrs[pc], Instr::Return { .. }) {
        return false; // returns never advance
    }
    let mut seen = vec![false; instrs.len()];
    let mut work = vec![pc + 1];
    let mut succ = Vec::new();
    while let Some(at) = work.pop() {
        if at >= instrs.len() || seen[at] {
            continue;
        }
        seen[at] = true;
        match instrs[at] {
            Instr::Annot { .. } => return true,
            // The walk stops at memory instructions: the interpreter parks
            // there and any annotation past them belongs to a later step.
            Instr::Read { .. }
            | Instr::Write { .. }
            | Instr::Fence
            | Instr::Cas { .. }
            | Instr::Swap { .. }
            | Instr::Return { .. } => {}
            Instr::Mov { .. }
            | Instr::Bin { .. }
            | Instr::Jmp { .. }
            | Instr::JmpIf { .. }
            | Instr::Nop => {
                successors(instrs, at, &mut succ);
                work.extend_from_slice(&succ);
            }
        }
    }
    false
}

/// Compute the per-pc summaries for `instrs` by backward fixpoint.
pub(crate) fn analyze(instrs: &[Instr]) -> Vec<PcSummary> {
    let mut summaries = vec![PcSummary::default(); instrs.len()];
    for (pc, ins) in instrs.iter().enumerate() {
        let s = &mut summaries[pc];
        match *ins {
            Instr::Read { addr, .. } => match static_reg(addr) {
                Some(r) => {
                    s.reads.insert(r);
                }
                None => s.reads_all = true,
            },
            Instr::Write { addr, .. } => match static_reg(addr) {
                Some(r) => {
                    s.writes.insert(r);
                }
                None => s.writes_all = true,
            },
            Instr::Cas { addr, .. } | Instr::Swap { addr, .. } => match static_reg(addr) {
                Some(r) => {
                    s.reads.insert(r);
                    s.writes.insert(r);
                }
                None => {
                    s.reads_all = true;
                    s.writes_all = true;
                }
            },
            _ => {}
        }
        s.annot_next = ins.is_memory() && annot_reachable_internally(instrs, pc);
    }
    // Propagate successor summaries until nothing grows. Processing in
    // reverse pc order converges in one pass for straight-line code and in
    // a handful for loops.
    let mut succ = Vec::new();
    loop {
        let mut grew = false;
        for pc in (0..instrs.len()).rev() {
            successors(instrs, pc, &mut succ);
            for &next in &succ {
                let (a, b) = if next > pc {
                    let (lo, hi) = summaries.split_at_mut(next);
                    (&mut lo[pc], &hi[0])
                } else if next < pc {
                    let (lo, hi) = summaries.split_at_mut(pc);
                    (&mut hi[0], &lo[next])
                } else {
                    continue; // self-loop contributes nothing new
                };
                grew |= a.reads.union_with(&b.reads);
                grew |= a.writes.union_with(&b.writes);
                grew |= !a.reads_all && b.reads_all;
                a.reads_all |= b.reads_all;
                grew |= !a.writes_all && b.writes_all;
                a.writes_all |= b.writes_all;
            }
        }
        if !grew {
            return summaries;
        }
    }
}

/// Union `extra` into every summary of `base` (used to fold the recovery
/// section's accesses into each pc's summary for crash-enabled machines).
pub(crate) fn union_summaries(base: &[PcSummary], extra: &PcSummary) -> Vec<PcSummary> {
    base.iter()
        .map(|s| {
            let mut u = s.clone();
            u.reads.union_with(&extra.reads);
            u.writes.union_with(&extra.writes);
            u.reads_all |= extra.reads_all;
            u.writes_all |= extra.writes_all;
            u
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::instr::CondOp;

    #[test]
    fn straight_line_summary_shrinks_toward_the_end() {
        let mut a = Asm::new("t");
        let t = a.local("t");
        a.read(0i64, t);
        a.write(1i64, t);
        a.fence();
        a.ret(t);
        let prog = a.assemble();
        let s = analyze(prog.instrs());
        assert!(s[0].reads.contains(RegId(0)) && s[0].writes.contains(RegId(1)));
        assert!(!s[1].reads.contains(RegId(0)), "the read is behind pc 1");
        assert!(s[1].writes.contains(RegId(1)));
        assert!(s[2].writes.is_empty() && s[2].reads.is_empty());
        assert!(!s[0].reads_all && !s[0].writes_all);
    }

    #[test]
    fn loops_reach_a_fixpoint_including_back_edges() {
        let mut a = Asm::new("spin");
        let t = a.local("t");
        let head = a.here();
        a.read(0i64, t);
        a.jmp_if(CondOp::Ne, t, 1i64, head);
        a.write(2i64, 1i64);
        a.ret(0i64);
        let prog = a.assemble();
        let s = analyze(prog.instrs());
        // From inside the loop, both the loop read and the exit write are
        // future accesses.
        assert!(s[0].reads.contains(RegId(0)));
        assert!(s[0].writes.contains(RegId(2)));
        assert!(s[2].writes.contains(RegId(2)) && !s[2].reads.contains(RegId(0)));
    }

    #[test]
    fn dynamic_addressing_poisons_the_summary() {
        let mut a = Asm::new("dyn");
        let addr = a.local("addr");
        let t = a.local("t");
        a.mov(addr, 7i64);
        a.read(addr, t);
        a.ret(0i64);
        let prog = a.assemble();
        let s = analyze(prog.instrs());
        assert!(s[0].reads_all, "Loc-addressed read may touch anything");
        assert!(!s[0].writes_all);
    }

    #[test]
    fn annot_between_memory_steps_is_flagged() {
        let mut a = Asm::new("annots");
        let t = a.local("t");
        a.read(0i64, t); // advancing runs annot(1) below
        a.annot(1);
        a.fence(); // advancing runs annot(0)
        a.annot(0);
        a.ret(0i64);
        let prog = a.assemble();
        let s = analyze(prog.instrs());
        assert!(s[0].annot_next);
        assert!(s[2].annot_next);
        assert!(!s[4].annot_next, "returns never advance");
    }

    #[test]
    fn annot_behind_a_branch_is_still_flagged() {
        let mut a = Asm::new("maybe");
        let t = a.local("t");
        let skip = a.label();
        a.read(0i64, t);
        a.jmp_if(CondOp::Eq, t, 0i64, skip);
        a.annot(1);
        a.bind(skip);
        a.fence();
        a.ret(0i64);
        let prog = a.assemble();
        let s = analyze(prog.instrs());
        assert!(s[0].annot_next, "one branch reaches the annot");
        assert!(!s[4].annot_next, "the fence's advance passes no annot");
    }
}
