//! The assembler: named locals, labels with forward references, and emit
//! helpers for every instruction.

use crate::instr::{BinOp, CondOp, Instr, Loc, Src};
use crate::program::Program;

/// A label handle. Bind it with [`Asm::bind`]; reference it from jumps
/// before or after binding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// A program under construction.
///
/// While building, jump instructions store *label ids*; [`Asm::assemble`]
/// rewrites them to instruction indices and verifies every label was bound.
#[derive(Debug)]
pub struct Asm {
    name: String,
    instrs: Vec<Instr>,
    local_names: Vec<String>,
    labels: Vec<Option<usize>>,
    recovery: Option<usize>,
}

impl Asm {
    /// Start a new program named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Asm {
            name: name.into(),
            instrs: Vec::new(),
            local_names: Vec::new(),
            labels: Vec::new(),
            recovery: None,
        }
    }

    /// Declare the next emitted instruction as the program's crash-recovery
    /// entry point: a crashed instance restarts there (with wiped locals)
    /// instead of at the program start.
    ///
    /// # Panics
    ///
    /// Panics if a recovery entry was already declared.
    pub fn recovery_here(&mut self) {
        assert!(
            self.recovery.is_none(),
            "program {}: recovery entry declared twice",
            self.name
        );
        self.recovery = Some(self.instrs.len());
    }

    /// Allocate a fresh local variable with a debug name.
    pub fn local(&mut self, name: impl Into<String>) -> Loc {
        self.local_names.push(name.into());
        Loc(self.local_names.len() - 1)
    }

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.instrs.len());
    }

    /// Create a label bound to the next emitted instruction.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Emit `dst := shared[addr]`.
    pub fn read(&mut self, addr: impl Into<Src>, dst: Loc) {
        self.instrs.push(Instr::Read {
            addr: addr.into(),
            dst,
        });
    }

    /// Emit `shared[addr] := val`.
    pub fn write(&mut self, addr: impl Into<Src>, val: impl Into<Src>) {
        self.instrs.push(Instr::Write {
            addr: addr.into(),
            val: val.into(),
        });
    }

    /// Emit a fence.
    pub fn fence(&mut self) {
        self.instrs.push(Instr::Fence);
    }

    /// Emit `dst := CAS(shared[addr], expected, new)` — `dst` receives the
    /// observed pre-operation payload.
    pub fn cas(
        &mut self,
        addr: impl Into<Src>,
        expected: impl Into<Src>,
        new: impl Into<Src>,
        dst: Loc,
    ) {
        self.instrs.push(Instr::Cas {
            addr: addr.into(),
            expected: expected.into(),
            new: new.into(),
            dst,
        });
    }

    /// Emit `dst := SWAP(shared[addr], new)` — `dst` receives the observed
    /// pre-operation payload.
    pub fn swap(&mut self, addr: impl Into<Src>, new: impl Into<Src>, dst: Loc) {
        self.instrs.push(Instr::Swap {
            addr: addr.into(),
            new: new.into(),
            dst,
        });
    }

    /// Emit `return val`.
    pub fn ret(&mut self, val: impl Into<Src>) {
        self.instrs.push(Instr::Return { val: val.into() });
    }

    /// Emit `dst := src`.
    pub fn mov(&mut self, dst: Loc, src: impl Into<Src>) {
        self.instrs.push(Instr::Mov {
            dst,
            src: src.into(),
        });
    }

    /// Emit `dst := a ⊕ b`.
    pub fn bin(&mut self, op: BinOp, dst: Loc, a: impl Into<Src>, b: impl Into<Src>) {
        self.instrs.push(Instr::Bin {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
    }

    /// Emit `dst := a + b`.
    pub fn add(&mut self, dst: Loc, a: impl Into<Src>, b: impl Into<Src>) {
        self.bin(BinOp::Add, dst, a, b);
    }

    /// Emit `dst := a - b`.
    pub fn sub(&mut self, dst: Loc, a: impl Into<Src>, b: impl Into<Src>) {
        self.bin(BinOp::Sub, dst, a, b);
    }

    /// Emit `dst := a * b`.
    pub fn mul(&mut self, dst: Loc, a: impl Into<Src>, b: impl Into<Src>) {
        self.bin(BinOp::Mul, dst, a, b);
    }

    /// Emit `dst := a / b`.
    pub fn div(&mut self, dst: Loc, a: impl Into<Src>, b: impl Into<Src>) {
        self.bin(BinOp::Div, dst, a, b);
    }

    /// Emit `dst := a mod b`.
    pub fn rem(&mut self, dst: Loc, a: impl Into<Src>, b: impl Into<Src>) {
        self.bin(BinOp::Rem, dst, a, b);
    }

    /// Emit `dst := max(a, b)`.
    pub fn max(&mut self, dst: Loc, a: impl Into<Src>, b: impl Into<Src>) {
        self.bin(BinOp::Max, dst, a, b);
    }

    /// Emit an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) {
        self.instrs.push(Instr::Jmp { target: label.0 });
    }

    /// Emit a conditional jump: go to `label` if `a ⋈ b`.
    pub fn jmp_if(&mut self, cond: CondOp, a: impl Into<Src>, b: impl Into<Src>, label: Label) {
        self.instrs.push(Instr::JmpIf {
            cond,
            a: a.into(),
            b: b.into(),
            target: label.0,
        });
    }

    /// Emit an annotation marker (e.g. critical-section entry/exit).
    pub fn annot(&mut self, value: u64) {
        self.instrs.push(Instr::Annot { value });
    }

    /// Emit a no-op.
    pub fn nop(&mut self) {
        self.instrs.push(Instr::Nop);
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Resolve labels and produce the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound, or if the program
    /// contains no `Return` (every paper process must return exactly once).
    #[must_use]
    pub fn assemble(self) -> Program {
        let Asm {
            name,
            mut instrs,
            local_names,
            labels,
            recovery,
        } = self;
        assert!(
            instrs.iter().any(|i| matches!(i, Instr::Return { .. })),
            "program {name} has no return instruction"
        );
        for ins in &mut instrs {
            if let Instr::Jmp { target } | Instr::JmpIf { target, .. } = ins {
                *target = labels[*target]
                    .unwrap_or_else(|| panic!("program {name}: unbound label {target}"));
            }
        }
        Program::from_parts_with_recovery(name, instrs, local_names, recovery.unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Asm::new("labels");
        let t = asm.local("t");
        let fwd = asm.label();
        let back = asm.here(); // @0 (nothing emitted yet, binds to 0)
        asm.mov(t, 1i64); // @0
        asm.jmp_if(CondOp::Eq, t, 0i64, back); // @1 -> @0
        asm.jmp(fwd); // @2 -> @3
        asm.bind(fwd);
        asm.ret(0i64); // @3
        let p = asm.assemble();
        match p.instrs()[1] {
            Instr::JmpIf { target, .. } => assert_eq!(target, 0),
            ref other => panic!("unexpected {other:?}"),
        }
        match p.instrs()[2] {
            Instr::Jmp { target } => assert_eq!(target, 3),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut asm = Asm::new("bad");
        let l = asm.label();
        asm.jmp(l);
        asm.ret(0i64);
        let _ = asm.assemble();
    }

    #[test]
    #[should_panic(expected = "no return")]
    fn missing_return_panics() {
        let mut asm = Asm::new("bad");
        asm.fence();
        let _ = asm.assemble();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut asm = Asm::new("bad");
        let l = asm.label();
        asm.bind(l);
        asm.bind(l);
    }

    #[test]
    fn locals_are_sequential_and_named() {
        let mut asm = Asm::new("locals");
        let a = asm.local("a");
        let b = asm.local("b");
        assert_eq!((a, b), (Loc(0), Loc(1)));
        asm.ret(0i64);
        let p = asm.assemble();
        assert_eq!(p.local_names(), ["a", "b"]);
    }

    #[test]
    fn emit_helpers_cover_instructions() {
        let mut asm = Asm::new("all");
        let x = asm.local("x");
        asm.read(0i64, x);
        asm.write(1i64, x);
        asm.add(x, x, 1i64);
        asm.sub(x, x, 1i64);
        asm.mul(x, x, 2i64);
        asm.div(x, x, 2i64);
        asm.rem(x, x, 3i64);
        asm.max(x, x, 0i64);
        asm.annot(1);
        asm.nop();
        asm.fence();
        asm.ret(x);
        assert_eq!(asm.len(), 12);
        assert!(!asm.is_empty());
        let p = asm.assemble();
        assert_eq!(p.memory_instr_count(), 4);
    }
}
