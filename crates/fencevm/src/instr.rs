//! The instruction set.

use std::fmt;

/// A local (per-process) variable slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc(pub usize);

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// An operand: an immediate or a local variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Src {
    /// A constant.
    Imm(i64),
    /// The value of a local variable.
    Loc(Loc),
}

impl From<Loc> for Src {
    fn from(l: Loc) -> Self {
        Src::Loc(l)
    }
}

impl From<i64> for Src {
    fn from(x: i64) -> Self {
        Src::Imm(x)
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Imm(x) => write!(f, "{x}"),
            Src::Loc(l) => write!(f, "{l}"),
        }
    }
}

/// Binary arithmetic/logic operations on locals.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Integer division (panics on division by zero).
    Div,
    /// Remainder (panics on division by zero).
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl BinOp {
    /// Apply the operation.
    ///
    /// # Panics
    ///
    /// Panics on division/remainder by zero or arithmetic overflow — both
    /// indicate a programming error in the emitted algorithm.
    #[must_use]
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.checked_add(b).expect("add overflow"),
            BinOp::Sub => a.checked_sub(b).expect("sub overflow"),
            BinOp::Mul => a.checked_mul(b).expect("mul overflow"),
            BinOp::Div => a.checked_div(b).expect("division by zero or overflow"),
            BinOp::Rem => a.checked_rem(b).expect("remainder by zero or overflow"),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }
}

/// Comparison conditions for conditional jumps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CondOp {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
}

impl CondOp {
    /// Evaluate the condition.
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CondOp::Eq => a == b,
            CondOp::Ne => a != b,
            CondOp::Lt => a < b,
            CondOp::Le => a <= b,
            CondOp::Gt => a > b,
            CondOp::Ge => a >= b,
        }
    }
}

/// One instruction.
///
/// `Read`/`Write`/`Fence`/`Return` are *memory* instructions, each costing
/// one machine step. Everything else is *internal* and free. Jump targets
/// are instruction indices (the [`Asm`](crate::Asm) assembler resolves
/// labels to indices).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `dst := shared[addr]` — one machine read step.
    Read {
        /// Register id to read (evaluated as an operand, so arrays index
        /// with `base + j` held in a local).
        addr: Src,
        /// Local receiving the value's payload.
        dst: Loc,
    },
    /// `shared[addr] := val` — one machine write step (buffered).
    Write {
        /// Register id to write.
        addr: Src,
        /// Payload to write (must evaluate to a non-negative value).
        val: Src,
    },
    /// A fence — one machine step once the write buffer has drained.
    Fence,
    /// Compare-and-swap — one machine step once the write buffer has
    /// drained (the comparison-primitive extension of the paper's §6).
    /// `dst` receives the register's pre-operation payload; the swap
    /// happened iff that equals `expected`.
    Cas {
        /// Register id to operate on.
        addr: Src,
        /// Expected payload.
        expected: Src,
        /// Payload stored on success (must be non-negative).
        new: Src,
        /// Local receiving the observed payload.
        dst: Loc,
    },
    /// Fetch-and-store — one machine step once the write buffer has
    /// drained. `dst` receives the register's pre-operation payload.
    Swap {
        /// Register id to operate on.
        addr: Src,
        /// Payload stored unconditionally (must be non-negative).
        new: Src,
        /// Local receiving the observed payload.
        dst: Loc,
    },
    /// Terminate with a return value — one machine step.
    Return {
        /// The value returned (must evaluate to a non-negative value).
        val: Src,
    },
    /// `dst := src` (internal).
    Mov {
        /// Destination local.
        dst: Loc,
        /// Source operand.
        src: Src,
    },
    /// `dst := a ⊕ b` (internal).
    Bin {
        /// The operation.
        op: BinOp,
        /// Destination local.
        dst: Loc,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
    },
    /// Unconditional jump (internal).
    Jmp {
        /// Target instruction index.
        target: usize,
    },
    /// Conditional jump (internal): jump to `target` if `a ⋈ b`.
    JmpIf {
        /// The comparison.
        cond: CondOp,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
        /// Target instruction index.
        target: usize,
    },
    /// Set the process annotation visible to invariant checkers (internal).
    /// Used to mark critical sections.
    Annot {
        /// The annotation value.
        value: u64,
    },
    /// Do nothing (internal). Handy as a label anchor.
    Nop,
}

impl Instr {
    /// Whether this instruction costs a machine step.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::Read { .. }
                | Instr::Write { .. }
                | Instr::Fence
                | Instr::Cas { .. }
                | Instr::Swap { .. }
                | Instr::Return { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Read { addr, dst } => write!(f, "read  {dst} := [{addr}]"),
            Instr::Write { addr, val } => write!(f, "write [{addr}] := {val}"),
            Instr::Fence => write!(f, "fence"),
            Instr::Cas {
                addr,
                expected,
                new,
                dst,
            } => {
                write!(f, "cas   {dst} := [{addr}] ({expected} -> {new})")
            }
            Instr::Swap { addr, new, dst } => {
                write!(f, "swap  {dst} := [{addr}] := {new}")
            }
            Instr::Return { val } => write!(f, "ret   {val}"),
            Instr::Mov { dst, src } => write!(f, "mov   {dst} := {src}"),
            Instr::Bin { op, dst, a, b } => {
                write!(
                    f,
                    "{:<5} {dst} := {a}, {b}",
                    format!("{op:?}").to_lowercase()
                )
            }
            Instr::Jmp { target } => write!(f, "jmp   @{target}"),
            Instr::JmpIf { cond, a, b, target } => {
                write!(
                    f,
                    "j{:<4} {a}, {b} -> @{target}",
                    format!("{cond:?}").to_lowercase()
                )
            }
            Instr::Annot { value } => write!(f, "annot {value}"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Add.apply(2, 3), 5);
        assert_eq!(BinOp::Sub.apply(2, 3), -1);
        assert_eq!(BinOp::Mul.apply(4, 3), 12);
        assert_eq!(BinOp::Div.apply(7, 2), 3);
        assert_eq!(BinOp::Rem.apply(7, 2), 1);
        assert_eq!(BinOp::Min.apply(7, 2), 2);
        assert_eq!(BinOp::Max.apply(7, 2), 7);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BinOp::Div.apply(1, 0);
    }

    #[test]
    fn condop_semantics() {
        assert!(CondOp::Eq.eval(1, 1));
        assert!(CondOp::Ne.eval(1, 2));
        assert!(CondOp::Lt.eval(1, 2));
        assert!(CondOp::Le.eval(2, 2));
        assert!(CondOp::Gt.eval(3, 2));
        assert!(CondOp::Ge.eval(2, 2));
        assert!(!CondOp::Lt.eval(2, 2));
    }

    #[test]
    fn memory_classification() {
        assert!(Instr::Fence.is_memory());
        assert!(Instr::Read {
            addr: Src::Imm(0),
            dst: Loc(0)
        }
        .is_memory());
        assert!(!Instr::Nop.is_memory());
        assert!(!Instr::Jmp { target: 0 }.is_memory());
        assert!(!Instr::Annot { value: 1 }.is_memory());
    }

    #[test]
    fn src_conversions() {
        assert_eq!(Src::from(Loc(3)), Src::Loc(Loc(3)));
        assert_eq!(Src::from(5i64), Src::Imm(5));
    }
}
