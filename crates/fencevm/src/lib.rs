//! # fencevm — a register-machine IR for write-buffer algorithms
//!
//! Shared-memory algorithms (locks, counters, queues) are expressed as small
//! programs over an instruction set with two tiers:
//!
//! * **Memory instructions** — [`Instr::Read`], [`Instr::Write`],
//!   [`Instr::Fence`], [`Instr::Return`] — each of which costs exactly one
//!   machine step in the [`wbmem`] model (the paper's `read`, `write`,
//!   `fence`, `return` operations).
//! * **Internal instructions** — moves, arithmetic, comparisons, jumps,
//!   annotations — which model free local computation and are executed
//!   eagerly between memory steps (the paper's processes do unbounded local
//!   computation between shared-memory operations).
//!
//! A [`VmProc`] interprets a [`Program`] and implements
//! [`wbmem::Process`], so it can be driven by a [`wbmem::Machine`], cloned,
//! snapshotted, solo-run and model-checked. Programs are built with the
//! [`Asm`] assembler, which provides labels, named locals and fixups.
//!
//! ## Example: a counter increment
//!
//! ```
//! use fencevm::{Asm, Src, VmProc};
//! use wbmem::{Machine, MachineConfig, MemoryModel, MemoryLayout, ProcId, RegId};
//!
//! let mut asm = Asm::new("incr");
//! let t = asm.local("t");
//! asm.read(Src::Imm(0), t);              // t := C
//! asm.add(t, t, Src::Imm(1));            // t := t + 1
//! asm.write(Src::Imm(0), t);             // C := t
//! asm.fence();
//! asm.ret(t);
//! let prog = asm.assemble();
//!
//! let cfg = MachineConfig::new(MemoryModel::Pso, MemoryLayout::unowned());
//! let mut m = Machine::new(cfg, vec![VmProc::new(prog.into())]);
//! m.run_solo(ProcId(0), 100);
//! assert_eq!(m.return_value(ProcId(0)), Some(1));
//! assert_eq!(m.memory(RegId(0)).payload(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod asm;
pub mod instr;
pub mod program;
pub mod rewrite;
pub mod vmproc;

pub use asm::{Asm, Label};
pub use instr::{BinOp, CondOp, Instr, Loc, Src};
pub use program::Program;
pub use rewrite::{fence_pcs, insert_fences_after, strip_fences, write_pcs, Rewritten};
pub use vmproc::VmProc;
