//! Assembled programs.

use std::fmt;

use crate::analysis::{analyze, union_summaries, PcSummary};
use crate::instr::Instr;

/// An immutable, assembled program: a straight vector of instructions with
/// resolved jump targets, plus metadata for debugging.
///
/// Programs are shared between process instances via `Arc<Program>`; see
/// [`VmProc`](crate::VmProc).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Program {
    name: String,
    instrs: Vec<Instr>,
    local_names: Vec<String>,
    /// Instruction index control restarts at after a crash (the program's
    /// declared recovery section; `0` — the program start — by default).
    recovery: usize,
    /// Per-pc static access summaries (see [`crate::analysis`]), computed
    /// once at assembly.
    analysis: Vec<PcSummary>,
    /// The same summaries with the recovery section's accesses folded in,
    /// for processes that may still crash.
    analysis_rec: Vec<PcSummary>,
    /// Content digest over (name, instrs, locals, recovery), computed once
    /// at assembly; see [`Program::digest`].
    digest: u64,
}

impl Program {
    #[cfg(test)]
    pub(crate) fn from_parts(name: String, instrs: Vec<Instr>, local_names: Vec<String>) -> Self {
        Self::from_parts_with_recovery(name, instrs, local_names, 0)
    }

    pub(crate) fn from_parts_with_recovery(
        name: String,
        instrs: Vec<Instr>,
        local_names: Vec<String>,
        recovery: usize,
    ) -> Self {
        for (i, ins) in instrs.iter().enumerate() {
            if let Instr::Jmp { target } | Instr::JmpIf { target, .. } = ins {
                assert!(
                    *target < instrs.len(),
                    "program {name}: instruction {i} jumps to out-of-range target {target}"
                );
            }
        }
        assert!(
            recovery < instrs.len(),
            "program {name}: recovery entry {recovery} is out of range"
        );
        let analysis = analyze(&instrs);
        let analysis_rec = union_summaries(&analysis, &analysis[recovery]);
        let digest = {
            use std::hash::{Hash as _, Hasher as _};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            name.hash(&mut h);
            instrs.hash(&mut h);
            local_names.hash(&mut h);
            recovery.hash(&mut h);
            h.finish()
        };
        Program {
            name,
            instrs,
            local_names,
            recovery,
            analysis,
            analysis_rec,
            digest,
        }
    }

    /// A process-independent fingerprint of the program text (name,
    /// instructions, locals, recovery entry), fixed at assembly.
    ///
    /// [`VmProc`](crate::VmProc)'s `Hash` mixes this in — not the `Arc`
    /// address, which differs across OS processes under ASLR — so state
    /// fingerprints agree between a fleet supervisor and the workers it
    /// hands snapshots to.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The static access summary for program point `pc`; with
    /// `include_recovery`, the recovery section's accesses are included
    /// (sound for a process that may still crash).
    pub(crate) fn summary(&self, pc: usize, include_recovery: bool) -> &PcSummary {
        if include_recovery {
            &self.analysis_rec[pc]
        } else {
            &self.analysis[pc]
        }
    }

    /// The instruction index a crashed instance restarts at (see
    /// [`Asm::recovery_here`](crate::Asm::recovery_here)); `0` unless the
    /// program declared a recovery section.
    #[must_use]
    pub fn recovery(&self) -> usize {
        self.recovery
    }

    /// The program's name (for diagnostics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction sequence.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of local variable slots.
    #[must_use]
    pub fn locals_len(&self) -> usize {
        self.local_names.len()
    }

    /// Debug names of the locals, by slot.
    #[must_use]
    pub fn local_names(&self) -> &[String] {
        &self.local_names
    }

    /// Number of memory instructions (a static upper-bound proxy for steps
    /// per straight-line pass).
    #[must_use]
    pub fn memory_instr_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_memory()).count()
    }

    /// A short human-readable label for program point `pc` (the rendered
    /// instruction, truncated), for observability displays such as the
    /// `ftobs` hot-pc table. Out-of-range pcs label as `pc<N>`.
    #[must_use]
    pub fn pc_label(&self, pc: usize) -> String {
        match self.instrs.get(pc) {
            Some(ins) => ins.to_string().chars().take(24).collect(),
            None => format!("pc{pc}"),
        }
    }

    /// Labels for every program point, indexed by pc (see
    /// [`pc_label`](Self::pc_label)).
    #[must_use]
    pub fn pc_labels(&self) -> Vec<String> {
        (0..self.instrs.len()).map(|pc| self.pc_label(pc)).collect()
    }

    /// Number of `Fence` instructions in the program text (static fence
    /// sites, not dynamic fence steps).
    #[must_use]
    pub fn fence_site_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, Instr::Fence))
            .count()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program {} ({} locals)",
            self.name,
            self.local_names.len()
        )?;
        for (i, ins) in self.instrs.iter().enumerate() {
            let marker = if i == self.recovery && self.recovery != 0 {
                " <recovery>"
            } else {
                ""
            };
            writeln!(f, "  @{i:<4} {ins}{marker}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Loc, Src};

    #[test]
    fn counts_and_metadata() {
        let p = Program::from_parts(
            "t".into(),
            vec![
                Instr::Read {
                    addr: Src::Imm(0),
                    dst: Loc(0),
                },
                Instr::Nop,
                Instr::Fence,
                Instr::Return { val: Src::Imm(0) },
            ],
            vec!["x".into()],
        );
        assert_eq!(p.name(), "t");
        assert_eq!(p.instrs().len(), 4);
        assert_eq!(p.locals_len(), 1);
        assert_eq!(p.memory_instr_count(), 3);
        assert_eq!(p.fence_site_count(), 1);
        assert!(p.to_string().contains("fence"));
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn out_of_range_jump_rejected() {
        let _ = Program::from_parts("bad".into(), vec![Instr::Jmp { target: 7 }], vec![]);
    }
}
