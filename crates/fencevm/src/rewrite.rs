//! Program rewriting: fence stripping and fence insertion with pc remapping.
//!
//! The fence-synthesis engine (`crates/synth`) works by *editing* assembled
//! programs: it removes every `fence` from a reference implementation to
//! obtain the unfenced search baseline, then re-inserts fences at candidate
//! sites proposed by counterexample analysis. Both edits shift instruction
//! indices, so every pc-valued piece of program metadata must be remapped
//! together with the instruction vector:
//!
//! * `Jmp`/`JmpIf` targets are redirected to the new index of the
//!   instruction they referenced (a target that was itself removed falls
//!   through to the next surviving instruction);
//! * the crash-recovery entry ([`Program::recovery`]) is remapped the same
//!   way, so crash semantics are preserved across rewrites;
//! * the per-pc access summaries (`Program.analysis` / `analysis_rec`) are
//!   *recomputed* from the rewritten text rather than shifted — fences do
//!   not touch registers, so summaries at mapped pcs must agree with the
//!   originals (unit-tested below), but recomputing is the only way to keep
//!   the backward fixpoint exact by construction.
//!
//! Rewrites return a [`Rewritten`] carrying the translation tables both
//! ways, because counterexamples produced on a rewritten program report pcs
//! in *its* index space and synthesis must translate candidate fence sites
//! back to the baseline's.

use crate::instr::Instr;
use crate::program::Program;

/// A rewritten program plus the pc translation tables of the edit.
#[derive(Clone, Debug)]
pub struct Rewritten {
    /// The rewritten program (summaries and recovery entry recomputed).
    pub program: Program,
    /// For each new pc, the old pc of the instruction that now lives
    /// there; `None` for instructions this rewrite inserted.
    pub new_to_old: Vec<Option<usize>>,
    /// For each old pc, the new pc of that instruction — or, for
    /// instructions the rewrite removed, the new pc control falls through
    /// to (the next surviving instruction).
    pub old_to_new: Vec<usize>,
}

/// Remove every `Fence` instruction from `p`, remapping jump targets and
/// the recovery entry. The result is the synthesis baseline: the same
/// algorithm with no ordering enforced beyond what CAS/swap imply.
///
/// # Panics
///
/// Panics if the program is nothing but fences (no instruction survives) —
/// assembled programs always end in `Return`, so this cannot happen for
/// `Asm`-built programs.
#[must_use]
pub fn strip_fences(p: &Program) -> Rewritten {
    let instrs = p.instrs();
    let keep: Vec<bool> = instrs.iter().map(|i| !matches!(i, Instr::Fence)).collect();
    assert!(
        keep.iter().any(|&k| k),
        "program {}: stripping fences would leave no instructions",
        p.name()
    );
    // old_to_new[j] = number of kept instructions before j; for a removed
    // j this is the index of the next surviving instruction, which is
    // exactly where a jump to j should land.
    let mut old_to_new = Vec::with_capacity(instrs.len());
    let mut kept_before = 0usize;
    for &k in &keep {
        old_to_new.push(kept_before);
        kept_before += usize::from(k);
    }
    let mut new_instrs = Vec::with_capacity(kept_before);
    let mut new_to_old = Vec::with_capacity(kept_before);
    for (j, ins) in instrs.iter().enumerate() {
        if !keep[j] {
            continue;
        }
        new_instrs.push(remap_instr(ins, &old_to_new, instrs.len()));
        new_to_old.push(Some(j));
    }
    let recovery = remap_pc(p.recovery(), &old_to_new, new_instrs.len());
    let program = Program::from_parts_with_recovery(
        p.name().to_string(),
        new_instrs,
        p.local_names().to_vec(),
        recovery,
    );
    Rewritten {
        program,
        new_to_old,
        old_to_new,
    }
}

/// Insert a `Fence` immediately after each pc in `after` (duplicates and
/// order don't matter), remapping jump targets and the recovery entry.
///
/// Jumps keep targeting the instruction they referenced, so a back-edge
/// that targets `a + 1` bypasses a fence inserted after `a`; the
/// synthesis loop's re-check is what validates a placement, so a bypassed
/// fence can cost an extra refinement round but never an unsound accept.
///
/// # Panics
///
/// Panics if any element of `after` is out of range.
#[must_use]
pub fn insert_fences_after(p: &Program, after: &[usize]) -> Rewritten {
    let instrs = p.instrs();
    let mut sites: Vec<usize> = after.to_vec();
    sites.sort_unstable();
    sites.dedup();
    if let Some(&max) = sites.last() {
        assert!(
            max < instrs.len(),
            "program {}: fence insertion site {max} is out of range ({} instructions)",
            p.name(),
            instrs.len()
        );
    }
    let mut old_to_new = Vec::with_capacity(instrs.len());
    let mut inserted_before = 0usize;
    for j in 0..instrs.len() {
        old_to_new.push(j + inserted_before);
        inserted_before += usize::from(sites.binary_search(&j).is_ok());
    }
    let mut new_instrs = Vec::with_capacity(instrs.len() + sites.len());
    let mut new_to_old = Vec::with_capacity(instrs.len() + sites.len());
    for (j, ins) in instrs.iter().enumerate() {
        new_instrs.push(remap_instr(ins, &old_to_new, instrs.len()));
        new_to_old.push(Some(j));
        if sites.binary_search(&j).is_ok() {
            new_instrs.push(Instr::Fence);
            new_to_old.push(None);
        }
    }
    let recovery = remap_pc(p.recovery(), &old_to_new, new_instrs.len());
    let program = Program::from_parts_with_recovery(
        p.name().to_string(),
        new_instrs,
        p.local_names().to_vec(),
        recovery,
    );
    Rewritten {
        program,
        new_to_old,
        old_to_new,
    }
}

/// The pcs of every `Write` instruction — the candidate universe for
/// "fence after this store" placements.
#[must_use]
pub fn write_pcs(p: &Program) -> Vec<usize> {
    p.instrs()
        .iter()
        .enumerate()
        .filter_map(|(pc, i)| matches!(i, Instr::Write { .. }).then_some(pc))
        .collect()
}

/// The pcs of every `Fence` instruction.
#[must_use]
pub fn fence_pcs(p: &Program) -> Vec<usize> {
    p.instrs()
        .iter()
        .enumerate()
        .filter_map(|(pc, i)| matches!(i, Instr::Fence).then_some(pc))
        .collect()
}

fn remap_pc(pc: usize, old_to_new: &[usize], new_len: usize) -> usize {
    let mapped = old_to_new.get(pc).copied().unwrap_or(new_len);
    assert!(
        mapped < new_len,
        "pc {pc} remaps past the end of the rewritten program"
    );
    mapped
}

fn remap_instr(ins: &Instr, old_to_new: &[usize], old_len: usize) -> Instr {
    let map = |t: usize| {
        assert!(t < old_len, "jump target {t} out of range before rewrite");
        old_to_new[t]
    };
    match *ins {
        Instr::Jmp { target } => Instr::Jmp {
            target: map(target),
        },
        Instr::JmpIf { cond, a, b, target } => Instr::JmpIf {
            cond,
            a,
            b,
            target: map(target),
        },
        ref other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    /// A small two-phase program with a loop, a fence, and a recovery
    /// section — enough structure to exercise every remap rule.
    fn sample() -> Program {
        let mut asm = Asm::new("sample");
        let x = asm.local("x");
        let spin = asm.label();
        asm.write(3i64, 1i64); // @0
        asm.fence(); // @1
        asm.bind(spin); // loop head = @2
        asm.read(4i64, x);
        asm.jmp_if(crate::instr::CondOp::Ne, x, 0i64, spin); // @3 -> @2
        asm.write(3i64, 0i64); // @4
        asm.recovery_here(); // recovery = @5
        asm.read(3i64, x); // @5
        asm.ret(0i64); // @6
        asm.assemble()
    }

    #[test]
    fn strip_removes_fences_and_remaps() {
        let p = sample();
        assert_eq!(p.fence_site_count(), 1);
        assert_eq!(p.recovery(), 5);
        let r = strip_fences(&p);
        assert_eq!(r.program.fence_site_count(), 0);
        assert_eq!(r.program.instrs().len(), p.instrs().len() - 1);
        // The loop back-edge must still target the read at the loop head.
        let head = r.old_to_new[2];
        assert!(matches!(
            r.program.instrs()[head + 1],
            Instr::JmpIf { target, .. } if target == head
        ));
        // Recovery still points at the read it pointed at before.
        assert_eq!(r.program.recovery(), r.old_to_new[5]);
        assert!(matches!(
            r.program.instrs()[r.program.recovery()],
            Instr::Read { .. }
        ));
        // Translation tables agree.
        for (new_pc, old) in r.new_to_old.iter().enumerate() {
            let old = old.expect("strip inserts nothing");
            assert_eq!(r.old_to_new[old], new_pc);
        }
    }

    #[test]
    fn insert_places_fences_and_remaps() {
        let p = strip_fences(&sample()).program;
        let writes = write_pcs(&p);
        assert_eq!(writes.len(), 2);
        let r = insert_fences_after(&p, &writes);
        assert_eq!(r.program.fence_site_count(), writes.len());
        for &w in &writes {
            assert!(matches!(
                r.program.instrs()[r.old_to_new[w] + 1],
                Instr::Fence
            ));
            assert_eq!(r.new_to_old[r.old_to_new[w]], Some(w));
            assert_eq!(r.new_to_old[r.old_to_new[w] + 1], None);
        }
        // Recovery tracks the instruction, not the index.
        assert!(matches!(
            r.program.instrs()[r.program.recovery()],
            Instr::Read { .. }
        ));
        assert_eq!(r.program.recovery(), r.old_to_new[p.recovery()]);
    }

    #[test]
    fn insert_is_idempotent_on_duplicates() {
        let p = strip_fences(&sample()).program;
        let w = write_pcs(&p)[0];
        let once = insert_fences_after(&p, &[w]);
        let twice = insert_fences_after(&p, &[w, w]);
        assert_eq!(once.program.instrs(), twice.program.instrs());
    }

    /// Satellite: summaries recomputed after insertion/remapping must agree
    /// with the original program's at every mapped pc — a fence reads and
    /// writes nothing, so the future-access sets are invariant under the
    /// rewrite.
    #[test]
    fn summaries_survive_insertion_at_mapped_pcs() {
        let p = sample();
        let stripped = strip_fences(&p);
        let reinserted = insert_fences_after(&stripped.program, &write_pcs(&stripped.program));
        for (q, r) in [(&p, &stripped), (&stripped.program, &reinserted)] {
            for old_pc in 0..q.instrs().len() {
                if matches!(q.instrs()[old_pc], Instr::Fence) {
                    continue;
                }
                let new_pc = r.old_to_new[old_pc];
                for include_recovery in [false, true] {
                    let a = q.summary(old_pc, include_recovery);
                    let b = r.program.summary(new_pc, include_recovery);
                    assert_eq!(
                        a.reads,
                        b.reads,
                        "{}: reads summary diverged at pc {old_pc} -> {new_pc}",
                        q.name()
                    );
                    assert_eq!(
                        a.writes,
                        b.writes,
                        "{}: writes summary diverged at pc {old_pc} -> {new_pc}",
                        q.name()
                    );
                    assert_eq!(a.reads_all, b.reads_all);
                    assert_eq!(a.writes_all, b.writes_all);
                }
            }
        }
    }

    /// Satellite: recovery-folded summaries (`analysis_rec`) stay
    /// consistent after rewriting a program whose recovery entry is not 0.
    #[test]
    fn recovery_summaries_consistent_after_rewrite() {
        let p = sample();
        let r = insert_fences_after(&p, &write_pcs(&p));
        // The recovery section reads register 3; every recovery-folded
        // summary must therefore contain it, before and after the rewrite.
        for pc in 0..r.program.instrs().len() {
            assert!(
                r.program.summary(pc, true).reads.contains(wbmem::RegId(3)),
                "recovery read of r3 missing from folded summary at pc {pc}"
            );
        }
    }

    #[test]
    fn write_and_fence_pcs_enumerate() {
        let p = sample();
        assert_eq!(write_pcs(&p), vec![0, 4]);
        assert_eq!(fence_pcs(&p), vec![1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_rejects_out_of_range_site() {
        let p = sample();
        let _ = insert_fences_after(&p, &[p.instrs().len()]);
    }
}
