//! The interpreter: a [`Program`] instance implementing [`wbmem::Process`].

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use wbmem::{AccessSet, FutureAccess, Poised, Process, RegId, Value};

use crate::instr::{Instr, Loc, Src};
use crate::program::Program;

/// Safety bound on consecutive internal instructions: a loop with no memory
/// instruction in its body is a programming error (the machine could never
/// schedule it fairly), so the interpreter panics rather than spinning.
const MAX_INTERNAL_RUN: usize = 1_000_000;

/// One executing instance of a [`Program`].
///
/// The interpreter maintains the invariant that between machine steps the
/// program counter always rests on a *memory* instruction (or just past a
/// `Return`): internal instructions are executed eagerly — they model free
/// local computation.
///
/// Equality and hashing cover the dynamic state (pc, locals, annotation)
/// plus the identity of the shared program, making `VmProc` usable as a
/// model-checker state component. States of processes running *different*
/// program instances compare unequal even if textually identical.
#[derive(Clone, Debug)]
pub struct VmProc {
    prog: Arc<Program>,
    pc: usize,
    locals: Vec<i64>,
    annot: u64,
}

impl VmProc {
    /// Start `prog` at its first instruction with zeroed locals.
    #[must_use]
    pub fn new(prog: Arc<Program>) -> Self {
        let locals = vec![0; prog.locals_len()];
        let mut p = VmProc {
            prog,
            pc: 0,
            locals,
            annot: 0,
        };
        p.settle();
        p
    }

    /// The underlying program.
    #[must_use]
    pub fn program(&self) -> &Arc<Program> {
        &self.prog
    }

    /// The current program counter (always at a memory instruction or a
    /// `Return`).
    #[must_use]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Current value of a local variable (for tests and debugging).
    #[must_use]
    pub fn local(&self, l: Loc) -> i64 {
        self.locals[l.0]
    }

    fn eval(&self, src: Src) -> i64 {
        match src {
            Src::Imm(x) => x,
            Src::Loc(l) => self.locals[l.0],
        }
    }

    fn eval_reg(&self, src: Src) -> RegId {
        let x = self.eval(src);
        let id = u32::try_from(x).unwrap_or_else(|_| {
            panic!(
                "program {}: invalid register id {x} at pc {}",
                self.prog.name(),
                self.pc
            )
        });
        RegId(id)
    }

    fn eval_nonneg(&self, src: Src) -> u64 {
        let x = self.eval(src);
        u64::try_from(x).unwrap_or_else(|_| {
            panic!(
                "program {}: negative value {x} at pc {}",
                self.prog.name(),
                self.pc
            )
        })
    }

    /// Execute internal instructions until the pc rests on a memory
    /// instruction (or past the end, which only happens after `Return`).
    fn settle(&mut self) {
        for _ in 0..MAX_INTERNAL_RUN {
            let Some(ins) = self.prog.instrs().get(self.pc) else {
                panic!(
                    "program {} fell off the end without a return",
                    self.prog.name()
                );
            };
            match *ins {
                Instr::Read { .. }
                | Instr::Write { .. }
                | Instr::Fence
                | Instr::Cas { .. }
                | Instr::Swap { .. }
                | Instr::Return { .. } => {
                    return;
                }
                Instr::Mov { dst, src } => {
                    self.locals[dst.0] = self.eval(src);
                    self.pc += 1;
                }
                Instr::Bin { op, dst, a, b } => {
                    self.locals[dst.0] = op.apply(self.eval(a), self.eval(b));
                    self.pc += 1;
                }
                Instr::Jmp { target } => self.pc = target,
                Instr::JmpIf { cond, a, b, target } => {
                    if cond.eval(self.eval(a), self.eval(b)) {
                        self.pc = target;
                    } else {
                        self.pc += 1;
                    }
                }
                Instr::Annot { value } => {
                    self.annot = value;
                    self.pc += 1;
                }
                Instr::Nop => self.pc += 1,
            }
        }
        panic!(
            "program {}: more than {MAX_INTERNAL_RUN} consecutive internal instructions \
             (loop without a memory operation?)",
            self.prog.name()
        );
    }
}

impl Process for VmProc {
    fn poised(&self) -> Poised {
        match self.prog.instrs()[self.pc] {
            Instr::Read { addr, .. } => Poised::Read(self.eval_reg(addr)),
            Instr::Write { addr, val } => {
                Poised::Write(self.eval_reg(addr), Value::Int(self.eval_nonneg(val)))
            }
            Instr::Fence => Poised::Fence,
            Instr::Cas {
                addr,
                expected,
                new,
                ..
            } => Poised::Cas {
                reg: self.eval_reg(addr),
                expected: self.eval_nonneg(expected),
                new: Value::Int(self.eval_nonneg(new)),
            },
            Instr::Swap { addr, new, .. } => Poised::Swap {
                reg: self.eval_reg(addr),
                new: Value::Int(self.eval_nonneg(new)),
            },
            Instr::Return { val } => Poised::Return(self.eval_nonneg(val)),
            ref other => unreachable!(
                "program {}: pc rests on internal instruction {other:?}",
                self.prog.name()
            ),
        }
    }

    fn advance(&mut self, read_value: Option<Value>) {
        match self.prog.instrs()[self.pc] {
            Instr::Read { dst, .. } | Instr::Cas { dst, .. } | Instr::Swap { dst, .. } => {
                let v = read_value.expect("read/cas step must supply the observed value");
                let payload = i64::try_from(v.payload()).expect("payload fits in i64");
                self.locals[dst.0] = payload;
            }
            Instr::Write { .. } | Instr::Fence => {
                debug_assert!(read_value.is_none());
            }
            Instr::Return { .. } => {
                // The machine records returns itself and never calls
                // advance for them; reaching this arm is a driver bug.
                panic!("advance called on a return instruction");
            }
            ref other => unreachable!("advance on internal instruction {other:?}"),
        }
        self.pc += 1;
        self.settle();
    }

    fn annotation(&self) -> u64 {
        self.annot
    }

    fn obs_pc(&self) -> Option<u32> {
        u32::try_from(self.pc).ok()
    }

    fn future_access(&self, include_recovery: bool) -> FutureAccess<'_> {
        let s = self.prog.summary(self.pc, include_recovery);
        FutureAccess {
            reads: if s.reads_all {
                AccessSet::All
            } else {
                AccessSet::Set(&s.reads)
            },
            writes: if s.writes_all {
                AccessSet::All
            } else {
                AccessSet::Set(&s.writes)
            },
        }
    }

    fn op_may_annotate(&self) -> bool {
        self.prog.summary(self.pc, false).annot_next
    }

    fn recoverable(&self) -> bool {
        true
    }

    fn crash_recover(&mut self) {
        // A crash wipes all volatile state: locals, annotation, and the
        // program counter, which restarts at the declared recovery section
        // (the program start by default).
        self.pc = self.prog.recovery();
        self.locals.iter_mut().for_each(|l| *l = 0);
        self.annot = 0;
        self.settle();
    }
}

impl PartialEq for VmProc {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.prog, &other.prog)
            && self.pc == other.pc
            && self.locals == other.locals
            && self.annot == other.annot
    }
}

impl Eq for VmProc {}

impl Hash for VmProc {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The program's content digest, not the Arc address: addresses
        // differ across OS processes (ASLR), and lease-based exploration
        // compares state fingerprints computed in different processes.
        // Equality stays instance-based (`Arc::ptr_eq`); equal instances
        // share a digest, so the Hash/Eq contract holds.
        self.prog.digest().hash(state);
        self.pc.hash(state);
        self.locals.hash(state);
        self.annot.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::instr::CondOp;
    use wbmem::{Machine, MachineConfig, MemoryLayout, MemoryModel, ProcId, SchedElem};

    fn pso() -> MachineConfig {
        MachineConfig::new(MemoryModel::Pso, MemoryLayout::unowned())
    }

    #[test]
    fn straight_line_program_runs() {
        let mut asm = Asm::new("t");
        let x = asm.local("x");
        asm.mov(x, 20i64);
        asm.add(x, x, 22i64);
        asm.write(0i64, x);
        asm.fence();
        asm.ret(x);
        let mut m = Machine::new(pso(), vec![VmProc::new(asm.assemble().into())]);
        m.run_solo(ProcId(0), 100);
        assert_eq!(m.return_value(ProcId(0)), Some(42));
        assert_eq!(m.memory(RegId(0)).payload(), 42);
    }

    #[test]
    fn spin_loop_reads_until_value_appears() {
        // p0 spins on register 0 until it reads 1; p1 writes it.
        let mut a = Asm::new("spinner");
        let t = a.local("t");
        let spin = a.here();
        a.read(0i64, t);
        a.jmp_if(CondOp::Ne, t, 1i64, spin);
        a.ret(7i64);
        let spinner = VmProc::new(a.assemble().into());

        let mut b = Asm::new("writer");
        b.write(0i64, 1i64);
        b.fence();
        b.ret(0i64);
        let writer = VmProc::new(b.assemble().into());

        let mut m = Machine::new(pso(), vec![spinner, writer]);
        // Spin twice with nothing there.
        m.step(SchedElem::op(ProcId(0)));
        m.step(SchedElem::op(ProcId(0)));
        assert_eq!(m.return_value(ProcId(0)), None);
        // Writer publishes.
        m.run_solo(ProcId(1), 10);
        // Spinner now observes 1 and returns.
        m.run_solo(ProcId(0), 10);
        assert_eq!(m.return_value(ProcId(0)), Some(7));
    }

    #[test]
    fn dynamic_addressing_walks_an_array() {
        // Sum registers base..base+3 (initialized via init_reg).
        let mut a = Asm::new("sum");
        let (i, acc, addr, t) = {
            let i = a.local("i");
            let acc = a.local("acc");
            let addr = a.local("addr");
            let t = a.local("t");
            (i, acc, addr, t)
        };
        let done = a.label();
        let head = a.here();
        a.jmp_if(CondOp::Ge, i, 3i64, done);
        a.add(addr, i, 10i64); // base = 10
        a.read(addr, t);
        a.add(acc, acc, t);
        a.add(i, i, 1i64);
        a.jmp(head);
        a.bind(done);
        a.ret(acc);
        let mut m = Machine::new(pso(), vec![VmProc::new(a.assemble().into())]);
        for (k, v) in [(10u32, 5u64), (11, 6), (12, 7)] {
            m.init_reg(RegId(k), Value::Int(v));
        }
        m.run_solo(ProcId(0), 100);
        assert_eq!(m.return_value(ProcId(0)), Some(18));
    }

    #[test]
    fn annotation_tracks_annot_instrs() {
        let mut a = Asm::new("annots");
        a.annot(1);
        a.fence(); // memory step so we can observe the annotation
        a.annot(0);
        a.ret(0i64);
        let p = VmProc::new(a.assemble().into());
        assert_eq!(
            p.annotation(),
            1,
            "annot before first memory instr applies at init"
        );
        let mut m = Machine::new(pso(), vec![p]);
        m.step(SchedElem::op(ProcId(0)));
        assert_eq!(
            m.annotation(ProcId(0)),
            0,
            "after fence, annot 0 was settled"
        );
    }

    #[test]
    fn equality_and_hash_depend_on_dynamic_state() {
        let mut a = Asm::new("two_reads");
        let t = a.local("t");
        a.read(0i64, t);
        a.read(0i64, t);
        a.ret(0i64);
        let prog: Arc<Program> = a.assemble().into();
        let p1 = VmProc::new(prog.clone());
        let mut p2 = VmProc::new(prog);
        assert_eq!(p1, p2);
        p2.advance(Some(Value::Int(3)));
        assert_ne!(p1, p2);
    }

    #[test]
    fn instances_of_equal_but_distinct_programs_differ() {
        let build = || {
            let mut a = Asm::new("same");
            a.ret(0i64);
            VmProc::new(a.assemble().into())
        };
        assert_ne!(build(), build(), "identity is per program instance");
    }

    #[test]
    fn cas_program_branches_on_observed_value() {
        // Increment a register atomically via a CAS retry loop.
        let mut a = Asm::new("cas_incr");
        let seen = a.local("seen");
        let next = a.local("next");
        let retry = a.here();
        a.read(0i64, seen);
        a.add(next, seen, 1i64);
        let obs = a.local("obs");
        a.cas(0i64, seen, next, obs);
        a.jmp_if(CondOp::Ne, obs, seen, retry);
        a.ret(next);
        let mut m = Machine::new(pso(), vec![VmProc::new(a.assemble().into())]);
        m.init_reg(RegId(0), Value::Int(41));
        m.run_solo(ProcId(0), 100);
        assert_eq!(m.return_value(ProcId(0)), Some(42));
        assert_eq!(m.memory(RegId(0)).payload(), 42);
    }

    #[test]
    fn swap_program_observes_and_stores() {
        let mut a = Asm::new("swapper");
        let old = a.local("old");
        a.swap(3i64, 9i64, old);
        a.ret(old);
        let mut m = Machine::new(pso(), vec![VmProc::new(a.assemble().into())]);
        m.init_reg(RegId(3), Value::Int(7));
        m.run_solo(ProcId(0), 100);
        assert_eq!(m.return_value(ProcId(0)), Some(7));
        assert_eq!(m.memory(RegId(3)).payload(), 9);
    }

    #[test]
    fn program_display_covers_all_instructions() {
        let mut a = Asm::new("display");
        let t = a.local("t");
        a.read(0i64, t);
        a.write(1i64, t);
        a.cas(2i64, 0i64, 1i64, t);
        a.swap(3i64, 5i64, t);
        a.fence();
        a.annot(1);
        a.nop();
        a.ret(0i64);
        let text = a.assemble().to_string();
        for needle in [
            "read", "write", "cas", "swap", "fence", "annot", "nop", "ret",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn crash_recovery_restarts_at_the_recovery_entry() {
        // Normal path writes R0 and returns 0; the recovery section writes
        // R1 and returns 1. A crash after the (buffered, discarded) first
        // write must land in the recovery section with wiped locals.
        let mut a = Asm::new("recoverer");
        let t = a.local("t");
        a.mov(t, 5i64);
        a.write(0i64, 1i64);
        a.fence();
        a.ret(0i64);
        a.recovery_here();
        a.write(1i64, 9i64);
        a.fence();
        a.ret(1i64);
        let prog: Arc<Program> = a.assemble().into();
        assert_eq!(prog.recovery(), 4);
        let cfg = MachineConfig::new(MemoryModel::Pso, MemoryLayout::unowned())
            .with_crashes(wbmem::CrashSemantics::DiscardBuffer, 1);
        let mut m = Machine::new(cfg, vec![VmProc::new(prog)]);
        m.step(SchedElem::op(ProcId(0))); // write enters the buffer
        m.step(SchedElem::crash(ProcId(0)));
        m.run_solo(ProcId(0), 100);
        assert_eq!(m.return_value(ProcId(0)), Some(1), "recovery path ran");
        assert!(m.memory(RegId(0)).is_bot(), "buffered write was lost");
        assert_eq!(m.memory(RegId(1)).payload(), 9);
    }

    #[test]
    fn crash_recovery_defaults_to_the_program_start() {
        let mut a = Asm::new("restart");
        let t = a.local("t");
        a.read(0i64, t);
        a.ret(0i64);
        let prog: Arc<Program> = a.assemble().into();
        assert_eq!(prog.recovery(), 0);
        let mut p = VmProc::new(prog.clone());
        p.advance(Some(Value::Int(3)));
        assert_eq!(p.local(t), 3);
        p.crash_recover();
        assert_eq!(p, VmProc::new(prog), "recovery resets to the initial state");
    }

    #[test]
    fn future_access_tracks_pc_and_recovery() {
        let mut a = Asm::new("fa");
        let t = a.local("t");
        a.read(0i64, t);
        a.annot(1);
        a.write(1i64, t);
        a.fence();
        a.ret(0i64);
        a.recovery_here();
        a.write(2i64, 7i64);
        a.fence();
        a.ret(1i64);
        let mut p = VmProc::new(a.assemble().into());
        let fa = p.future_access(false);
        assert!(fa.reads.may_contain(RegId(0)) && fa.writes.may_contain(RegId(1)));
        assert!(!fa.writes.may_contain(RegId(2)), "recovery excluded");
        assert!(
            p.future_access(true).writes.may_contain(RegId(2)),
            "recovery included on demand"
        );
        assert!(p.op_may_annotate(), "advancing past the read runs annot(1)");
        p.advance(Some(Value::Int(0)));
        let fa = p.future_access(false);
        assert!(!fa.reads.may_contain(RegId(0)), "the read is behind us");
        assert!(!p.op_may_annotate());
    }

    #[test]
    #[should_panic(expected = "consecutive internal instructions")]
    fn infinite_internal_loop_is_detected() {
        let mut a = Asm::new("tight");
        let head = a.here();
        a.nop();
        a.jmp(head);
        a.ret(0i64);
        let _ = VmProc::new(a.assemble().into());
    }

    #[test]
    #[should_panic(expected = "invalid register id")]
    fn negative_register_id_panics() {
        let mut a = Asm::new("bad_addr");
        let t = a.local("t");
        a.read(-1i64, t);
        a.ret(0i64);
        let p = VmProc::new(a.assemble().into());
        let _ = p.poised();
    }
}
