//! Property-based tests for the IR interpreter.

use proptest::prelude::*;

use fencevm::{Asm, BinOp, CondOp, VmProc};
use wbmem::{Machine, MachineConfig, MemoryLayout, MemoryModel, ProcId, RegId, Value};

fn pso() -> MachineConfig {
    MachineConfig::new(MemoryModel::Pso, MemoryLayout::unowned())
}

proptest! {
    /// Straight-line arithmetic programs compute the same result as a
    /// direct Rust evaluation.
    #[test]
    fn arithmetic_matches_oracle(
        init in 0i64..1000,
        steps in prop::collection::vec((0u8..5, 1i64..50), 0..30),
    ) {
        let mut asm = Asm::new("arith");
        let x = asm.local("x");
        asm.mov(x, init);
        let mut oracle = init;
        for &(op, k) in &steps {
            let (binop, res) = match op {
                0 => (BinOp::Add, oracle + k),
                1 => (BinOp::Sub, oracle - k),
                2 => (BinOp::Mul, oracle.saturating_mul(k).min(1 << 40)),
                3 => (BinOp::Min, oracle.min(k)),
                _ => (BinOp::Max, oracle.max(k)),
            };
            // Keep the multiply bounded so the oracle matches exactly.
            if op == 2 && !(-(1 << 20)..=1 << 20).contains(&oracle) {
                continue;
            }
            asm.bin(binop, x, x, k);
            oracle = if op == 2 { oracle * k } else { res };
        }
        // Return values must be non-negative.
        let final_val = oracle.rem_euclid(1_000_000);
        asm.rem(x, x, 1_000_000i64);
        let nonneg = asm.local("nonneg");
        asm.mov(nonneg, x);
        let done = asm.label();
        asm.jmp_if(CondOp::Ge, nonneg, 0i64, done);
        asm.add(nonneg, nonneg, 1_000_000i64);
        asm.bind(done);
        asm.ret(nonneg);

        let mut m = Machine::new(pso(), vec![VmProc::new(asm.assemble().into())]);
        m.run_solo(ProcId(0), 100);
        prop_assert_eq!(m.return_value(ProcId(0)), Some(final_val.rem_euclid(1_000_000) as u64));
    }

    /// Write-then-read through the machine round-trips any payload, at any
    /// register, under any model.
    #[test]
    fn write_read_roundtrip(
        reg in 0u32..1000,
        val in 0u64..1_000_000,
        model in prop::sample::select(vec![MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso]),
    ) {
        let mut asm = Asm::new("rw");
        let t = asm.local("t");
        asm.write(i64::from(reg), val as i64);
        asm.fence();
        asm.read(i64::from(reg), t);
        asm.ret(t);
        let cfg = MachineConfig::new(model, MemoryLayout::unowned());
        let mut m = Machine::new(cfg, vec![VmProc::new(asm.assemble().into())]);
        m.run_solo(ProcId(0), 100);
        prop_assert_eq!(m.return_value(ProcId(0)), Some(val));
        prop_assert_eq!(m.memory(RegId(reg)).payload(), val);
    }

    /// Interpreters are deterministic: equal programs driven by equal read
    /// values stay equal (state equality).
    #[test]
    fn interpretation_is_deterministic(reads in prop::collection::vec(0u64..100, 1..10)) {
        let mut asm = Asm::new("reader");
        let t = asm.local("t");
        let acc = asm.local("acc");
        for _ in 0..reads.len() {
            asm.read(0i64, t);
            asm.add(acc, acc, t);
        }
        asm.ret(acc);
        let prog: std::sync::Arc<fencevm::Program> = asm.assemble().into();
        let mut a = VmProc::new(prog.clone());
        let mut b = VmProc::new(prog);
        use wbmem::Process as _;
        for &r in &reads {
            prop_assert_eq!(&a, &b);
            a.advance(Some(Value::Int(r)));
            b.advance(Some(Value::Int(r)));
        }
        prop_assert_eq!(a, b);
    }

    /// A counting loop executes exactly `k` iterations.
    #[test]
    fn loops_iterate_exactly(k in 0i64..200) {
        let mut asm = Asm::new("loop");
        let i = asm.local("i");
        let acc = asm.local("acc");
        let done = asm.label();
        let head = asm.here();
        asm.jmp_if(CondOp::Ge, i, k, done);
        asm.add(acc, acc, 2i64);
        asm.add(i, i, 1i64);
        // A memory op inside the loop keeps the interpreter honest about
        // resuming mid-loop.
        asm.write(5i64, i);
        asm.jmp(head);
        asm.bind(done);
        asm.ret(acc);
        let mut m = Machine::new(pso(), vec![VmProc::new(asm.assemble().into())]);
        m.run_solo(ProcId(0), 10_000);
        prop_assert_eq!(m.return_value(ProcId(0)), Some((2 * k) as u64));
    }
}
