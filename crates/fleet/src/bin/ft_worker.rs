//! `ft_worker` — one lease, one process.
//!
//! Usage (spawned by the fleet supervisor, not by hand):
//!
//! ```text
//! ft_worker <job> <lease> <result> <heartbeat> <lease_id> <attempt>
//! ```
//!
//! Reads the job spec and the lease snapshot, runs the seeded sweep via
//! [`modelcheck::run_lease`], and commits the delta result atomically.
//! Exit codes: 0 = result committed; 2 = error (bad arguments, bad job,
//! bad lease, metadata mismatch, panic inside the sweep); 3 = injected
//! startup fault; 4 = injected torn-commit fault. The supervisor treats
//! any exit without a valid result file as a fault — these codes exist
//! for the chaos harness's logs, not for control flow.
//!
//! The heartbeat file is rewritten with an incrementing counter several
//! times per `heartbeat_ms`; the supervisor kills a worker whose
//! counter stops changing. Under injected heartbeat chaos the worker
//! emits two beats and then goes silent *while continuing to work* —
//! the stall-detection path, not the crash path.

use std::process::exit;

use ftfleet::{encode_result, write_atomic_bytes, ChaosPoint, ChaosSpec};
use modelcheck::run_lease;
use por::Snapshot;

fn fail(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("ft_worker: {context}: {err}");
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 6 {
        fail(
            "usage",
            "ft_worker <job> <lease> <result> <hb> <lease_id> <attempt>",
        );
    }
    let (job_path, lease_path, result_path, hb_path) = (&args[0], &args[1], &args[2], &args[3]);
    let lease_id: u64 = match args[4].parse() {
        Ok(v) => v,
        Err(e) => fail("lease id", e),
    };
    let attempt: u32 = match args[5].parse() {
        Ok(v) => v,
        Err(e) => fail("attempt", e),
    };
    let chaos = match ChaosSpec::from_env() {
        Ok(c) => c,
        Err(e) => fail("FT_CHAOS", e),
    };

    if chaos
        .as_ref()
        .is_some_and(|c| c.hit(ChaosPoint::Startup, lease_id, attempt))
    {
        // Injected startup fault: die before doing any work.
        exit(3);
    }

    let job_text = match std::fs::read_to_string(job_path) {
        Ok(t) => t,
        Err(e) => fail("read job", e),
    };
    let job = match ftfleet::JobSpec::parse(&job_text) {
        Ok(j) => j,
        Err(e) => fail("parse job", e),
    };

    // Heartbeat pulse, several beats per supervisor period. Under
    // injected heartbeat chaos: two beats, then silence (the process
    // keeps exploring — the supervisor must stall-kill it).
    let beat_silent = chaos
        .as_ref()
        .is_some_and(|c| c.hit(ChaosPoint::Heartbeat, lease_id, attempt));
    let hb = hb_path.clone();
    let period = std::time::Duration::from_millis((job.heartbeat_ms / 3).max(1));
    std::thread::spawn(move || {
        let mut counter: u64 = 0;
        loop {
            counter += 1;
            let _ = std::fs::write(&hb, counter.to_string());
            if beat_silent && counter >= 2 {
                return;
            }
            std::thread::sleep(period);
        }
    });

    let lease = match Snapshot::read(std::path::Path::new(lease_path)) {
        Ok(s) => s,
        Err(e) => fail("read lease", e),
    };

    let machine = job.program.machine();
    let config = job.config(ftobs::Recorder::enabled());
    let outcome = match run_lease(&machine, &config, lease) {
        Ok(o) => o,
        Err(e) => fail("run lease", e),
    };

    let bytes = encode_result(lease_id, attempt, outcome.status, &outcome.result);
    if chaos
        .as_ref()
        .is_some_and(|c| c.hit(ChaosPoint::Commit, lease_id, attempt))
    {
        // Injected torn commit: half the bytes, written straight at the
        // final path with no rename, then death — the worst `kill -9`
        // can do. The wire checksum must make the supervisor reject it.
        let _ = std::fs::write(result_path, &bytes[..bytes.len() / 2]);
        exit(4);
    }
    if let Err(e) = write_atomic_bytes(std::path::Path::new(result_path), &bytes) {
        fail("commit result", e);
    }
}
