//! Deterministic fault injection for the fleet (`FT_CHAOS`).
//!
//! A fleet that only meets worker crashes in production has untested
//! recovery paths; this module makes the failures reproducible. The
//! `FT_CHAOS` environment variable names injection **points** plus an
//! injection percentage and a seed:
//!
//! ```text
//! FT_CHAOS=<point>[,<point>...][:<percent>[:<seed>]]
//! FT_CHAOS=startup                 # every worker dies before working
//! FT_CHAOS=commit:40:7             # 40% of commits torn, seed 7
//! FT_CHAOS=startup,heartbeat,commit:30
//! ```
//!
//! Whether a given `(point, lease, attempt)` injects is a pure hash of
//! the seed and those coordinates — no clocks, no RNG state — so a
//! chaotic run is exactly reproducible, and retries of the same lease
//! make independent draws (attempt is part of the hash). The three
//! points cover the failure taxonomy's distinct branches:
//!
//! * [`ChaosPoint::Startup`] — the worker exits before doing any work
//!   (spawn failures, missing binaries, OOM kills at exec).
//! * [`ChaosPoint::Heartbeat`] — the worker keeps running but stops
//!   beating (livelock, scheduler starvation); the supervisor must
//!   stall-detect and kill it.
//! * [`ChaosPoint::Commit`] — the worker writes *half* its result file
//!   non-atomically and dies (`kill -9` mid-write); the supervisor must
//!   reject the torn file.
//!
//! Injection can never produce a wrong verdict — only lost attempts.
//! Even `percent: 100` on every point just poisons every lease, and the
//! supervisor's in-process degradation still completes the run exactly;
//! the chaos differential suite relies on this to avoid probability
//! tuning.

use por::fnv1a;

/// A named fault-injection point in the worker lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosPoint {
    /// Exit before reading the lease.
    Startup,
    /// Stop emitting heartbeats after the first couple.
    Heartbeat,
    /// Write a torn result file and die.
    Commit,
}

impl ChaosPoint {
    fn tag(self) -> u8 {
        match self {
            ChaosPoint::Startup => 1,
            ChaosPoint::Heartbeat => 2,
            ChaosPoint::Commit => 3,
        }
    }
}

/// A parsed `FT_CHAOS` specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Inject at worker startup.
    pub startup: bool,
    /// Inject in the heartbeat loop.
    pub heartbeat: bool,
    /// Inject at result commit.
    pub commit: bool,
    /// Injection probability per (point, lease, attempt), in percent.
    pub percent: u8,
    /// Hash seed; different seeds produce different (but individually
    /// deterministic) fault patterns.
    pub seed: u64,
}

impl ChaosSpec {
    /// Parse the `FT_CHAOS` syntax (see module docs). Percent defaults
    /// to 100, seed to 0.
    ///
    /// # Errors
    ///
    /// A message naming the offending token.
    pub fn parse(s: &str) -> Result<ChaosSpec, String> {
        let mut parts = s.split(':');
        let points = parts.next().unwrap_or("");
        let percent = match parts.next() {
            None => 100,
            Some(p) => {
                let v: u8 = p
                    .parse()
                    .map_err(|e| format!("bad chaos percent `{p}`: {e}"))?;
                if v > 100 {
                    return Err(format!("chaos percent {v} > 100"));
                }
                v
            }
        };
        let seed = match parts.next() {
            None => 0,
            Some(p) => p
                .parse()
                .map_err(|e| format!("bad chaos seed `{p}`: {e}"))?,
        };
        if parts.next().is_some() {
            return Err(format!("trailing chaos fields in `{s}`"));
        }
        let mut spec = ChaosSpec {
            startup: false,
            heartbeat: false,
            commit: false,
            percent,
            seed,
        };
        for point in points.split(',') {
            match point {
                "startup" => spec.startup = true,
                "heartbeat" => spec.heartbeat = true,
                "commit" => spec.commit = true,
                other => return Err(format!("unknown chaos point `{other}`")),
            }
        }
        Ok(spec)
    }

    /// Read `FT_CHAOS` from the environment. `Ok(None)` when unset or
    /// empty; a set-but-malformed value is an error (typos must not
    /// silently disable the chaos a test asked for).
    ///
    /// # Errors
    ///
    /// Any parse failure from [`ChaosSpec::parse`].
    pub fn from_env() -> Result<Option<ChaosSpec>, String> {
        match std::env::var("FT_CHAOS") {
            Ok(v) if !v.is_empty() => ChaosSpec::parse(&v).map(Some),
            _ => Ok(None),
        }
    }

    /// Whether to inject a fault at `point` for this lease attempt.
    /// Deterministic in `(seed, point, lease_id, attempt)`.
    #[must_use]
    pub fn hit(&self, point: ChaosPoint, lease_id: u64, attempt: u32) -> bool {
        let enabled = match point {
            ChaosPoint::Startup => self.startup,
            ChaosPoint::Heartbeat => self.heartbeat,
            ChaosPoint::Commit => self.commit,
        };
        if !enabled {
            return false;
        }
        let mut bytes = [0u8; 21];
        bytes[..8].copy_from_slice(&self.seed.to_le_bytes());
        bytes[8] = point.tag();
        bytes[9..17].copy_from_slice(&lease_id.to_le_bytes());
        bytes[17..21].copy_from_slice(&attempt.to_le_bytes());
        (fnv1a(&bytes) % 100) < u64::from(self.percent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_forms() {
        let s = ChaosSpec::parse("startup").expect("parse");
        assert!(s.startup && !s.heartbeat && !s.commit);
        assert_eq!((s.percent, s.seed), (100, 0));

        let s = ChaosSpec::parse("commit:40:7").expect("parse");
        assert!(s.commit && !s.startup);
        assert_eq!((s.percent, s.seed), (40, 7));

        let s = ChaosSpec::parse("startup,heartbeat,commit:30").expect("parse");
        assert!(s.startup && s.heartbeat && s.commit);
        assert_eq!((s.percent, s.seed), (30, 0));

        for bad in ["", "teardown", "startup:101", "startup:x", "startup:1:2:3"] {
            assert!(ChaosSpec::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn hits_are_deterministic_and_roughly_proportional() {
        let spec = ChaosSpec::parse("commit:50:3").expect("parse");
        let a: Vec<bool> = (0..200)
            .map(|i| spec.hit(ChaosPoint::Commit, i, 0))
            .collect();
        let b: Vec<bool> = (0..200)
            .map(|i| spec.hit(ChaosPoint::Commit, i, 0))
            .collect();
        assert_eq!(a, b, "same coordinates must draw the same fault");
        let hits = a.iter().filter(|&&h| h).count();
        assert!((50..=150).contains(&hits), "50% of 200 drew {hits}");
        // Disabled points never fire, whatever the percent.
        assert!(!spec.hit(ChaosPoint::Startup, 0, 0));
        // Retries draw independently: some attempt differs from attempt 0.
        assert!((0..32).any(|at| spec.hit(ChaosPoint::Commit, 11, at) != a[11]));
    }

    #[test]
    fn full_percent_always_fires() {
        let spec = ChaosSpec::parse("startup,heartbeat,commit").expect("parse");
        for id in 0..50 {
            for at in 0..4 {
                assert!(spec.hit(ChaosPoint::Startup, id, at));
                assert!(spec.hit(ChaosPoint::Heartbeat, id, at));
                assert!(spec.hit(ChaosPoint::Commit, id, at));
            }
        }
    }
}
