//! # ftfleet — the fault-tolerant multi-process exploration fleet
//!
//! Partitions an exploration run into **lease-scoped work units** and
//! farms them out to supervised worker OS processes (`ft_worker`), each
//! re-entering the seeded work-stealing engine via
//! [`modelcheck::lease::run_lease`]. The supervisor tolerates worker
//! crashes, stalls, and `kill -9` mid-write without losing soundness:
//!
//! * **Leases** ([`spec`], [`wire`]) — each lease is a [`por::Snapshot`]
//!   carrying a frontier slice plus the accepted visited-state seed;
//!   results come back as delta snapshots in a checksummed wire format.
//!   Both directions use atomic tmp+fsync+rename writes, so a torn
//!   result is *detected and re-leased*, never accepted.
//! * **Supervision** ([`supervisor`]) — heartbeat files with deadlines,
//!   exponential-backoff retry, work reassignment on worker death or
//!   stall, and a bounded attempt budget after which a lease is
//!   **poisoned** and the run degrades to in-process completion of the
//!   leftover frontier. Verdict discipline mirrors the in-process
//!   engines: violations and state-limit overruns cancel the fleet and
//!   rerun sequentially; budget exhaustion merges partial coverages into
//!   one `Inconclusive`.
//! * **Exactness** — results are accepted in deterministic lease order,
//!   and any result whose newly claimed fingerprints intersect
//!   previously accepted claims is rejected and re-leased with the
//!   updated seed. An accepted chain is therefore bit-identical to a
//!   sequential resume chain, so in diagnostic mode the merged
//!   [`ftobs::MetricsSnapshot`] equals a fresh single-process run's —
//!   the property the chaos differential suite pins down.
//! * **Chaos** ([`chaos`]) — `FT_CHAOS` injects deterministic faults at
//!   worker startup, heartbeat emission, and result commit, so the
//!   failure paths above are exercised on every CI run, not only when
//!   the real world obliges.
//!
//! See `DESIGN.md` §7c for the lease lifecycle, the failure taxonomy,
//! and the degradation ladder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod spec;
pub mod supervisor;
pub mod wire;

pub use chaos::{ChaosPoint, ChaosSpec};
pub use spec::{JobSpec, ProgramSpec};
pub use supervisor::{locate_worker, run_fleet, FleetConfig, FleetReport, FleetStats};
pub use wire::{decode_result, encode_result, read_result, write_atomic_bytes, WireResult};
