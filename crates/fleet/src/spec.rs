//! Job specifications: the program + configuration a worker process
//! reconstructs from a plain-text job file.
//!
//! The supervisor and its workers are separate OS processes, so the
//! *entire* check — which lock, how many processes, which fence sites,
//! which memory model, which properties and bounds — must round-trip
//! through a file. The format is deliberately boring: a `ftfleet-job v1`
//! header followed by `key value` lines, one per field, no quoting, no
//! nesting. A worker that reads a job it cannot parse exits nonzero and
//! the supervisor's retry/poison ladder handles it like any other worker
//! failure.
//!
//! Correctness does not rest on this codec: the lease snapshot carries
//! [`por::RunMeta`] (engine label, configuration hash, program hash),
//! and [`modelcheck::lease::run_lease`] re-validates all three against
//! what the worker actually reconstructed. A job file that round-trips
//! wrong produces a validation error, never a silently different check.

use std::fmt::Write as _;
use std::str::FromStr;
use std::time::Duration;

use fencevm::VmProc;
use modelcheck::{CheckConfig, Engine, Recorder};
use simlocks::{build_mutex, FenceMask, LockKind, OrderingInstance};
use wbmem::{CrashSemantics, Machine, MemoryModel};

/// Which program to check: a lock instance under a memory model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramSpec {
    /// Lock algorithm.
    pub lock: LockKind,
    /// Number of competing processes.
    pub n: usize,
    /// Enabled fence sites (only bits below `fence_sites` are
    /// meaningful; the codec serializes exactly those).
    pub fences: FenceMask,
    /// How many fence sites the instance exposes (recorded so the codec
    /// knows which mask bits to serialize).
    pub fence_sites: u32,
    /// Memory model to run the programs under.
    pub model: MemoryModel,
}

impl ProgramSpec {
    /// Spec for `lock` × `n` × `fences` under `model`. Builds a probe
    /// instance once to learn the fence-site count, and normalizes the
    /// mask to the sites that exist (bits above `fence_sites` never
    /// affect the built program, so dropping them makes specs with the
    /// same meaning compare and serialize identically).
    #[must_use]
    pub fn new(lock: LockKind, n: usize, fences: FenceMask, model: MemoryModel) -> ProgramSpec {
        let probe = build_mutex(lock, n, FenceMask::ALL);
        let sites: Vec<u32> = (0..probe.fence_sites).filter(|&s| fences.has(s)).collect();
        ProgramSpec {
            lock,
            n,
            fences: FenceMask::only(&sites),
            fence_sites: probe.fence_sites,
            model,
        }
    }

    /// Build the lock instance this spec names.
    #[must_use]
    pub fn instance(&self) -> OrderingInstance {
        build_mutex(self.lock, self.n, self.fences)
    }

    /// Build the root machine this spec names.
    #[must_use]
    pub fn machine(&self) -> Machine<VmProc> {
        self.instance().machine(self.model)
    }
}

/// Everything a worker process needs to reconstruct the check: the
/// program plus the checking configuration. The engine is always
/// [`Engine::ParallelDpor`] — the only engine the fleet coordinates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// The program under check.
    pub program: ProgramSpec,
    /// Check the mutual-exclusion property.
    pub check_mutex: bool,
    /// Check the return-value permutation property.
    pub check_permutation: bool,
    /// Check global termination (collects the edge graph).
    pub check_termination: bool,
    /// Global distinct-state limit.
    pub max_states: usize,
    /// Per-process crash budget (0 = no crash injection).
    pub max_crashes: u32,
    /// Crash semantics when `max_crashes > 0`.
    pub crash_semantics: CrashSemantics,
    /// Worker thread count inside each worker process (0 = per-core).
    pub threads: usize,
    /// Reorder bound; `Some(u32::MAX)` is diagnostic mode, the fleet's
    /// exactness baseline.
    pub reorder_bound: Option<u32>,
    /// Wall-clock budget per lease attempt, if any.
    pub budget_ms: Option<u64>,
    /// Heartbeat period the worker must beat well within (the
    /// supervisor's stall deadline is a multiple of this).
    pub heartbeat_ms: u64,
}

impl JobSpec {
    /// A job for `program` with the fleet's defaults: mutex checked,
    /// permutation and termination off, diagnostic reorder bound, one
    /// exploration thread per worker process, no crash injection, no
    /// budget, 200 ms heartbeats.
    #[must_use]
    pub fn new(program: ProgramSpec) -> JobSpec {
        JobSpec {
            program,
            check_mutex: true,
            check_permutation: false,
            check_termination: false,
            max_states: 2_000_000,
            max_crashes: 0,
            crash_semantics: CrashSemantics::DiscardBuffer,
            threads: 1,
            reorder_bound: Some(u32::MAX),
            budget_ms: None,
            heartbeat_ms: 200,
        }
    }

    /// The [`CheckConfig`] this job describes, with `recorder` attached.
    /// Both supervisor and worker call this, so the config hash the
    /// lease metadata validates is computed from the same struct on both
    /// sides.
    #[must_use]
    pub fn config(&self, recorder: Recorder) -> CheckConfig {
        CheckConfig {
            max_states: self.max_states,
            check_mutex: self.check_mutex,
            check_permutation: self.check_permutation,
            check_termination: self.check_termination,
            engine: Engine::ParallelDpor {
                threads: self.threads,
                reorder_bound: self.reorder_bound,
            },
            max_crashes: self.max_crashes,
            crash_semantics: self.crash_semantics,
            budget: self.budget_ms.map(Duration::from_millis),
            recorder,
            ..CheckConfig::default()
        }
    }

    /// Serialize to the job-file text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from("ftfleet-job v1\n");
        let _ = writeln!(out, "lock {}", self.program.lock);
        let _ = writeln!(out, "n {}", self.program.n);
        let sites: Vec<String> = (0..self.program.fence_sites)
            .filter(|&s| self.program.fences.has(s))
            .map(|s| s.to_string())
            .collect();
        let _ = writeln!(
            out,
            "fences {}",
            if sites.is_empty() {
                "-".to_string()
            } else {
                sites.join(",")
            }
        );
        let _ = writeln!(out, "fence_sites {}", self.program.fence_sites);
        let _ = writeln!(out, "model {}", self.program.model);
        let _ = writeln!(out, "check_mutex {}", self.check_mutex);
        let _ = writeln!(out, "check_permutation {}", self.check_permutation);
        let _ = writeln!(out, "check_termination {}", self.check_termination);
        let _ = writeln!(out, "max_states {}", self.max_states);
        let _ = writeln!(out, "max_crashes {}", self.max_crashes);
        let _ = writeln!(
            out,
            "crash_semantics {}",
            match self.crash_semantics {
                CrashSemantics::DiscardBuffer => "discard",
                CrashSemantics::DrainBuffer => "drain",
            }
        );
        let _ = writeln!(out, "threads {}", self.threads);
        let _ = writeln!(
            out,
            "reorder_bound {}",
            match self.reorder_bound {
                None => "none".to_string(),
                Some(b) => b.to_string(),
            }
        );
        let _ = writeln!(
            out,
            "budget_ms {}",
            match self.budget_ms {
                None => "-".to_string(),
                Some(ms) => ms.to_string(),
            }
        );
        let _ = writeln!(out, "heartbeat_ms {}", self.heartbeat_ms);
        out
    }

    /// Parse the job-file text format.
    ///
    /// # Errors
    ///
    /// A message naming the first offending line; missing keys are also
    /// errors (the format has no optional fields).
    pub fn parse(text: &str) -> Result<JobSpec, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("ftfleet-job v1") => {}
            other => return Err(format!("bad job header: {other:?}")),
        }
        let mut kv = std::collections::HashMap::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once(' ')
                .ok_or_else(|| format!("bad job line: `{line}`"))?;
            kv.insert(k.to_string(), v.trim().to_string());
        }
        let get = |k: &str| -> Result<String, String> {
            kv.get(k)
                .cloned()
                .ok_or_else(|| format!("missing key `{k}`"))
        };
        let parse_num = |k: &str| -> Result<u64, String> {
            get(k)?.parse().map_err(|e| format!("bad `{k}`: {e}"))
        };
        let parse_bool = |k: &str| -> Result<bool, String> {
            get(k)?.parse().map_err(|e| format!("bad `{k}`: {e}"))
        };

        let lock = LockKind::from_str(&get("lock")?)?;
        let n = parse_num("n")? as usize;
        let fence_sites = parse_num("fence_sites")? as u32;
        let fences_raw = get("fences")?;
        let fences = if fences_raw == "-" {
            FenceMask::NONE
        } else {
            let sites = fences_raw
                .split(',')
                .map(|s| s.parse::<u32>().map_err(|e| format!("bad fence site: {e}")))
                .collect::<Result<Vec<_>, _>>()?;
            if let Some(&bad) = sites.iter().find(|&&s| s >= fence_sites.max(1)) {
                return Err(format!("fence site {bad} out of range"));
            }
            FenceMask::only(&sites)
        };
        let model = MemoryModel::from_str(&get("model")?)?;
        let crash_semantics = match get("crash_semantics")?.as_str() {
            "discard" => CrashSemantics::DiscardBuffer,
            "drain" => CrashSemantics::DrainBuffer,
            other => return Err(format!("bad crash_semantics `{other}`")),
        };
        let reorder_bound = match get("reorder_bound")?.as_str() {
            "none" => None,
            num => Some(num.parse().map_err(|e| format!("bad reorder_bound: {e}"))?),
        };
        let budget_ms = match get("budget_ms")?.as_str() {
            "-" => None,
            num => Some(num.parse().map_err(|e| format!("bad budget_ms: {e}"))?),
        };

        Ok(JobSpec {
            program: ProgramSpec {
                lock,
                n,
                fences,
                fence_sites,
                model,
            },
            check_mutex: parse_bool("check_mutex")?,
            check_permutation: parse_bool("check_permutation")?,
            check_termination: parse_bool("check_termination")?,
            max_states: parse_num("max_states")? as usize,
            max_crashes: parse_num("max_crashes")? as u32,
            crash_semantics,
            threads: parse_num("threads")? as usize,
            reorder_bound,
            budget_ms,
            heartbeat_ms: parse_num("heartbeat_ms")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_roundtrips() {
        for (lock, n) in [
            (LockKind::Peterson, 2),
            (LockKind::Bakery, 3),
            (LockKind::Gt { f: 2 }, 4),
        ] {
            for model in [
                MemoryModel::Sc,
                MemoryModel::Tso,
                MemoryModel::Pso,
                MemoryModel::Rmo,
            ] {
                let mut job = JobSpec::new(ProgramSpec::new(lock, n, FenceMask::ALL, model));
                job.check_termination = true;
                job.max_crashes = 2;
                job.crash_semantics = CrashSemantics::DrainBuffer;
                job.budget_ms = Some(1500);
                let back = JobSpec::parse(&job.to_text()).expect("parse");
                assert_eq!(back, job);
            }
        }
    }

    #[test]
    fn fence_subsets_roundtrip_to_the_same_program() {
        let probe = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
        let mask = FenceMask::only(&[0]);
        let job = JobSpec::new(ProgramSpec::new(
            LockKind::Peterson,
            2,
            mask,
            MemoryModel::Tso,
        ));
        assert!(probe.fence_sites > 1);
        let back = JobSpec::parse(&job.to_text()).expect("parse");
        // The reconstructed mask enables exactly the same sites, so the
        // built program is identical.
        for s in 0..job.program.fence_sites {
            assert_eq!(back.program.fences.has(s), mask.has(s));
        }
    }

    #[test]
    fn bad_job_lines_are_rejected() {
        assert!(JobSpec::parse("not a job").is_err());
        let job = JobSpec::new(ProgramSpec::new(
            LockKind::Ttas,
            2,
            FenceMask::ALL,
            MemoryModel::Pso,
        ));
        let text = job.to_text();
        // Dropping any line is an error: no optional keys.
        for skip in 1..text.lines().count() {
            let mangled: Vec<&str> = text
                .lines()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, l)| l)
                .collect();
            assert!(JobSpec::parse(&mangled.join("\n")).is_err(), "line {skip}");
        }
    }
}
