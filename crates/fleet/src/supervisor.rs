//! The fleet supervisor: prime, lease, supervise, merge, conclude.
//!
//! [`run_fleet`] drives a whole multi-process check:
//!
//! 1. **Prime** — an in-process run with a stop-after-N-transitions
//!    checkpoint policy builds a frontier worth partitioning. If the
//!    space finishes (or a violation appears) before the stop triggers,
//!    the verdict is returned directly — trivially exact.
//! 2. **Lease** — the checkpoint's fork points are sliced round-robin
//!    into lease units. Each lease snapshot carries the accepted visited
//!    set at issue time, the global state count (so `max_states` trips
//!    at the right point), and zeroed metrics — workers report deltas.
//! 3. **Supervise** — worker processes are spawned up to the
//!    concurrency cap and watched through heartbeat files. A dead,
//!    stalled, or torn-result worker costs one fault: the lease is
//!    re-issued after exponential backoff, until `max_attempts` faults
//!    poison it. Whatever a worker's exit status, a valid result file is
//!    still honored — a `kill -9` *after* the atomic commit loses no
//!    work.
//! 4. **Merge** — results are accepted in lease order; a result whose
//!    claimed fingerprints intersect the accepted set is stale (its seed
//!    predates a conflicting acceptance) and is re-leased with the
//!    current seed — this is what makes accepted deltas sum exactly
//!    (see `crates/modelcheck/src/lease.rs`). A violation or state-limit
//!    report cancels the fleet and reruns in-process for the exact
//!    counterexample, mirroring the parallel engine's own discipline.
//! 5. **Conclude** — accepted state merges into one snapshot; leftover
//!    work (poisoned slices, budget remainders) becomes its frontier
//!    and [`modelcheck::resume`] completes it in-process — the
//!    degradation ladder's last rung. With no budget this always
//!    terminates with a definitive verdict, chaos or no chaos.

use std::collections::HashSet;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ftobs::{Metric, MetricsSnapshot, Recorder, J};
use modelcheck::{check, resume, CheckConfig, Coverage, LeaseStatus, Stats, Verdict};
use por::{BaseCounts, ForkPoint, Snapshot};

use crate::spec::JobSpec;
use crate::wire::{read_result, write_atomic_bytes};

/// Supervisor tuning knobs. `worker_bin` and `dir` have no useful
/// defaults; everything else does (see [`FleetConfig::new`]).
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Path to the `ft_worker` binary (see [`locate_worker`]).
    pub worker_bin: PathBuf,
    /// Maximum concurrently running worker processes.
    pub workers: usize,
    /// Target number of lease slices the frontier is partitioned into.
    pub leases: usize,
    /// Faults (crash/stall/torn result) a lease survives before it is
    /// poisoned and left to the in-process endgame.
    pub max_attempts: u32,
    /// Heartbeat periods without a beat before a worker counts as
    /// stalled and is killed.
    pub stall_beats: u32,
    /// Base retry backoff; doubles per fault on the same lease.
    pub backoff_ms: u64,
    /// Transitions the in-process prime phase runs before checkpointing
    /// the frontier for partitioning.
    pub prime_transitions: u64,
    /// Scratch directory for job/lease/result/heartbeat files.
    pub dir: PathBuf,
    /// `FT_CHAOS` value injected into workers (`None` scrubs the
    /// variable from their environment, so ambient chaos cannot leak
    /// in).
    pub chaos: Option<String>,
}

impl FleetConfig {
    /// A config with default tuning: 2 workers, 4 leases, 3 attempts,
    /// 10-beat stall deadline, 25 ms base backoff, 2000-transition
    /// prime.
    #[must_use]
    pub fn new(worker_bin: impl Into<PathBuf>, dir: impl Into<PathBuf>) -> FleetConfig {
        FleetConfig {
            worker_bin: worker_bin.into(),
            workers: 2,
            leases: 4,
            max_attempts: 3,
            stall_beats: 10,
            backoff_ms: 25,
            prime_transitions: 2000,
            dir: dir.into(),
            chaos: None,
        }
    }
}

/// What the fleet went through, over and above the verdict. The same
/// counts land in the obs metrics (`leases_issued`, `leases_reassigned`,
/// `workers_lost`, `poisoned_leases`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Lease attempts started (including reassignments).
    pub leases_issued: u64,
    /// Leases re-issued after a fault or a stale-seed rejection.
    pub leases_reassigned: u64,
    /// Worker processes that died, stalled, or returned garbage.
    pub workers_lost: u64,
    /// Leases that exhausted their fault budget and fell through to the
    /// in-process endgame.
    pub poisoned_leases: u64,
}

/// A fleet run's outcome: the verdict (same type and discipline as the
/// in-process engines) plus the supervision counters.
#[derive(Debug)]
pub struct FleetReport {
    /// The check's verdict.
    pub verdict: Verdict,
    /// Supervision counters.
    pub stats: FleetStats,
}

/// Locate the `ft_worker` binary: `FT_WORKER_BIN` if set, else a
/// sibling of the current executable (also probing one directory up,
/// where cargo puts bins relative to test executables in `deps/`).
#[must_use]
pub fn locate_worker() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("FT_WORKER_BIN") {
        if !p.is_empty() {
            return Some(PathBuf::from(p));
        }
    }
    let exe = std::env::current_exe().ok()?;
    let name = format!("ft_worker{}", std::env::consts::EXE_SUFFIX);
    let dir = exe.parent()?;
    for d in [Some(dir), dir.parent()].into_iter().flatten() {
        let cand = d.join(&name);
        if cand.exists() {
            return Some(cand);
        }
    }
    None
}

/// Where a lease slot is in its lifecycle.
enum SlotState {
    /// Waiting to be (re)spawned once `not_before` passes.
    Pending { not_before: Instant },
    /// A worker process is on it.
    Running(Running),
    /// A validated result is in, waiting for head-of-line acceptance.
    Done {
        status: LeaseStatus,
        snap: Box<Snapshot>,
    },
    /// Result accepted and merged.
    Accepted,
    /// Fault budget exhausted; slice deferred to the endgame.
    Poisoned,
}

struct Running {
    child: Child,
    attempt: u32,
    result_path: PathBuf,
    hb_path: PathBuf,
    last_beat: Instant,
    beat_seen: Vec<u8>,
}

struct Slot {
    forks: Vec<ForkPoint>,
    /// Next attempt number (also the file-name disambiguator, so a
    /// killed attempt's late write can never satisfy a newer one).
    attempt: u32,
    /// Faults so far (stale-seed rejections are *not* faults: they are
    /// bounded by construction, one per slot once it is head-of-line).
    faults: u32,
    state: SlotState,
}

/// Run `job` across a supervised worker fleet. `recorder` receives the
/// supervision counters and, in the endgame, the exploration's own
/// metrics; pass an enabled recorder to get the merged
/// [`MetricsSnapshot`] in the verdict's stats (bit-identical, in
/// diagnostic mode, to a fault-free single-process run — the chaos
/// differential suite's pinned property).
#[must_use]
pub fn run_fleet(job: &JobSpec, fleet: &FleetConfig, recorder: Recorder) -> FleetReport {
    let start = Instant::now();
    let machine = job.program.machine();
    let config = job.config(recorder);
    let mut stats = FleetStats::default();

    // --- phase 1: prime in-process until the frontier is worth slicing.
    let prime_path = fleet.dir.join("prime.ftc");
    let mut prime_cfg = config.clone();
    prime_cfg.checkpoint =
        Some(modelcheck::CheckpointPolicy::at(&prime_path).stop_after(fleet.prime_transitions));
    let prime_verdict = check(&machine, &prime_cfg);
    let has_checkpoint = matches!(
        &prime_verdict,
        Verdict::Inconclusive(_, cov) if cov.checkpoint.is_some()
    );
    if !has_checkpoint {
        // The space completed (or failed) before the stop triggered:
        // the in-process verdict is the verdict.
        return FleetReport {
            verdict: prime_verdict,
            stats,
        };
    }
    let prime = match Snapshot::read(&prime_path) {
        Ok(s) => s,
        Err(_) => {
            // Our own just-written checkpoint does not validate: fall
            // straight down the degradation ladder to a fresh
            // single-process run.
            config.recorder.reset_counts();
            return FleetReport {
                verdict: check(&machine, &config),
                stats,
            };
        }
    };
    // The prime phase's counters live on inside `prime.metrics`; the
    // endgame merges snapshot metrics with the recorder's, so the live
    // counts must start from zero or they would be double-counted.
    config.recorder.reset_counts();

    // --- phase 2: partition the frontier into lease slices.
    let nslices = fleet.leases.clamp(1, prime.forks.len().max(1));
    let mut slots: Vec<Slot> = (0..nslices)
        .map(|_| Slot {
            forks: Vec::new(),
            attempt: 0,
            faults: 0,
            state: SlotState::Pending { not_before: start },
        })
        .collect();
    for (i, fork) in prime.forks.iter().enumerate() {
        slots[i % nslices].forks.push(fork.clone());
    }

    let job_path = fleet.dir.join("job.txt");
    if let Err(e) = write_atomic_bytes(&job_path, job.to_text().as_bytes()) {
        config.recorder.reset_counts();
        let _ = e;
        return FleetReport {
            verdict: check(&machine, &config),
            stats,
        };
    }

    // Accepted state: the supervisor's source of truth.
    let mut acc_set: HashSet<u128> = prime.visited.iter().copied().collect();
    let mut acc_base = prime.base;
    let mut acc_metrics = prime.metrics;
    let mut acc_edges = prime.edges.clone();
    let mut acc_terminals = prime.terminals.clone();
    let mut leftovers: Vec<ForkPoint> = Vec::new();

    let deadline = config.budget.map(|b| start + b);
    let stall =
        Duration::from_millis(job.heartbeat_ms.max(1) * u64::from(fleet.stall_beats.max(1)));
    let mut next_accept = 0usize;
    let mut budget_exhausted = false;

    // --- phase 3: the supervision loop.
    'supervise: loop {
        // Accept validated results strictly in lease order.
        while next_accept < slots.len() {
            let slot = &mut slots[next_accept];
            match &slot.state {
                SlotState::Done { .. } => {}
                SlotState::Poisoned => {
                    next_accept += 1;
                    continue;
                }
                _ => break,
            }
            let SlotState::Done { status, snap } =
                std::mem::replace(&mut slot.state, SlotState::Accepted)
            else {
                unreachable!()
            };
            if snap.visited.iter().any(|fp| acc_set.contains(fp)) {
                // Stale seed: a later-accepted predecessor claimed one of
                // these states first. Re-lease with the current seed;
                // bounded because no earlier slot can accept anymore.
                slot.state = SlotState::Pending {
                    not_before: Instant::now(),
                };
                stats.leases_reassigned += 1;
                config.recorder.incr(Metric::LeasesReassigned);
                config.recorder.event(
                    "fleet_lease_rejected",
                    &[("lease", J::U(next_accept as u64))],
                );
                continue;
            }
            match status {
                LeaseStatus::Violated | LeaseStatus::LimitHit => {
                    // Same discipline as the parallel engine: cancel
                    // everything and rerun in-process for the exact
                    // verdict and counterexample.
                    return FleetReport {
                        verdict: cancel_and_rerun(&machine, &config, &mut slots, &stats),
                        stats,
                    };
                }
                LeaseStatus::Completed | LeaseStatus::BudgetHit => {
                    acc_set.extend(snap.visited.iter().copied());
                    acc_base.states += snap.base.states;
                    acc_base.transitions += snap.base.transitions;
                    acc_base.terminal_states += snap.base.terminal_states;
                    acc_base.sleep_hits += snap.base.sleep_hits;
                    acc_metrics.merge(&snap.metrics);
                    acc_edges.extend(snap.edges.iter().copied());
                    acc_terminals.extend(snap.terminals.iter().copied());
                    leftovers.extend(snap.forks.iter().cloned());
                    next_accept += 1;
                    if acc_base.states > config.max_states as u64 {
                        return FleetReport {
                            verdict: cancel_and_rerun(&machine, &config, &mut slots, &stats),
                            stats,
                        };
                    }
                }
            }
        }

        if slots
            .iter()
            .all(|s| matches!(s.state, SlotState::Accepted | SlotState::Poisoned))
        {
            break 'supervise;
        }

        // Enforce the wall-clock budget across the whole fleet.
        if let Some(d) = deadline {
            if Instant::now() >= d {
                for slot in &mut slots {
                    if let SlotState::Running(r) = &mut slot.state {
                        let _ = r.child.kill();
                        let _ = r.child.wait();
                    }
                    if !matches!(slot.state, SlotState::Accepted) {
                        slot.state = SlotState::Poisoned;
                        leftovers.append(&mut slot.forks);
                    }
                }
                budget_exhausted = true;
                break 'supervise;
            }
        }

        // Spawn pending leases up to the concurrency cap.
        let running = slots
            .iter()
            .filter(|s| matches!(s.state, SlotState::Running(_)))
            .count();
        let mut free = fleet.workers.max(1).saturating_sub(running);
        for (id, slot) in slots.iter_mut().enumerate() {
            if free == 0 {
                break;
            }
            let ready = matches!(
                &slot.state,
                SlotState::Pending { not_before } if Instant::now() >= *not_before
            );
            if !ready {
                continue;
            }
            let lease_seed = {
                let mut v: Vec<u128> = acc_set.iter().copied().collect();
                v.sort_unstable();
                v
            };
            let attempt = slot.attempt;
            slot.attempt += 1;
            let lease_path = fleet.dir.join(format!("lease_{id}_{attempt}.ftc"));
            let result_path = fleet.dir.join(format!("result_{id}_{attempt}.ftr"));
            let hb_path = fleet.dir.join(format!("hb_{id}_{attempt}"));
            let lease = Snapshot {
                meta: prime.meta.clone(),
                base: BaseCounts {
                    states: acc_base.states,
                    ..BaseCounts::default()
                },
                metrics: MetricsSnapshot::default(),
                forks: slot.forks.clone(),
                visited: lease_seed,
                edges: Vec::new(),
                terminals: Vec::new(),
            };
            if lease.write_atomic(&lease_path).is_err() {
                fault(
                    slot,
                    id,
                    fleet,
                    &config.recorder,
                    &mut stats,
                    &mut leftovers,
                );
                continue;
            }
            let mut cmd = Command::new(&fleet.worker_bin);
            cmd.arg(&job_path)
                .arg(&lease_path)
                .arg(&result_path)
                .arg(&hb_path)
                .arg(id.to_string())
                .arg(attempt.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::null());
            match &fleet.chaos {
                Some(spec) => {
                    cmd.env("FT_CHAOS", spec);
                }
                None => {
                    cmd.env_remove("FT_CHAOS");
                }
            }
            match cmd.spawn() {
                Ok(child) => {
                    stats.leases_issued += 1;
                    config.recorder.incr(Metric::LeasesIssued);
                    slot.state = SlotState::Running(Running {
                        child,
                        attempt,
                        result_path,
                        hb_path,
                        last_beat: Instant::now(),
                        beat_seen: Vec::new(),
                    });
                    free -= 1;
                }
                Err(_) => {
                    fault(
                        slot,
                        id,
                        fleet,
                        &config.recorder,
                        &mut stats,
                        &mut leftovers,
                    );
                }
            }
        }

        // Poll running workers: exits, results, heartbeats.
        for (id, slot) in slots.iter_mut().enumerate() {
            let SlotState::Running(r) = &mut slot.state else {
                continue;
            };
            let exited = match r.child.try_wait() {
                Ok(Some(_)) => true,
                Ok(None) => false,
                Err(_) => true,
            };
            if !exited {
                // Stall detection: the heartbeat file's content must
                // keep changing.
                if let Ok(beat) = std::fs::read(&r.hb_path) {
                    if beat != r.beat_seen {
                        r.beat_seen = beat;
                        r.last_beat = Instant::now();
                    }
                }
                if r.last_beat.elapsed() > stall {
                    let _ = r.child.kill();
                    let _ = r.child.wait();
                } else {
                    continue;
                }
            }
            // The worker is gone (exited or just killed for stalling).
            // Whatever its exit status, a valid committed result is
            // honored — the atomic rename either fully happened or not.
            let (attempt, result_path) = (r.attempt, r.result_path.clone());
            match read_result(&result_path, id as u64, attempt) {
                Ok(wire) => {
                    slot.state = SlotState::Done {
                        status: wire.status,
                        snap: Box::new(wire.snapshot),
                    };
                }
                Err(_) => {
                    fault(
                        slot,
                        id,
                        fleet,
                        &config.recorder,
                        &mut stats,
                        &mut leftovers,
                    );
                }
            }
        }

        std::thread::sleep(Duration::from_millis((job.heartbeat_ms / 4).clamp(2, 25)));
    }

    // --- phase 4: merge and conclude.
    let mut acc_vec: Vec<u128> = acc_set.into_iter().collect();
    acc_vec.sort_unstable();
    let merged = Snapshot {
        meta: prime.meta.clone(),
        base: acc_base,
        metrics: acc_metrics,
        forks: leftovers,
        visited: acc_vec,
        edges: acc_edges,
        terminals: acc_terminals,
    };
    let merged_path = fleet.dir.join("merged.ftc");
    if merged.write_atomic(&merged_path).is_err() {
        config.recorder.reset_counts();
        restore_counters(&config.recorder, &stats);
        return FleetReport {
            verdict: check(&machine, &config),
            stats,
        };
    }

    if budget_exhausted && !merged.forks.is_empty() {
        // Nothing left to run within budget: report the merged partial
        // coverage directly, checkpoint included so a later resume can
        // continue from exactly here.
        let mut metrics = merged.metrics;
        metrics.merge(&config.recorder.snapshot());
        #[allow(clippy::cast_possible_truncation)]
        let verdict = Verdict::Inconclusive(
            Stats {
                states: merged.base.states as usize,
                transitions: merged.base.transitions as usize,
                terminal_states: merged.base.terminal_states as usize,
                elapsed: start.elapsed(),
                metrics,
            },
            Coverage {
                frontier: merged.forks.len(),
                sleep_hits: merged.base.sleep_hits as usize,
                checkpoint: Some(merged_path),
                est_total_states: None,
                est_remaining: None,
            },
        );
        return FleetReport { verdict, stats };
    }

    // The endgame: resume the merged snapshot in-process. This finishes
    // any leftover frontier (poisoned slices — the degradation ladder's
    // last rung), runs the termination pass over the merged edge graph,
    // and applies the standard resume verdict discipline, including the
    // prior+own metrics merge.
    config.recorder.event(
        "fleet_endgame",
        &[
            ("leftover_forks", J::U(merged.forks.len() as u64)),
            ("poisoned", J::U(stats.poisoned_leases)),
        ],
    );
    FleetReport {
        verdict: resume(&machine, &config, &merged_path),
        stats,
    }
}

/// Record one fault against `slot`: retry with exponential backoff, or
/// poison it once the budget is gone (its slice defers to the endgame).
fn fault(
    slot: &mut Slot,
    id: usize,
    fleet: &FleetConfig,
    recorder: &Recorder,
    stats: &mut FleetStats,
    leftovers: &mut Vec<ForkPoint>,
) {
    slot.faults += 1;
    stats.workers_lost += 1;
    recorder.incr(Metric::WorkersLost);
    if slot.faults >= fleet.max_attempts.max(1) {
        slot.state = SlotState::Poisoned;
        leftovers.append(&mut slot.forks);
        stats.poisoned_leases += 1;
        recorder.incr(Metric::PoisonedLeases);
        recorder.event("fleet_lease_poisoned", &[("lease", J::U(id as u64))]);
    } else {
        let backoff = fleet.backoff_ms << (slot.faults - 1).min(8);
        slot.state = SlotState::Pending {
            not_before: Instant::now() + Duration::from_millis(backoff),
        };
        stats.leases_reassigned += 1;
        recorder.incr(Metric::LeasesReassigned);
        recorder.event(
            "fleet_lease_reassigned",
            &[
                ("lease", J::U(id as u64)),
                ("faults", J::U(u64::from(slot.faults))),
            ],
        );
    }
}

/// A lease reported a violation or the state limit: kill every running
/// worker and rerun the whole check in this process for the exact
/// verdict — the same sequential-rerun discipline the parallel engine
/// applies to its own workers' reports.
fn cancel_and_rerun<P: wbmem::Process>(
    machine: &wbmem::Machine<P>,
    config: &CheckConfig,
    slots: &mut [Slot],
    stats: &FleetStats,
) -> Verdict {
    for slot in slots.iter_mut() {
        if let SlotState::Running(r) = &mut slot.state {
            let _ = r.child.kill();
            let _ = r.child.wait();
        }
    }
    config.recorder.reset_counts();
    restore_counters(&config.recorder, stats);
    check(machine, config)
}

/// Re-apply the supervision counters after a `reset_counts` so the
/// final verdict's metrics still tell the fleet's story (they sit past
/// the deterministic range, so differential comparisons ignore them).
fn restore_counters(recorder: &Recorder, stats: &FleetStats) {
    recorder.add(Metric::LeasesIssued, stats.leases_issued);
    recorder.add(Metric::LeasesReassigned, stats.leases_reassigned);
    recorder.add(Metric::WorkersLost, stats.workers_lost);
    recorder.add(Metric::PoisonedLeases, stats.poisoned_leases);
}
