//! Result-file wire format: how a worker ships its lease outcome back.
//!
//! A result file wraps the worker's delta [`Snapshot`] in a thin header
//! that binds it to one specific `(lease, attempt)` — so a stale file
//! from a killed earlier attempt can never satisfy a later one — plus a
//! trailing FNV-1a checksum over everything before it. Validation order:
//! magic, header length, trailing checksum, lease/attempt binding,
//! status byte, then the inner snapshot's own header and checksum. A
//! torn file (the chaos harness produces them on purpose, `kill -9` by
//! accident) fails one of those checks and is **rejected and re-leased,
//! never accepted** — the property the torn-result tests pin down.
//!
//! Workers write results with the same atomic tmp+fsync+rename dance as
//! checkpoints ([`write_atomic_bytes`]); the checksum is the second line
//! of defense for the injected non-atomic chaos writes.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use modelcheck::LeaseStatus;
use por::{fnv1a, Snapshot};

/// Result-file magic: format name + version in one token.
pub const RESULT_MAGIC: [u8; 8] = *b"FTRSLT01";

/// Fixed header size: magic + lease id (u64) + attempt (u32) + status
/// (u8) + snapshot length (u64).
const HEADER: usize = 8 + 8 + 4 + 1 + 8;

/// A decoded, validated result file.
#[derive(Debug)]
pub struct WireResult {
    /// Which lease this result answers.
    pub lease_id: u64,
    /// Which attempt produced it.
    pub attempt: u32,
    /// How the lease run ended.
    pub status: LeaseStatus,
    /// The worker's delta snapshot.
    pub snapshot: Snapshot,
}

/// Encode a result for `(lease_id, attempt)` into the wire format.
#[must_use]
pub fn encode_result(lease_id: u64, attempt: u32, status: LeaseStatus, snap: &Snapshot) -> Vec<u8> {
    let payload = snap.to_bytes();
    let mut out = Vec::with_capacity(HEADER + payload.len() + 8);
    out.extend_from_slice(&RESULT_MAGIC);
    out.extend_from_slice(&lease_id.to_le_bytes());
    out.extend_from_slice(&attempt.to_le_bytes());
    out.push(status.code());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decode and validate a result file's bytes, checking it answers
/// exactly `(expect_id, expect_attempt)`.
///
/// # Errors
///
/// A message naming the first failed check. Every failure means "do not
/// accept"; the supervisor treats them all as a lost attempt.
pub fn decode_result(
    bytes: &[u8],
    expect_id: u64,
    expect_attempt: u32,
) -> Result<WireResult, String> {
    if bytes.len() < HEADER + 8 {
        return Err(format!("result truncated: {} bytes", bytes.len()));
    }
    if bytes[..8] != RESULT_MAGIC {
        return Err("bad result magic".to_string());
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv1a(body) != stored {
        return Err("result checksum mismatch (torn write)".to_string());
    }
    let lease_id = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let attempt = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    if lease_id != expect_id || attempt != expect_attempt {
        return Err(format!(
            "result is for lease {lease_id} attempt {attempt}, expected {expect_id}/{expect_attempt}"
        ));
    }
    let status = LeaseStatus::from_code(bytes[20]).ok_or("bad result status byte")?;
    let snap_len = u64::from_le_bytes(bytes[21..29].try_into().unwrap()) as usize;
    let payload = &body[HEADER..];
    if payload.len() != snap_len {
        return Err(format!(
            "result payload length {} != declared {snap_len}",
            payload.len()
        ));
    }
    let snapshot = Snapshot::from_bytes(payload).map_err(|e| format!("result snapshot: {e}"))?;
    Ok(WireResult {
        lease_id,
        attempt,
        status,
        snapshot,
    })
}

/// Read and validate the result file at `path` for `(expect_id,
/// expect_attempt)`.
///
/// # Errors
///
/// I/O failures (including the file simply not existing yet) and every
/// validation failure from [`decode_result`].
pub fn read_result(path: &Path, expect_id: u64, expect_attempt: u32) -> Result<WireResult, String> {
    let bytes = fs::read(path).map_err(|e| format!("read result: {e}"))?;
    decode_result(&bytes, expect_id, expect_attempt)
}

/// Write `bytes` to `path` atomically: hidden temp sibling, `fsync`,
/// `rename`, best-effort directory sync — the checkpoint writer's
/// pattern, for arbitrary byte blobs.
///
/// # Errors
///
/// A message naming the failing operation.
pub fn write_atomic_bytes(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir).map_err(|e| format!("mkdir: {e}"))?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| "result path has no file name".to_string())?;
    let mut tmp = path.to_path_buf();
    tmp.set_file_name({
        let mut n = std::ffi::OsString::from(".");
        n.push(file_name);
        n.push(".tmp");
        n
    });
    let mut f = fs::File::create(&tmp).map_err(|e| format!("create temp: {e}"))?;
    f.write_all(bytes).map_err(|e| format!("write: {e}"))?;
    f.sync_all().map_err(|e| format!("fsync: {e}"))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| format!("rename: {e}"))?;
    if let Some(dir) = dir {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use por::BaseCounts;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            base: BaseCounts {
                states: 7,
                transitions: 19,
                terminal_states: 1,
                sleep_hits: 0,
            },
            visited: vec![1, 2, 3],
            ..Snapshot::default()
        }
    }

    #[test]
    fn result_roundtrips() {
        let snap = sample_snapshot();
        let bytes = encode_result(42, 3, LeaseStatus::BudgetHit, &snap);
        let got = decode_result(&bytes, 42, 3).expect("decode");
        assert_eq!(got.lease_id, 42);
        assert_eq!(got.attempt, 3);
        assert_eq!(got.status, LeaseStatus::BudgetHit);
        assert_eq!(got.snapshot.base, snap.base);
        assert_eq!(got.snapshot.visited, snap.visited);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_result(1, 0, LeaseStatus::Completed, &sample_snapshot());
        for cut in 0..bytes.len() {
            assert!(
                decode_result(&bytes[..cut], 1, 0).is_err(),
                "accepted a result cut to {cut} of {} bytes",
                bytes.len()
            );
        }
    }

    #[test]
    fn bit_flips_and_wrong_binding_are_rejected() {
        let bytes = encode_result(5, 2, LeaseStatus::Completed, &sample_snapshot());
        for i in 0..bytes.len() {
            let mut torn = bytes.clone();
            torn[i] ^= 0x10;
            assert!(decode_result(&torn, 5, 2).is_err(), "flip at byte {i}");
        }
        // A valid result for the wrong lease or a stale attempt is
        // equally unacceptable.
        assert!(decode_result(&bytes, 6, 2).is_err());
        assert!(decode_result(&bytes, 5, 1).is_err());
    }
}
