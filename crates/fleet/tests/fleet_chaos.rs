//! Chaos differential suite: the fleet's verdicts — and, in diagnostic
//! mode, its merged metrics — must be bit-identical to a fault-free
//! single-process run, whatever faults `FT_CHAOS` injects.
//!
//! The exactness argument (accepted-chain conflict rejection, ordered
//! merge, in-process endgame) lives in `crates/modelcheck/src/lease.rs`
//! and `crates/fleet/src/supervisor.rs`; these tests pin it down:
//!
//! * a lock × model matrix under mixed startup/heartbeat/commit chaos,
//! * torn results (100% commit chaos) are *never* accepted,
//! * a fleet whose every worker dies at startup still terminates with
//!   the exact verdict via the in-process degradation ladder,
//! * a fault-free fleet actually distributes work (and agrees too).

use std::path::PathBuf;

use ftfleet::{run_fleet, FleetConfig, FleetReport, JobSpec, ProgramSpec};
use modelcheck::{check, Verdict};
use simlocks::{FenceMask, LockKind};
use wbmem::MemoryModel;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_ft_worker"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftfleet_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A small-fleet config tuned for test speed: short backoff, a short
/// prime phase (so leases get real work even on small spaces), and a
/// tight-but-not-flaky stall deadline.
fn fleet_config(dir: PathBuf, chaos: Option<&str>) -> FleetConfig {
    let mut cfg = FleetConfig::new(worker_bin(), dir);
    cfg.workers = 2;
    cfg.leases = 3;
    cfg.max_attempts = 2;
    cfg.stall_beats = 5;
    cfg.backoff_ms = 5;
    cfg.prime_transitions = 120;
    cfg.chaos = chaos.map(str::to_string);
    cfg
}

fn job(lock: LockKind, n: usize, fences: FenceMask, model: MemoryModel) -> JobSpec {
    let mut job = JobSpec::new(ProgramSpec::new(lock, n, fences, model));
    job.heartbeat_ms = 20;
    job
}

/// Fault-free single-process baseline with its own fresh recorder.
fn baseline(job: &JobSpec) -> Verdict {
    let machine = job.program.machine();
    let config = job.config(ftobs::Recorder::enabled());
    check(&machine, &config)
}

fn run(job: &JobSpec, fleet: &FleetConfig) -> FleetReport {
    run_fleet(job, fleet, ftobs::Recorder::enabled())
}

/// The pinned property: same verdict variant, same deterministic stats
/// (states, transitions, terminals, and the metrics snapshot's
/// deterministic projection), same counterexample schedule if any.
#[track_caller]
fn assert_same_verdict(ours: &Verdict, expect: &Verdict, what: &str) {
    assert_eq!(
        std::mem::discriminant(ours),
        std::mem::discriminant(expect),
        "{what}: fleet verdict {ours:?} vs single-process {expect:?}"
    );
    assert_eq!(ours.stats(), expect.stats(), "{what}: stats diverge");
    match (ours.counterexample(), expect.counterexample()) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.schedule, b.schedule, "{what}: counterexample diverges");
        }
        (a, b) => panic!("{what}: counterexample presence diverges: {a:?} vs {b:?}"),
    }
}

#[test]
fn fault_free_fleet_matches_single_process_and_distributes() {
    let job = job(LockKind::Peterson, 2, FenceMask::ALL, MemoryModel::Tso);
    let expect = baseline(&job);
    let dir = scratch("fault_free");
    let report = run(&job, &fleet_config(dir.clone(), None));
    assert_same_verdict(&report.verdict, &expect, "fault-free peterson/TSO");
    assert!(
        report.stats.leases_issued >= 1,
        "space never left the prime phase — shrink prime_transitions"
    );
    assert_eq!(report.stats.workers_lost, 0, "no faults were injected");
    assert_eq!(report.stats.poisoned_leases, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_matrix_verdicts_and_metrics_are_exact() {
    // The n=2 matrix: correct locks across every model (Ok expected),
    // plus a fence-stripped Peterson under TSO (violation expected —
    // exercises the cancel-and-rerun discipline under chaos) and a
    // state-capped Bakery (exercises the LimitHit ladder).
    let mut cells: Vec<(String, JobSpec)> = Vec::new();
    for lock in [LockKind::Peterson, LockKind::Ttas] {
        for model in [
            MemoryModel::Sc,
            MemoryModel::Tso,
            MemoryModel::Pso,
            MemoryModel::Rmo,
        ] {
            cells.push((
                format!("{lock}/{model}"),
                job(lock, 2, FenceMask::ALL, model),
            ));
        }
    }
    cells.push((
        "peterson-nofence/TSO".into(),
        job(LockKind::Peterson, 2, FenceMask::NONE, MemoryModel::Tso),
    ));
    let mut capped = job(LockKind::Bakery, 2, FenceMask::ALL, MemoryModel::Tso);
    capped.max_states = 3_000;
    cells.push(("bakery-capped/TSO".into(), capped));

    for (i, (name, job)) in cells.iter().enumerate() {
        let expect = baseline(job);
        let dir = scratch(&format!("matrix_{i}"));
        // Mixed chaos on every injection point, seeded per cell so the
        // fault pattern differs across the matrix but reproduces per run.
        let chaos = format!("startup,heartbeat,commit:40:{i}");
        let report = run(job, &fleet_config(dir.clone(), Some(&chaos)));
        assert_same_verdict(&report.verdict, &expect, name);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_results_are_never_accepted() {
    let job = job(LockKind::Peterson, 2, FenceMask::ALL, MemoryModel::Tso);
    let expect = baseline(&job);
    let dir = scratch("torn");
    // 100% commit chaos: every worker writes half a result file,
    // non-atomically, straight at the final path, then dies. Every
    // attempt must be rejected (wire checksum), every lease must poison,
    // and the endgame must still produce the exact verdict and metrics.
    let report = run(&job, &fleet_config(dir.clone(), Some("commit:100:1")));
    assert_same_verdict(&report.verdict, &expect, "all-torn peterson/TSO");
    assert!(report.stats.leases_issued >= 1);
    assert_eq!(
        report.stats.workers_lost, report.stats.leases_issued,
        "every attempt tore its result, so every attempt must count lost"
    );
    assert!(
        report.stats.poisoned_leases >= 1,
        "with max_attempts=2 and 100% tearing, leases must poison"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_workers_dead_at_startup_degrades_to_exact_in_process_run() {
    let job = job(LockKind::Ttas, 2, FenceMask::ALL, MemoryModel::Pso);
    let expect = baseline(&job);
    let dir = scratch("startup_dead");
    let report = run(&job, &fleet_config(dir.clone(), Some("startup:100:0")));
    assert_same_verdict(&report.verdict, &expect, "all-startup-dead ttas/PSO");
    assert!(report.stats.leases_issued >= 1);
    assert_eq!(report.stats.workers_lost, report.stats.leases_issued);
    assert!(
        report.stats.poisoned_leases >= 1,
        "every lease must fall through to the in-process endgame"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_workers_are_killed_and_the_run_stays_exact() {
    // 100% heartbeat chaos: workers go silent after two beats but keep
    // working. Small slices may commit before the stall deadline (the
    // kill-after-commit race the supervisor must honor); big ones get
    // stall-killed and retried. Either path must stay exact.
    let job = job(LockKind::Bakery, 2, FenceMask::ALL, MemoryModel::Tso);
    let expect = baseline(&job);
    let dir = scratch("stall");
    let report = run(&job, &fleet_config(dir.clone(), Some("heartbeat:100:2")));
    assert_same_verdict(&report.verdict, &expect, "all-stalled bakery/TSO");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn termination_check_merges_the_edge_graph_across_leases() {
    // The termination pass runs over the merged edge graph in the
    // endgame; a lost edge or terminal would flip the verdict.
    let mut job = job(LockKind::Peterson, 2, FenceMask::ALL, MemoryModel::Tso);
    job.check_termination = true;
    let expect = baseline(&job);
    let dir = scratch("termination");
    let report = run(&job, &fleet_config(dir.clone(), Some("commit:30:5")));
    assert_same_verdict(&report.verdict, &expect, "termination peterson/TSO");
    let _ = std::fs::remove_dir_all(&dir);
}
