//! Hardware Bakery lock.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::raw::{FenceCounter, Pad, RawLock};

/// Lamport's Bakery lock on real atomics: O(1) fences and O(n) shared-
/// variable accesses per passage (each slot's `choosing`/`ticket` pair
/// lives on its own cache line, so uncontended scans really do cost one
/// coherence miss per competitor, mirroring the RMR account).
#[derive(Debug)]
pub struct HwBakery {
    choosing: Vec<Pad<AtomicBool>>,
    ticket: Vec<Pad<AtomicU64>>,
    fences: FenceCounter,
}

impl HwBakery {
    /// A Bakery lock for `n ≥ 1` threads.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "bakery needs at least one slot");
        HwBakery {
            choosing: (0..n).map(|_| Pad::new(AtomicBool::new(false))).collect(),
            ticket: (0..n).map(|_| Pad::new(AtomicU64::new(0))).collect(),
            fences: FenceCounter::new(),
        }
    }

    /// Acquire as slot `slot` (exposed for reuse inside [`HwGt`]).
    ///
    /// [`HwGt`]: crate::HwGt
    pub fn acquire_slot(&self, slot: usize) {
        let n = self.choosing.len();
        assert!(slot < n, "slot {slot} out of range");
        self.choosing[slot].store(true, Ordering::Relaxed);
        self.fences.fence(); // site 0: doorway open

        let mut t = 0;
        for j in 0..n {
            t = t.max(self.ticket[j].load(Ordering::SeqCst));
        }
        self.ticket[slot].store(t + 1, Ordering::Relaxed);
        self.fences.fence(); // site 2: ticket published (inside the doorway)

        self.choosing[slot].store(false, Ordering::Relaxed);
        self.fences.fence(); // site 1: doorway closed

        let my = t + 1;
        for j in 0..n {
            if j == slot {
                continue;
            }
            let mut spins = 0;
            while self.choosing[j].load(Ordering::SeqCst) {
                crate::raw::spin_wait(&mut spins);
            }
            let mut spins = 0;
            loop {
                let tj = self.ticket[j].load(Ordering::SeqCst);
                if tj == 0 || (my, slot) < (tj, j) {
                    break;
                }
                crate::raw::spin_wait(&mut spins);
            }
        }
    }

    /// Release as slot `slot`.
    pub fn release_slot(&self, slot: usize) {
        self.ticket[slot].store(0, Ordering::Relaxed);
        self.fences.fence(); // site 3: release
    }
}

impl RawLock for HwBakery {
    fn max_threads(&self) -> usize {
        self.choosing.len()
    }

    fn acquire(&self, tid: usize) {
        self.acquire_slot(tid);
    }

    fn release(&self, tid: usize) {
        self.release_slot(tid);
    }

    fn fences(&self) -> u64 {
        self.fences.count()
    }

    fn name(&self) -> String {
        format!("hw-bakery[{}]", self.choosing.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_mutual_exclusion;

    #[test]
    fn uncontended_passage_counts_four_fences() {
        let lock = HwBakery::new(8);
        lock.acquire(0);
        lock.release(0);
        assert_eq!(lock.fences(), 4);
    }

    #[test]
    fn stress_mutex_holds() {
        let lock = HwBakery::new(4);
        stress_mutual_exclusion(&lock, 4, 500);
    }

    #[test]
    fn name_and_capacity() {
        let lock = HwBakery::new(3);
        assert_eq!(lock.max_threads(), 3);
        assert!(lock.name().contains("bakery"));
    }
}
