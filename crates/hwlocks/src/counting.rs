//! A lock-based ordering object on hardware: the paper's `Count`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::raw::RawLock;

/// A counter protected by any [`RawLock`]: `next()` returns the number of
/// earlier completed operations — the hardware analogue of the simulator's
/// `Counter` ordering object. Rank order is exactly critical-section order,
/// so the sequence of return values across threads is a permutation of
/// `0..total_calls`.
#[derive(Debug)]
pub struct CountingLock<L> {
    lock: L,
    value: AtomicU64,
}

impl<L: RawLock> CountingLock<L> {
    /// Wrap `lock` around a zeroed counter.
    #[must_use]
    pub fn new(lock: L) -> Self {
        CountingLock {
            lock,
            value: AtomicU64::new(0),
        }
    }

    /// Perform one counting operation as thread `tid`; returns this call's
    /// rank. The read-increment-write inside the critical section is
    /// deliberately non-atomic-style (Relaxed load then Relaxed store): the
    /// lock's fences are what make it safe, as in the paper's `Count`.
    pub fn next(&self, tid: usize) -> u64 {
        self.lock.acquire(tid);
        let v = self.value.load(Ordering::Relaxed);
        self.value.store(v + 1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst); // the object's own fence
        self.lock.release(tid);
        v
    }

    /// The number of completed operations.
    #[must_use]
    pub fn current(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }

    /// The underlying lock.
    #[must_use]
    pub fn lock(&self) -> &L {
        &self.lock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bakery::HwBakery;
    use crate::gt::HwGt;

    fn ranks_are_a_permutation<L: RawLock>(lock: L, threads: usize, iters: usize) {
        let counter = CountingLock::new(lock);
        let mut all: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|tid| {
                    let counter = &counter;
                    scope.spawn(move || (0..iters).map(|_| counter.next(tid)).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        all.sort_unstable();
        let expect: Vec<u64> = (0..(threads * iters) as u64).collect();
        assert_eq!(all, expect, "ranks must form a permutation");
        assert_eq!(counter.current(), (threads * iters) as u64);
    }

    #[test]
    fn bakery_counting_ranks() {
        ranks_are_a_permutation(HwBakery::new(4), 4, 200);
    }

    #[test]
    fn gt_counting_ranks() {
        ranks_are_a_permutation(HwGt::new(4, 2), 4, 200);
    }

    #[test]
    fn solo_ranks_are_sequential() {
        let c = CountingLock::new(HwBakery::new(2));
        assert_eq!(c.next(0), 0);
        assert_eq!(c.next(0), 1);
        assert_eq!(c.next(1), 2);
        assert_eq!(c.current(), 3);
    }
}
