//! Hardware generalized tournament lock `GT_f`.

use crate::bakery::HwBakery;
use crate::raw::RawLock;

/// The `GT_f` lock on real atomics: a height-`f` tree of `b`-slot
/// [`HwBakery`] nodes with `b = ⌈n^(1/f)⌉`. Per passage: `4f` fences and
/// `O(f·b)` coherence misses — the whole tradeoff spectrum, from
/// `GT_1` = Bakery to `GT_{log n}` ≈ the binary tournament.
#[derive(Debug)]
pub struct HwGt {
    n: usize,
    f: usize,
    b: usize,
    /// `levels[l]` = Bakery nodes at level `l` (0 = deepest).
    levels: Vec<Vec<HwBakery>>,
}

impl HwGt {
    /// A `GT_f` lock for `n` threads with tree height `f ≥ 1`.
    #[must_use]
    pub fn new(n: usize, f: usize) -> Self {
        assert!(n >= 1 && f >= 1);
        let b = simlocks_branching(n, f);
        let mut levels = Vec::with_capacity(f);
        for level in 0..f {
            let span = b.checked_pow(level as u32 + 1).expect("tree dims overflow");
            let node_count = n.div_ceil(span).max(1);
            levels.push((0..node_count).map(|_| HwBakery::new(b)).collect());
        }
        HwGt { n, f, b, levels }
    }

    /// The branching factor `b`.
    #[must_use]
    pub fn branching(&self) -> usize {
        self.b
    }

    fn position(&self, tid: usize, level: usize) -> (usize, usize) {
        let below = self.b.pow(level as u32);
        (tid / (below * self.b), (tid / below) % self.b)
    }
}

/// Smallest `b` with `b^f ≥ n` (kept dependency-free; mirrors
/// `simlocks::branching_factor`).
fn simlocks_branching(n: usize, f: usize) -> usize {
    let mut b = 1usize;
    loop {
        let mut acc = 1usize;
        let mut ok = false;
        for _ in 0..f {
            acc = acc.saturating_mul(b);
            if acc >= n {
                ok = true;
                break;
            }
        }
        if ok || acc >= n {
            return b;
        }
        b += 1;
    }
}

impl RawLock for HwGt {
    fn max_threads(&self) -> usize {
        self.n
    }

    fn acquire(&self, tid: usize) {
        assert!(tid < self.n, "thread {tid} out of range");
        for level in 0..self.f {
            let (node, slot) = self.position(tid, level);
            self.levels[level][node].acquire_slot(slot);
        }
    }

    fn release(&self, tid: usize) {
        assert!(tid < self.n, "thread {tid} out of range");
        for level in (0..self.f).rev() {
            let (node, slot) = self.position(tid, level);
            self.levels[level][node].release_slot(slot);
        }
    }

    fn fences(&self) -> u64 {
        self.levels.iter().flatten().map(RawLock::fences).sum()
    }

    fn name(&self) -> String {
        format!("hw-gt[n={},f={},b={}]", self.n, self.f, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_mutual_exclusion;

    #[test]
    fn branching_matches_formula() {
        assert_eq!(HwGt::new(16, 2).branching(), 4);
        assert_eq!(HwGt::new(16, 4).branching(), 2);
        assert_eq!(HwGt::new(9, 2).branching(), 3);
    }

    #[test]
    fn uncontended_passage_counts_4f_fences() {
        for f in [1usize, 2, 3] {
            let lock = HwGt::new(8, f);
            lock.acquire(0);
            lock.release(0);
            assert_eq!(lock.fences(), 4 * f as u64, "f={f}");
        }
    }

    #[test]
    fn stress_mutex_holds_various_shapes() {
        for (n, f) in [(4usize, 2usize), (6, 2), (8, 3)] {
            let lock = HwGt::new(n, f);
            stress_mutual_exclusion(&lock, n.min(4), 300);
        }
    }
}
