//! # hwlocks — the paper's lock family on real atomics
//!
//! Hardware (`std::sync::atomic`) implementations of the algorithms the
//! simulator crates study, runnable on any machine (the fence placement is
//! load-bearing on weakly ordered hardware such as ARM; on x86 the `SeqCst`
//! fences map to `mfence`-class barriers whose cost experiment E7
//! measures):
//!
//! * [`HwBakery`] — O(1) fences, O(n) coherence misses per passage;
//! * [`HwPeterson`] — the two-thread building block;
//! * [`HwTournament`] — O(log n) fences and misses;
//! * [`HwGt`] — `GT_f` for any height `f`: `4f` fences, `O(f·n^(1/f))`
//!   misses;
//! * [`CountingLock`] — the `Count` ordering object over any of them.
//!
//! ## Memory-ordering discipline
//!
//! Mirroring the paper's machine: plain stores are `Relaxed` (bufferable,
//! reorderable — the PSO behaviour), each algorithmic fence site executes a
//! counted `SeqCst` fence ([`FenceCounter`]), and loads are `SeqCst`
//! (conservatively ruling out read reordering, which the paper's fences
//! also forbid under RMO). Correctness thus rests exactly on the fence
//! placement, as in the paper. Every slot's registers are cache-line padded
//! ([`Pad`]) so a coherence miss is the faithful hardware analogue of an
//! RMR.
//!
//! ## Example
//!
//! ```
//! use hwlocks::{CountingLock, HwGt, RawLock};
//!
//! let counter = CountingLock::new(HwGt::new(8, 2));
//! assert_eq!(counter.next(0), 0);
//! assert_eq!(counter.next(3), 1);
//! assert_eq!(counter.lock().fences(), 2 * 8); // 4·f per passage, f = 2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bakery;
pub mod counting;
pub mod gt;
pub mod mcs;
pub mod peterson;
pub mod raw;
pub mod tas;
pub mod tournament;

#[doc(hidden)]
pub mod testutil;

pub use bakery::HwBakery;
pub use counting::CountingLock;
pub use gt::HwGt;
pub use mcs::HwMcs;
pub use peterson::HwPeterson;
pub use raw::{with_lock, FenceCounter, LockGuard, Pad, RawLock};
pub use tas::HwTtas;
pub use tournament::HwTournament;
