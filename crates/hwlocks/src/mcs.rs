//! Hardware MCS queue lock.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::raw::{FenceCounter, Pad, RawLock};

/// The MCS queue lock on real atomics, with statically allocated qnodes
/// (one per thread id, cache-line padded). Each thread spins only on its
/// own `locked` flag, so contended passages cost O(1) coherence misses —
/// the hardware twin of `simlocks::McsLock`.
///
/// Thread ids are encoded as `1 + tid` in the tail word (0 = nil).
#[derive(Debug)]
pub struct HwMcs {
    tail: Pad<AtomicU64>,
    locked: Vec<Pad<AtomicU64>>,
    next: Vec<Pad<AtomicU64>>,
    fences: FenceCounter,
}

impl HwMcs {
    /// An MCS lock for `n ≥ 1` threads.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one thread");
        HwMcs {
            tail: Pad::new(AtomicU64::new(0)),
            locked: (0..n).map(|_| Pad::new(AtomicU64::new(0))).collect(),
            next: (0..n).map(|_| Pad::new(AtomicU64::new(0))).collect(),
            fences: FenceCounter::new(),
        }
    }
}

impl RawLock for HwMcs {
    fn max_threads(&self) -> usize {
        self.locked.len()
    }

    fn acquire(&self, tid: usize) {
        let me = tid as u64 + 1;
        self.locked[tid].store(1, Ordering::Relaxed);
        self.next[tid].store(0, Ordering::Relaxed);
        // The swap is the enqueue point; AcqRel orders the qnode init
        // before it (the simulator's buffer drain).
        let pred = self.tail.swap(me, Ordering::AcqRel);
        if pred != 0 {
            self.next[pred as usize - 1].store(me, Ordering::Relaxed);
            self.fences.fence(); // site 0: link visible to the predecessor
            let mut spins = 0;
            while self.locked[tid].load(Ordering::SeqCst) != 0 {
                crate::raw::spin_wait(&mut spins);
            }
        }
    }

    fn release(&self, tid: usize) {
        let me = tid as u64 + 1;
        if self.next[tid].load(Ordering::SeqCst) == 0 {
            if self
                .tail
                .compare_exchange(me, 0, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            let mut spins = 0;
            while self.next[tid].load(Ordering::SeqCst) == 0 {
                crate::raw::spin_wait(&mut spins);
            }
        }
        let succ = self.next[tid].load(Ordering::SeqCst) as usize - 1;
        self.locked[succ].store(0, Ordering::Relaxed);
        self.fences.fence(); // site 1: hand-over
    }

    fn fences(&self) -> u64 {
        self.fences.count()
    }

    fn name(&self) -> String {
        format!("hw-mcs[{}]", self.locked.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_mutual_exclusion;

    #[test]
    fn uncontended_passage_needs_no_fence() {
        let lock = HwMcs::new(4);
        lock.acquire(0);
        lock.release(0);
        assert_eq!(lock.fences(), 0, "swap/CAS do the ordering when alone");
    }

    #[test]
    fn stress_mutex_holds() {
        let lock = HwMcs::new(4);
        stress_mutual_exclusion(&lock, 4, 500);
    }

    #[test]
    fn handoff_chains_through_the_queue() {
        let lock = HwMcs::new(3);
        for round in 0..10 {
            for tid in 0..3 {
                lock.acquire(tid);
                lock.release(tid);
            }
            let _ = round;
        }
        // Queue drained: tail must be nil again.
        assert_eq!(lock.tail.load(Ordering::SeqCst), 0);
    }
}
