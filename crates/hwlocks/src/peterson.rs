//! Hardware Peterson lock (two threads).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::raw::{FenceCounter, Pad, RawLock};

/// Peterson's two-thread lock with the paper's fence discipline: relaxed
/// stores, a counted `SeqCst` fence after each of the `flag` and `victim`
/// writes (the second being the essential store–load fence), `SeqCst`
/// loads in the wait test.
#[derive(Debug)]
pub struct HwPeterson {
    flag: [Pad<AtomicU64>; 2],
    victim: Pad<AtomicU64>,
    fences: FenceCounter,
}

impl Default for HwPeterson {
    fn default() -> Self {
        Self::new()
    }
}

impl HwPeterson {
    /// A fresh, unheld lock.
    #[must_use]
    pub fn new() -> Self {
        HwPeterson {
            flag: [Pad::new(AtomicU64::new(0)), Pad::new(AtomicU64::new(0))],
            victim: Pad::new(AtomicU64::new(0)),
            fences: FenceCounter::new(),
        }
    }

    /// Acquire as side `side ∈ {0, 1}` (exposed for reuse inside
    /// [`HwTournament`](crate::HwTournament)).
    pub fn acquire_side(&self, side: usize) {
        assert!(side < 2, "peterson side must be 0 or 1");
        let me = side as u64 + 1;
        self.flag[side].store(1, Ordering::Relaxed);
        self.fences.fence(); // site 0
        self.victim.store(me, Ordering::Relaxed);
        self.fences.fence(); // site 1: the store-load fence
        let mut spins = 0;
        while self.flag[1 - side].load(Ordering::SeqCst) == 1
            && self.victim.load(Ordering::SeqCst) == me
        {
            crate::raw::spin_wait(&mut spins);
        }
    }

    /// Release as side `side`.
    pub fn release_side(&self, side: usize) {
        assert!(side < 2, "peterson side must be 0 or 1");
        self.flag[side].store(0, Ordering::Relaxed);
        self.fences.fence(); // site 2
    }
}

impl RawLock for HwPeterson {
    fn max_threads(&self) -> usize {
        2
    }

    fn acquire(&self, tid: usize) {
        self.acquire_side(tid);
    }

    fn release(&self, tid: usize) {
        self.release_side(tid);
    }

    fn fences(&self) -> u64 {
        self.fences.count()
    }

    fn name(&self) -> String {
        "hw-peterson".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_mutual_exclusion;

    #[test]
    fn uncontended_passage_counts_three_fences() {
        let lock = HwPeterson::new();
        lock.acquire(0);
        lock.release(0);
        assert_eq!(lock.fences(), 3);
    }

    #[test]
    fn stress_mutex_holds() {
        let lock = HwPeterson::new();
        stress_mutual_exclusion(&lock, 2, 5_000);
    }
}
