//! The hardware lock interface and shared instrumentation.

use std::sync::atomic::{AtomicU64, Ordering};

/// A cache-line-padded cell, preventing false sharing between per-thread
/// lock registers (the hardware analogue of the DSM "local segment").
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct Pad<T>(pub T);

impl<T> Pad<T> {
    /// Wrap a value.
    pub fn new(v: T) -> Self {
        Pad(v)
    }
}

impl<T> std::ops::Deref for Pad<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Counts the memory fences a lock executes, so hardware measurements can
/// be set against the simulator's `β`.
#[derive(Debug, Default)]
pub struct FenceCounter(AtomicU64);

impl FenceCounter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Execute one sequentially consistent fence and count it.
    #[inline]
    pub fn fence(&self) {
        std::sync::atomic::fence(Ordering::SeqCst);
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Fences executed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Spin-wait backoff: busy-spin briefly, then start yielding the CPU —
/// essential on machines with fewer cores than contending threads, where a
/// pure spin burns the lock holder's whole quantum.
#[inline]
pub fn spin_wait(spins: &mut u32) {
    if *spins < 16 {
        std::hint::spin_loop();
        *spins += 1;
    } else {
        std::thread::yield_now();
    }
}

/// A mutual-exclusion lock for a fixed set of threads, identified by dense
/// ids `0..max_threads()`.
///
/// All implementations in this crate follow one discipline, mirroring the
/// paper's machine: **plain stores are `Relaxed`** (they may be buffered
/// and reordered, like PSO writes), **every algorithmic fence site executes
/// a counted `SeqCst` fence** (the `fence()` operation), and **loads are
/// `SeqCst`** (conservatively ruling out read reordering, which the paper's
/// algorithms also forbid via their fences under RMO). Correctness
/// therefore rests exactly where the paper says it must: on the placement
/// of the fences.
pub trait RawLock: Send + Sync {
    /// Number of supported threads.
    fn max_threads(&self) -> usize;

    /// Acquire the lock as thread `tid`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `tid >= max_threads()`.
    fn acquire(&self, tid: usize);

    /// Release the lock as thread `tid` (which must hold it).
    fn release(&self, tid: usize);

    /// Total fences executed by all threads so far.
    fn fences(&self) -> u64;

    /// Short descriptive name.
    fn name(&self) -> String;
}

/// Run `f` under the lock.
pub fn with_lock<L: RawLock + ?Sized, R>(lock: &L, tid: usize, f: impl FnOnce() -> R) -> R {
    let _guard = LockGuard::acquire(lock, tid);
    f()
}

/// An RAII guard: the lock is held from [`LockGuard::acquire`] until the
/// guard drops, so early returns and panics release it reliably.
#[derive(Debug)]
pub struct LockGuard<'a, L: RawLock + ?Sized> {
    lock: &'a L,
    tid: usize,
}

impl<'a, L: RawLock + ?Sized> LockGuard<'a, L> {
    /// Acquire `lock` as thread `tid` and hold it for the guard's lifetime.
    pub fn acquire(lock: &'a L, tid: usize) -> Self {
        lock.acquire(tid);
        LockGuard { lock, tid }
    }

    /// The thread id this guard holds the lock as.
    #[must_use]
    pub fn tid(&self) -> usize {
        self.tid
    }
}

impl<L: RawLock + ?Sized> Drop for LockGuard<'_, L> {
    fn drop(&mut self) {
        self.lock.release(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_is_cache_line_aligned() {
        assert!(std::mem::align_of::<Pad<u8>>() >= 128);
        let p = Pad::new(5u32);
        assert_eq!(*p, 5);
    }

    #[test]
    fn guard_releases_on_drop_and_on_panic() {
        use crate::bakery::HwBakery;
        let lock = HwBakery::new(2);
        {
            let g = LockGuard::acquire(&lock, 0);
            assert_eq!(g.tid(), 0);
        }
        // Released: another thread id can take it immediately.
        let _g = LockGuard::acquire(&lock, 1);
        drop(_g);

        // Panic inside a guard scope still releases.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = LockGuard::acquire(&lock, 0);
            panic!("boom");
        }));
        assert!(caught.is_err());
        let _g = LockGuard::acquire(&lock, 1);
    }

    #[test]
    fn fence_counter_counts() {
        let c = FenceCounter::new();
        assert_eq!(c.count(), 0);
        c.fence();
        c.fence();
        assert_eq!(c.count(), 2);
    }
}
