//! Hardware test-and-test-and-set lock.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::raw::{FenceCounter, Pad, RawLock};

/// Test-and-test-and-set over `compare_exchange`: the comparison-primitive
/// baseline of the paper's §6 note. O(1) fences and uncontended cost, but
/// every release invalidates every spinner's cached line — the contention
/// behaviour experiment E9 compares against `GT_f`.
#[derive(Debug, Default)]
pub struct HwTtas {
    word: Pad<AtomicU64>,
    fences: FenceCounter,
}

impl HwTtas {
    /// A fresh, unheld lock.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl RawLock for HwTtas {
    fn max_threads(&self) -> usize {
        usize::MAX
    }

    fn acquire(&self, tid: usize) {
        let claim = tid as u64 + 1;
        loop {
            // Test: spin cache-locally until the word looks free.
            let mut spins = 0;
            while self.word.load(Ordering::Relaxed) != 0 {
                crate::raw::spin_wait(&mut spins);
            }
            // And-set: claim with a CAS (its success ordering is the
            // acquire edge).
            if self
                .word
                .compare_exchange(0, claim, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    fn release(&self, _tid: usize) {
        self.word.store(0, Ordering::Relaxed);
        self.fences.fence(); // site 0: release
    }

    fn fences(&self) -> u64 {
        self.fences.count()
    }

    fn name(&self) -> String {
        "hw-ttas".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_mutual_exclusion;

    #[test]
    fn uncontended_passage_counts_one_fence() {
        let lock = HwTtas::new();
        lock.acquire(0);
        lock.release(0);
        assert_eq!(lock.fences(), 1);
    }

    #[test]
    fn stress_mutex_holds() {
        let lock = HwTtas::new();
        stress_mutual_exclusion(&lock, 4, 500);
    }
}
