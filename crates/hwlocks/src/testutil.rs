//! Shared test harness: a mutual-exclusion stress test usable by every
//! lock implementation (and by downstream integration tests).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::raw::RawLock;

/// Drive `threads` threads through `iters` lock passages each, verifying
/// (a) no two threads are ever inside the critical section at once and
/// (b) a deliberately racy read-modify-write counter loses no updates.
///
/// # Panics
///
/// Panics if mutual exclusion is violated or updates are lost.
pub fn stress_mutual_exclusion<L: RawLock>(lock: &L, threads: usize, iters: usize) {
    assert!(threads <= lock.max_threads());
    let in_cs = AtomicU64::new(0);
    // The "protected resource": a non-atomic-style counter emulated with
    // Relaxed load + store, which WOULD lose updates without the lock.
    let counter = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for tid in 0..threads {
            let (lock, in_cs, counter) = (&*lock, &in_cs, &counter);
            scope.spawn(move || {
                for _ in 0..iters {
                    lock.acquire(tid);
                    let inside = in_cs.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(inside, 0, "mutual exclusion violated (tid {tid})");
                    let v = counter.load(Ordering::Relaxed);
                    std::hint::spin_loop();
                    counter.store(v + 1, Ordering::Relaxed);
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                    lock.release(tid);
                }
            });
        }
    });

    assert_eq!(
        counter.load(Ordering::SeqCst),
        (threads * iters) as u64,
        "updates were lost: the lock failed"
    );
}
