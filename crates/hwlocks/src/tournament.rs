//! Hardware binary tournament-tree lock.

use crate::peterson::HwPeterson;
use crate::raw::RawLock;

/// A binary tournament tree of [`HwPeterson`] nodes for `n = 2^k` threads:
/// Θ(log n) fences and Θ(log n) coherence misses per passage.
#[derive(Debug)]
pub struct HwTournament {
    n: usize,
    /// Heap-indexed internal nodes (root = 1; index 0 unused).
    nodes: Vec<HwPeterson>,
}

impl HwTournament {
    /// A tournament lock for `n` threads (`n` a power of two, `n ≥ 2`).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "tournament needs a power-of-two n >= 2"
        );
        HwTournament {
            n,
            nodes: (0..n).map(|_| HwPeterson::new()).collect(),
        }
    }

    fn path(&self, tid: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        assert!(tid < self.n, "thread {tid} out of range");
        let mut v = self.n + tid;
        std::iter::from_fn(move || {
            if v <= 1 {
                return None;
            }
            let side = v & 1;
            v >>= 1;
            Some((v, side))
        })
    }
}

impl RawLock for HwTournament {
    fn max_threads(&self) -> usize {
        self.n
    }

    fn acquire(&self, tid: usize) {
        for (node, side) in self.path(tid) {
            self.nodes[node].acquire_side(side);
        }
    }

    fn release(&self, tid: usize) {
        let path: Vec<(usize, usize)> = self.path(tid).collect();
        for &(node, side) in path.iter().rev() {
            self.nodes[node].release_side(side);
        }
    }

    fn fences(&self) -> u64 {
        self.nodes.iter().map(RawLock::fences).sum()
    }

    fn name(&self) -> String {
        format!("hw-tournament[{}]", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_mutual_exclusion;

    #[test]
    fn uncontended_passage_fences_scale_with_levels() {
        let lock = HwTournament::new(8);
        lock.acquire(0);
        lock.release(0);
        assert_eq!(
            lock.fences(),
            3 * 3,
            "3 fences per level over log2(8) levels"
        );
    }

    #[test]
    fn stress_mutex_holds() {
        let lock = HwTournament::new(4);
        stress_mutual_exclusion(&lock, 4, 500);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        let _ = HwTournament::new(6);
    }
}
