//! Bit-level serialization of command stacks — the *code* of the
//! information-theoretic argument, made literal.
//!
//! The paper bounds the encoding length by
//! `B(E) = O(β(E)·(log(ρ(E)/β(E)) + 1))` bits and observes that n!
//! distinguishable executions force `B ≥ log₂ n!` for some permutation. We
//! make both sides concrete: stacks serialize to an actual bit string
//! (3-bit command tags + Elias-γ coded counters + per-stack terminators),
//! deserialize losslessly, and the experiments compare measured lengths
//! against `log₂ n!` and against the `β/ρ` bound.

use crate::command::{Command, Stacks};
use std::collections::BTreeSet;
use wbmem::ProcId;

/// A growable bit string.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitString {
    bits: Vec<bool>,
}

impl BitString {
    /// An empty bit string.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether no bits have been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// Append the low `width` bits of `value`, most significant first.
    pub fn push_uint(&mut self, value: u64, width: u32) {
        for i in (0..width).rev() {
            self.push((value >> i) & 1 == 1);
        }
    }

    /// Append Elias-γ code of `value ≥ 1`: `⌊log₂ v⌋` zeros, then the
    /// binary representation of `v` (which starts with 1) — `2⌊log₂ v⌋+1`
    /// bits total, i.e. `O(log v)`.
    pub fn push_gamma(&mut self, value: u64) {
        assert!(value >= 1, "Elias gamma encodes positive integers");
        let width = 64 - value.leading_zeros();
        for _ in 0..width - 1 {
            self.push(false);
        }
        self.push_uint(value, width);
    }

    /// Pack into bytes (zero-padded).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.bits.len().div_ceil(8)];
        for (i, &b) in self.bits.iter().enumerate() {
            if b {
                out[i / 8] |= 1 << (7 - i % 8);
            }
        }
        out
    }
}

/// A cursor for reading a [`BitString`].
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bits: &'a [bool],
    pos: usize,
}

/// Serialization error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of bits mid-symbol.
    UnexpectedEnd,
    /// An undefined command tag was read.
    BadTag(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "unexpected end of bit string"),
            CodecError::BadTag(t) => write!(f, "undefined command tag {t}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl<'a> BitReader<'a> {
    /// Read from the start of `bits`.
    #[must_use]
    pub fn new(bits: &'a BitString) -> Self {
        BitReader {
            bits: &bits.bits,
            pos: 0,
        }
    }

    /// Read one bit.
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        let b = *self.bits.get(self.pos).ok_or(CodecError::UnexpectedEnd)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read `width` bits as an unsigned integer.
    pub fn read_uint(&mut self, width: u32) -> Result<u64, CodecError> {
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Ok(v)
    }

    /// Read an Elias-γ coded integer.
    pub fn read_gamma(&mut self) -> Result<u64, CodecError> {
        let mut zeros = 0u32;
        while !self.read_bit()? {
            zeros += 1;
        }
        // The leading 1 has been consumed.
        let rest = self.read_uint(zeros)?;
        Ok((1u64 << zeros) | rest)
    }

    /// Number of bits consumed.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// Per-command tag width: 5 commands + 1 end-of-stack marker fit in 3 bits.
const TAG_BITS: u32 = 3;
const END_TAG: u64 = 5;

/// Serialize stacks to bits: for each process (in id order), its commands
/// top-to-bottom, then an end marker. Parameter sets are always ∅ in
/// encoder output, so only `(tag, k)` is stored.
#[must_use]
pub fn serialize_stacks(stacks: &Stacks) -> BitString {
    let mut out = BitString::new();
    for i in 0..stacks.n() {
        for cmd in stacks.commands_of(ProcId::from(i)) {
            out.push_uint(u64::from(cmd.tag()), TAG_BITS);
            if cmd.has_parameter() {
                out.push_gamma(cmd.value().max(1));
            }
        }
        out.push_uint(END_TAG, TAG_BITS);
    }
    out
}

/// Deserialize `n` stacks from bits.
///
/// # Errors
///
/// Fails on truncated input or an undefined tag.
pub fn deserialize_stacks(bits: &BitString, n: usize) -> Result<Stacks, CodecError> {
    let mut r = BitReader::new(bits);
    let mut stacks = Stacks::new(n);
    for i in 0..n {
        let p = ProcId::from(i);
        loop {
            let tag = r.read_uint(TAG_BITS)?;
            let cmd = match tag {
                0 => Command::Proceed,
                1 => Command::Commit,
                2 => Command::WaitHiddenCommit(r.read_gamma()?),
                3 => Command::WaitReadFinish(r.read_gamma()?, BTreeSet::new()),
                4 => Command::WaitLocalFinish(r.read_gamma()?, BTreeSet::new()),
                5 => break,
                t => return Err(CodecError::BadTag(t as u8)),
            };
            stacks.push_bottom(p, cmd);
        }
    }
    Ok(stacks)
}

/// The paper's analytic bound on the code length (Section 5.3.4, eq. (7)):
/// `m·(log₂(v/m) + 1) + O(m + n)` bits for `m` commands of total value `v`.
/// The constant is fixed at the serializer's real overhead (3 tag bits per
/// command, one γ-code per parameterized command, `n` end markers).
#[must_use]
pub fn analytic_bound_bits(m: usize, v: u64, n: usize) -> f64 {
    if m == 0 {
        return 3.0 * n as f64;
    }
    let ratio = (v as f64 / m as f64).max(1.0);
    m as f64 * (ratio.log2() + 1.0) * 2.0 + 4.0 * (m as f64 + n as f64)
}

/// `log₂(n!)` — the information-theoretic floor averaged over permutations.
#[must_use]
pub fn log2_factorial(n: usize) -> f64 {
    (2..=n).map(|k| (k as f64).log2()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_round_trips() {
        let mut bs = BitString::new();
        let values = [1u64, 2, 3, 4, 5, 7, 8, 100, 1_000_000];
        for &v in &values {
            bs.push_gamma(v);
        }
        let mut r = BitReader::new(&bs);
        for &v in &values {
            assert_eq!(r.read_gamma().unwrap(), v);
        }
        assert_eq!(r.position(), bs.len());
    }

    #[test]
    fn gamma_length_is_logarithmic() {
        for v in [1u64, 2, 16, 1024] {
            let mut bs = BitString::new();
            bs.push_gamma(v);
            let expected = 2 * (64 - v.leading_zeros() - 1) + 1;
            assert_eq!(bs.len() as u32, expected, "v={v}");
        }
    }

    #[test]
    fn uint_round_trips() {
        let mut bs = BitString::new();
        bs.push_uint(0b1011, 4);
        bs.push_uint(7, 3);
        let mut r = BitReader::new(&bs);
        assert_eq!(r.read_uint(4).unwrap(), 0b1011);
        assert_eq!(r.read_uint(3).unwrap(), 7);
    }

    #[test]
    fn stacks_round_trip() {
        let mut st = Stacks::new(3);
        st.push_bottom(ProcId(0), Command::Proceed);
        st.push_bottom(ProcId(0), Command::Commit);
        st.push_bottom(ProcId(1), Command::WaitLocalFinish(3, BTreeSet::new()));
        st.push_bottom(ProcId(1), Command::WaitHiddenCommit(9));
        st.push_bottom(ProcId(2), Command::WaitReadFinish(1, BTreeSet::new()));
        let bits = serialize_stacks(&st);
        let back = deserialize_stacks(&bits, 3).unwrap();
        assert_eq!(back, st);
    }

    #[test]
    fn empty_stacks_cost_only_end_markers() {
        let st = Stacks::new(4);
        let bits = serialize_stacks(&st);
        assert_eq!(bits.len(), 4 * 3);
        assert_eq!(deserialize_stacks(&bits, 4).unwrap(), st);
    }

    #[test]
    fn truncated_input_errors() {
        let mut st = Stacks::new(1);
        st.push_bottom(ProcId(0), Command::WaitHiddenCommit(5));
        let bits = serialize_stacks(&st);
        let mut shorter = BitString::new();
        for i in 0..bits.len() - 4 {
            shorter.push(bits.bits[i]);
        }
        assert!(deserialize_stacks(&shorter, 1).is_err());
    }

    #[test]
    fn log2_factorial_values() {
        assert_eq!(log2_factorial(1), 0.0);
        assert!((log2_factorial(4) - (24f64).log2()).abs() < 1e-9);
    }

    #[test]
    fn to_bytes_packs_msb_first() {
        let mut bs = BitString::new();
        bs.push_uint(0b1010_0000, 8);
        bs.push(true);
        let bytes = bs.to_bytes();
        assert_eq!(bytes, vec![0b1010_0000, 0b1000_0000]);
    }
}
