//! Exhaustive codebooks: encode **every** permutation of `[n]` (feasible
//! for small `n`) and study the resulting code set — the literal object of
//! the counting argument: n! distinct codes, so the longest one carries at
//! least `log₂ n!` bits.

use simlocks::OrderingInstance;

use crate::bits::serialize_stacks;
use crate::encode::{encode_permutation, EncodeError, EncodeOptions};

/// Summary statistics of a full codebook.
#[derive(Clone, Debug, PartialEq)]
pub struct Codebook {
    /// Number of permutations encoded (= n!).
    pub permutations: usize,
    /// Whether all codes were pairwise distinct (they must be).
    pub injective: bool,
    /// Minimum code length in bits.
    pub min_bits: usize,
    /// Mean code length in bits.
    pub mean_bits: f64,
    /// Maximum code length in bits.
    pub max_bits: usize,
    /// Maximum β over the constructed executions.
    pub max_beta: u64,
    /// Maximum ρ over the constructed executions.
    pub max_rho: u64,
}

/// Encode every permutation of `0..n` for `inst` and summarize the codes.
///
/// # Errors
///
/// Propagates the first encoding failure.
///
/// # Panics
///
/// Panics if `n > 8` (8! = 40320 encodings is already generous).
pub fn build_codebook(
    inst: &OrderingInstance,
    opts: &EncodeOptions,
) -> Result<Codebook, EncodeError> {
    let n = inst.n;
    assert!(n <= 8, "exhaustive codebooks are for small n");

    let mut codes = std::collections::HashSet::new();
    let (mut count, mut min_bits, mut max_bits, mut sum_bits) = (0usize, usize::MAX, 0usize, 0u64);
    let (mut max_beta, mut max_rho) = (0u64, 0u64);

    let mut items: Vec<usize> = (0..n).collect();
    let mut stack = vec![0usize; n];
    // Heap's algorithm, iterative.
    let mut process =
        |pi: &[usize], codes: &mut std::collections::HashSet<Vec<u8>>| -> Result<(), EncodeError> {
            let enc = encode_permutation(inst, pi, opts)?;
            let bits = serialize_stacks(&enc.stacks);
            codes.insert(bits.to_bytes());
            count += 1;
            min_bits = min_bits.min(bits.len());
            max_bits = max_bits.max(bits.len());
            sum_bits += bits.len() as u64;
            max_beta = max_beta.max(enc.beta);
            max_rho = max_rho.max(enc.rho);
            Ok(())
        };

    process(&items, &mut codes)?;
    let mut i = 1;
    while i < n {
        if stack[i] < i {
            if i % 2 == 0 {
                items.swap(0, i);
            } else {
                items.swap(stack[i], i);
            }
            process(&items, &mut codes)?;
            stack[i] += 1;
            i = 1;
        } else {
            stack[i] = 0;
            i += 1;
        }
    }

    Ok(Codebook {
        permutations: count,
        injective: codes.len() == count,
        min_bits,
        mean_bits: sum_bits as f64 / count as f64,
        max_bits,
        max_beta,
        max_rho,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::log2_factorial;
    use simlocks::{build_ordering, LockKind, ObjectKind};

    #[test]
    fn full_codebook_n4_is_injective_and_above_the_floor() {
        let inst = build_ordering(LockKind::Bakery, 4, ObjectKind::Counter);
        let book = build_codebook(&inst, &EncodeOptions::default()).expect("codebook");
        assert_eq!(book.permutations, 24);
        assert!(book.injective, "all 24 codes must differ");
        assert!(book.min_bits as f64 >= log2_factorial(4));
        assert!(book.max_bits >= book.min_bits);
        assert!(book.mean_bits >= book.min_bits as f64);
        assert!(book.mean_bits <= book.max_bits as f64);
    }

    #[test]
    fn gt_codebook_n3_is_injective() {
        let inst = build_ordering(LockKind::Gt { f: 2 }, 3, ObjectKind::Counter);
        let book = build_codebook(&inst, &EncodeOptions::default()).expect("codebook");
        assert_eq!(book.permutations, 6);
        assert!(book.injective);
    }
}
