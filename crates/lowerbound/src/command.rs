//! The encoding commands of Table 1 and their per-process stacks.
//!
//! The lower-bound proof encodes each constructed execution `E_π` as `n`
//! *command stacks*, one per process. Commands are **appended at the
//! bottom** during encoding (Section 5.2) and **consumed from the top**
//! during decoding (Section 5.1) — so commands execute in the order they
//! were appended, while the counter-update rules (D1b, D2b) pop and re-push
//! at the top.
//!
//! The set parameters `S` of `wait-read-finish(k, S)` and
//! `wait-local-finish(k, S)` are always ∅ *as encoded*; they fill in during
//! decoding as the waited-for processes identify themselves. Only `(tag,
//! k)` is ever serialized.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use wbmem::ProcId;

/// One encoding command (Table 1 of the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Take steps until poised at a fence with a non-empty write buffer.
    Proceed,
    /// Commit the whole pending write batch (visibly).
    Commit,
    /// `k` of this process's buffered writes will be committed *hidden* —
    /// each immediately overwritten by an earlier process's commit before
    /// anyone reads it.
    WaitHiddenCommit(u64),
    /// Wait until `k` early processes that read registers in this process's
    /// write buffer have finished, before committing writes to those
    /// registers. `S` collects the identified readers during decoding.
    WaitReadFinish(u64, BTreeSet<ProcId>),
    /// Wait (before taking any step) until `k` early processes that access
    /// this process's memory segment have finished. `S` collects the
    /// identified accessors during decoding.
    WaitLocalFinish(u64, BTreeSet<ProcId>),
}

impl Command {
    /// The command's *value* (Section 5.3): 1 for the parameterless
    /// commands, the counter `k` for the parameterized ones. The sum of
    /// values over all stacks is `O(ρ(E))`.
    #[must_use]
    pub fn value(&self) -> u64 {
        match self {
            Command::Proceed | Command::Commit => 1,
            Command::WaitHiddenCommit(k)
            | Command::WaitReadFinish(k, _)
            | Command::WaitLocalFinish(k, _) => *k,
        }
    }

    /// Numeric tag for serialization.
    #[must_use]
    pub fn tag(&self) -> u8 {
        match self {
            Command::Proceed => 0,
            Command::Commit => 1,
            Command::WaitHiddenCommit(_) => 2,
            Command::WaitReadFinish(..) => 3,
            Command::WaitLocalFinish(..) => 4,
        }
    }

    /// Whether the command carries a counter parameter.
    #[must_use]
    pub fn has_parameter(&self) -> bool {
        self.tag() >= 2
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Proceed => write!(f, "proceed"),
            Command::Commit => write!(f, "commit"),
            Command::WaitHiddenCommit(k) => write!(f, "wait-hidden-commit({k})"),
            Command::WaitReadFinish(k, s) => {
                write!(f, "wait-read-finish({k}, {{{}}})", fmt_set(s))
            }
            Command::WaitLocalFinish(k, s) => {
                write!(f, "wait-local-finish({k}, {{{}}})", fmt_set(s))
            }
        }
    }
}

fn fmt_set(s: &BTreeSet<ProcId>) -> String {
    s.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// The `n` command stacks. Top = consumption end; bottom = append end.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stacks {
    stacks: Vec<VecDeque<Command>>,
}

impl Stacks {
    /// `n` empty stacks.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Stacks {
            stacks: vec![VecDeque::new(); n],
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.stacks.len()
    }

    /// The top command of `p`'s stack (the one the decoder acts on).
    #[must_use]
    pub fn top(&self, p: ProcId) -> Option<&Command> {
        self.stacks[p.index()].front()
    }

    /// Pop the top command of `p`'s stack.
    pub fn pop_top(&mut self, p: ProcId) -> Option<Command> {
        self.stacks[p.index()].pop_front()
    }

    /// Push a command on top of `p`'s stack (decoder counter updates).
    pub fn push_top(&mut self, p: ProcId, cmd: Command) {
        self.stacks[p.index()].push_front(cmd);
    }

    /// Append a command at the bottom of `p`'s stack (encoder).
    pub fn push_bottom(&mut self, p: ProcId, cmd: Command) {
        self.stacks[p.index()].push_back(cmd);
    }

    /// Whether `p`'s stack is empty.
    #[must_use]
    pub fn is_empty_of(&self, p: ProcId) -> bool {
        self.stacks[p.index()].is_empty()
    }

    /// Number of commands on `p`'s stack.
    #[must_use]
    pub fn len_of(&self, p: ProcId) -> usize {
        self.stacks[p.index()].len()
    }

    /// Commands of `p`'s stack, top to bottom.
    #[must_use]
    pub fn commands_of(&self, p: ProcId) -> Vec<Command> {
        self.stacks[p.index()].iter().cloned().collect()
    }

    /// Total number of commands over all stacks (the paper's `m_π`).
    #[must_use]
    pub fn total_commands(&self) -> usize {
        self.stacks.iter().map(VecDeque::len).sum()
    }

    /// Sum of command values over all stacks (the paper's `v_π`).
    #[must_use]
    pub fn total_value(&self) -> u64 {
        self.stacks.iter().flatten().map(Command::value).sum()
    }

    /// Mutate the top command of `p`'s stack in place.
    pub fn with_top_mut(&mut self, p: ProcId, f: impl FnOnce(&mut Command)) {
        if let Some(top) = self.stacks[p.index()].front_mut() {
            f(top);
        }
    }

    /// Render all stacks, one per line, top → bottom.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, st) in self.stacks.iter().enumerate() {
            let cmds: Vec<String> = st.iter().map(ToString::to_string).collect();
            let _ = writeln!(out, "p{i}: [{}]", cmds.join(" | "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values() {
        assert_eq!(Command::Proceed.value(), 1);
        assert_eq!(Command::Commit.value(), 1);
        assert_eq!(Command::WaitHiddenCommit(5).value(), 5);
        assert_eq!(Command::WaitReadFinish(3, BTreeSet::new()).value(), 3);
        assert_eq!(Command::WaitLocalFinish(2, BTreeSet::new()).value(), 2);
    }

    #[test]
    fn fifo_discipline_append_bottom_pop_top() {
        let mut s = Stacks::new(1);
        let p = ProcId(0);
        s.push_bottom(p, Command::Proceed);
        s.push_bottom(p, Command::Commit);
        s.push_bottom(p, Command::Proceed);
        assert_eq!(s.pop_top(p), Some(Command::Proceed));
        assert_eq!(s.pop_top(p), Some(Command::Commit));
        assert_eq!(s.pop_top(p), Some(Command::Proceed));
        assert_eq!(s.pop_top(p), None);
    }

    #[test]
    fn push_top_reinserts_at_consumption_end() {
        let mut s = Stacks::new(1);
        let p = ProcId(0);
        s.push_bottom(p, Command::WaitHiddenCommit(2));
        s.push_bottom(p, Command::Commit);
        let top = s.pop_top(p).unwrap();
        assert_eq!(top, Command::WaitHiddenCommit(2));
        s.push_top(p, Command::WaitHiddenCommit(1));
        assert_eq!(s.top(p), Some(&Command::WaitHiddenCommit(1)));
        assert_eq!(s.len_of(p), 2);
    }

    #[test]
    fn totals() {
        let mut s = Stacks::new(2);
        s.push_bottom(ProcId(0), Command::Proceed);
        s.push_bottom(ProcId(1), Command::WaitHiddenCommit(4));
        assert_eq!(s.total_commands(), 2);
        assert_eq!(s.total_value(), 5);
    }

    #[test]
    fn with_top_mut_edits_in_place() {
        let mut s = Stacks::new(1);
        let p = ProcId(0);
        s.push_bottom(p, Command::WaitReadFinish(2, BTreeSet::new()));
        s.with_top_mut(p, |c| {
            if let Command::WaitReadFinish(_, set) = c {
                set.insert(ProcId(7));
            }
        });
        match s.top(p).unwrap() {
            Command::WaitReadFinish(2, set) => assert!(set.contains(&ProcId(7))),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Command::Proceed.to_string(), "proceed");
        assert_eq!(
            Command::WaitHiddenCommit(3).to_string(),
            "wait-hidden-commit(3)"
        );
        let mut set = BTreeSet::new();
        set.insert(ProcId(1));
        assert_eq!(
            Command::WaitLocalFinish(1, set).to_string(),
            "wait-local-finish(1, {p1})"
        );
    }
}
