//! The decoder: extended configurations → executions (Section 5.1).
//!
//! An extended configuration is a system configuration plus the `n` command
//! stacks. The decoding rules below deterministically produce the unique
//! execution `E(Γ)`:
//!
//! * **(D1)** If some process is *commit enabled* (top `commit`, poised at a
//!   fence with a non-empty buffer), the smallest such `p` is about to
//!   commit to its smallest buffered register `R` — but if some waiting
//!   process `q` with `wait-hidden-commit(k)` on top also holds a buffered
//!   write to `R`, then `q` commits first (that commit is *hidden*: `p`'s
//!   commit will overwrite it before anyone reads).
//! * **(D2)** Otherwise the smallest *non-commit enabled* process (top
//!   `proceed`, solo-terminating, poised at a read/write, a rank-correct
//!   return, or an empty-buffer fence) takes its operation step. Reads of
//!   buffered registers and returns feed the `wait-read-finish` /
//!   `wait-local-finish` bookkeeping of other stacks.
//! * **(D3)** If every process is waiting or finished, the execution ends.

use fencevm::VmProc;
use wbmem::{Event, EventKind, Machine, Poised, ProcId, SchedElem, SoloOutcome, StepOutcome};

use crate::command::{Command, Stacks};

/// Decoder resource bounds.
#[derive(Clone, Copy, Debug)]
pub struct DecodeOptions {
    /// Maximum steps in the decoded execution.
    pub max_steps: usize,
    /// Initial step bound for solo-termination checks (divergence is
    /// detected exactly by configuration revisit; this bound only guards
    /// unbounded progress).
    pub solo_bound: usize,
    /// Ceiling for the solo-bound backoff: an inconclusive check retries
    /// with a doubled bound until it exceeds this cap, and only then
    /// reports [`DecodeError::SoloUnknown`] (carrying every bound tried).
    pub solo_bound_cap: usize,
}

impl Default for DecodeOptions {
    fn default() -> Self {
        DecodeOptions {
            max_steps: 2_000_000,
            solo_bound: 500_000,
            solo_bound_cap: 8_000_000,
        }
    }
}

/// One decoded step.
#[derive(Clone, Debug)]
pub struct DecodedStep {
    /// The schedule element applied.
    pub elem: SchedElem,
    /// The resulting event.
    pub event: Event,
    /// Whether this was a *hidden* commit (executed by a waiting process).
    pub hidden: bool,
}

/// The decoded execution and everything the encoder needs to extend it.
#[derive(Clone, Debug)]
pub struct DecodeOutcome {
    /// The machine at the final configuration `C_i`.
    pub machine: Machine<VmProc>,
    /// The stacks as left by decoding (consumed commands removed).
    pub stacks: Stacks,
    /// The execution, step by step.
    pub steps: Vec<DecodedStep>,
    /// For each process, the number of steps after which its stack was
    /// empty for the *first* time (`Some(0)` if it started empty, `None` if
    /// it never emptied).
    pub stack_empty_at: Vec<Option<usize>>,
}

impl DecodeOutcome {
    /// The events of the suffix `E**` starting at step `from`.
    #[must_use]
    pub fn suffix(&self, from: usize) -> &[DecodedStep] {
        &self.steps[from.min(self.steps.len())..]
    }

    /// The decoded execution as a [`wbmem::Trace`], for the analytics in
    /// [`wbmem::stats`].
    #[must_use]
    pub fn trace(&self) -> wbmem::Trace {
        self.steps.iter().map(|s| s.event.clone()).collect()
    }
}

/// Decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// A solo-termination check stayed inconclusive through every retry of
    /// the doubling backoff.
    SoloUnknown {
        /// The process whose classification failed.
        proc: ProcId,
        /// Every step bound tried, in order (the last one hit the cap).
        bounds: Vec<usize>,
    },
    /// The execution exceeded `max_steps`.
    MaxSteps {
        /// The bound that was hit.
        steps: usize,
    },
    /// An internal consistency violation (a decoder bug or a non-ordering
    /// algorithm).
    Internal(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::SoloUnknown { proc, bounds } => {
                write!(
                    f,
                    "solo-termination check for {proc} inconclusive after bounds {bounds:?}"
                )
            }
            DecodeError::MaxSteps { steps } => write!(f, "decode exceeded {steps} steps"),
            DecodeError::Internal(msg) => write!(f, "decoder invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn is_commit_enabled(m: &Machine<VmProc>, st: &Stacks, p: ProcId) -> bool {
    matches!(st.top(p), Some(Command::Commit))
        && matches!(m.poised(p), Poised::Fence)
        && !m.buffer_is_empty(p)
}

/// The cheap part of the non-commit-enabled test (everything but the solo
/// run).
fn op_permits_step(m: &Machine<VmProc>, p: ProcId) -> bool {
    match m.poised(p) {
        Poised::Read(_) | Poised::Write(_, _) => true,
        Poised::Return(r) => r == m.nb_final(),
        Poised::Fence => m.buffer_is_empty(p),
        // The encoding construction is defined for read/write algorithms;
        // the paper handles comparison primitives by simulation ([12]). A
        // CAS-using program is therefore never scheduled here — encoding it
        // stalls with diagnostics rather than silently mis-encoding.
        Poised::Cas { .. } | Poised::Swap { .. } => false,
        Poised::Done => false,
    }
}

fn is_non_commit_enabled(
    m: &Machine<VmProc>,
    st: &Stacks,
    p: ProcId,
    opts: &DecodeOptions,
) -> Result<bool, DecodeError> {
    if m.is_done(p) || !matches!(st.top(p), Some(Command::Proceed)) || !op_permits_step(m, p) {
        return Ok(false);
    }
    // Retry-with-backoff: an `Unknown` within the bound usually just means
    // the bound was too small for this (terminating) solo run, so double it
    // up to the cap before giving up. Each retry is reported through the
    // process-global recorder (`ftobs::global()` — disabled unless a host
    // installed one), replacing the ad-hoc progress prints this loop used
    // to justify: fast modes and full runs now share one reporting path.
    let mut bound = opts.solo_bound.max(1);
    let mut tried = Vec::new();
    let obs = ftobs::global();
    loop {
        tried.push(bound);
        match m.solo_outcome(p, bound) {
            SoloOutcome::Terminates { .. } => return Ok(true),
            SoloOutcome::Diverges { .. } => return Ok(false),
            SoloOutcome::Unknown => {
                if bound >= opts.solo_bound_cap {
                    obs.event(
                        "solo_retry_exhausted",
                        &[
                            ("proc", ftobs::J::U(u64::from(p.0))),
                            ("bound_cap", ftobs::J::U(opts.solo_bound_cap as u64)),
                            ("retries", ftobs::J::U(tried.len() as u64)),
                        ],
                    );
                    return Err(DecodeError::SoloUnknown {
                        proc: p,
                        bounds: tried,
                    });
                }
                obs.incr(ftobs::Metric::SoloRetries);
                obs.event(
                    "solo_retry",
                    &[
                        ("proc", ftobs::J::U(u64::from(p.0))),
                        ("bound", ftobs::J::U(bound as u64)),
                        (
                            "next_bound",
                            ftobs::J::U(((bound * 2).min(opts.solo_bound_cap)) as u64),
                        ),
                    ],
                );
                bound = (bound * 2).min(opts.solo_bound_cap);
            }
        }
    }
}

/// Decode the execution determined by `(initial, stacks)`.
///
/// # Errors
///
/// Returns an error if a solo check is inconclusive or the step bound is
/// exceeded; both indicate a malformed program or insufficient bounds
/// rather than a property of the encoding.
pub fn decode(
    initial: &Machine<VmProc>,
    stacks: &Stacks,
    opts: &DecodeOptions,
) -> Result<DecodeOutcome, DecodeError> {
    let n = initial.n();
    assert_eq!(stacks.n(), n, "stack count must match process count");
    let mut m = initial.clone();
    let mut st = stacks.clone();
    let mut steps: Vec<DecodedStep> = Vec::new();
    let mut stack_empty_at: Vec<Option<usize>> = (0..n)
        .map(|i| st.is_empty_of(ProcId::from(i)).then_some(0))
        .collect();

    'outer: loop {
        if steps.len() >= opts.max_steps {
            return Err(DecodeError::MaxSteps {
                steps: opts.max_steps,
            });
        }

        // ---- Rule D1: a commit step. ----
        let commit_enabled = (0..n)
            .map(ProcId::from)
            .find(|&p| is_commit_enabled(&m, &st, p));
        if let Some(p) = commit_enabled {
            let r = *m
                .buffer(p)
                .regs()
                .first()
                .expect("commit-enabled process has a non-empty buffer");
            // A waiting hidden-committer takes precedence.
            let q = (0..n).map(ProcId::from).find(|&q| {
                matches!(st.top(q), Some(Command::WaitHiddenCommit(k)) if *k > 0)
                    && m.buffer(q).contains(r)
            });
            let pstar = q.unwrap_or(p);
            let hidden = q.is_some();
            let pre_len = m.buffer(pstar).len();

            let event = match m.step(SchedElem::commit(pstar, r)) {
                StepOutcome::Stepped(e) => e,
                StepOutcome::NoOp => {
                    return Err(DecodeError::Internal(format!(
                        "commit of {r} by {pstar} did not step"
                    )))
                }
            };

            if hidden {
                // (D1b) decrement the wait-hidden-commit counter.
                match st.pop_top(pstar) {
                    Some(Command::WaitHiddenCommit(k)) => {
                        if k > 1 {
                            st.push_top(pstar, Command::WaitHiddenCommit(k - 1));
                        }
                    }
                    other => {
                        return Err(DecodeError::Internal(format!(
                            "hidden committer {pstar} had top {other:?}"
                        )))
                    }
                }
            } else if pre_len == 1 {
                // (D1a) the batch is fully committed.
                if st.pop_top(pstar) != Some(Command::Commit) {
                    return Err(DecodeError::Internal(format!(
                        "commit-enabled {pstar} had non-commit top"
                    )));
                }
            }

            // (D1c) the commit accesses the register owner's segment.
            if let Some(owner) = m.config().layout.owner(r) {
                if owner != pstar && matches!(st.top(owner), Some(Command::WaitLocalFinish(..))) {
                    st.with_top_mut(owner, |c| {
                        if let Command::WaitLocalFinish(_, s) = c {
                            s.insert(pstar);
                        }
                    });
                }
            }

            steps.push(DecodedStep {
                elem: SchedElem::commit(pstar, r),
                event,
                hidden,
            });
            note_empties(&st, &mut stack_empty_at, steps.len());
            continue 'outer;
        }

        // ---- Rule D2: a read/write/return/fence step. ----
        let mut chosen: Option<ProcId> = None;
        for i in 0..n {
            let p = ProcId::from(i);
            if is_non_commit_enabled(&m, &st, p, opts)? {
                chosen = Some(p);
                break;
            }
        }
        let Some(p) = chosen else {
            break 'outer; // (D3) all waiting or finished.
        };

        let event = match m.step(SchedElem::op(p)) {
            StepOutcome::Stepped(e) => e,
            StepOutcome::NoOp => {
                return Err(DecodeError::Internal(format!("enabled {p} did not step")))
            }
        };

        // (D2a) pop `proceed` once p is poised at a fence/return/done.
        if matches!(
            m.poised(p),
            Poised::Fence | Poised::Return(_) | Poised::Done
        ) && st.pop_top(p) != Some(Command::Proceed)
        {
            return Err(DecodeError::Internal(format!(
                "{p} stepped without proceed on top"
            )));
        }

        match &event.kind {
            EventKind::Return { .. } => {
                // (D2b) processes waiting for p's termination.
                for qi in 0..n {
                    let q = ProcId::from(qi);
                    if q == p {
                        continue;
                    }
                    let pop = match st.top(q) {
                        Some(Command::WaitReadFinish(_, s))
                        | Some(Command::WaitLocalFinish(_, s)) => s.contains(&p),
                        _ => false,
                    };
                    if pop {
                        match st.pop_top(q).expect("just inspected") {
                            Command::WaitReadFinish(k, s) => {
                                if k > 1 {
                                    st.push_top(q, Command::WaitReadFinish(k - 1, s));
                                }
                            }
                            Command::WaitLocalFinish(k, s) => {
                                if k > 1 {
                                    st.push_top(q, Command::WaitLocalFinish(k - 1, s));
                                }
                            }
                            _ => unreachable!("matched wait command above"),
                        }
                    }
                }
            }
            EventKind::Read {
                reg,
                from_memory: true,
                ..
            } => {
                let reg = *reg;
                // (D2c) readers of registers another process is about to
                // commit.
                for qi in 0..n {
                    let q = ProcId::from(qi);
                    if q == p {
                        continue;
                    }
                    if matches!(st.top(q), Some(Command::WaitReadFinish(..)))
                        && m.buffer(q).contains(reg)
                    {
                        st.with_top_mut(q, |c| {
                            if let Command::WaitReadFinish(_, s) = c {
                                s.insert(p);
                            }
                        });
                    }
                }
                // (D2d) readers of q's memory segment.
                if let Some(owner) = m.config().layout.owner(reg) {
                    if owner != p && matches!(st.top(owner), Some(Command::WaitLocalFinish(..))) {
                        st.with_top_mut(owner, |c| {
                            if let Command::WaitLocalFinish(_, s) = c {
                                s.insert(p);
                            }
                        });
                    }
                }
            }
            _ => {} // (D2e)
        }

        steps.push(DecodedStep {
            elem: SchedElem::op(p),
            event,
            hidden: false,
        });
        note_empties(&st, &mut stack_empty_at, steps.len());
    }

    Ok(DecodeOutcome {
        machine: m,
        stacks: st,
        steps,
        stack_empty_at,
    })
}

fn note_empties(st: &Stacks, stack_empty_at: &mut [Option<usize>], now: usize) {
    for (i, slot) in stack_empty_at.iter_mut().enumerate() {
        if slot.is_none() && st.is_empty_of(ProcId::from(i)) {
            *slot = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simlocks::{build_ordering, LockKind, ObjectKind};
    use wbmem::MachineConfig;

    fn tagged_machine(inst: &simlocks::OrderingInstance) -> Machine<VmProc> {
        let cfg =
            MachineConfig::new(wbmem::MemoryModel::Pso, inst.layout.clone()).with_tagged_writes();
        inst.machine_from(cfg)
    }

    #[test]
    fn empty_stacks_decode_to_the_empty_execution() {
        let inst = build_ordering(LockKind::Bakery, 3, ObjectKind::Counter);
        let m = tagged_machine(&inst);
        let out = decode(&m, &Stacks::new(3), &DecodeOptions::default()).unwrap();
        assert!(out.steps.is_empty());
        assert_eq!(out.stack_empty_at, vec![Some(0); 3]);
    }

    #[test]
    fn single_proceed_runs_to_the_first_fence_with_pending_writes() {
        // Bakery p0: write C[0] (buffered), then fence with non-empty
        // buffer -> must stop there. The proceed command should carry p0
        // through exactly one step (the write).
        let inst = build_ordering(LockKind::Bakery, 2, ObjectKind::Counter);
        let m = tagged_machine(&inst);
        let mut st = Stacks::new(2);
        st.push_bottom(ProcId(0), Command::Proceed);
        let out = decode(&m, &st, &DecodeOptions::default()).unwrap();
        assert_eq!(out.steps.len(), 1);
        assert!(matches!(out.steps[0].event.kind, EventKind::Write { .. }));
        assert!(matches!(out.machine.poised(ProcId(0)), Poised::Fence));
        assert!(!out.machine.buffer_is_empty(ProcId(0)));
        // The proceed was consumed when p0 became poised at the fence.
        assert!(out.stacks.is_empty_of(ProcId(0)));
        assert_eq!(out.stack_empty_at[0], Some(1));
    }

    #[test]
    fn proceed_then_commit_advances_through_the_fence() {
        let inst = build_ordering(LockKind::Bakery, 2, ObjectKind::Counter);
        let m = tagged_machine(&inst);
        let mut st = Stacks::new(2);
        st.push_bottom(ProcId(0), Command::Proceed);
        st.push_bottom(ProcId(0), Command::Commit);
        st.push_bottom(ProcId(0), Command::Proceed);
        let out = decode(&m, &st, &DecodeOptions::default()).unwrap();
        // write C0; commit C0; fence; then proceed through the doorway scan
        // (2 reads of T) until the next fence with pending writes (ticket
        // batch: T[0] := 1 after writing C[0] := 0? order: T then C — two
        // buffered writes).
        let kinds: Vec<&EventKind> = out.steps.iter().map(|s| &s.event.kind).collect();
        assert!(matches!(kinds[0], EventKind::Write { .. }));
        assert!(matches!(kinds[1], EventKind::Commit { .. }));
        assert!(matches!(kinds[2], EventKind::Fence));
        // After the scan, p0 is poised at the ticket fence with T buffered.
        assert!(matches!(out.machine.poised(ProcId(0)), Poised::Fence));
        assert!(!out.machine.buffer_is_empty(ProcId(0)));
    }

    /// The exact command script for one solo Bakery-2 counter passage:
    /// five write batches (doorway open, ticket, doorway close, counter,
    /// release), each `proceed` + `commit`, then three `proceed`s for the
    /// release fence, the final fence, and the return step.
    fn bakery2_full_script() -> Vec<Command> {
        let mut v = Vec::new();
        for _ in 0..5 {
            v.push(Command::Proceed);
            v.push(Command::Commit);
        }
        v.extend([Command::Proceed, Command::Proceed, Command::Proceed]);
        v
    }

    /// A raw two-process instance where both write one shared register and
    /// return fixed ranks (p0 → 0, p1 → 1).
    fn two_writer_instance() -> simlocks::OrderingInstance {
        use std::sync::Arc;
        let mut alloc = simlocks::RegAlloc::new();
        let _shared = alloc.alloc(None); // R0
        let mk = |who: i64| {
            let mut asm = fencevm::Asm::new(format!("writer{who}"));
            asm.write(0i64, who + 1);
            asm.fence();
            asm.ret(who);
            Arc::new(asm.assemble())
        };
        simlocks::OrderingInstance {
            name: "two-writer".into(),
            n: 2,
            programs: vec![mk(0), mk(1)],
            layout: alloc.into_layout(),
            fence_sites: 0,
        }
    }

    #[test]
    fn return_rank_gate_blocks_wrong_rank() {
        // p1 returns the constant 1, but running alone it would be the
        // first to finish — rank 0. The gate `return(r) ⟺ r = NbFinal`
        // must park it forever at its return step.
        let inst = two_writer_instance();
        let m = tagged_machine(&inst);
        let mut st = Stacks::new(2);
        for cmd in [
            Command::Proceed,
            Command::Commit,
            Command::Proceed,
            Command::Proceed,
        ] {
            st.push_bottom(ProcId(1), cmd);
        }
        let out = decode(&m, &st, &DecodeOptions::default()).unwrap();
        assert!(
            !out.machine.is_done(ProcId(1)),
            "the rank gate must block return(1)"
        );
        assert!(matches!(out.machine.poised(ProcId(1)), Poised::Return(1)));

        // Whereas a full script for bakery-p1 alone returns rank 0: the
        // counter is an ordering object, ranks follow completion order.
        let inst = build_ordering(LockKind::Bakery, 2, ObjectKind::Counter);
        let m = tagged_machine(&inst);
        let mut st = Stacks::new(2);
        for cmd in bakery2_full_script() {
            st.push_bottom(ProcId(1), cmd);
        }
        let out = decode(&m, &st, &DecodeOptions::default()).unwrap();
        assert_eq!(out.machine.return_value(ProcId(1)), Some(0));
    }

    #[test]
    fn hidden_commit_interleaves_before_visible_commit() {
        // p0 buffers a write to R0 and carries wait-hidden-commit(1); p1
        // buffers its own write to R0 and carries commit. When p1 becomes
        // commit enabled on R0, rule D1 makes p0 commit *first* (hidden),
        // and p1's visible commit immediately overwrites it.
        let inst = two_writer_instance();
        let m = tagged_machine(&inst);
        let mut st = Stacks::new(2);
        for cmd in [
            Command::Proceed,
            Command::WaitHiddenCommit(1),
            Command::Proceed,
            Command::Proceed,
        ] {
            st.push_bottom(ProcId(0), cmd);
        }
        for cmd in [
            Command::Proceed,
            Command::Commit,
            Command::Proceed,
            Command::Proceed,
        ] {
            st.push_bottom(ProcId(1), cmd);
        }
        let out = decode(&m, &st, &DecodeOptions::default()).unwrap();
        assert!(out.machine.all_done());
        assert_eq!(out.machine.return_value(ProcId(0)), Some(0));
        assert_eq!(out.machine.return_value(ProcId(1)), Some(1));
        // p1's value survives; p0's write was hidden.
        assert_eq!(out.machine.memory(wbmem::RegId(0)).payload(), 2);
        let commits: Vec<(&DecodedStep, u64)> = out
            .steps
            .iter()
            .filter_map(|s| match s.event.kind {
                EventKind::Commit { value, .. } => Some((s, value.payload())),
                _ => None,
            })
            .collect();
        assert_eq!(commits.len(), 2);
        assert!(commits[0].0.hidden, "p0's commit is hidden");
        assert_eq!(commits[0].1, 1);
        assert!(!commits[1].0.hidden, "p1's commit is visible");
        assert_eq!(commits[1].1, 2);
        assert_eq!(
            commits[0].0.event.proc,
            ProcId(0),
            "the hidden commit belongs to the waiting process"
        );
    }

    #[test]
    fn wait_read_finish_protects_a_reader_then_releases_the_writer() {
        // p0 buffers a write to R0 and must wait (wait-read-finish) for one
        // early reader of R0 to finish before committing. p1 reads R0 from
        // memory (D2c adds it to the set), finishes (D2b decrements), and
        // only then does p0's commit land.
        use std::sync::Arc;
        let mut alloc = simlocks::RegAlloc::new();
        let _r0 = alloc.alloc(None);
        let writer = {
            let mut asm = fencevm::Asm::new("writer");
            asm.write(0i64, 7i64);
            asm.fence();
            asm.ret(1i64);
            Arc::new(asm.assemble())
        };
        let reader = {
            let mut asm = fencevm::Asm::new("reader");
            let t = asm.local("t");
            asm.read(0i64, t);
            asm.fence();
            asm.ret(0i64);
            Arc::new(asm.assemble())
        };
        let inst = simlocks::OrderingInstance {
            name: "writer-reader".into(),
            n: 2,
            programs: vec![writer, reader],
            layout: alloc.into_layout(),
            fence_sites: 0,
        };
        let m = tagged_machine(&inst);

        let mut st = Stacks::new(2);
        for cmd in [
            Command::Proceed,
            Command::WaitReadFinish(1, Default::default()),
            Command::Commit,
            Command::Proceed,
            Command::Proceed,
        ] {
            st.push_bottom(ProcId(0), cmd);
        }
        for cmd in [Command::Proceed, Command::Proceed, Command::Proceed] {
            st.push_bottom(ProcId(1), cmd);
        }
        let out = decode(&m, &st, &DecodeOptions::default()).unwrap();
        assert!(out.machine.all_done());
        assert_eq!(out.machine.return_value(ProcId(0)), Some(1));
        assert_eq!(out.machine.return_value(ProcId(1)), Some(0));

        // The reader's memory read saw the initial value (the write was
        // still buffered), and the commit landed strictly after the reader
        // returned.
        let read_at = out
            .steps
            .iter()
            .position(|s| {
                matches!(s.event.kind,
                    EventKind::Read { reg, from_memory: true, value, .. }
                        if reg == wbmem::RegId(0) && value.is_bot())
            })
            .expect("protected read exists");
        let reader_ret = out
            .steps
            .iter()
            .position(|s| {
                s.event.proc == ProcId(1) && matches!(s.event.kind, EventKind::Return { .. })
            })
            .expect("reader returns");
        let commit_at = out
            .steps
            .iter()
            .position(|s| {
                s.event.proc == ProcId(0)
                    && matches!(s.event.kind, EventKind::Commit { reg, .. } if reg == wbmem::RegId(0))
            })
            .expect("writer commits");
        assert!(read_at < reader_ret && reader_ret < commit_at);
    }

    #[test]
    fn solo_backoff_recovers_from_a_too_small_initial_bound() {
        // A bound of 1 is far too small for a full Bakery passage, but the
        // doubling backoff reaches a sufficient bound and decoding proceeds
        // exactly as with the default options.
        let inst = build_ordering(LockKind::Bakery, 2, ObjectKind::Counter);
        let m = tagged_machine(&inst);
        let mut st = Stacks::new(2);
        for cmd in bakery2_full_script() {
            st.push_bottom(ProcId(0), cmd);
        }
        let tight = DecodeOptions {
            solo_bound: 1,
            ..DecodeOptions::default()
        };
        let out = decode(&m, &st, &tight).unwrap();
        let reference = decode(&m, &st, &DecodeOptions::default()).unwrap();
        assert_eq!(out.steps.len(), reference.steps.len());
        assert_eq!(out.machine.return_value(ProcId(0)), Some(0));
    }

    #[test]
    fn solo_retries_flow_through_the_global_recorder() {
        // With an enabled global recorder installed, the backoff loop
        // reports every retry as a `SoloRetries` tick; disabled — the
        // default — it reports nothing and costs one branch. The global is
        // first-read-pins, so under a parallel test run a sibling test's
        // decode call may already have pinned it disabled; only the install
        // winner can assert the enabled side.
        let installed = ftobs::install_global(ftobs::Recorder::builder().quiet(true).build());
        let before = ftobs::global().snapshot().get(ftobs::Metric::SoloRetries);
        let inst = build_ordering(LockKind::Bakery, 2, ObjectKind::Counter);
        let m = tagged_machine(&inst);
        let mut st = Stacks::new(2);
        for cmd in bakery2_full_script() {
            st.push_bottom(ProcId(0), cmd);
        }
        let tight = DecodeOptions {
            solo_bound: 1,
            ..DecodeOptions::default()
        };
        decode(&m, &st, &tight).unwrap();
        let after = ftobs::global().snapshot().get(ftobs::Metric::SoloRetries);
        if installed || ftobs::global().is_enabled() {
            assert!(after > before, "retries recorded: {before} -> {after}");
        } else {
            assert_eq!(after, before, "disabled global records nothing");
        }
    }

    #[test]
    fn solo_backoff_reports_the_bound_history_at_the_cap() {
        let inst = build_ordering(LockKind::Bakery, 2, ObjectKind::Counter);
        let m = tagged_machine(&inst);
        let mut st = Stacks::new(2);
        for cmd in bakery2_full_script() {
            st.push_bottom(ProcId(0), cmd);
        }
        let hopeless = DecodeOptions {
            solo_bound: 1,
            solo_bound_cap: 4,
            ..DecodeOptions::default()
        };
        let err = decode(&m, &st, &hopeless).unwrap_err();
        match &err {
            DecodeError::SoloUnknown { proc, bounds } => {
                assert_eq!(*proc, ProcId(0));
                assert_eq!(bounds, &vec![1, 2, 4]);
            }
            other => panic!("expected SoloUnknown, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("[1, 2, 4]"), "message: {msg}");
    }

    #[test]
    fn wait_local_finish_holds_a_process_back() {
        // p1 must wait for 1 accessor of its segment to finish before its
        // first step. Give p0 a full budget; p0's doorway reads T[1] (in
        // p1's segment), so p0 is the accessor; p1 should take no step
        // until p0 returns, then run with its own budget.
        let inst = build_ordering(LockKind::Bakery, 2, ObjectKind::Counter);
        let m = tagged_machine(&inst);
        let mut st = Stacks::new(2);
        st.push_bottom(ProcId(1), Command::WaitLocalFinish(1, Default::default()));
        for cmd in bakery2_full_script() {
            st.push_bottom(ProcId(0), cmd);
        }
        for cmd in bakery2_full_script() {
            st.push_bottom(ProcId(1), cmd);
        }
        let out = decode(&m, &st, &DecodeOptions::default()).unwrap();
        assert!(out.machine.is_done(ProcId(0)));
        assert!(out.machine.is_done(ProcId(1)));
        assert_eq!(out.machine.return_value(ProcId(0)), Some(0));
        assert_eq!(out.machine.return_value(ProcId(1)), Some(1));
        // p1's first step must come after p0's return step.
        let p0_return = out
            .steps
            .iter()
            .position(|s| {
                s.event.proc == ProcId(0) && matches!(s.event.kind, EventKind::Return { .. })
            })
            .expect("p0 returns");
        let p1_first = out
            .steps
            .iter()
            .position(|s| s.event.proc == ProcId(1))
            .expect("p1 steps");
        assert!(
            p1_first > p0_return,
            "p1 stepped at {p1_first}, p0 returned at {p0_return}"
        );
    }
}
