//! The encoder: permutations → command stacks (Section 5.2).
//!
//! For a permutation `π = (p_0, …, p_{n-1})`, the encoder builds stack
//! sequences `S_0, S_1, …` iteratively: each iteration decodes the current
//! stacks to an execution `E_i`, inspects the frontier process `p_ℓ`
//! (the furthest process in π whose stack exists but who hasn't finished —
//! or the next fresh process), and appends **one** command to the bottom of
//! `p_ℓ`'s stack:
//!
//! * **(E1)** a fresh process first waits for every earlier process that
//!   accessed its memory segment: `wait-local-finish(λ, ∅)`;
//! * **(E2a)** if `p_ℓ` can keep taking steps, `proceed`;
//! * **(E2b)** if `p_ℓ` is stuck at a fence with a pending write batch, one
//!   of `wait-hidden-commit(γ)` (γ registers in the batch get overwritten
//!   by later commits of earlier processes), `wait-read-finish(ζ, ∅)`
//!   (ζ earlier processes still read batch registers), or `commit`.
//!
//! The construction ends when the last process of π is finished. By the
//! ordering property each `p_k` returns `k`, so the final stacks uniquely
//! determine π — that is what makes them a *code*.

use std::collections::BTreeSet;

use fencevm::VmProc;
use simlocks::OrderingInstance;
use wbmem::{EventKind, Machine, MachineConfig, MemoryModel, Poised, ProcId};

use crate::command::{Command, Stacks};
use crate::decode::{decode, DecodeError, DecodeOptions, DecodeOutcome};

/// Encoder options.
#[derive(Clone, Copy, Debug)]
pub struct EncodeOptions {
    /// Bound on encoding iterations (= total commands).
    pub max_iterations: usize,
    /// Decoder bounds used by every inner decode.
    pub decode: DecodeOptions,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        EncodeOptions {
            max_iterations: 100_000,
            decode: DecodeOptions::default(),
        }
    }
}

/// A completed encoding of one permutation's execution.
#[derive(Clone, Debug)]
pub struct Encoding {
    /// The permutation that was encoded (`pi[k]` = id of the k-th process).
    pub pi: Vec<usize>,
    /// The final command stacks `S_{m_π}` (with empty parameter sets, as
    /// constructed).
    pub stacks: Stacks,
    /// Total commands `m_π` (= encoding iterations).
    pub commands: usize,
    /// Sum of command values `v_π`.
    pub value_sum: u64,
    /// The decode of the final stacks: the execution `E_π` itself.
    pub outcome: DecodeOutcome,
    /// Total fence steps `β(E_π)`.
    pub beta: u64,
    /// Total remote steps `ρ(E_π)`.
    pub rho: u64,
}

impl Encoding {
    /// Recover the permutation from the execution's return values — the
    /// injectivity that powers the counting argument. `result[k]` is the id
    /// of the process that returned `k`.
    #[must_use]
    pub fn recovered_permutation(&self) -> Vec<usize> {
        recover_permutation(&self.outcome.machine)
    }
}

/// Recover a permutation from return values: position `k` holds the process
/// that returned `k`.
///
/// # Panics
///
/// Panics if the machine's return values are not a permutation of `0..n`.
#[must_use]
pub fn recover_permutation(m: &Machine<VmProc>) -> Vec<usize> {
    let n = m.n();
    let mut pi = vec![usize::MAX; n];
    for i in 0..n {
        let r = m
            .return_value(ProcId::from(i))
            .unwrap_or_else(|| panic!("process p{i} did not return"));
        let k = usize::try_from(r).expect("rank fits");
        assert!(
            k < n && pi[k] == usize::MAX,
            "return values are not a permutation"
        );
        pi[k] = i;
    }
    pi
}

/// Encoding failure.
#[derive(Clone, Debug)]
pub enum EncodeError {
    /// An inner decode failed.
    Decode(DecodeError),
    /// The iteration bound was hit before the last process finished — the
    /// report carries the stacks and a classification dump for debugging.
    Stalled {
        /// Iterations performed.
        iterations: usize,
        /// Diagnostic rendering of the stuck extended configuration.
        diagnostics: String,
    },
    /// A process returned a value different from its π-rank: the algorithm
    /// is not ordering (or the construction is out of spec).
    RankMismatch {
        /// The process id.
        proc: usize,
        /// Its π-rank (expected return).
        expected: u64,
        /// What it actually returned (`None` = never finished).
        got: Option<u64>,
    },
}

impl From<DecodeError> for EncodeError {
    fn from(e: DecodeError) -> Self {
        EncodeError::Decode(e)
    }
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::Decode(e) => write!(f, "decode failed: {e}"),
            EncodeError::Stalled {
                iterations,
                diagnostics,
            } => {
                write!(
                    f,
                    "encoding stalled after {iterations} iterations:\n{diagnostics}"
                )
            }
            EncodeError::RankMismatch {
                proc,
                expected,
                got,
            } => write!(
                f,
                "process p{proc} should return its rank {expected}, got {got:?}"
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

/// The machine the lower-bound construction runs on: the instance under
/// PSO with tagged (globally distinct) writes, per the proof's w.l.o.g.
/// assumption.
#[must_use]
pub fn proof_machine(inst: &OrderingInstance) -> Machine<VmProc> {
    let cfg = MachineConfig::new(MemoryModel::Pso, inst.layout.clone()).with_tagged_writes();
    inst.machine_from(cfg)
}

/// Encode the execution `E_π` of `inst` for permutation `pi`.
///
/// # Errors
///
/// Fails if the instance is not an ordering algorithm under this
/// construction, or if resource bounds are exceeded.
pub fn encode_permutation(
    inst: &OrderingInstance,
    pi: &[usize],
    opts: &EncodeOptions,
) -> Result<Encoding, EncodeError> {
    let n = inst.n;
    assert_eq!(pi.len(), n, "permutation length must equal process count");
    {
        let mut seen = vec![false; n];
        for &p in pi {
            assert!(p < n && !seen[p], "pi must be a permutation of 0..n");
            seen[p] = true;
        }
    }

    let initial = proof_machine(inst);
    let mut stacks = Stacks::new(n);
    let last = ProcId::from(pi[n - 1]);

    for iteration in 0..opts.max_iterations {
        let dec = decode(&initial, &stacks, &opts.decode)?;

        if dec.machine.is_done(last) {
            // Construction complete: validate ranks and assemble.
            for (rank, &proc) in pi.iter().enumerate() {
                let got = dec.machine.return_value(ProcId::from(proc));
                if got != Some(rank as u64) {
                    return Err(EncodeError::RankMismatch {
                        proc,
                        expected: rank as u64,
                        got,
                    });
                }
            }
            let beta = dec.machine.counters().beta();
            let rho = dec.machine.counters().rho();
            return Ok(Encoding {
                pi: pi.to_vec(),
                commands: stacks.total_commands(),
                value_sum: stacks.total_value(),
                stacks,
                beta,
                rho,
                outcome: dec,
            });
        }

        // τ_i: the largest π-index whose stack is non-empty.
        let tau = (0..n)
            .rev()
            .find(|&k| !stacks.is_empty_of(ProcId::from(pi[k])));
        let ell = match tau {
            None => 0,
            Some(t) if dec.machine.is_done(ProcId::from(pi[t])) => t + 1,
            Some(t) => t,
        };
        if ell >= n {
            return Err(EncodeError::Stalled {
                iterations: iteration,
                diagnostics: format!(
                    "frontier ran past the last process, but {last} is unfinished\n{}",
                    diagnostics(&dec, &stacks, pi)
                ),
            });
        }
        let p_ell = ProcId::from(pi[ell]);

        let cmd = next_command(&dec, &stacks, p_ell)?;
        stacks.push_bottom(p_ell, cmd);
    }

    let dec = decode(&initial, &stacks, &opts.decode)?;
    Err(EncodeError::Stalled {
        iterations: opts.max_iterations,
        diagnostics: diagnostics(&dec, &stacks, pi),
    })
}

/// Choose the command to append for frontier process `p_ell` (rules E1/E2).
fn next_command(
    dec: &DecodeOutcome,
    stacks: &Stacks,
    p_ell: ProcId,
) -> Result<Command, DecodeError> {
    let m = &dec.machine;
    let layout = &m.config().layout;

    if stacks.is_empty_of(p_ell) {
        // (E1): count earlier processes that access R_{p_ell} during E_i.
        let mut accessors: BTreeSet<ProcId> = BTreeSet::new();
        for step in &dec.steps {
            if step.event.proc != p_ell
                && step
                    .event
                    .kind
                    .accesses_segment_of(|r| layout.owner(r) == Some(p_ell))
            {
                accessors.insert(step.event.proc);
            }
        }
        if !accessors.is_empty() {
            return Ok(Command::WaitLocalFinish(
                accessors.len() as u64,
                BTreeSet::new(),
            ));
        }
    }

    match m.poised(p_ell) {
        Poised::Fence if !m.buffer_is_empty(p_ell) => {
            // (E2b): classify the pending batch against the suffix E**.
            let split = dec.stack_empty_at[p_ell.index()].ok_or_else(|| {
                DecodeError::Internal(format!(
                    "(I6) violated: {p_ell}'s stack never emptied during decode"
                ))
            })?;
            let batch = m.buffer(p_ell).regs();
            let suffix = dec.suffix(split);

            // γ: batch registers that receive a commit during E**.
            let gamma = batch
                .iter()
                .filter(|&&r| {
                    suffix
                        .iter()
                        .any(|s| matches!(s.event.kind, EventKind::Commit { reg, .. } if reg == r))
                })
                .count() as u64;
            if gamma > 0 {
                return Ok(Command::WaitHiddenCommit(gamma));
            }

            // ζ: distinct processes that read a batch register from shared
            // memory during E**.
            let mut readers: BTreeSet<ProcId> = BTreeSet::new();
            for s in suffix {
                if let EventKind::Read {
                    reg,
                    from_memory: true,
                    ..
                } = s.event.kind
                {
                    if s.event.proc != p_ell && batch.contains(&reg) {
                        readers.insert(s.event.proc);
                    }
                }
            }
            if !readers.is_empty() {
                return Ok(Command::WaitReadFinish(
                    readers.len() as u64,
                    BTreeSet::new(),
                ));
            }

            Ok(Command::Commit)
        }
        _ => Ok(Command::Proceed), // (E2a)
    }
}

fn diagnostics(dec: &DecodeOutcome, stacks: &Stacks, pi: &[usize]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let m = &dec.machine;
    let _ = writeln!(out, "pi = {pi:?}");
    let _ = writeln!(out, "steps decoded = {}", dec.steps.len());
    for i in 0..m.n() {
        let p = ProcId::from(i);
        let _ = writeln!(
            out,
            "p{i}: poised={:?} buffer={:?} returned={:?} stack_top={:?} stack_len={}",
            m.poised(p),
            m.buffer(p).regs(),
            m.return_value(p),
            stacks.top(p).map(ToString::to_string),
            stacks.len_of(p),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simlocks::{build_ordering, LockKind, ObjectKind};

    fn identity(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn encodes_identity_permutation_bakery_two() {
        let inst = build_ordering(LockKind::Bakery, 2, ObjectKind::Counter);
        let enc = encode_permutation(&inst, &identity(2), &EncodeOptions::default())
            .expect("encoding succeeds");
        assert_eq!(enc.recovered_permutation(), vec![0, 1]);
        assert!(enc.commands > 0);
        assert!(enc.beta > 0);
        assert!(enc.rho > 0);
    }

    #[test]
    fn encodes_reversed_permutation_bakery_two() {
        let inst = build_ordering(LockKind::Bakery, 2, ObjectKind::Counter);
        let enc = encode_permutation(&inst, &[1, 0], &EncodeOptions::default())
            .expect("encoding succeeds");
        assert_eq!(enc.recovered_permutation(), vec![1, 0]);
    }

    #[test]
    fn encodes_all_permutations_of_three_bakery() {
        let inst = build_ordering(LockKind::Bakery, 3, ObjectKind::Counter);
        let perms: Vec<Vec<usize>> = all_permutations(3);
        let mut codes = std::collections::HashSet::new();
        for pi in &perms {
            let enc = encode_permutation(&inst, pi, &EncodeOptions::default())
                .unwrap_or_else(|e| panic!("pi={pi:?}: {e}"));
            assert_eq!(&enc.recovered_permutation(), pi, "pi={pi:?}");
            // Distinct permutations yield distinct stack renderings.
            codes.insert(enc.stacks.render());
        }
        assert_eq!(codes.len(), perms.len(), "codes must be injective");
    }

    #[test]
    fn encodes_gt_and_tournament_small() {
        for kind in [LockKind::Gt { f: 2 }, LockKind::Tournament] {
            let inst = build_ordering(kind, 4, ObjectKind::Counter);
            for pi in [vec![0, 1, 2, 3], vec![3, 1, 0, 2], vec![2, 3, 1, 0]] {
                let enc = encode_permutation(&inst, &pi, &EncodeOptions::default())
                    .unwrap_or_else(|e| panic!("{kind:?} pi={pi:?}: {e}"));
                assert_eq!(enc.recovered_permutation(), pi, "{kind:?}");
            }
        }
    }

    #[test]
    fn filter_lock_counter_encodes_too() {
        // Filter is a read/write ordering algorithm far above the tradeoff
        // curve; the construction must handle it all the same.
        let inst = build_ordering(LockKind::Filter, 3, ObjectKind::Counter);
        for pi in [vec![0, 1, 2], vec![2, 1, 0], vec![1, 2, 0]] {
            let enc = encode_permutation(&inst, &pi, &EncodeOptions::default())
                .unwrap_or_else(|e| panic!("pi={pi:?}: {e}"));
            assert_eq!(enc.recovered_permutation(), pi);
            assert!(crate::invariants::check_all(&enc).is_empty());
        }
    }

    #[test]
    fn noisy_counter_exercises_hidden_commits() {
        // The noisy counter's pre-acquire announcement write to a shared
        // register is exactly the pattern wait-hidden-commit exists for: a
        // stalled later process's announcement commits hidden, immediately
        // overwritten by an earlier process's own announcement.
        let inst = build_ordering(LockKind::Gt { f: 2 }, 4, ObjectKind::NoisyCounter);
        let mut saw_hidden = false;
        for pi in [vec![3, 2, 1, 0], vec![1, 3, 0, 2], vec![0, 1, 2, 3]] {
            let enc = encode_permutation(&inst, &pi, &EncodeOptions::default())
                .unwrap_or_else(|e| panic!("pi={pi:?}: {e}"));
            assert_eq!(enc.recovered_permutation(), pi);
            let has_whc = (0..4).any(|i| {
                enc.stacks
                    .commands_of(wbmem::ProcId::from(i))
                    .iter()
                    .any(|c| matches!(c, Command::WaitHiddenCommit(_)))
            });
            let has_hidden_step = enc.outcome.steps.iter().any(|s| s.hidden);
            assert_eq!(has_whc, has_hidden_step, "commands and steps must agree");
            saw_hidden |= has_hidden_step;
        }
        assert!(
            saw_hidden,
            "some permutation must exercise the hidden-commit path"
        );
    }

    fn all_permutations(n: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut items: Vec<usize> = (0..n).collect();
        permute(&mut items, 0, &mut out);
        out
    }

    fn permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k == items.len() {
            out.push(items.clone());
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, out);
            items.swap(k, i);
        }
    }
}
