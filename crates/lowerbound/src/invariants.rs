//! Executable checks for the structural invariants of Lemma 5.1 and the
//! quantitative relations of Lemmas 5.3–5.11.
//!
//! These run over a completed [`Encoding`] and report violations as
//! human-readable strings (empty list = all hold). They are used by the
//! property-based tests and by experiment E6.

use wbmem::ProcId;

use crate::command::Command;
use crate::encode::Encoding;

/// Check every supported invariant; returns the list of violations.
#[must_use]
pub fn check_all(enc: &Encoding) -> Vec<String> {
    let mut v = Vec::new();
    v.extend(check_i2_ranks(enc));
    v.extend(check_i4_single_wait_local_finish_on_top(enc));
    v.extend(check_i5_wait_local_finish_counts(enc));
    v.extend(check_i6_stacks_drained(enc));
    v.extend(check_i10_command_order(enc));
    v.extend(check_lemma_5_11_fences_vs_stack_size(enc));
    v.extend(check_value_sum_vs_rmrs(enc));
    v
}

/// (I2): each process `p_k` finished with value `k`.
#[must_use]
pub fn check_i2_ranks(enc: &Encoding) -> Vec<String> {
    let mut out = Vec::new();
    for (rank, &proc) in enc.pi.iter().enumerate() {
        let got = enc.outcome.machine.return_value(ProcId::from(proc));
        if got != Some(rank as u64) {
            out.push(format!("(I2) p{proc} at rank {rank} returned {got:?}"));
        }
    }
    out
}

/// (I4): each stack contains at most one `wait-local-finish`, and only at
/// the top.
#[must_use]
pub fn check_i4_single_wait_local_finish_on_top(enc: &Encoding) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..enc.stacks.n() {
        let cmds = enc.stacks.commands_of(ProcId::from(i));
        let wlf_positions: Vec<usize> = cmds
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c, Command::WaitLocalFinish(..)))
            .map(|(k, _)| k)
            .collect();
        if wlf_positions.len() > 1 {
            out.push(format!(
                "(I4) p{i} has {} wait-local-finish commands",
                wlf_positions.len()
            ));
        }
        if let Some(&pos) = wlf_positions.first() {
            if pos != 0 {
                out.push(format!(
                    "(I4) p{i} has wait-local-finish at depth {pos}, not the top"
                ));
            }
        }
    }
    out
}

/// (I5): if `p`'s stack carries `wait-local-finish(λ)`, then exactly `λ`
/// processes *earlier in π* access `p`'s memory segment during the final
/// execution (their behaviour is unchanged between the construction prefix
/// and the final decode, by (I3) — later processes may also access the
/// segment, so the accessor set is intersected with π's prefix).
#[must_use]
pub fn check_i5_wait_local_finish_counts(enc: &Encoding) -> Vec<String> {
    let mut out = Vec::new();
    let trace = enc.outcome.trace();
    let layout = &enc.outcome.machine.config().layout;
    for (rank, &proc) in enc.pi.iter().enumerate() {
        let p = ProcId::from(proc);
        let lambda = enc.stacks.commands_of(p).into_iter().find_map(|c| match c {
            Command::WaitLocalFinish(k, _) => Some(k),
            _ => None,
        });
        let Some(lambda) = lambda else { continue };
        let earlier: std::collections::BTreeSet<ProcId> =
            enc.pi[..rank].iter().map(|&q| ProcId::from(q)).collect();
        let accessors = wbmem::stats::segment_accessors(&trace, layout, p);
        let earlier_accessors = accessors.iter().filter(|q| earlier.contains(q)).count() as u64;
        if earlier_accessors != lambda {
            out.push(format!(
                "(I5) p{proc} (rank {rank}) carries wait-local-finish({lambda}) but \
                 {earlier_accessors} earlier processes access its segment"
            ));
        }
    }
    out
}

/// (I6): decoding the final stacks consumes them entirely.
#[must_use]
pub fn check_i6_stacks_drained(enc: &Encoding) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..enc.outcome.stacks.n() {
        let p = ProcId::from(i);
        if !enc.outcome.stacks.is_empty_of(p) {
            out.push(format!(
                "(I6) p{i}'s stack not drained: {:?}",
                enc.outcome
                    .stacks
                    .commands_of(p)
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
            ));
        }
    }
    out
}

/// (I10): reading a stack top-to-bottom, below a `wait-read-finish` comes a
/// `commit`; below a `wait-hidden-commit` comes one of `wait-read-finish`,
/// `proceed`, `commit`; below a `commit` comes a `proceed`.
#[must_use]
pub fn check_i10_command_order(enc: &Encoding) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..enc.stacks.n() {
        let cmds = enc.stacks.commands_of(ProcId::from(i));
        for w in cmds.windows(2) {
            let (above, below) = (&w[0], &w[1]);
            let ok = match above {
                Command::WaitReadFinish(..) => matches!(below, Command::Commit),
                Command::WaitHiddenCommit(_) => matches!(
                    below,
                    Command::WaitReadFinish(..) | Command::Proceed | Command::Commit
                ),
                Command::Commit => matches!(below, Command::Proceed),
                _ => true,
            };
            if !ok {
                out.push(format!("(I10) p{i}: `{below}` directly below `{above}`"));
            }
        }
    }
    out
}

/// Lemma 5.11: process `p` executes at least `⌈(|S_p|−1)/4⌉ − 3` fence
/// steps, where `S_p` is its final stack.
#[must_use]
pub fn check_lemma_5_11_fences_vs_stack_size(enc: &Encoding) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..enc.stacks.n() {
        let stack_len = enc.stacks.len_of(ProcId::from(i));
        let fences = enc.outcome.machine.counters().proc(i).fences;
        let lower = (stack_len.saturating_sub(1)).div_ceil(4) as i64 - 3;
        if (fences as i64) < lower {
            out.push(format!(
                "(Lemma 5.11) p{i}: {fences} fences < bound {lower} for stack of {stack_len}"
            ));
        }
    }
    out
}

/// Lemmas 5.3/5.7 (aggregated): the total command value is at most a
/// constant multiple of the remote steps plus the command count — the
/// quantitative heart of `v_π = O(ρ)`. We use the paper's constants: value
/// sum of the three wait-command families ≤ 2ρ + 2ρ + ρ ≤ 5ρ, plus one per
/// parameterless command.
#[must_use]
pub fn check_value_sum_vs_rmrs(enc: &Encoding) -> Vec<String> {
    let parameterless: u64 = (0..enc.stacks.n())
        .flat_map(|i| enc.stacks.commands_of(ProcId::from(i)))
        .filter(|c| !c.has_parameter())
        .count() as u64;
    let wait_value = enc.value_sum - parameterless;
    let bound = 5 * enc.rho;
    if wait_value > bound {
        vec![format!(
            "(Lemmas 5.3/5.7) wait-command value {wait_value} exceeds 5ρ = {bound}"
        )]
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode_permutation, EncodeOptions};
    use simlocks::{build_ordering, LockKind, ObjectKind};

    #[test]
    fn invariants_hold_for_small_bakery_encodings() {
        let inst = build_ordering(LockKind::Bakery, 3, ObjectKind::Counter);
        for pi in [vec![0, 1, 2], vec![2, 0, 1], vec![1, 2, 0]] {
            let enc = encode_permutation(&inst, &pi, &EncodeOptions::default())
                .unwrap_or_else(|e| panic!("pi={pi:?}: {e}"));
            let violations = check_all(&enc);
            assert!(violations.is_empty(), "pi={pi:?}: {violations:?}");
        }
    }

    #[test]
    fn invariants_hold_for_gt_encoding() {
        let inst = build_ordering(LockKind::Gt { f: 2 }, 4, ObjectKind::Counter);
        let enc = encode_permutation(&inst, &[2, 0, 3, 1], &EncodeOptions::default())
            .expect("encoding succeeds");
        let violations = check_all(&enc);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
