//! # lowerbound — the paper's Section-5 machinery, executable
//!
//! The heart of *“Trading Fences with RMRs and Separating Memory Models”*
//! is an information-theoretic lower bound: for each permutation `π` of the
//! `n` processes, a canonical execution `E_π` of any *ordering algorithm*
//! is constructed and encoded as per-process **command stacks** such that
//!
//! * the number of commands is `O(β(E_π))` (fence steps),
//! * the total command value is `O(ρ(E_π))` (remote steps),
//! * the code has `O(β·(log(ρ/β) + 1))` bits, and
//! * distinct permutations yield distinct codes — so some code has
//!   `≥ log₂ n! = Ω(n log n)` bits, forcing
//!   `β(E)·(log(ρ(E)/β(E)) + 1) ∈ Ω(n log n)` (Theorem 4.2).
//!
//! This crate implements the whole pipeline, not just its statement:
//!
//! ```text
//!   π ──encode──▶ stacks ──serialize──▶ bits
//!                   ▲                     │
//!                   └──── deserialize ────┘
//!   stacks ──decode──▶ E_π ──return values──▶ π   (injectivity, (I2))
//! ```
//!
//! * [`decode()`](decode()) — decoding rules **D1–D3** (Section 5.1): an extended
//!   configuration (machine + stacks) deterministically unrolls into an
//!   execution.
//! * [`encode_permutation`] — encoding rules **E1–E2b** (Section 5.2): the
//!   iterative construction of the stacks for a permutation.
//! * [`bits`] — an actual bit-string codec (3-bit tags + Elias-γ counters)
//!   with the analytic length bound for comparison.
//! * [`invariants`] — executable checks of Lemma 5.1 (I2/I4/I6/I10) and the
//!   quantitative Lemmas 5.3–5.11.
//!
//! ## Example: round-trip a permutation through bits
//!
//! ```
//! use lowerbound::{encode_permutation, decode, proof_machine, EncodeOptions,
//!                  DecodeOptions, bits};
//! use simlocks::{build_ordering, LockKind, ObjectKind};
//!
//! let inst = build_ordering(LockKind::Bakery, 3, ObjectKind::Counter);
//! let pi = vec![2, 0, 1];
//! let enc = encode_permutation(&inst, &pi, &EncodeOptions::default()).unwrap();
//!
//! // The stacks are a real bit code …
//! let code = bits::serialize_stacks(&enc.stacks);
//! let back = bits::deserialize_stacks(&code, 3).unwrap();
//!
//! // … and decoding them replays E_π, whose return values reveal π.
//! let out = decode(&proof_machine(&inst), &back, &DecodeOptions::default()).unwrap();
//! let recovered = lowerbound::recover_permutation(&out.machine);
//! assert_eq!(recovered, pi);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod codebook;
pub mod command;
pub mod decode;
pub mod encode;
pub mod invariants;

pub use bits::{
    analytic_bound_bits, deserialize_stacks, log2_factorial, serialize_stacks, BitString,
};
pub use codebook::{build_codebook, Codebook};
pub use command::{Command, Stacks};
pub use decode::{decode, DecodeError, DecodeOptions, DecodeOutcome, DecodedStep};
pub use encode::{
    encode_permutation, proof_machine, recover_permutation, EncodeError, EncodeOptions, Encoding,
};
pub use invariants::check_all;
