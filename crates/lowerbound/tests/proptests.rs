//! Property-based tests for the lower-bound machinery: codec round trips
//! on arbitrary stacks, and full π → stacks → bits → E_π → π round trips
//! on random permutations.

use proptest::prelude::*;

use lowerbound::{
    decode, deserialize_stacks, encode_permutation, proof_machine, recover_permutation,
    serialize_stacks, Command, DecodeOptions, EncodeOptions, Stacks,
};
use simlocks::{build_ordering, LockKind, ObjectKind};
use wbmem::ProcId;

fn arb_command() -> impl Strategy<Value = Command> {
    prop_oneof![
        Just(Command::Proceed),
        Just(Command::Commit),
        (1u64..10_000).prop_map(Command::WaitHiddenCommit),
        (1u64..10_000).prop_map(|k| Command::WaitReadFinish(k, Default::default())),
        (1u64..10_000).prop_map(|k| Command::WaitLocalFinish(k, Default::default())),
    ]
}

fn arb_stacks() -> impl Strategy<Value = Stacks> {
    (1usize..6)
        .prop_flat_map(|n| prop::collection::vec(prop::collection::vec(arb_command(), 0..20), n))
        .prop_map(|per_proc| {
            let mut st = Stacks::new(per_proc.len());
            for (i, cmds) in per_proc.into_iter().enumerate() {
                for c in cmds {
                    st.push_bottom(ProcId::from(i), c);
                }
            }
            st
        })
}

proptest! {
    /// Arbitrary stacks serialize and deserialize losslessly.
    #[test]
    fn codec_round_trips_arbitrary_stacks(st in arb_stacks()) {
        let n = st.n();
        let bits = serialize_stacks(&st);
        let back = deserialize_stacks(&bits, n).expect("round trip");
        prop_assert_eq!(back, st);
    }

    /// Code length is monotone in content: appending a command never
    /// shortens the code.
    #[test]
    fn appending_commands_grows_the_code(st in arb_stacks(), cmd in arb_command()) {
        let before = serialize_stacks(&st).len();
        let mut bigger = st.clone();
        bigger.push_bottom(ProcId(0), cmd);
        let after = serialize_stacks(&bigger).len();
        prop_assert!(after > before);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Decoding is a pure function of (machine, stacks): two runs agree on
    /// every step and on the final configuration.
    #[test]
    fn decoding_is_deterministic(seed in 0u64..64) {
        let inst = build_ordering(LockKind::Bakery, 3, ObjectKind::Counter);
        let mut pi: Vec<usize> = (0..3).collect();
        pi.rotate_left((seed % 3) as usize);
        let enc = encode_permutation(&inst, &pi, &EncodeOptions::default())
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        let m = proof_machine(&inst);
        let a = decode(&m, &enc.stacks, &DecodeOptions::default()).unwrap();
        let b = decode(&m, &enc.stacks, &DecodeOptions::default()).unwrap();
        prop_assert_eq!(a.steps.len(), b.steps.len());
        for (x, y) in a.steps.iter().zip(&b.steps) {
            prop_assert_eq!(&x.event, &y.event);
            prop_assert_eq!(x.elem, y.elem);
            prop_assert_eq!(x.hidden, y.hidden);
        }
        prop_assert_eq!(a.machine.state_key(), b.machine.state_key());
        prop_assert_eq!(a.stack_empty_at, b.stack_empty_at);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full pipeline on random permutations: encode, serialize, decode,
    /// recover — for the Bakery counter.
    #[test]
    fn full_round_trip_random_permutations(
        n in 2usize..6,
        shuffle in prop::collection::vec(any::<prop::sample::Index>(), 16),
    ) {
        let mut pi: Vec<usize> = (0..n).collect();
        for (i, idx) in shuffle.iter().enumerate().take(n.saturating_sub(1)) {
            let j = i + idx.index(n - i);
            pi.swap(i, j);
        }
        let inst = build_ordering(LockKind::Bakery, n, ObjectKind::Counter);
        let enc = encode_permutation(&inst, &pi, &EncodeOptions::default())
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(&enc.recovered_permutation(), &pi);

        let bits = serialize_stacks(&enc.stacks);
        let back = deserialize_stacks(&bits, n).expect("codec");
        let out = decode(&proof_machine(&inst), &back, &DecodeOptions::default())
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(recover_permutation(&out.machine), pi);

        // Quantitative relations (Lemmas 5.3-5.11, loose forms).
        prop_assert!(enc.commands as u64 >= enc.beta / 8);
        prop_assert!(enc.value_sum >= enc.commands as u64);
        let violations = lowerbound::check_all(&enc);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }
}
