//! The explicit-state checker.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};

use wbmem::{Machine, Process, SchedElem, StepOutcome};

/// What to verify during exploration.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Abort after visiting this many distinct states.
    pub max_states: usize,
    /// Verify at most one process is annotated in-CS at any state.
    pub check_mutex: bool,
    /// Verify that in every all-done state the return values are a
    /// permutation of `0..n` (the object-level ordering invariant for
    /// counters/queues).
    pub check_permutation: bool,
    /// Verify that every reachable state can still reach an all-done state
    /// (no deadlock and no inescapable livelock region).
    pub check_termination: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_states: 2_000_000,
            check_mutex: true,
            check_permutation: false,
            check_termination: true,
        }
    }
}

/// Exploration statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (including ones into already-visited states).
    pub transitions: usize,
    /// Number of all-done states found.
    pub terminal_states: usize,
}

/// A violating execution: the schedule that reaches it and a rendered trace.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The schedule from the initial configuration to the violation.
    pub schedule: Vec<SchedElem>,
    /// Human-readable event trace of that schedule.
    pub trace: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample ({} steps):", self.schedule.len())?;
        f.write_str(&self.trace)
    }
}

/// The checker's verdict.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// All requested properties hold over the full reachable state space.
    Ok(Stats),
    /// Two processes were simultaneously inside their critical sections.
    MutexViolation(Stats, Counterexample),
    /// An all-done state whose return values are not a permutation.
    PermutationViolation(Stats, Counterexample),
    /// Some reachable state cannot reach completion (deadlock or
    /// inescapable livelock).
    NoTermination(Stats, Counterexample),
    /// `max_states` was exceeded; the properties held on the explored part.
    StateLimit(Stats),
}

impl Verdict {
    /// Whether every checked property held on the fully explored space.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, Verdict::Ok(_))
    }

    /// Whether a safety/liveness violation was found (state-limit is
    /// neither).
    #[must_use]
    pub fn is_violation(&self) -> bool {
        matches!(
            self,
            Verdict::MutexViolation(..)
                | Verdict::PermutationViolation(..)
                | Verdict::NoTermination(..)
        )
    }

    /// Exploration statistics.
    #[must_use]
    pub fn stats(&self) -> Stats {
        match self {
            Verdict::Ok(s) | Verdict::StateLimit(s) => *s,
            Verdict::MutexViolation(s, _)
            | Verdict::PermutationViolation(s, _)
            | Verdict::NoTermination(s, _) => *s,
        }
    }

    /// Short label for tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Ok(_) => "ok",
            Verdict::MutexViolation(..) => "MUTEX-VIOLATION",
            Verdict::PermutationViolation(..) => "PERM-VIOLATION",
            Verdict::NoTermination(..) => "NO-TERMINATION",
            Verdict::StateLimit(_) => "state-limit",
        }
    }
}

/// 128-bit state fingerprint. The two 64-bit halves come from hash chains
/// that differ both in seed and in structure (the second hashes the first
/// half *and* re-hashes the key), so a collision requires both independent
/// halves to collide simultaneously — negligible for the ≤10^7-state spaces
/// this checker targets. A collision's effect would be a silently pruned
/// state, so we buy the margin.
fn fingerprint<P: Process>(m: &Machine<P>) -> u128 {
    let key = m.state_key();
    let mut h1 = DefaultHasher::new();
    0xA5A5_A5A5u32.hash(&mut h1);
    key.hash(&mut h1);
    let first = h1.finish();
    let mut h2 = DefaultHasher::new();
    0x5A5A_5A5Au32.hash(&mut h2);
    first.hash(&mut h2);
    key.hash(&mut h2);
    0x9E37_79B9u32.hash(&mut h2);
    (u128::from(first) << 64) | u128::from(h2.finish())
}

fn in_cs_count<P: Process>(m: &Machine<P>) -> usize {
    (0..m.n())
        .filter(|&i| m.annotation(wbmem::ProcId::from(i)) == simlocks::ANNOT_IN_CS)
        .count()
}

fn returns_are_permutation<P: Process>(m: &Machine<P>) -> bool {
    let mut rets: Vec<u64> = m.return_values().into_iter().flatten().collect();
    rets.sort_unstable();
    rets == (0..m.n() as u64).collect::<Vec<u64>>()
}

/// Exhaustively explore every schedule of `initial` (process interleavings
/// *and* commit orders) and check the configured properties.
///
/// The state space must be finite (true for the one-shot lock/object
/// programs in `simlocks`: tickets are bounded by `n` and every process
/// returns once). Exploration is depth-first with a fingerprint visited
/// set; counterexamples are replayed from the initial machine with tracing
/// to render them.
#[must_use]
pub fn check<P: Process>(initial: &Machine<P>, config: &CheckConfig) -> Verdict {
    let mut visited: HashSet<u128> = HashSet::new();
    let mut stats = Stats::default();

    // For the termination check we record the condensed graph.
    let mut ids: HashMap<u128, u32> = HashMap::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut terminal: Vec<u32> = Vec::new();
    // First-visit parent of each state id, for counterexample replay.
    let mut parents: Vec<Option<(u32, SchedElem)>> = Vec::new();

    let id_of = |fp: u128,
                     parent: Option<(u32, SchedElem)>,
                     ids: &mut HashMap<u128, u32>,
                     parents: &mut Vec<Option<(u32, SchedElem)>>|
     -> (u32, bool) {
        if let Some(&id) = ids.get(&fp) {
            (id, false)
        } else {
            let id = u32::try_from(ids.len()).expect("state ids fit in u32");
            ids.insert(fp, id);
            parents.push(parent);
            (id, true)
        }
    };

    let root_fp = fingerprint(initial);
    let (root_id, _) = id_of(root_fp, None, &mut ids, &mut parents);
    visited.insert(root_fp);
    stats.states = 1;

    let path_to = |id: u32, parents: &[Option<(u32, SchedElem)>]| -> Vec<SchedElem> {
        let mut sched = Vec::new();
        let mut cur = id;
        while let Some((p, e)) = parents[cur as usize] {
            sched.push(e);
            cur = p;
        }
        sched.reverse();
        sched
    };

    let render = |sched: &[SchedElem]| -> Counterexample {
        let mut m = initial.clone();
        // Rebuild with tracing by replaying on a traced clone: we cannot
        // toggle the config, so render from step outcomes instead.
        let mut out = String::new();
        use std::fmt::Write as _;
        for (i, &e) in sched.iter().enumerate() {
            if let StepOutcome::Stepped(ev) = m.step(e) {
                let _ = writeln!(out, "{i:5}  {ev}");
            }
        }
        let cs: Vec<usize> = (0..m.n())
            .filter(|&i| m.annotation(wbmem::ProcId::from(i)) == simlocks::ANNOT_IN_CS)
            .collect();
        let _ = writeln!(out, "       in-CS: {cs:?}  returns: {:?}", m.return_values());
        Counterexample { schedule: sched.to_vec(), trace: out }
    };

    // Depth-first exploration; the stack holds (machine, its id, choices,
    // next choice index).
    let mut stack: Vec<(Machine<P>, u32, Vec<SchedElem>)> = Vec::new();

    // Check the initial state itself.
    if config.check_mutex && in_cs_count(initial) > 1 {
        return Verdict::MutexViolation(stats, render(&[]));
    }
    if initial.all_done() {
        terminal.push(root_id);
        stats.terminal_states = 1;
    }
    stack.push((initial.clone(), root_id, initial.choices()));

    while let Some((m, id, mut choices)) = stack.pop() {
        let Some(elem) = choices.pop() else {
            continue;
        };
        // Put the remainder back before descending.
        let mut child = m.clone();
        stack.push((m, id, choices));

        if matches!(child.step(elem), StepOutcome::NoOp) {
            continue;
        }
        stats.transitions += 1;
        let fp = fingerprint(&child);
        let (child_id, fresh) = id_of(fp, Some((id, elem)), &mut ids, &mut parents);
        if config.check_termination {
            edges.push((id, child_id));
        }
        if !fresh || !visited.insert(fp) {
            continue;
        }
        stats.states += 1;
        if stats.states > config.max_states {
            return Verdict::StateLimit(stats);
        }

        if config.check_mutex && in_cs_count(&child) > 1 {
            return Verdict::MutexViolation(stats, render(&path_to(child_id, &parents)));
        }
        if child.all_done() {
            stats.terminal_states += 1;
            terminal.push(child_id);
            if config.check_permutation && !returns_are_permutation(&child) {
                return Verdict::PermutationViolation(
                    stats,
                    render(&path_to(child_id, &parents)),
                );
            }
            continue; // no choices from a terminal state
        }

        let child_choices = child.choices();
        debug_assert!(!child_choices.is_empty(), "non-terminal state has no choices");
        stack.push((child, child_id, child_choices));
    }

    if config.check_termination {
        // Reverse reachability from terminal states.
        let n_states = ids.len();
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n_states];
        for &(a, b) in &edges {
            rev[b as usize].push(a);
        }
        let mut can_finish = vec![false; n_states];
        let mut queue: Vec<u32> = terminal.clone();
        for &t in &terminal {
            can_finish[t as usize] = true;
        }
        while let Some(s) = queue.pop() {
            for &pred in &rev[s as usize] {
                if !can_finish[pred as usize] {
                    can_finish[pred as usize] = true;
                    queue.push(pred);
                }
            }
        }
        if let Some(stuck) = (0..n_states).find(|&s| !can_finish[s]) {
            return Verdict::NoTermination(
                stats,
                render(&path_to(stuck as u32, &parents)),
            );
        }
    }

    Verdict::Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simlocks::{build_mutex, FenceMask, LockKind};
    use wbmem::MemoryModel;

    fn cfg() -> CheckConfig {
        CheckConfig::default()
    }

    #[test]
    fn fully_fenced_peterson_is_correct_under_all_models() {
        let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let v = check(&inst.machine(model), &cfg());
            assert!(v.is_ok(), "{model}: {}", v.label());
        }
    }

    #[test]
    fn single_fence_peterson_splits_tso_from_pso() {
        // The separation witness: fence only after the victim write.
        let mask = FenceMask::only(&[simlocks::peterson::SITE_VICTIM, simlocks::peterson::SITE_RELEASE]);
        let inst = build_mutex(LockKind::Peterson, 2, mask);

        let tso = check(&inst.machine(MemoryModel::Tso), &cfg());
        assert!(tso.is_ok(), "TSO should be safe: {}", tso.label());

        let pso = check(&inst.machine(MemoryModel::Pso), &cfg());
        match pso {
            Verdict::MutexViolation(_, cex) => {
                assert!(!cex.schedule.is_empty());
                assert!(cex.trace.contains("in-CS: [0, 1]"), "trace:\n{}", cex.trace);
            }
            other => panic!("PSO should violate mutex, got {}", other.label()),
        }
    }

    #[test]
    fn fenceless_peterson_fails_even_under_tso() {
        let mask = FenceMask::only(&[simlocks::peterson::SITE_RELEASE]);
        let inst = build_mutex(LockKind::Peterson, 2, mask);
        let v = check(&inst.machine(MemoryModel::Tso), &cfg());
        assert!(
            matches!(v, Verdict::MutexViolation(..)),
            "expected TSO violation, got {}",
            v.label()
        );
        // Under SC (no buffering at all) Peterson needs no fences.
        let v = check(&inst.machine(MemoryModel::Sc), &cfg());
        assert!(v.is_ok(), "SC: {}", v.label());
    }

    #[test]
    fn missing_release_fence_causes_livelock_not_mutex_failure() {
        // Without the release fence the flag reset can stay buffered
        // forever; mutual exclusion still holds but completion is lost for
        // some schedules... under our semantics buffered writes can always
        // still be committed later (commit choices remain available), so
        // termination actually survives. Verify mutex at least.
        let mask =
            FenceMask::only(&[simlocks::peterson::SITE_FLAG, simlocks::peterson::SITE_VICTIM]);
        let inst = build_mutex(LockKind::Peterson, 2, mask);
        let v = check(&inst.machine(MemoryModel::Pso), &cfg());
        assert!(!matches!(v, Verdict::MutexViolation(..)), "got {}", v.label());
    }

    #[test]
    fn bakery_two_processes_fully_fenced_checks_out() {
        let inst = build_mutex(LockKind::Bakery, 2, FenceMask::ALL);
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            let v = check(&inst.machine(model), &cfg());
            assert!(v.is_ok(), "{model}: {}", v.label());
        }
    }

    #[test]
    fn papers_printed_bakery_listing_is_broken_even_under_sc() {
        // The paper's Algorithm 1 closes the doorway (C[i] := 0) before
        // publishing the ticket (T[i] := tmp). The checker finds the
        // resulting mutual-exclusion violation without any write
        // reordering at all.
        let inst = build_mutex(LockKind::BakeryPaperListing, 2, FenceMask::ALL);
        let v = check(&inst.machine(MemoryModel::Sc), &cfg());
        assert!(
            matches!(v, Verdict::MutexViolation(..)),
            "expected SC violation of the printed listing, got {}",
            v.label()
        );
    }

    #[test]
    fn stats_are_populated() {
        let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
        let v = check(&inst.machine(MemoryModel::Pso), &cfg());
        let s = v.stats();
        assert!(s.states > 10);
        assert!(s.transitions >= s.states - 1);
        assert!(s.terminal_states >= 1);
    }

    #[test]
    fn counterexamples_replay_deterministically() {
        let mask = FenceMask::only(&[simlocks::peterson::SITE_VICTIM]);
        let inst = build_mutex(LockKind::Peterson, 2, mask);
        let run = || match check(&inst.machine(MemoryModel::Pso), &cfg()) {
            Verdict::MutexViolation(_, cex) => cex,
            other => panic!("expected violation, got {}", other.label()),
        };
        let (a, b) = (run(), run());
        assert_eq!(a.schedule, b.schedule, "exploration is deterministic");
        assert_eq!(a.trace, b.trace);

        // Replaying the schedule on a fresh machine reproduces the
        // double-CS state.
        let mut m = inst.machine(MemoryModel::Pso);
        for &e in &a.schedule {
            m.step(e);
        }
        let in_cs = (0..2)
            .filter(|&i| m.annotation(wbmem::ProcId::from(i)) == simlocks::ANNOT_IN_CS)
            .count();
        assert_eq!(in_cs, 2, "replay must reach the violation");
    }

    #[test]
    fn strong_primitive_and_filter_locks_check_out() {
        for (kind, n) in [
            (LockKind::Ttas, 2usize),
            (LockKind::Mcs, 2),
            (LockKind::Filter, 2),
        ] {
            let inst = build_mutex(kind, n, FenceMask::ALL);
            for model in [MemoryModel::Tso, MemoryModel::Pso] {
                let v = check(&inst.machine(model), &cfg());
                assert!(v.is_ok(), "{kind} under {model}: {}", v.label());
            }
        }
    }

    #[test]
    fn permutation_check_accepts_correct_counters() {
        let inst = simlocks::build_ordering(
            LockKind::Ttas,
            2,
            simlocks::ObjectKind::Counter,
        );
        let config = CheckConfig {
            check_permutation: true,
            check_termination: false,
            ..CheckConfig::default()
        };
        let v = check(&inst.machine(MemoryModel::Pso), &config);
        assert!(v.is_ok(), "{}", v.label());
    }

    #[test]
    fn state_limit_is_reported() {
        let inst = build_mutex(LockKind::Bakery, 3, FenceMask::ALL);
        let small = CheckConfig { max_states: 50, ..CheckConfig::default() };
        let v = check(&inst.machine(MemoryModel::Pso), &small);
        assert!(matches!(v, Verdict::StateLimit(_)), "got {}", v.label());
    }
}
