//! The explicit-state checker.
//!
//! Three interchangeable exploration engines produce bit-identical verdicts
//! and statistics (see [`Engine`]):
//!
//! * [`Engine::CloneDfs`] — the original depth-first search that clones the
//!   whole machine at every transition. Kept as the differential oracle.
//! * [`Engine::Undo`] — the default: one machine, mutated in place via
//!   [`Machine::step_recorded`] and rewound with [`Machine::undo`], so
//!   backtracking costs O(step footprint) instead of O(machine). A single
//!   clone is taken at the root (and one more per counterexample replay).
//! * [`Engine::Parallel`] — N workers sweep disjoint top-level subtrees
//!   gated on a shared lock-free fingerprint table ([`por::FpTable`]). A
//!   completed sweep expands every reachable state exactly once, so its
//!   statistics equal the sequential ones; any violation, state limit, or
//!   stuck state cancels the sweep and reruns the sequential undo engine,
//!   whose verdict (including the counterexample) is returned verbatim.
//!   Either way the result is bit-identical to the sequential engines.
//!
//! Two further engines trade completeness of that statistics contract for
//! speed: [`Engine::Dpor`] (partial-order reduction, in [`crate::dpor`])
//! and [`Engine::ParallelDpor`] (work-stealing parallel DPOR, in
//! [`crate::pardpor`]); both keep verdicts bit-identical.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ftobs::{Estimate, Gauge, Metric, MetricsSnapshot, Progress, Recorder, TreeEstimator};
use por::{BaseCounts, ForkPoint, RunMeta, SleepSet, Snapshot};
use wbmem::{CrashSemantics, Machine, MachineError, Process, SchedElem, StepOutcome, UndoToken};

/// Which exploration engine [`check`] runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// The original clone-per-transition depth-first search. Slowest;
    /// retained as the differential-testing oracle.
    CloneDfs,
    /// Undo-log depth-first search: a single machine stepped forward and
    /// rewound in place.
    #[default]
    Undo,
    /// Multi-threaded sweep. `threads == 0` means one worker per available
    /// core. With one worker this is exactly [`Engine::Undo`].
    Parallel {
        /// Worker count (`0` = available parallelism).
        threads: usize,
    },
    /// Dynamic partial-order reduction: sleep sets plus (when the
    /// termination check is off) ample process sets over the machine's
    /// dependence footprints. Verdicts match the exhaustive engines;
    /// statistics legitimately differ — that difference *is* the
    /// reduction. See the `por` crate and `DESIGN.md` for the soundness
    /// argument.
    Dpor {
        /// `Some(k)`: additionally restrict the search to schedules with
        /// at most `k` steps where a program overtakes its own pending
        /// buffered writes (`0` ≡ SC-equivalent schedules). An `Ok`
        /// verdict then only covers the bounded schedule set; violations
        /// are always real. `None`: full (sound and complete) search.
        ///
        /// `Some(u32::MAX)` is a *diagnostic* mode: the bound is
        /// unreachable, and the engine additionally switches every
        /// reduction off (empty sleep sets, no ample selection, plain
        /// visited-set dedup) and consumes choices in the exhaustive
        /// engines' order. The run then executes the exact edge multiset
        /// of [`Engine::Undo`], so its [`MetricsSnapshot`] is
        /// bit-identical to the exhaustive engines' — the baseline the
        /// reduction's savings are measured against.
        reorder_bound: Option<u32>,
    },
    /// Work-stealing parallel DPOR: N workers each run the
    /// [`Engine::Dpor`] reduced DFS (identical pruning rules), trading
    /// unexplored fork points through a bounded work-stealing queue and
    /// deduplicating states in a shared lock-free fingerprint table
    /// ([`por::FpTable`]). Verdicts are bit-identical to
    /// [`Engine::Dpor`] with the same `reorder_bound` (violations,
    /// limits, stuck states, and worker panics defer to a sequential
    /// rerun, exactly like [`Engine::Parallel`]); in the diagnostic
    /// disabled-reduction mode the metrics are bit-identical too. Small
    /// runs short-circuit to the sequential engine (see
    /// `FT_PARDPOR_SEQ`). See `DESIGN.md` §7 for the fork-point protocol
    /// and the soundness argument.
    ParallelDpor {
        /// Worker count (`0` = available parallelism). With one worker
        /// this is exactly [`Engine::Dpor`].
        threads: usize,
        /// Same meaning as [`Engine::Dpor::reorder_bound`], including
        /// the `Some(u32::MAX)` diagnostic mode.
        reorder_bound: Option<u32>,
    },
}

impl Engine {
    /// Short machine-readable label (`ftobs` metadata, bench rows).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Engine::CloneDfs => "clone_dfs",
            Engine::Undo => "undo",
            Engine::Parallel { .. } => "parallel",
            Engine::Dpor { .. } => "dpor",
            Engine::ParallelDpor { .. } => "pardpor",
        }
    }
}

/// What to verify during exploration.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Abort after visiting this many distinct states.
    pub max_states: usize,
    /// Verify at most one process is annotated in-CS at any state.
    pub check_mutex: bool,
    /// Verify that in every all-done state the return values are a
    /// permutation of `0..n` (the object-level ordering invariant for
    /// counters/queues).
    pub check_permutation: bool,
    /// Verify that every reachable state can still reach an all-done state
    /// (no deadlock and no inescapable livelock region).
    pub check_termination: bool,
    /// Exploration engine (default: [`Engine::Undo`]).
    pub engine: Engine,
    /// Per-process crash budget: each process may crash up to this many
    /// times along any explored schedule (`0` disables crash injection).
    /// When non-zero the checker enables [`wbmem::SchedElem::crash`] steps
    /// on the root machine, so all engines enumerate crash choices.
    pub max_crashes: u32,
    /// What a crash does to the crashed process's write buffer (only
    /// meaningful when `max_crashes > 0`).
    pub crash_semantics: CrashSemantics,
    /// Wall-clock exploration budget. When it expires the checker stops
    /// and returns [`Verdict::Inconclusive`] with coverage statistics
    /// instead of a definitive verdict. Budget-limited runs stop at a
    /// time-dependent point, so they are **not** bit-identical across
    /// engines (all other configurations are). `None` = unlimited.
    pub budget: Option<Duration>,
    /// Extra per-state invariant over the processes' annotation vector
    /// (index = process id). Checked at the root and at every first visit
    /// of a state in every engine; returning `false` yields
    /// [`Verdict::InvariantViolation`] with a counterexample. A plain `fn`
    /// pointer keeps the configuration `Clone`/`Debug`.
    pub annotation_invariant: Option<fn(&[u64]) -> bool>,
    /// Observability sink. The engines attach it to their working machine
    /// clones (never to the caller's `initial`, so counterexample replays
    /// stay unrecorded), count exploration events into it, and [`check`]
    /// stamps its final [`MetricsSnapshot`] into the verdict's [`Stats`].
    /// The default, [`Recorder::disabled`], is a no-op.
    pub recorder: Recorder,
    /// Durable checkpointing (see [`CheckpointPolicy`]). When set, the
    /// [`Engine::Undo`], [`Engine::Dpor`], and [`Engine::ParallelDpor`]
    /// engines write a versioned, checksummed snapshot of the unexplored
    /// frontier on budget expiry, interrupt, or occupancy pressure —
    /// and periodically if so configured — so the run can be continued
    /// with [`crate::resume`]. [`Engine::CloneDfs`] and
    /// [`Engine::Parallel`] ignore the policy (they keep live machine
    /// clones per frame, which have no serialized form). `None` (the
    /// default) disables checkpointing entirely.
    pub checkpoint: Option<CheckpointPolicy>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_states: 2_000_000,
            check_mutex: true,
            check_permutation: false,
            check_termination: true,
            engine: Engine::default(),
            max_crashes: 0,
            crash_semantics: CrashSemantics::DiscardBuffer,
            budget: None,
            annotation_invariant: None,
            recorder: Recorder::disabled(),
            checkpoint: None,
        }
    }
}

impl CheckConfig {
    /// This configuration with a different [`Engine`].
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// This configuration with crash injection enabled: up to
    /// `max_crashes` crashes per process under `semantics`.
    #[must_use]
    pub fn with_crashes(mut self, semantics: CrashSemantics, max_crashes: u32) -> Self {
        self.crash_semantics = semantics;
        self.max_crashes = max_crashes;
        self
    }

    /// This configuration with a wall-clock exploration budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// This configuration with an annotation invariant (see
    /// [`CheckConfig::annotation_invariant`]).
    #[must_use]
    pub fn with_invariant(mut self, invariant: fn(&[u64]) -> bool) -> Self {
        self.annotation_invariant = Some(invariant);
        self
    }

    /// This configuration with an observability recorder (see
    /// [`CheckConfig::recorder`]).
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// This configuration with a checkpoint policy (see
    /// [`CheckConfig::checkpoint`]).
    #[must_use]
    pub fn with_checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }
}

/// When and where an exploration writes durable checkpoints.
///
/// A checkpoint is a [`por::Snapshot`]: the serialized unexplored frontier
/// (fork points), the visited fingerprints, the run metadata, and the
/// metrics accumulated so far, written atomically (temp file + fsync +
/// rename) so a crash mid-write never leaves a torn-but-readable file.
/// [`crate::resume`] continues the exploration from it and reaches the
/// same verdict an uninterrupted run would have.
///
/// The builder methods compose: a policy usually starts from
/// [`CheckpointPolicy::at`] and adds triggers. With no trigger configured
/// the policy still checkpoints on wall-clock budget expiry — that is the
/// baseline behavior `path` alone buys.
#[derive(Clone, Debug, Default)]
pub struct CheckpointPolicy {
    /// Where the snapshot lands. The write goes through a hidden
    /// temp-file sibling in the same directory, so the directory must be
    /// writable; the final path either holds a complete, checksummed
    /// snapshot or whatever was there before.
    pub path: PathBuf,
    /// Also write a checkpoint every this-many transitions (`None` =
    /// only at stop points). The run continues after a periodic write.
    pub every_transitions: Option<u64>,
    /// Also write a checkpoint on this wall-clock cadence (`None` = only
    /// at stop points). Polled at the engines' deadline-poll granularity.
    pub every: Option<Duration>,
    /// Stop (checkpoint + [`Verdict::Inconclusive`]) once this many
    /// transitions have been executed. Unlike the wall-clock budget this
    /// cut point is deterministic, which is what the differential
    /// resume tests are built on.
    pub stop_after_transitions: Option<u64>,
    /// Cooperative interrupt: when the flag becomes `true` (e.g. from a
    /// SIGINT handler installed by the caller) the engines stop at the
    /// next transition boundary, checkpoint, and return
    /// [`Verdict::Inconclusive`].
    pub interrupt: Option<Arc<AtomicBool>>,
    /// Memory-pressure valve: once the dedup structure holds this many
    /// fingerprints, stop and checkpoint instead of growing toward OOM.
    pub max_occupancy: Option<usize>,
}

impl CheckpointPolicy {
    /// A policy that checkpoints to `path` on budget expiry only.
    #[must_use]
    pub fn at(path: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            path: path.into(),
            ..CheckpointPolicy::default()
        }
    }

    /// Also checkpoint every `n` transitions (run continues).
    #[must_use]
    pub fn every_transitions(mut self, n: u64) -> Self {
        self.every_transitions = Some(n);
        self
    }

    /// Also checkpoint on a wall-clock cadence (run continues).
    #[must_use]
    pub fn every(mut self, period: Duration) -> Self {
        self.every = Some(period);
        self
    }

    /// Stop and checkpoint after `n` transitions (deterministic cut).
    #[must_use]
    pub fn stop_after(mut self, n: u64) -> Self {
        self.stop_after_transitions = Some(n);
        self
    }

    /// Stop and checkpoint when `flag` becomes true.
    #[must_use]
    pub fn on_interrupt(mut self, flag: Arc<AtomicBool>) -> Self {
        self.interrupt = Some(flag);
        self
    }

    /// Stop and checkpoint once the dedup structure holds `n`
    /// fingerprints.
    #[must_use]
    pub fn max_occupancy(mut self, n: usize) -> Self {
        self.max_occupancy = Some(n);
        self
    }

    /// Whether a stop trigger has fired at `transitions` executed
    /// transitions. Checked at every transition boundary so the
    /// deterministic `stop_after_transitions` cut is exact.
    pub(crate) fn stop_requested(&self, transitions: u64) -> bool {
        self.stop_after_transitions
            .is_some_and(|n| transitions >= n)
            || self
                .interrupt
                .as_ref()
                .is_some_and(|f| f.load(Ordering::Relaxed))
    }
}

/// Tracks when a periodic checkpoint is due (transition-count cadence,
/// wall-clock cadence, or both). Firing rearms both cadences.
pub(crate) struct PeriodicCheckpoint {
    last_transitions: u64,
    next_at: Option<Instant>,
}

impl PeriodicCheckpoint {
    pub(crate) fn new(policy: &CheckpointPolicy) -> Self {
        PeriodicCheckpoint {
            last_transitions: 0,
            next_at: policy.every.map(|d| Instant::now() + d),
        }
    }

    pub(crate) fn due(&mut self, policy: &CheckpointPolicy, transitions: u64) -> bool {
        let by_count = policy
            .every_transitions
            .is_some_and(|n| transitions.saturating_sub(self.last_transitions) >= n);
        let by_time = self.next_at.is_some_and(|at| Instant::now() >= at);
        if by_count || by_time {
            self.last_transitions = transitions;
            self.next_at = policy.every.map(|d| Instant::now() + d);
            true
        } else {
            false
        }
    }
}

/// Exploration statistics.
///
/// `elapsed` is informational and **ignored by equality**: two runs that
/// explore the same space compare equal regardless of wall-clock speed, so
/// differential tests can assert `Stats` equality across engines. The
/// embedded `metrics` snapshot participates through its own equality,
/// which likewise covers only the deterministic counters (see
/// [`MetricsSnapshot`]); with the default disabled recorder it is all-zero
/// on every engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (including ones into already-visited states).
    pub transitions: usize,
    /// Number of all-done states found.
    pub terminal_states: usize,
    /// Wall-clock time of the exploration.
    pub elapsed: Duration,
    /// Final metrics snapshot of [`CheckConfig::recorder`] (all-zero when
    /// the recorder is disabled).
    pub metrics: MetricsSnapshot,
}

impl PartialEq for Stats {
    fn eq(&self, o: &Self) -> bool {
        self.states == o.states
            && self.transitions == o.transitions
            && self.terminal_states == o.terminal_states
            && self.metrics == o.metrics
    }
}

impl Eq for Stats {}

impl Stats {
    /// Distinct states visited per second of exploration (0 if untimed).
    #[must_use]
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.states as f64 / secs
        } else {
            0.0
        }
    }
}

/// A violating execution: the schedule that reaches it and a rendered trace.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The schedule from the initial configuration to the violation.
    pub schedule: Vec<SchedElem>,
    /// Human-readable event trace of that schedule.
    pub trace: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample ({} steps):", self.schedule.len())?;
        f.write_str(&self.trace)
    }
}

/// Coverage accompanying an inconclusive (budget-limited) verdict: how far
/// the aborted exploration got. `Stats` carries the states explored; this
/// carries the size of the unexplored frontier.
#[derive(Clone, Debug, Default)]
pub struct Coverage {
    /// Open DFS frames (states with unexplored outgoing transitions) at the
    /// moment the budget expired, summed over workers for the parallel
    /// engine.
    pub frontier: usize,
    /// Transitions the DPOR engine skipped as provably redundant (sleep-set
    /// and ample pruning); always `0` for the exhaustive engines. The hit
    /// rate `sleep_hits / (transitions + sleep_hits)` measures how much of
    /// the raw schedule space the reduction discharged.
    pub sleep_hits: usize,
    /// Where the interrupted exploration's durable snapshot landed, when a
    /// [`CheckConfig::checkpoint`] policy was set and the write succeeded
    /// (`None` otherwise). Pass it to [`crate::resume`] to continue.
    pub checkpoint: Option<PathBuf>,
    /// Knuth path-sampling estimate of the *total* distinct states a
    /// completed run would visit (see `ftobs::estimate`), when the engine
    /// maintained one. An estimate, not a bound — DESIGN §6a discusses
    /// its bias.
    pub est_total_states: Option<u64>,
    /// Estimated states left unexplored (`est_total_states - states`).
    pub est_remaining: Option<u64>,
}

// Manual: equality deliberately skips the `est_*` fields — they depend
// on traversal order and timing (what fraction of the tree each engine
// had seen at the cut), so the differential suites compare coverage on
// its deterministic projection only, exactly like `MetricsSnapshot`.
impl PartialEq for Coverage {
    fn eq(&self, other: &Self) -> bool {
        self.frontier == other.frontier
            && self.sleep_hits == other.sleep_hits
            && self.checkpoint == other.checkpoint
    }
}

impl Eq for Coverage {}

impl Coverage {
    /// Attach a progress estimate (both fields or neither).
    pub(crate) fn with_estimate(mut self, est: Option<Estimate>) -> Coverage {
        self.est_total_states = est.map(|e| e.total_states);
        self.est_remaining = est.map(|e| e.remaining);
        self
    }
}

/// A checker-level failure: the exploration could not be carried out, as
/// opposed to a property verdict about the program under check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// A parallel worker panicked and the deterministic sequential rerun
    /// panicked too; carries the panic payload(s).
    Panic(String),
    /// The reachable state space exceeded the checker's dense-id capacity
    /// (`u32`); raise the abstraction or lower `max_states`.
    TooManyStates,
    /// The machine rejected a schedule element (see [`wbmem::MachineError`]).
    Machine(MachineError),
    /// A checkpoint could not be read, validated, or matched to the
    /// resuming configuration (torn file, checksum mismatch, wrong
    /// format version, different config/program). The run is never
    /// silently restarted from scratch — the mismatch is surfaced here.
    Checkpoint(String),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Panic(msg) => write!(f, "checker panicked: {msg}"),
            CheckError::TooManyStates => {
                write!(f, "state space exceeds the checker's u32 id capacity")
            }
            CheckError::Machine(e) => write!(f, "machine error: {e}"),
            CheckError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<MachineError> for CheckError {
    fn from(e: MachineError) -> Self {
        CheckError::Machine(e)
    }
}

impl From<por::SnapshotError> for CheckError {
    fn from(e: por::SnapshotError) -> Self {
        CheckError::Checkpoint(e.to_string())
    }
}

/// The checker's verdict.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// All requested properties hold over the full reachable state space.
    Ok(Stats),
    /// Two processes were simultaneously inside their critical sections.
    MutexViolation(Stats, Counterexample),
    /// An all-done state whose return values are not a permutation.
    PermutationViolation(Stats, Counterexample),
    /// Some reachable state cannot reach completion (deadlock or
    /// inescapable livelock).
    NoTermination(Stats, Counterexample),
    /// A state where [`CheckConfig::annotation_invariant`] returned false.
    InvariantViolation(Stats, Counterexample),
    /// `max_states` was exceeded; the properties held on the explored part.
    StateLimit(Stats),
    /// The wall-clock [`CheckConfig::budget`] expired before exploration
    /// finished; the properties held on the part that was covered.
    Inconclusive(Stats, Coverage),
    /// The exploration itself failed (worker panic, id overflow, machine
    /// error); no property verdict could be established.
    Error(Stats, CheckError),
}

impl Verdict {
    /// Whether every checked property held on the fully explored space.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, Verdict::Ok(_))
    }

    /// Whether a safety/liveness violation was found (state-limit, budget
    /// expiry, and checker errors are neither).
    #[must_use]
    pub fn is_violation(&self) -> bool {
        matches!(
            self,
            Verdict::MutexViolation(..)
                | Verdict::PermutationViolation(..)
                | Verdict::NoTermination(..)
                | Verdict::InvariantViolation(..)
        )
    }

    /// Exploration statistics.
    #[must_use]
    pub fn stats(&self) -> Stats {
        match self {
            Verdict::Ok(s) | Verdict::StateLimit(s) => *s,
            Verdict::MutexViolation(s, _)
            | Verdict::PermutationViolation(s, _)
            | Verdict::NoTermination(s, _)
            | Verdict::InvariantViolation(s, _) => *s,
            Verdict::Inconclusive(s, _) => *s,
            Verdict::Error(s, _) => *s,
        }
    }

    /// The counterexample, for violation verdicts.
    #[must_use]
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Verdict::MutexViolation(_, c)
            | Verdict::PermutationViolation(_, c)
            | Verdict::NoTermination(_, c)
            | Verdict::InvariantViolation(_, c) => Some(c),
            Verdict::Ok(_)
            | Verdict::StateLimit(_)
            | Verdict::Inconclusive(..)
            | Verdict::Error(..) => None,
        }
    }

    /// Coverage of an aborted exploration, for inconclusive verdicts.
    #[must_use]
    pub fn coverage(&self) -> Option<Coverage> {
        match self {
            Verdict::Inconclusive(_, c) => Some(c.clone()),
            _ => None,
        }
    }

    /// The checker-level failure, for error verdicts.
    #[must_use]
    pub fn error(&self) -> Option<&CheckError> {
        match self {
            Verdict::Error(_, e) => Some(e),
            _ => None,
        }
    }

    /// Short label for tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Ok(_) => "ok",
            Verdict::MutexViolation(..) => "MUTEX-VIOLATION",
            Verdict::PermutationViolation(..) => "PERM-VIOLATION",
            Verdict::NoTermination(..) => "NO-TERMINATION",
            Verdict::InvariantViolation(..) => "INVARIANT-VIOLATION",
            Verdict::StateLimit(_) => "state-limit",
            Verdict::Inconclusive(..) => "inconclusive",
            Verdict::Error(..) => "ERROR",
        }
    }

    pub(crate) fn stats_mut(&mut self) -> &mut Stats {
        match self {
            Verdict::Ok(s) | Verdict::StateLimit(s) => s,
            Verdict::MutexViolation(s, _)
            | Verdict::PermutationViolation(s, _)
            | Verdict::NoTermination(s, _)
            | Verdict::InvariantViolation(s, _) => s,
            Verdict::Inconclusive(s, _) => s,
            Verdict::Error(s, _) => s,
        }
    }
}

/// 128-bit state fingerprint. The two 64-bit halves come from hash chains
/// that differ both in seed and in structure (the second hashes the first
/// half *and* re-hashes the state), so a collision requires both
/// independent halves to collide simultaneously — negligible for the
/// ≤10^7-state spaces this checker targets. A collision's effect would be a
/// silently pruned state, so we buy the margin. The state is hashed in a
/// single streaming pass ([`Machine::hash_state`]); no snapshot is
/// allocated.
pub(crate) fn fingerprint<P: Process>(m: &Machine<P>) -> u128 {
    let mut h1 = DefaultHasher::new();
    0xA5A5_A5A5u32.hash(&mut h1);
    m.hash_state(&mut h1);
    let first = h1.finish();
    let mut h2 = DefaultHasher::new();
    0x5A5A_5A5Au32.hash(&mut h2);
    first.hash(&mut h2);
    m.hash_state(&mut h2);
    0x9E37_79B9u32.hash(&mut h2);
    (u128::from(first) << 64) | u128::from(h2.finish())
}

pub(crate) fn in_cs_count<P: Process>(m: &Machine<P>) -> usize {
    (0..m.n())
        .filter(|&i| m.annotation(wbmem::ProcId::from(i)) == simlocks::ANNOT_IN_CS)
        .count()
}

pub(crate) fn returns_are_permutation<P: Process>(m: &Machine<P>) -> bool {
    let mut rets: Vec<u64> = m.return_values().into_iter().flatten().collect();
    rets.sort_unstable();
    rets == (0..m.n() as u64).collect::<Vec<u64>>()
}

/// Replay `sched` on a fresh clone of `initial` and render the execution.
pub(crate) fn render<P: Process>(initial: &Machine<P>, sched: &[SchedElem]) -> Counterexample {
    let mut m = initial.clone();
    let mut out = String::new();
    use std::fmt::Write as _;
    for (i, &e) in sched.iter().enumerate() {
        if let StepOutcome::Stepped(ev) = m.step(e) {
            let _ = writeln!(out, "{i:5}  {ev}");
        }
    }
    let cs: Vec<usize> = (0..m.n())
        .filter(|&i| m.annotation(wbmem::ProcId::from(i)) == simlocks::ANNOT_IN_CS)
        .collect();
    let _ = writeln!(
        out,
        "       in-CS: {cs:?}  returns: {:?}",
        m.return_values()
    );
    Counterexample {
        schedule: sched.to_vec(),
        trace: out,
    }
}

/// Dense state ids plus first-visit parents, for counterexample replay.
#[derive(Default)]
pub(crate) struct SearchIndex {
    ids: HashMap<u128, u32>,
    parents: Vec<Option<(u32, SchedElem)>>,
    /// Fingerprint per dense id (inverse of `ids`), so checkpointing can
    /// re-key the id-based edge/terminal lists by stable fingerprints.
    fps: Vec<u128>,
}

impl SearchIndex {
    /// The id for `fp`, allocating one (and recording `parent`) on first
    /// sight. Returns `(id, freshly allocated)`, or `None` once the dense
    /// `u32` id space is exhausted (the caller surfaces
    /// [`CheckError::TooManyStates`]).
    pub(crate) fn id_of(
        &mut self,
        fp: u128,
        parent: Option<(u32, SchedElem)>,
    ) -> Option<(u32, bool)> {
        if let Some(&id) = self.ids.get(&fp) {
            Some((id, false))
        } else {
            let id = u32::try_from(self.ids.len()).ok()?;
            self.ids.insert(fp, id);
            self.parents.push(parent);
            self.fps.push(fp);
            Some((id, true))
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.ids.len()
    }

    /// The fingerprint a dense id was allocated for.
    pub(crate) fn fp_of(&self, id: u32) -> u128 {
        self.fps[id as usize]
    }

    /// The schedule from the root to state `id` along first-visit parents.
    pub(crate) fn path_to(&self, id: u32) -> Vec<SchedElem> {
        let mut sched = Vec::new();
        let mut cur = id;
        while let Some((p, e)) = self.parents[cur as usize] {
            sched.push(e);
            cur = p;
        }
        sched.reverse();
        sched
    }
}

/// Reverse reachability from terminal states: the smallest-id state that
/// cannot reach completion, if any.
pub(crate) fn find_stuck(n_states: usize, edges: &[(u32, u32)], terminal: &[u32]) -> Option<u32> {
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n_states];
    for &(a, b) in edges {
        rev[b as usize].push(a);
    }
    let mut can_finish = vec![false; n_states];
    let mut queue: Vec<u32> = terminal.to_vec();
    for &t in terminal {
        can_finish[t as usize] = true;
    }
    while let Some(s) = queue.pop() {
        for &pred in &rev[s as usize] {
            if !can_finish[pred as usize] {
                can_finish[pred as usize] = true;
                queue.push(pred);
            }
        }
    }
    (0..n_states).find(|&s| !can_finish[s]).map(|s| s as u32)
}

/// Whether the configured annotation invariant rejects the machine's
/// current annotation vector.
pub(crate) fn violates_invariant<P: Process>(config: &CheckConfig, m: &Machine<P>) -> bool {
    config.annotation_invariant.is_some_and(|inv| {
        let annots: Vec<u64> = (0..m.n())
            .map(|i| m.annotation(wbmem::ProcId::from(i)))
            .collect();
        !inv(&annots)
    })
}

/// Best-effort rendering of a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// How many loop iterations the sequential engines run between deadline
/// polls (the parallel workers poll on their existing 256-step cadence).
pub(crate) const DEADLINE_POLL_MASK: usize = 1024 - 1;

/// The sequential engines' shared poll point: update the frontier and
/// dedup-occupancy gauges, offer the recorder a (rate-limited) heartbeat,
/// and report whether the wall-clock deadline has passed. With a disabled
/// recorder this is exactly the old deadline check — no clock read unless
/// a deadline exists.
pub(crate) fn poll_observe(
    obs: &Recorder,
    stats: &Stats,
    frontier: usize,
    dedup_occupancy: usize,
    budget: Option<Duration>,
    deadline: Option<Instant>,
    estimate: Option<Estimate>,
) -> bool {
    if !obs.is_enabled() {
        return deadline.is_some_and(|d| Instant::now() >= d);
    }
    let now = Instant::now();
    obs.gauge_max(Gauge::MaxFrontier, frontier as u64);
    obs.gauge_set(Gauge::DedupOccupancy, dedup_occupancy as u64);
    let spent = match (budget, deadline) {
        (Some(b), Some(d)) => Some(b.saturating_sub(d.saturating_duration_since(now))),
        _ => None,
    };
    obs.maybe_heartbeat(&Progress {
        states: stats.states as u64,
        transitions: stats.transitions as u64,
        frontier: frontier as u64,
        budget,
        spent,
        estimate,
    });
    deadline.is_some_and(|d| now >= d)
}

/// Hash of the verdict-relevant configuration, stamped into every
/// checkpoint and validated on resume: a snapshot taken under one
/// property/bound/crash configuration must not seed a run under another
/// (the merged verdict would be meaningless). Deliberately excludes the
/// budget, recorder, checkpoint policy, and worker count — those change
/// *how far and how observably* the space is explored, not *which* space
/// with *which* properties.
pub(crate) fn config_hash(config: &CheckConfig) -> u64 {
    let mut h = DefaultHasher::new();
    config.max_states.hash(&mut h);
    config.check_mutex.hash(&mut h);
    config.check_permutation.hash(&mut h);
    config.check_termination.hash(&mut h);
    config.max_crashes.hash(&mut h);
    matches!(config.crash_semantics, CrashSemantics::DrainBuffer).hash(&mut h);
    config.engine.label().hash(&mut h);
    match config.engine {
        Engine::Dpor { reorder_bound } | Engine::ParallelDpor { reorder_bound, .. } => {
            reorder_bound
        }
        _ => None,
    }
    .hash(&mut h);
    config.annotation_invariant.is_some().hash(&mut h);
    h.finish()
}

/// Fold a 128-bit state fingerprint to 64 bits (for run ids).
pub(crate) fn fold_fp(fp: u128) -> u64 {
    #[allow(clippy::cast_possible_truncation)]
    let folded = (fp as u64) ^ ((fp >> 64) as u64);
    folded
}

/// Compact per-run identifier stamped on trace spans: the configuration
/// hash folded with the (crash-bound) root fingerprint. Recomputable
/// from a checkpoint's `RunMeta`, which is how a resumed run's trace
/// links back to its interrupted predecessor (`prev_run`).
pub(crate) fn run_id(config: &CheckConfig, root_fp: u128) -> u64 {
    config_hash(config) ^ fold_fp(root_fp)
}

/// `config` with its checkpoint policy stripped, for the parallel
/// engines' deterministic sequential reruns: a rerun reproduces a
/// violation/limit/stuck verdict bit-identically, and must not be cut
/// short by a `stop_after_transitions`/interrupt trigger re-firing on
/// its restarted transition count.
pub(crate) fn without_checkpoint(config: &CheckConfig) -> CheckConfig {
    CheckConfig {
        checkpoint: None,
        ..config.clone()
    }
}

/// Write `snap` to the policy's path, retrying transient I/O failures
/// with exponential backoff (3 attempts: immediately, +10ms, +50ms).
/// Returns the path on success; on final failure emits a
/// `checkpoint_failed` event and returns `None` — the run's verdict
/// still stands, only the resume artifact is lost.
pub(crate) fn write_checkpoint(
    obs: &Recorder,
    policy: &CheckpointPolicy,
    snap: &Snapshot,
) -> Option<PathBuf> {
    let mut tctx = obs.trace_ctx();
    let span = tctx.begin();
    let out = write_checkpoint_attempts(obs, policy, snap);
    if tctx.enabled() {
        tctx.end(
            span,
            "checkpoint",
            obs.trace_root(),
            &[
                (
                    "run",
                    ftobs::J::U(snap.meta.config_hash ^ fold_fp(snap.meta.program_hash)),
                ),
                ("ok", ftobs::J::B(out.is_some())),
                ("forks", ftobs::J::U(snap.forks.len() as u64)),
                ("states", ftobs::J::U(snap.base.states)),
            ],
        );
    }
    out
}

fn write_checkpoint_attempts(
    obs: &Recorder,
    policy: &CheckpointPolicy,
    snap: &Snapshot,
) -> Option<PathBuf> {
    let mut delay = Duration::from_millis(10);
    for attempt in 1..=3u32 {
        match snap.write_atomic(&policy.path) {
            Ok(bytes) => {
                if obs.is_enabled() {
                    obs.incr(Metric::CheckpointWritten);
                    obs.add(Metric::CheckpointBytes, bytes);
                    obs.event(
                        "checkpoint",
                        &[
                            ("path", ftobs::J::s(policy.path.display().to_string())),
                            ("bytes", ftobs::J::U(bytes)),
                            ("forks", ftobs::J::U(snap.forks.len() as u64)),
                            ("states", ftobs::J::U(snap.base.states)),
                        ],
                    );
                }
                return Some(policy.path.clone());
            }
            Err(e) if attempt < 3 => {
                if obs.is_enabled() {
                    obs.event(
                        "checkpoint_retry",
                        &[
                            ("attempt", ftobs::J::U(u64::from(attempt))),
                            ("error", ftobs::J::s(e.to_string())),
                        ],
                    );
                }
                std::thread::sleep(delay);
                delay *= 5;
            }
            Err(e) => {
                if obs.is_enabled() {
                    obs.event(
                        "checkpoint_failed",
                        &[
                            ("path", ftobs::J::s(policy.path.display().to_string())),
                            ("error", ftobs::J::s(e.to_string())),
                        ],
                    );
                }
            }
        }
    }
    None
}

/// Exhaustively explore every schedule of `initial` (process interleavings
/// *and* commit orders) and check the configured properties.
///
/// With `max_crashes > 0` the root machine is cloned with crash injection
/// enabled, so every engine also enumerates [`wbmem::SchedElem::crash`]
/// steps — schedules where processes crash (losing or draining their
/// buffers per [`CheckConfig::crash_semantics`]) and restart at their
/// recovery entry.
///
/// The state space must be finite (true for the one-shot lock/object
/// programs in `simlocks`: tickets are bounded by `n` and every process
/// returns once; crashes are bounded by the per-process budget). All
/// engines explore depth-first over a fingerprint visited set and return
/// identical verdicts and statistics (see [`Engine`]); counterexamples are
/// replayed from the initial machine to render them. The only exception is
/// a wall-clock [`CheckConfig::budget`], whose expiry point is inherently
/// timing-dependent.
#[must_use]
pub fn check<P: Process>(initial: &Machine<P>, config: &CheckConfig) -> Verdict {
    let start = Instant::now();
    let deadline = config.budget.map(|b| start + b);
    let crash_root;
    let root = if config.max_crashes > 0 {
        let mut m = initial.clone();
        m.set_crash_bound(config.crash_semantics, config.max_crashes);
        crash_root = m;
        &crash_root
    } else {
        initial
    };
    // Causal trace: one `engine` span per dispatch, parented under
    // whatever enclosing span set the recorder's root (a model sweep, a
    // resume, nothing). Engine-internal spans nest under it via that
    // same root while the dispatch runs.
    let mut tctx = config.recorder.trace_ctx();
    let espan = tctx.begin();
    let span_parent = config.recorder.trace_root();
    let run = if tctx.enabled() {
        config.recorder.set_trace_root(espan.id);
        run_id(config, fingerprint(root))
    } else {
        0
    };
    let mut verdict = match config.engine {
        Engine::CloneDfs => check_clone_dfs(root, config, deadline),
        Engine::Undo => check_undo(root, config, deadline),
        Engine::Parallel { threads } => check_parallel(root, config, threads, deadline),
        Engine::Dpor { reorder_bound } => {
            crate::dpor::check_dpor(root, config, reorder_bound, deadline)
        }
        Engine::ParallelDpor {
            threads,
            reorder_bound,
        } => crate::pardpor::check_pardpor(root, config, threads, reorder_bound, deadline, None),
    };
    verdict.stats_mut().elapsed = start.elapsed();
    if tctx.enabled() {
        config.recorder.set_trace_root(span_parent);
        tctx.end(
            espan,
            "engine",
            span_parent,
            &[
                ("run", ftobs::J::U(run)),
                ("engine", ftobs::J::s(config.engine.label())),
                ("verdict", ftobs::J::s(verdict.label())),
                ("states", ftobs::J::U(verdict.stats().states as u64)),
            ],
        );
        tctx.flush();
    }
    if config.recorder.is_enabled() {
        verdict.stats_mut().metrics = config.recorder.snapshot();
        config.recorder.emit_snapshot(&[
            ("engine", ftobs::J::s(config.engine.label())),
            ("verdict", ftobs::J::s(verdict.label())),
            (
                "elapsed_ms",
                ftobs::J::U(start.elapsed().as_millis() as u64),
            ),
        ]);
        config.recorder.flush();
    }
    verdict
}

/// The original engine: clone the machine at every transition. O(machine)
/// per edge; kept as the differential oracle for the undo engine.
fn check_clone_dfs<P: Process>(
    initial: &Machine<P>,
    config: &CheckConfig,
    deadline: Option<Instant>,
) -> Verdict {
    let obs = &config.recorder;
    // Batches the per-edge counters; flushed into the recorder on every
    // exit path by its Drop impl.
    let mut tally = obs.tally();
    let mut est = TreeEstimator::new();
    est.begin_task();
    let mut visited: HashSet<u128> = HashSet::new();
    let mut stats = Stats::default();
    let mut index = SearchIndex::default();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut terminal: Vec<u32> = Vec::new();

    let root_fp = fingerprint(initial);
    let Some((root_id, _)) = index.id_of(root_fp, None) else {
        return Verdict::Error(stats, CheckError::TooManyStates);
    };
    visited.insert(root_fp);
    stats.states = 1;
    tally.on_state(0);

    // Depth-first exploration; the stack holds (machine, its id, remaining
    // choices).
    let mut stack: Vec<(Machine<P>, u32, Vec<SchedElem>)> = Vec::new();

    // Check the initial state itself.
    if config.check_mutex && in_cs_count(initial) > 1 {
        return Verdict::MutexViolation(stats, render(initial, &[]));
    }
    if violates_invariant(config, initial) {
        return Verdict::InvariantViolation(stats, render(initial, &[]));
    }
    if initial.all_done() {
        terminal.push(root_id);
        stats.terminal_states = 1;
        tally.terminal_state();
    }
    // The working clone carries the recorder; `initial` itself stays
    // unrecorded so counterexample replays do not pollute the metrics.
    let mut root_m = initial.clone();
    root_m.set_recorder(obs.clone());
    let root_choices = initial.choices();
    est.push(root_choices.len());
    stack.push((root_m, root_id, root_choices));

    let mut iters = 0usize;
    while let Some((m, id, mut choices)) = stack.pop() {
        iters += 1;
        if iters & DEADLINE_POLL_MASK == 0 {
            let estimate = est.estimate(stats.states as u64);
            if poll_observe(
                obs,
                &stats,
                stack.len() + 1,
                visited.len(),
                config.budget,
                deadline,
                estimate,
            ) {
                return Verdict::Inconclusive(
                    stats,
                    Coverage {
                        frontier: stack.len() + 1,
                        ..Coverage::default()
                    }
                    .with_estimate(estimate),
                );
            }
        }
        let Some(elem) = choices.pop() else {
            est.pop();
            continue;
        };
        // Put the remainder back before descending.
        let mut child = m.clone();
        stack.push((m, id, choices));

        if matches!(child.step(elem), StepOutcome::NoOp) {
            tally.noop_step();
            est.leaf();
            continue;
        }
        stats.transitions += 1;
        tally.on_transition();
        let fp = fingerprint(&child);
        let Some((child_id, fresh)) = index.id_of(fp, Some((id, elem))) else {
            return Verdict::Error(stats, CheckError::TooManyStates);
        };
        if config.check_termination {
            edges.push((id, child_id));
        }
        if !fresh || !visited.insert(fp) {
            tally.dedup_hit();
            est.leaf();
            continue;
        }
        stats.states += 1;
        tally.on_state(stack.len() as u64);
        if stats.states > config.max_states {
            return Verdict::StateLimit(stats);
        }

        if config.check_mutex && in_cs_count(&child) > 1 {
            return Verdict::MutexViolation(stats, render(initial, &index.path_to(child_id)));
        }
        if violates_invariant(config, &child) {
            return Verdict::InvariantViolation(stats, render(initial, &index.path_to(child_id)));
        }
        if child.all_done() {
            stats.terminal_states += 1;
            terminal.push(child_id);
            tally.terminal_state();
            est.leaf();
            if config.check_permutation && !returns_are_permutation(&child) {
                return Verdict::PermutationViolation(
                    stats,
                    render(initial, &index.path_to(child_id)),
                );
            }
            continue; // no choices from a terminal state
        }

        let child_choices = child.choices();
        debug_assert!(
            !child_choices.is_empty(),
            "non-terminal state has no choices"
        );
        est.push(child_choices.len());
        stack.push((child, child_id, child_choices));
    }

    obs.gauge_set(Gauge::DedupOccupancy, visited.len() as u64);
    if config.check_termination {
        if let Some(stuck) = find_stuck(index.len(), &edges, &terminal) {
            return Verdict::NoTermination(stats, render(initial, &index.path_to(stuck)));
        }
    }

    Verdict::Ok(stats)
}

/// One frame of the undo-engine's explicit DFS stack. Its choices live in
/// `arena[start..]` at push time and are consumed from the back (`next`
/// counts down to `start`), matching the clone engine's `Vec::pop` order so
/// both engines visit states in the same order.
struct Frame<P> {
    id: u32,
    start: usize,
    next: usize,
    /// How to rewind the machine to this frame's parent (None at the root).
    token: Option<UndoToken<P>>,
}

/// Serialize the undo engine's live DFS into a durable [`Snapshot`]: one
/// [`ForkPoint`] per frame with unconsumed choices (frame `i`'s state is
/// reached by replaying `path[..i]`), the visited set, and the id-keyed
/// termination graph re-keyed by fingerprint. Fork points carry empty
/// sleep/taken sets and an unlimited reorder budget — the exhaustive
/// engine never prunes, and the resumed continuation must not either.
#[allow(clippy::too_many_arguments)]
fn undo_snapshot<P: Process>(
    config: &CheckConfig,
    root_fp: u128,
    stats: &Stats,
    metrics: MetricsSnapshot,
    frames: &[Frame<P>],
    arena: &[SchedElem],
    path: &[SchedElem],
    visited: &HashSet<u128>,
    index: &SearchIndex,
    edges: &[(u32, u32)],
    terminal: &[u32],
) -> Snapshot {
    let forks = frames
        .iter()
        .enumerate()
        .filter(|(_, f)| f.next > f.start)
        .map(|(i, f)| ForkPoint {
            path: path[..i].to_vec(),
            sleep: SleepSet::default(),
            taken: Vec::new(),
            // The undo engine consumes `arena[start..next]` back to
            // front; a resumed continuation consumes front to back, so
            // the slice is reversed to preserve exploration order.
            choices: arena[f.start..f.next].iter().rev().copied().collect(),
            excluded: Vec::new(),
            remaining: u32::MAX,
            span: config.recorder.trace_root().0,
        })
        .collect();
    let mut vis: Vec<u128> = visited.iter().copied().collect();
    vis.sort_unstable();
    Snapshot {
        meta: RunMeta {
            engine: config.engine.label().to_string(),
            config_hash: config_hash(config),
            program_hash: root_fp,
        },
        base: BaseCounts {
            states: stats.states as u64,
            transitions: stats.transitions as u64,
            terminal_states: stats.terminal_states as u64,
            sleep_hits: 0,
        },
        metrics,
        forks,
        visited: vis,
        edges: edges
            .iter()
            .map(|&(a, b)| (index.fp_of(a), index.fp_of(b)))
            .collect(),
        terminals: terminal.iter().map(|&t| index.fp_of(t)).collect(),
    }
}

/// The default engine: a single machine stepped forward with
/// [`Machine::step_recorded`] and rewound with [`Machine::undo`] on
/// backtrack. Traversal order, statistics, verdicts, and counterexamples
/// are identical to [`check_clone_dfs`]; the work per edge drops from
/// O(machine clone) to O(step footprint), and the choice arena makes the
/// hot loop allocation-free in steady state.
fn check_undo<P: Process>(
    initial: &Machine<P>,
    config: &CheckConfig,
    deadline: Option<Instant>,
) -> Verdict {
    let obs = &config.recorder;
    // Batches the per-edge counters; flushed into the recorder on every
    // exit path by its Drop impl.
    let mut tally = obs.tally();
    let mut est = TreeEstimator::new();
    est.begin_task();
    let mut visited: HashSet<u128> = HashSet::new();
    let mut stats = Stats::default();
    let mut index = SearchIndex::default();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut terminal: Vec<u32> = Vec::new();

    let root_fp = fingerprint(initial);
    let Some((root_id, _)) = index.id_of(root_fp, None) else {
        return Verdict::Error(stats, CheckError::TooManyStates);
    };
    visited.insert(root_fp);
    stats.states = 1;
    tally.on_state(0);

    if config.check_mutex && in_cs_count(initial) > 1 {
        return Verdict::MutexViolation(stats, render(initial, &[]));
    }
    if violates_invariant(config, initial) {
        return Verdict::InvariantViolation(stats, render(initial, &[]));
    }
    if initial.all_done() {
        terminal.push(root_id);
        stats.terminal_states = 1;
        tally.terminal_state();
    }

    // The one clone of the run (plus one per rendered counterexample).
    // It carries the recorder; `initial` stays unrecorded so replays do
    // not pollute the metrics.
    let mut m = initial.clone();
    m.set_recorder(obs.clone());
    let mut arena: Vec<SchedElem> = Vec::new();
    let mut scratch: Vec<SchedElem> = Vec::new();
    let mut frames: Vec<Frame<P>> = Vec::new();
    let policy = config.checkpoint.as_ref();
    let mut periodic = policy.map(PeriodicCheckpoint::new);
    // The schedule from the root to the current top frame's state
    // (`path[..i]` reaches frame `i`); maintained to serialize fork
    // points, and cheap enough to keep unconditionally.
    let mut path: Vec<SchedElem> = Vec::new();

    m.choices_into(&mut scratch);
    arena.extend_from_slice(&scratch);
    est.push(scratch.len());
    frames.push(Frame {
        id: root_id,
        start: 0,
        next: arena.len(),
        token: None,
    });

    let mut iters = 0usize;
    while !frames.is_empty() {
        iters += 1;
        if let Some(pol) = policy {
            // Checked every iteration (not at poll granularity) so the
            // deterministic stop_after cut is exact.
            if pol.stop_requested(stats.transitions as u64) {
                tally.flush();
                let snap = undo_snapshot(
                    config,
                    root_fp,
                    &stats,
                    obs.snapshot(),
                    &frames,
                    &arena,
                    &path,
                    &visited,
                    &index,
                    &edges,
                    &terminal,
                );
                let frontier = frames.len();
                return Verdict::Inconclusive(
                    stats,
                    Coverage {
                        frontier,
                        checkpoint: write_checkpoint(obs, pol, &snap),
                        ..Coverage::default()
                    }
                    .with_estimate(est.estimate(stats.states as u64)),
                );
            }
        }
        if iters & DEADLINE_POLL_MASK == 0 {
            let over_occupancy = policy
                .and_then(|p| p.max_occupancy)
                .is_some_and(|cap| visited.len() >= cap);
            let estimate = est.estimate(stats.states as u64);
            if poll_observe(
                obs,
                &stats,
                frames.len(),
                visited.len(),
                config.budget,
                deadline,
                estimate,
            ) || over_occupancy
            {
                let checkpoint = policy.and_then(|pol| {
                    tally.flush();
                    let snap = undo_snapshot(
                        config,
                        root_fp,
                        &stats,
                        obs.snapshot(),
                        &frames,
                        &arena,
                        &path,
                        &visited,
                        &index,
                        &edges,
                        &terminal,
                    );
                    write_checkpoint(obs, pol, &snap)
                });
                return Verdict::Inconclusive(
                    stats,
                    Coverage {
                        frontier: frames.len(),
                        checkpoint,
                        ..Coverage::default()
                    }
                    .with_estimate(estimate),
                );
            }
            if let (Some(pol), Some(per)) = (policy, periodic.as_mut()) {
                if per.due(pol, stats.transitions as u64) {
                    tally.flush();
                    let snap = undo_snapshot(
                        config,
                        root_fp,
                        &stats,
                        obs.snapshot(),
                        &frames,
                        &arena,
                        &path,
                        &visited,
                        &index,
                        &edges,
                        &terminal,
                    );
                    let _ = write_checkpoint(obs, pol, &snap);
                }
            }
        }
        let Some(top) = frames.last_mut() else { break };
        if top.next == top.start {
            // Frame exhausted: rewind to the parent state.
            if let Some(frame) = frames.pop() {
                est.pop();
                arena.truncate(frame.start);
                if let Some(token) = frame.token {
                    m.undo(token);
                    path.pop();
                }
            }
            continue;
        }
        top.next -= 1;
        let elem = arena[top.next];
        let parent_id = top.id;

        let (out, token) = m.step_recorded(elem);
        if matches!(out, StepOutcome::NoOp) {
            tally.noop_step();
            est.leaf();
            m.undo(token);
            continue;
        }
        stats.transitions += 1;
        tally.on_transition();
        let fp = fingerprint(&m);
        let Some((child_id, fresh)) = index.id_of(fp, Some((parent_id, elem))) else {
            return Verdict::Error(stats, CheckError::TooManyStates);
        };
        if config.check_termination {
            edges.push((parent_id, child_id));
        }
        if !fresh || !visited.insert(fp) {
            tally.dedup_hit();
            est.leaf();
            m.undo(token);
            continue;
        }
        stats.states += 1;
        tally.on_state(frames.len() as u64);
        if stats.states > config.max_states {
            return Verdict::StateLimit(stats);
        }

        if config.check_mutex && in_cs_count(&m) > 1 {
            return Verdict::MutexViolation(stats, render(initial, &index.path_to(child_id)));
        }
        if violates_invariant(config, &m) {
            return Verdict::InvariantViolation(stats, render(initial, &index.path_to(child_id)));
        }
        if m.all_done() {
            stats.terminal_states += 1;
            terminal.push(child_id);
            tally.terminal_state();
            est.leaf();
            if config.check_permutation && !returns_are_permutation(&m) {
                return Verdict::PermutationViolation(
                    stats,
                    render(initial, &index.path_to(child_id)),
                );
            }
            m.undo(token);
            continue; // no choices from a terminal state
        }

        let start = arena.len();
        m.choices_into(&mut scratch);
        debug_assert!(!scratch.is_empty(), "non-terminal state has no choices");
        arena.extend_from_slice(&scratch);
        est.push(scratch.len());
        frames.push(Frame {
            id: child_id,
            start,
            next: arena.len(),
            token: Some(token),
        });
        path.push(elem);
    }

    obs.gauge_set(Gauge::DedupOccupancy, visited.len() as u64);
    if config.check_termination {
        if let Some(stuck) = find_stuck(index.len(), &edges, &terminal) {
            return Verdict::NoTermination(stats, render(initial, &index.path_to(stuck)));
        }
    }

    Verdict::Ok(stats)
}

/// What one parallel worker reports back.
#[derive(Default)]
struct WorkerReport {
    transitions: usize,
    /// Fingerprints of the all-done states this worker first visited.
    terminal_fps: Vec<u128>,
    /// `(parent fp, child fp)` edges from every state this worker expanded
    /// (only collected when the termination check is on).
    edges: Vec<(u128, u128)>,
    /// Worker saw a property violation (details come from the sequential
    /// rerun).
    violated: bool,
    /// Open DFS frames when the worker stopped on budget expiry (0 on a
    /// completed sweep).
    frontier: usize,
}

/// The parallel engine: split the root's outgoing transitions round-robin
/// across `threads` workers, each running an undo-log DFS gated on a shared
/// lock-free fingerprint table ([`por::FpTable`]), so every reachable state
/// is expanded by exactly one worker. A completed sweep therefore reproduces the sequential `Stats`
/// exactly (states = visited-set inserts, transitions = out-edges of
/// expanded states, terminals counted at first insert). Any violation,
/// state-limit overrun, or stuck state cancels the sweep and defers to the
/// sequential undo engine so verdicts — counterexamples included — stay
/// bit-identical to the sequential engines.
fn check_parallel<P: Process>(
    initial: &Machine<P>,
    config: &CheckConfig,
    threads: usize,
    deadline: Option<Instant>,
) -> Verdict {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    };
    if threads <= 1 {
        return check_undo(initial, config, deadline);
    }

    // Root-state checks mirror the sequential engines; any violation is
    // reproduced sequentially for an identical verdict. The invariant is a
    // user-supplied function, so even the root evaluation is guarded.
    if config.check_mutex && in_cs_count(initial) > 1 {
        return check_undo(initial, config, deadline);
    }
    match catch_unwind(AssertUnwindSafe(|| violates_invariant(config, initial))) {
        Ok(false) => {}
        Ok(true) => return check_undo(initial, config, deadline),
        Err(payload) => {
            return Verdict::Error(
                Stats::default(),
                CheckError::Panic(format!(
                    "root invariant: {}",
                    panic_message(payload.as_ref())
                )),
            )
        }
    }

    let visited = por::FpTable::new();
    let state_count = AtomicUsize::new(1); // the root
    let cancel = AtomicBool::new(false);
    let budget_hit = AtomicBool::new(false);

    let root_fp = fingerprint(initial);
    visited.insert(root_fp);
    config.recorder.on_state(0);
    if initial.all_done() {
        config.recorder.incr(Metric::TerminalStates);
    }

    let root_choices = initial.choices();
    // Each worker runs under `catch_unwind`: a panicking property closure
    // (or a bug) must not abort the whole checker. On panic the worker
    // cancels its peers; the caller then falls back to a deterministic
    // sequential rerun, itself guarded.
    let results: Vec<Result<WorkerReport, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let assigned: Vec<SchedElem> = root_choices
                    .iter()
                    .copied()
                    .skip(w)
                    .step_by(threads)
                    .collect();
                let visited = &visited;
                let state_count = &state_count;
                let cancel = &cancel;
                let budget_hit = &budget_hit;
                scope.spawn(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        parallel_worker(
                            initial,
                            config,
                            root_fp,
                            assigned,
                            visited,
                            state_count,
                            cancel,
                            budget_hit,
                            deadline,
                        )
                    }));
                    if out.is_err() {
                        cancel.store(true, Ordering::SeqCst);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(Ok(report)) => Ok(report),
                Ok(Err(payload)) => Err(panic_message(payload.as_ref())),
                Err(payload) => Err(panic_message(payload.as_ref())),
            })
            .collect()
    });

    if let Some(msg) = results.iter().find_map(|r| r.as_ref().err().cloned()) {
        // A worker panicked. Rerun sequentially (deterministic, guarded);
        // if the panic is deterministic too, surface it as an error
        // verdict instead of aborting the process. The partial sweep's
        // metrics are dropped first so the rerun's counts stand alone,
        // and the checkpoint policy is stripped so a stop trigger cannot
        // cut the rerun short of the verdict it exists to reproduce.
        config.recorder.reset_counts();
        let rerun = without_checkpoint(config);
        return match catch_unwind(AssertUnwindSafe(|| check_undo(initial, &rerun, deadline))) {
            Ok(verdict) => verdict,
            Err(payload) => Verdict::Error(
                Stats::default(),
                CheckError::Panic(format!(
                    "worker: {msg}; sequential rerun: {}",
                    panic_message(payload.as_ref())
                )),
            ),
        };
    }
    let reports: Vec<WorkerReport> = results.into_iter().filter_map(Result::ok).collect();

    let stats = Stats {
        states: state_count.load(Ordering::SeqCst),
        transitions: reports.iter().map(|r| r.transitions).sum(),
        terminal_states: reports.iter().map(|r| r.terminal_fps.len()).sum::<usize>()
            + usize::from(initial.all_done()),
        ..Stats::default()
    };

    let limit_hit = state_count.load(Ordering::SeqCst) > config.max_states;
    if limit_hit || reports.iter().any(|r| r.violated) {
        // The sweep stopped early; reproduce the exact sequential verdict
        // (still honoring the remaining budget). Drop the partial sweep's
        // metrics so the rerun's counts stand alone — bit-identical to a
        // direct sequential run — and strip the checkpoint policy so a
        // stop trigger cannot cut the rerun short.
        config.recorder.reset_counts();
        return check_undo(initial, &without_checkpoint(config), deadline);
    }
    if budget_hit.load(Ordering::SeqCst) || cancel.load(Ordering::SeqCst) {
        return Verdict::Inconclusive(
            stats,
            Coverage {
                frontier: reports.iter().map(|r| r.frontier).sum(),
                ..Coverage::default()
            },
        );
    }

    if config.check_termination {
        // Merge the per-worker fingerprint graphs and run the same reverse
        // reachability as the sequential engines. Ids are arbitrary here —
        // only the existence of a stuck state matters; its identity (and
        // counterexample) comes from the sequential rerun.
        let mut ids: HashMap<u128, u32> = HashMap::new();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut terminal: Vec<u32> = Vec::new();
        let Some(root) = merge_id(&mut ids, root_fp) else {
            return Verdict::Error(stats, CheckError::TooManyStates);
        };
        if initial.all_done() {
            terminal.push(root);
        }
        for report in &reports {
            for &(a, b) in &report.edges {
                match (merge_id(&mut ids, a), merge_id(&mut ids, b)) {
                    (Some(ia), Some(ib)) => edges.push((ia, ib)),
                    _ => return Verdict::Error(stats, CheckError::TooManyStates),
                }
            }
            for &t in &report.terminal_fps {
                let Some(it) = merge_id(&mut ids, t) else {
                    return Verdict::Error(stats, CheckError::TooManyStates);
                };
                terminal.push(it);
            }
        }
        if find_stuck(ids.len(), &edges, &terminal).is_some() {
            config.recorder.reset_counts();
            return check_undo(initial, &without_checkpoint(config), deadline);
        }
    }

    if config.recorder.is_enabled() {
        config
            .recorder
            .add(Metric::FpContention, visited.contention());
    }
    config
        .recorder
        .gauge_set(Gauge::DedupOccupancy, visited.len() as u64);
    Verdict::Ok(stats)
}

/// Dense id for `fp` in the parallel engines' merge graphs; `None` once
/// the `u32` id space is exhausted.
pub(crate) fn merge_id(ids: &mut HashMap<u128, u32>, fp: u128) -> Option<u32> {
    if let Some(&id) = ids.get(&fp) {
        return Some(id);
    }
    let id = u32::try_from(ids.len()).ok()?;
    ids.insert(fp, id);
    Some(id)
}

/// One parallel worker: an undo-log DFS over the subtrees rooted at its
/// `assigned` subset of the root's outgoing transitions, expanding only the
/// states whose fingerprint it was first to insert into the shared visited
/// set. Aborts promptly (returning a partial report, which the caller
/// discards) once `cancel` is raised.
#[allow(clippy::too_many_arguments)]
fn parallel_worker<P: Process>(
    initial: &Machine<P>,
    config: &CheckConfig,
    root_fp: u128,
    assigned: Vec<SchedElem>,
    visited: &por::FpTable,
    state_count: &AtomicUsize,
    cancel: &AtomicBool,
    budget_hit: &AtomicBool,
    deadline: Option<Instant>,
) -> WorkerReport {
    let mut report = WorkerReport::default();
    if assigned.is_empty() {
        return report;
    }
    let obs = &config.recorder;
    // Worker-local batch of the per-edge counters; flushed into the shared
    // recorder when the worker returns (Drop), so a completed sweep's
    // totals still merge to the sequential run's.
    let mut tally = obs.tally();

    /// A frame of the worker's DFS; like [`Frame`] but keyed by
    /// fingerprint (the global id space is only assembled at merge time).
    struct WFrame<P> {
        fp: u128,
        start: usize,
        next: usize,
        token: Option<UndoToken<P>>,
    }

    // All workers share the recorder; its counters are sharded, so the
    // merged totals equal a sequential run's over a completed sweep.
    let mut m = initial.clone();
    m.set_recorder(obs.clone());
    let mut arena: Vec<SchedElem> = assigned;
    let mut scratch: Vec<SchedElem> = Vec::new();
    let mut frames: Vec<WFrame<P>> = Vec::new();
    frames.push(WFrame {
        fp: root_fp,
        start: 0,
        next: arena.len(),
        token: None,
    });

    let mut steps_since_poll = 0usize;
    while let Some(top) = frames.last_mut() {
        if top.next == top.start {
            if let Some(frame) = frames.pop() {
                arena.truncate(frame.start);
                if let Some(token) = frame.token {
                    m.undo(token);
                }
            }
            continue;
        }
        top.next -= 1;
        let elem = arena[top.next];
        let parent_fp = top.fp;

        steps_since_poll += 1;
        if steps_since_poll >= 256 {
            steps_since_poll = 0;
            if cancel.load(Ordering::Relaxed) {
                report.frontier = frames.len();
                return report;
            }
            if obs.is_enabled() {
                obs.gauge_max(Gauge::MaxFrontier, frames.len() as u64);
                let now = Instant::now();
                let spent = match (config.budget, deadline) {
                    (Some(b), Some(d)) => Some(b.saturating_sub(d.saturating_duration_since(now))),
                    _ => None,
                };
                obs.maybe_heartbeat(&Progress {
                    states: state_count.load(Ordering::Relaxed) as u64,
                    transitions: report.transitions as u64,
                    frontier: frames.len() as u64,
                    budget: config.budget,
                    spent,
                    estimate: None,
                });
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                budget_hit.store(true, Ordering::SeqCst);
                cancel.store(true, Ordering::SeqCst);
                report.frontier = frames.len();
                return report;
            }
        }

        let (out, token) = m.step_recorded(elem);
        if matches!(out, StepOutcome::NoOp) {
            tally.noop_step();
            m.undo(token);
            continue;
        }
        report.transitions += 1;
        tally.on_transition();
        let fp = fingerprint(&m);
        if config.check_termination {
            report.edges.push((parent_fp, fp));
        }
        let fresh = visited.insert(fp);
        if !fresh {
            tally.dedup_hit();
            m.undo(token);
            continue;
        }
        tally.on_state(frames.len() as u64);
        let states = state_count.fetch_add(1, Ordering::SeqCst) + 1;
        if states > config.max_states {
            cancel.store(true, Ordering::SeqCst);
            return report;
        }

        if config.check_mutex && in_cs_count(&m) > 1 {
            report.violated = true;
            cancel.store(true, Ordering::SeqCst);
            return report;
        }
        if violates_invariant(config, &m) {
            report.violated = true;
            cancel.store(true, Ordering::SeqCst);
            return report;
        }
        if m.all_done() {
            report.terminal_fps.push(fp);
            tally.terminal_state();
            if config.check_permutation && !returns_are_permutation(&m) {
                report.violated = true;
                cancel.store(true, Ordering::SeqCst);
                return report;
            }
            m.undo(token);
            continue;
        }

        let start = arena.len();
        m.choices_into(&mut scratch);
        debug_assert!(!scratch.is_empty(), "non-terminal state has no choices");
        arena.extend_from_slice(&scratch);
        frames.push(WFrame {
            fp,
            start,
            next: arena.len(),
            token: Some(token),
        });
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use simlocks::{build_mutex, FenceMask, LockKind};
    use wbmem::MemoryModel;

    fn cfg() -> CheckConfig {
        CheckConfig::default()
    }

    #[test]
    fn fully_fenced_peterson_is_correct_under_all_models() {
        let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let v = check(&inst.machine(model), &cfg());
            assert!(v.is_ok(), "{model}: {}", v.label());
        }
    }

    #[test]
    fn single_fence_peterson_splits_tso_from_pso() {
        // The separation witness: fence only after the victim write.
        let mask = FenceMask::only(&[
            simlocks::peterson::SITE_VICTIM,
            simlocks::peterson::SITE_RELEASE,
        ]);
        let inst = build_mutex(LockKind::Peterson, 2, mask);

        let tso = check(&inst.machine(MemoryModel::Tso), &cfg());
        assert!(tso.is_ok(), "TSO should be safe: {}", tso.label());

        let pso = check(&inst.machine(MemoryModel::Pso), &cfg());
        match pso {
            Verdict::MutexViolation(_, cex) => {
                assert!(!cex.schedule.is_empty());
                assert!(cex.trace.contains("in-CS: [0, 1]"), "trace:\n{}", cex.trace);
            }
            other => panic!("PSO should violate mutex, got {}", other.label()),
        }
    }

    #[test]
    fn fenceless_peterson_fails_even_under_tso() {
        let mask = FenceMask::only(&[simlocks::peterson::SITE_RELEASE]);
        let inst = build_mutex(LockKind::Peterson, 2, mask);
        let v = check(&inst.machine(MemoryModel::Tso), &cfg());
        assert!(
            matches!(v, Verdict::MutexViolation(..)),
            "expected TSO violation, got {}",
            v.label()
        );
        // Under SC (no buffering at all) Peterson needs no fences.
        let v = check(&inst.machine(MemoryModel::Sc), &cfg());
        assert!(v.is_ok(), "SC: {}", v.label());
    }

    #[test]
    fn missing_release_fence_causes_livelock_not_mutex_failure() {
        // Without the release fence the flag reset can stay buffered
        // forever; mutual exclusion still holds but completion is lost for
        // some schedules... under our semantics buffered writes can always
        // still be committed later (commit choices remain available), so
        // termination actually survives. Verify mutex at least.
        let mask = FenceMask::only(&[
            simlocks::peterson::SITE_FLAG,
            simlocks::peterson::SITE_VICTIM,
        ]);
        let inst = build_mutex(LockKind::Peterson, 2, mask);
        let v = check(&inst.machine(MemoryModel::Pso), &cfg());
        assert!(
            !matches!(v, Verdict::MutexViolation(..)),
            "got {}",
            v.label()
        );
    }

    #[test]
    fn bakery_two_processes_fully_fenced_checks_out() {
        let inst = build_mutex(LockKind::Bakery, 2, FenceMask::ALL);
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            let v = check(&inst.machine(model), &cfg());
            assert!(v.is_ok(), "{model}: {}", v.label());
        }
    }

    #[test]
    fn papers_printed_bakery_listing_is_broken_even_under_sc() {
        // The paper's Algorithm 1 closes the doorway (C[i] := 0) before
        // publishing the ticket (T[i] := tmp). The checker finds the
        // resulting mutual-exclusion violation without any write
        // reordering at all.
        let inst = build_mutex(LockKind::BakeryPaperListing, 2, FenceMask::ALL);
        let v = check(&inst.machine(MemoryModel::Sc), &cfg());
        assert!(
            matches!(v, Verdict::MutexViolation(..)),
            "expected SC violation of the printed listing, got {}",
            v.label()
        );
    }

    #[test]
    fn stats_are_populated() {
        let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
        let v = check(&inst.machine(MemoryModel::Pso), &cfg());
        let s = v.stats();
        assert!(s.states > 10);
        assert!(s.transitions >= s.states - 1);
        assert!(s.terminal_states >= 1);
        assert!(s.elapsed > Duration::ZERO, "elapsed must be stamped");
        assert!(s.states_per_sec() > 0.0);
    }

    #[test]
    fn counterexamples_replay_deterministically() {
        let mask = FenceMask::only(&[simlocks::peterson::SITE_VICTIM]);
        let inst = build_mutex(LockKind::Peterson, 2, mask);
        let run = || match check(&inst.machine(MemoryModel::Pso), &cfg()) {
            Verdict::MutexViolation(_, cex) => cex,
            other => panic!("expected violation, got {}", other.label()),
        };
        let (a, b) = (run(), run());
        assert_eq!(a.schedule, b.schedule, "exploration is deterministic");
        assert_eq!(a.trace, b.trace);

        // Replaying the schedule on a fresh machine reproduces the
        // double-CS state.
        let mut m = inst.machine(MemoryModel::Pso);
        for &e in &a.schedule {
            m.step(e);
        }
        let in_cs = (0..2)
            .filter(|&i| m.annotation(wbmem::ProcId::from(i)) == simlocks::ANNOT_IN_CS)
            .count();
        assert_eq!(in_cs, 2, "replay must reach the violation");
    }

    #[test]
    fn strong_primitive_and_filter_locks_check_out() {
        for (kind, n) in [
            (LockKind::Ttas, 2usize),
            (LockKind::Mcs, 2),
            (LockKind::Filter, 2),
        ] {
            let inst = build_mutex(kind, n, FenceMask::ALL);
            for model in [MemoryModel::Tso, MemoryModel::Pso] {
                let v = check(&inst.machine(model), &cfg());
                assert!(v.is_ok(), "{kind} under {model}: {}", v.label());
            }
        }
    }

    #[test]
    fn permutation_check_accepts_correct_counters() {
        let inst = simlocks::build_ordering(LockKind::Ttas, 2, simlocks::ObjectKind::Counter);
        let config = CheckConfig {
            check_permutation: true,
            check_termination: false,
            ..CheckConfig::default()
        };
        let v = check(&inst.machine(MemoryModel::Pso), &config);
        assert!(v.is_ok(), "{}", v.label());
    }

    #[test]
    fn state_limit_is_reported() {
        let inst = build_mutex(LockKind::Bakery, 3, FenceMask::ALL);
        let small = CheckConfig {
            max_states: 50,
            ..CheckConfig::default()
        };
        let v = check(&inst.machine(MemoryModel::Pso), &small);
        assert!(matches!(v, Verdict::StateLimit(_)), "got {}", v.label());
    }

    // --- engine equivalence ---

    fn engines() -> [Engine; 3] {
        [
            Engine::CloneDfs,
            Engine::Undo,
            Engine::Parallel { threads: 4 },
        ]
    }

    #[test]
    fn engines_agree_on_a_correct_lock() {
        let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
        let verdicts: Vec<Verdict> = engines()
            .iter()
            .map(|&engine| check(&inst.machine(MemoryModel::Pso), &cfg().with_engine(engine)))
            .collect();
        for v in &verdicts {
            assert!(v.is_ok(), "{}", v.label());
        }
        assert_eq!(verdicts[0].stats(), verdicts[1].stats(), "clone vs undo");
        assert_eq!(
            verdicts[0].stats(),
            verdicts[2].stats(),
            "clone vs parallel"
        );
    }

    #[test]
    fn engines_agree_on_a_violating_lock() {
        let mask = FenceMask::only(&[simlocks::peterson::SITE_VICTIM]);
        let inst = build_mutex(LockKind::Peterson, 2, mask);
        let verdicts: Vec<Verdict> = engines()
            .iter()
            .map(|&engine| check(&inst.machine(MemoryModel::Pso), &cfg().with_engine(engine)))
            .collect();
        for v in &verdicts {
            assert!(matches!(v, Verdict::MutexViolation(..)), "{}", v.label());
        }
        assert_eq!(verdicts[0].stats(), verdicts[1].stats(), "clone vs undo");
        assert_eq!(
            verdicts[0].stats(),
            verdicts[2].stats(),
            "clone vs parallel"
        );
        let cex0 = verdicts[0].counterexample().expect("cex");
        let cex1 = verdicts[1].counterexample().expect("cex");
        let cex2 = verdicts[2].counterexample().expect("cex");
        assert_eq!(cex0.schedule, cex1.schedule);
        assert_eq!(cex0.schedule, cex2.schedule);
        assert_eq!(cex0.trace, cex1.trace);
    }

    #[test]
    fn engines_agree_on_state_limit() {
        let inst = build_mutex(LockKind::Bakery, 3, FenceMask::ALL);
        for engine in engines() {
            let small = CheckConfig {
                max_states: 50,
                ..CheckConfig::default()
            }
            .with_engine(engine);
            let v = check(&inst.machine(MemoryModel::Pso), &small);
            assert!(
                matches!(v, Verdict::StateLimit(_)),
                "{engine:?}: {}",
                v.label()
            );
        }
    }

    #[test]
    fn parallel_zero_threads_means_auto() {
        let inst = build_mutex(LockKind::Ttas, 2, FenceMask::ALL);
        let config = cfg().with_engine(Engine::Parallel { threads: 0 });
        let v = check(&inst.machine(MemoryModel::Tso), &config);
        assert!(v.is_ok(), "{}", v.label());
    }

    // --- crash injection ---

    fn crash_cfg(max_crashes: u32) -> CheckConfig {
        CheckConfig {
            check_termination: false,
            max_states: 200_000,
            ..CheckConfig::default()
        }
        .with_crashes(CrashSemantics::DiscardBuffer, max_crashes)
    }

    #[test]
    fn crash_schedules_grow_the_state_space() {
        let inst = build_mutex(LockKind::RecoverableTtas, 2, FenceMask::ALL);
        let plain = check(&inst.machine(MemoryModel::Pso), &crash_cfg(0));
        let crashy = check(&inst.machine(MemoryModel::Pso), &crash_cfg(1));
        assert!(
            crashy.stats().states > plain.stats().states,
            "crash choices must add states: {} vs {}",
            crashy.stats().states,
            plain.stats().states
        );
    }

    #[test]
    fn recoverable_ttas_keeps_mutex_and_recovery_under_crashes() {
        let inst = build_mutex(LockKind::RecoverableTtas, 2, FenceMask::ALL);
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            let mut config = crash_cfg(2);
            config.check_termination = true;
            let v = check(&inst.machine(model), &config);
            assert!(
                v.is_ok(),
                "r-ttas under {model} with crashes: {}",
                v.label()
            );
        }
    }

    #[test]
    fn naive_ttas_deadlocks_under_crashes() {
        // A crash can discard the buffered release write (or strand a held
        // lock word), after which nobody finishes: NO-TERMINATION, with the
        // crash step visible in the counterexample trace.
        let inst = build_mutex(LockKind::Ttas, 2, FenceMask::ALL);
        let mut config = crash_cfg(1);
        config.check_termination = true;
        let v = check(&inst.machine(MemoryModel::Pso), &config);
        match v {
            Verdict::NoTermination(_, cex) => {
                assert!(cex.trace.contains("crash"), "trace:\n{}", cex.trace);
            }
            other => panic!("expected NO-TERMINATION, got {}", other.label()),
        }
    }

    #[test]
    fn engines_agree_on_crash_workloads() {
        for (kind, max_crashes) in [(LockKind::RecoverableTtas, 1), (LockKind::Ttas, 1)] {
            let inst = build_mutex(kind, 2, FenceMask::ALL);
            let verdicts: Vec<Verdict> = engines()
                .iter()
                .map(|&engine| {
                    check(
                        &inst.machine(MemoryModel::Pso),
                        &crash_cfg(max_crashes).with_engine(engine),
                    )
                })
                .collect();
            assert_eq!(
                verdicts[0].stats(),
                verdicts[1].stats(),
                "{kind}: clone vs undo"
            );
            assert_eq!(
                verdicts[0].stats(),
                verdicts[2].stats(),
                "{kind}: clone vs parallel"
            );
            assert_eq!(verdicts[0].label(), verdicts[1].label());
            assert_eq!(verdicts[0].label(), verdicts[2].label());
        }
    }

    // --- budget ---

    #[test]
    fn zero_budget_returns_inconclusive_with_coverage() {
        let inst = build_mutex(LockKind::Bakery, 3, FenceMask::ALL);
        for engine in engines() {
            let config = cfg().with_engine(engine).with_budget(Duration::ZERO);
            let v = check(&inst.machine(MemoryModel::Pso), &config);
            match v {
                Verdict::Inconclusive(stats, coverage) => {
                    assert!(stats.states >= 1);
                    assert!(coverage.frontier >= 1, "{engine:?}: open frames expected");
                }
                other => panic!("{engine:?}: expected inconclusive, got {}", other.label()),
            }
        }
    }

    #[test]
    fn generous_budget_does_not_change_the_verdict() {
        let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
        let config = cfg().with_budget(Duration::from_secs(3600));
        let v = check(&inst.machine(MemoryModel::Pso), &config);
        assert!(v.is_ok(), "{}", v.label());
        assert_eq!(
            v.stats(),
            check(&inst.machine(MemoryModel::Pso), &cfg()).stats()
        );
    }

    // --- invariants and panic isolation ---

    #[test]
    fn invariant_violations_are_reported_with_counterexamples() {
        // "Nobody is ever in the critical section" is false for any working
        // lock, so the checker must find a counterexample — identically on
        // every engine.
        fn nobody_in_cs(annots: &[u64]) -> bool {
            annots.iter().all(|&a| a != simlocks::ANNOT_IN_CS)
        }
        let inst = build_mutex(LockKind::Ttas, 2, FenceMask::ALL);
        let verdicts: Vec<Verdict> = engines()
            .iter()
            .map(|&engine| {
                let config = cfg().with_engine(engine).with_invariant(nobody_in_cs);
                check(&inst.machine(MemoryModel::Pso), &config)
            })
            .collect();
        for v in &verdicts {
            assert!(
                matches!(v, Verdict::InvariantViolation(..)),
                "{}",
                v.label()
            );
        }
        assert_eq!(verdicts[0].stats(), verdicts[1].stats());
        assert_eq!(verdicts[0].stats(), verdicts[2].stats());
        let (c0, c2) = (
            verdicts[0].counterexample().expect("cex"),
            verdicts[2].counterexample().expect("cex"),
        );
        assert_eq!(c0.schedule, c2.schedule, "parallel defers to sequential");
    }

    #[test]
    fn panicking_invariant_yields_an_error_not_an_abort() {
        // Passes at the (CS-free) root so the workers actually spawn; the
        // first critical-section state then panics inside a worker.
        fn exploding(annots: &[u64]) -> bool {
            assert!(
                annots.iter().all(|&a| a != simlocks::ANNOT_IN_CS),
                "deliberate test panic"
            );
            true
        }
        let inst = build_mutex(LockKind::Ttas, 2, FenceMask::ALL);
        let config = cfg()
            .with_engine(Engine::Parallel { threads: 4 })
            .with_invariant(exploding);
        let v = check(&inst.machine(MemoryModel::Pso), &config);
        match &v {
            Verdict::Error(_, CheckError::Panic(msg)) => {
                assert!(msg.contains("deliberate test panic"), "msg: {msg}");
            }
            other => panic!("expected Error(Panic), got {}", other.label()),
        }
        assert!(!v.is_ok());
        assert!(!v.is_violation());
        assert!(v.error().is_some());
    }

    #[test]
    fn check_error_wraps_machine_errors() {
        let e = wbmem::MachineError::NoSuchProc {
            proc: wbmem::ProcId(9),
            n: 2,
        };
        let wrapped: CheckError = e.clone().into();
        assert_eq!(wrapped, CheckError::Machine(e));
        assert!(wrapped.to_string().contains("machine error"));
        assert!(CheckError::TooManyStates.to_string().contains("u32"));
    }
}
