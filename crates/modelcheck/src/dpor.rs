//! The partial-order-reduction engine ([`Engine::Dpor`]).
//!
//! A depth-first search over the same state space as [`Engine::Undo`],
//! pruned by the `por` crate's machinery:
//!
//! * **Sleep sets** skip transitions whose effect was already explored on
//!   an independent sibling branch. Sleep sets prune *edges only* — every
//!   reachable state is still visited — so they are safe under every
//!   checked property, including termination.
//! * **Ample sets** skip whole subtrees by scheduling a single process
//!   whose pending choices are invisible and independent of every other
//!   process's future. Ample pruning drops states, which is exactly the
//!   point — but the explored edge graph then under-approximates
//!   reachability, so ample selection is **disabled when
//!   `check_termination` is on** (the termination verdict needs the full
//!   graph). The cycle proviso (no ample step may close a DFS cycle
//!   without a full expansion) is enforced here, on the stack.
//! * **Reorder bound** (optional): prune schedules that overtake pending
//!   buffered writes more than `k` times. A bounded `Ok` is a bounded
//!   claim; violations found under a bound are always real executions.
//!
//! With the termination check on, the search additionally *probes* every
//! slept choice one step deep (step → fingerprint → undo) so the edge
//! graph handed to the reverse-reachability pass is the full graph over
//! the visited states; probes are bookkeeping, not exploration, and are
//! not counted as transitions.

use std::collections::HashMap;
use std::time::Instant;

use ftobs::{Gauge, Metric, MetricsSnapshot, Recorder, TreeEstimator};
use por::{expand, step_weight, BaseCounts, ForkPoint, RunMeta, SleepSet, Snapshot, VisitTable};
use wbmem::{Footprint, Machine, Process, SchedElem, StepOutcome, UndoToken};

use crate::checker::{
    config_hash, find_stuck, fingerprint, in_cs_count, poll_observe, render,
    returns_are_permutation, violates_invariant, write_checkpoint, CheckConfig, CheckError,
    Coverage, PeriodicCheckpoint, SearchIndex, Stats, Verdict, DEADLINE_POLL_MASK,
};

/// One frame of the reduced DFS. Unlike the undo engine's arena frames,
/// each frame owns its choice vector: the cycle proviso can grow it after
/// the fact (ample-excluded choices are appended when a reduced step
/// closes a cycle).
struct DFrame<P> {
    id: u32,
    fp: u128,
    /// Sleep set this state was entered with.
    sleep: SleepSet,
    /// Choices still to explore; consumed front to back via `next`.
    choices: Vec<SchedElem>,
    next: usize,
    /// Siblings already explored from this state, with their footprints —
    /// the candidates to put to sleep in later children.
    taken: Vec<(SchedElem, Footprint)>,
    /// Ample-pruned choices, re-added to `choices` if the proviso fires.
    excluded: Vec<SchedElem>,
    /// Remaining reorder budget on entry to this state.
    remaining: u32,
    /// How to rewind the machine to the parent (None at the root).
    token: Option<UndoToken<P>>,
}

/// Step every slept choice once to record its edge in the termination
/// graph, undoing immediately. The machine must currently be at the state
/// `parent_id` denotes.
fn probe_slept_edges<P: Process>(
    m: &mut Machine<P>,
    parent_id: u32,
    choices: &[SchedElem],
    sleep: &SleepSet,
    index: &mut SearchIndex,
    edges: &mut Vec<(u32, u32)>,
    obs: &Recorder,
) -> Result<(), CheckError> {
    for &e in choices.iter().filter(|&&e| sleep.contains(e)) {
        obs.incr(Metric::SleptProbes);
        let (out, token) = m.step_recorded(e);
        if !matches!(out, StepOutcome::NoOp) {
            let fp = fingerprint(m);
            let Some((child_id, _)) = index.id_of(fp, Some((parent_id, e))) else {
                m.undo(token);
                return Err(CheckError::TooManyStates);
            };
            edges.push((parent_id, child_id));
        }
        m.undo(token);
    }
    Ok(())
}

/// Serialize the reduced DFS into a durable [`Snapshot`]: one
/// [`ForkPoint`] per frame with unconsumed choices, carrying the exact
/// reduction state (sleep set, taken siblings, ample-excluded choices,
/// remaining reorder budget) so a resumed continuation prunes no more
/// and no less than this run would have. Frame `i`'s state is reached by
/// replaying `path[..i]`.
#[allow(clippy::too_many_arguments)]
fn dpor_snapshot<P: Process>(
    config: &CheckConfig,
    root_fp: u128,
    stats: &Stats,
    sleep_hits: usize,
    metrics: MetricsSnapshot,
    frames: &[DFrame<P>],
    path: &[SchedElem],
    visited: &VisitTable,
    index: &SearchIndex,
    edges: &[(u32, u32)],
    terminal: &[u32],
) -> Snapshot {
    let forks = frames
        .iter()
        .enumerate()
        .filter(|(_, f)| f.next < f.choices.len())
        .map(|(i, f)| ForkPoint {
            path: path[..i].to_vec(),
            sleep: f.sleep.clone(),
            taken: f.taken.clone(),
            choices: f.choices[f.next..].to_vec(),
            excluded: f.excluded.clone(),
            remaining: f.remaining,
            span: config.recorder.trace_root().0,
        })
        .collect();
    Snapshot {
        meta: RunMeta {
            engine: config.engine.label().to_string(),
            config_hash: config_hash(config),
            program_hash: root_fp,
        },
        base: BaseCounts {
            states: stats.states as u64,
            transitions: stats.transitions as u64,
            terminal_states: stats.terminal_states as u64,
            sleep_hits: sleep_hits as u64,
        },
        metrics,
        forks,
        visited: visited.fingerprints(),
        edges: edges
            .iter()
            .map(|&(a, b)| (index.fp_of(a), index.fp_of(b)))
            .collect(),
        terminals: terminal.iter().map(|&t| index.fp_of(t)).collect(),
    }
}

/// The DPOR search; see the module docs. Entered via
/// [`crate::check`] with [`Engine::Dpor`](crate::Engine::Dpor).
pub(crate) fn check_dpor<P: Process>(
    initial: &Machine<P>,
    config: &CheckConfig,
    reorder_bound: Option<u32>,
    deadline: Option<Instant>,
) -> Verdict {
    let model = initial.config().model;
    let obs = &config.recorder;
    // `Some(u32::MAX)` is the diagnostic disabled-reduction mode (see
    // [`crate::Engine::Dpor`]): the bound is unreachable, sleep sets stay
    // empty, ample selection is off, and choices are consumed in the
    // exhaustive engines' order, so the run's metrics are bit-identical
    // to [`crate::Engine::Undo`]'s.
    let disable_reduction = reorder_bound == Some(u32::MAX);
    // Ample pruning drops states; the termination check needs all of them.
    let use_ample = !config.check_termination && !disable_reduction;
    let budget0 = reorder_bound.unwrap_or(u32::MAX);

    let mut visited = VisitTable::new();
    // Batches the per-edge counters; flushed into the recorder on every
    // exit path by its Drop impl. Sleep/ample/probe counters stay live:
    // they are DPOR-specific and comparatively rare.
    let mut tally = obs.tally();
    let mut est = TreeEstimator::new();
    est.begin_task();
    let mut stats = Stats::default();
    let mut sleep_hits = 0usize;
    let mut index = SearchIndex::default();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut terminal: Vec<u32> = Vec::new();
    // Fingerprints currently on the DFS stack (a multiset: re-exploration
    // under a smaller sleep set can nest a state inside itself).
    let mut on_stack: HashMap<u128, u32> = HashMap::new();

    let root_fp = fingerprint(initial);
    let Some((root_id, _)) = index.id_of(root_fp, None) else {
        return Verdict::Error(stats, CheckError::TooManyStates);
    };
    let root_sleep = SleepSet::new();
    visited.try_claim(root_fp, &root_sleep, budget0);
    stats.states = 1;
    tally.on_state(0);

    if config.check_mutex && in_cs_count(initial) > 1 {
        return Verdict::MutexViolation(stats, render(initial, &[]));
    }
    if violates_invariant(config, initial) {
        return Verdict::InvariantViolation(stats, render(initial, &[]));
    }
    if initial.all_done() {
        terminal.push(root_id);
        stats.terminal_states = 1;
        tally.terminal_state();
    }

    // The working clone carries the recorder; `initial` stays unrecorded
    // so counterexample replays do not pollute the metrics.
    let mut m = initial.clone();
    m.set_recorder(obs.clone());
    let mut frames: Vec<DFrame<P>> = Vec::new();
    let mut scratch: Vec<SchedElem> = Vec::new();
    let policy = config.checkpoint.as_ref();
    let mut periodic = policy.map(PeriodicCheckpoint::new);
    // The schedule from the root to the current top frame's state
    // (`path[..i]` reaches frame `i`). This is the *stack* path, not the
    // first-visit parent chain in `index` — the two can differ when a
    // state is re-entered under a smaller sleep set, and fork points
    // must replay the stack path to restore the exact reduction state.
    let mut path: Vec<SchedElem> = Vec::new();

    if !initial.all_done() {
        m.choices_into(&mut scratch);
        let mut x = expand(&m, &scratch, &root_sleep, use_ample, obs);
        if disable_reduction {
            // Consume back-to-front like the undo engine (it pops from the
            // arena end; we advance `next` forward).
            x.explore.reverse();
        }
        sleep_hits += x.slept;
        on_stack.insert(root_fp, 1);
        est.push(x.explore.len());
        frames.push(DFrame {
            id: root_id,
            fp: root_fp,
            sleep: root_sleep,
            choices: x.explore,
            next: 0,
            taken: Vec::new(),
            excluded: x.excluded,
            remaining: budget0,
            token: None,
        });
    }

    let mut iters = 0usize;
    while !frames.is_empty() {
        iters += 1;
        if let Some(pol) = policy {
            // Checked every iteration (not at poll granularity) so the
            // deterministic stop_after cut is exact.
            if pol.stop_requested(stats.transitions as u64) {
                tally.flush();
                let snap = dpor_snapshot(
                    config,
                    root_fp,
                    &stats,
                    sleep_hits,
                    obs.snapshot(),
                    &frames,
                    &path,
                    &visited,
                    &index,
                    &edges,
                    &terminal,
                );
                let frontier = frames.len();
                return Verdict::Inconclusive(
                    stats,
                    Coverage {
                        frontier,
                        sleep_hits,
                        checkpoint: write_checkpoint(obs, pol, &snap),
                        ..Coverage::default()
                    }
                    .with_estimate(est.estimate(stats.states as u64)),
                );
            }
        }
        if iters & DEADLINE_POLL_MASK == 0 {
            let over_occupancy = policy
                .and_then(|p| p.max_occupancy)
                .is_some_and(|cap| visited.len() >= cap);
            let estimate = est.estimate(stats.states as u64);
            if poll_observe(
                obs,
                &stats,
                frames.len(),
                visited.len(),
                config.budget,
                deadline,
                estimate,
            ) || over_occupancy
            {
                let checkpoint = policy.and_then(|pol| {
                    tally.flush();
                    let snap = dpor_snapshot(
                        config,
                        root_fp,
                        &stats,
                        sleep_hits,
                        obs.snapshot(),
                        &frames,
                        &path,
                        &visited,
                        &index,
                        &edges,
                        &terminal,
                    );
                    write_checkpoint(obs, pol, &snap)
                });
                return Verdict::Inconclusive(
                    stats,
                    Coverage {
                        frontier: frames.len(),
                        sleep_hits,
                        checkpoint,
                        ..Coverage::default()
                    }
                    .with_estimate(estimate),
                );
            }
            if let (Some(pol), Some(per)) = (policy, periodic.as_mut()) {
                if per.due(pol, stats.transitions as u64) {
                    tally.flush();
                    let snap = dpor_snapshot(
                        config,
                        root_fp,
                        &stats,
                        sleep_hits,
                        obs.snapshot(),
                        &frames,
                        &path,
                        &visited,
                        &index,
                        &edges,
                        &terminal,
                    );
                    let _ = write_checkpoint(obs, pol, &snap);
                }
            }
        }
        let Some(top) = frames.last_mut() else { break };
        if top.next == top.choices.len() {
            let frame = frames.pop().expect("non-empty stack");
            est.pop();
            match on_stack.get_mut(&frame.fp) {
                Some(1) => {
                    on_stack.remove(&frame.fp);
                }
                Some(c) => *c -= 1,
                None => unreachable!("frame fingerprint missing from the stack set"),
            }
            if let Some(token) = frame.token {
                m.undo(token);
                path.pop();
            }
            continue;
        }
        let elem = top.choices[top.next];
        top.next += 1;
        let parent_id = top.id;
        let parent_remaining = top.remaining;

        // In diagnostic mode the bound is unreachable by construction;
        // skipping the weighing keeps the visit table's budget constant,
        // degenerating it into a plain visited set.
        let weight = if disable_reduction {
            0
        } else {
            step_weight(&m, elem)
        };
        if weight > parent_remaining {
            est.leaf();
            continue; // beyond the reorder bound: neither taken nor slept
        }

        let (out, token) = m.step_recorded(elem);
        if matches!(out, StepOutcome::NoOp) {
            tally.noop_step();
            est.leaf();
            m.undo(token);
            continue;
        }
        let efp = token.footprint();
        stats.transitions += 1;
        tally.on_transition();
        let fp = fingerprint(&m);
        let Some((child_id, _)) = index.id_of(fp, Some((parent_id, elem))) else {
            return Verdict::Error(stats, CheckError::TooManyStates);
        };
        if config.check_termination {
            edges.push((parent_id, child_id));
        }

        // Cycle proviso (C3): a reduced step that lands on a state still
        // on the stack could postpone the pruned processes forever around
        // the cycle; fall back to full expansion of this frame.
        if on_stack.contains_key(&fp) && !top.excluded.is_empty() {
            let reinstated: Vec<SchedElem> = top.excluded.drain(..).collect();
            for e in reinstated {
                if top.sleep.contains(e) {
                    sleep_hits += 1;
                    obs.incr(Metric::SleepHits);
                } else {
                    top.choices.push(e);
                }
            }
        }

        // Sleep set for the child: surviving inherited entries, plus every
        // already-explored sibling that is independent of this step. In
        // diagnostic mode sleep sets stay empty and the sibling
        // bookkeeping is skipped entirely.
        let mut child_sleep = if disable_reduction {
            SleepSet::new()
        } else {
            top.sleep.inherit(efp, model)
        };
        if !disable_reduction {
            for &(se, sf) in &top.taken {
                if sf.independent(efp, model) {
                    child_sleep.insert(se, sf);
                }
            }
            top.taken.push((elem, efp));
        }

        let child_remaining = parent_remaining - weight;
        let fresh = !visited.seen(fp);
        if !visited.try_claim(fp, &child_sleep, child_remaining) {
            est.leaf();
            if disable_reduction {
                // With empty sleeps and a constant budget every revisit is
                // dominated: this is plain dedup, as in the undo engine.
                tally.dedup_hit();
            } else {
                sleep_hits += 1;
                obs.incr(Metric::SleepHits);
            }
            m.undo(token);
            continue;
        }

        if fresh {
            stats.states += 1;
            tally.on_state(frames.len() as u64);
            if stats.states > config.max_states {
                return Verdict::StateLimit(stats);
            }
            if config.check_mutex && in_cs_count(&m) > 1 {
                return Verdict::MutexViolation(stats, render(initial, &index.path_to(child_id)));
            }
            if violates_invariant(config, &m) {
                return Verdict::InvariantViolation(
                    stats,
                    render(initial, &index.path_to(child_id)),
                );
            }
            if m.all_done() {
                stats.terminal_states += 1;
                terminal.push(child_id);
                tally.terminal_state();
                est.leaf();
                if config.check_permutation && !returns_are_permutation(&m) {
                    return Verdict::PermutationViolation(
                        stats,
                        render(initial, &index.path_to(child_id)),
                    );
                }
                m.undo(token);
                continue;
            }
        } else if m.all_done() {
            // Re-entered terminal state (smaller sleep set): nothing to do.
            est.leaf();
            m.undo(token);
            continue;
        }

        m.choices_into(&mut scratch);
        debug_assert!(!scratch.is_empty(), "non-terminal state has no choices");
        let mut x = expand(&m, &scratch, &child_sleep, use_ample, obs);
        if disable_reduction {
            x.explore.reverse();
        }
        sleep_hits += x.slept;
        if config.check_termination && x.slept > 0 {
            if let Err(e) = probe_slept_edges(
                &mut m,
                child_id,
                &scratch,
                &child_sleep,
                &mut index,
                &mut edges,
                obs,
            ) {
                return Verdict::Error(stats, e);
            }
        }
        *on_stack.entry(fp).or_insert(0) += 1;
        est.push(x.explore.len());
        frames.push(DFrame {
            id: child_id,
            fp,
            sleep: child_sleep,
            choices: x.explore,
            next: 0,
            taken: Vec::new(),
            excluded: x.excluded,
            remaining: child_remaining,
            token: Some(token),
        });
        path.push(elem);
    }

    obs.gauge_set(Gauge::DedupOccupancy, visited.len() as u64);
    if config.check_termination {
        if let Some(stuck) = find_stuck(index.len(), &edges, &terminal) {
            return Verdict::NoTermination(stats, render(initial, &index.path_to(stuck)));
        }
    }

    Verdict::Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, Engine};
    use simlocks::{build_mutex, FenceMask, LockKind};
    use wbmem::MemoryModel;

    fn dpor() -> Engine {
        Engine::Dpor {
            reorder_bound: None,
        }
    }

    fn cfg() -> CheckConfig {
        CheckConfig::default().with_engine(dpor())
    }

    #[test]
    fn fully_fenced_peterson_is_correct_under_all_models() {
        let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let v = check(&inst.machine(model), &cfg());
            assert!(v.is_ok(), "{model}: {}", v.label());
        }
    }

    #[test]
    fn broken_peterson_is_still_caught_and_replays() {
        let mask = FenceMask::only(&[simlocks::peterson::SITE_VICTIM]);
        let inst = build_mutex(LockKind::Peterson, 2, mask);
        let v = check(&inst.machine(MemoryModel::Pso), &cfg());
        let Verdict::MutexViolation(_, cex) = v else {
            panic!("expected violation, got {}", v.label());
        };
        // The schedule must reproduce the violation on an unreduced machine.
        let mut m = inst.machine(MemoryModel::Pso);
        for &e in &cex.schedule {
            assert!(
                !matches!(m.step(e), StepOutcome::NoOp),
                "counterexample contains a no-op step"
            );
        }
        assert_eq!(in_cs_count(&m), 2, "replay reaches the double-CS state");
    }

    #[test]
    fn reduction_shrinks_the_explored_space() {
        let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
        let base = CheckConfig {
            check_termination: false, // enable ample pruning
            ..CheckConfig::default()
        };
        let full = check(&inst.machine(MemoryModel::Pso), &base);
        let reduced = check(
            &inst.machine(MemoryModel::Pso),
            &base.clone().with_engine(dpor()),
        );
        assert!(full.is_ok() && reduced.is_ok());
        assert!(
            reduced.stats().states < full.stats().states,
            "dpor {} vs undo {}",
            reduced.stats().states,
            full.stats().states
        );
        assert!(reduced.stats().transitions < full.stats().transitions);
    }

    #[test]
    fn termination_violations_agree_with_undo() {
        // Naive TTAS deadlocks under crashes; the DPOR engine (sleep sets
        // plus edge probing, no ample) must find the same verdict.
        let inst = build_mutex(LockKind::Ttas, 2, FenceMask::ALL);
        let mut config = cfg();
        config.max_states = 500_000;
        config.check_termination = true;
        let config = config.with_crashes(wbmem::CrashSemantics::DiscardBuffer, 1);
        let v = check(&inst.machine(MemoryModel::Pso), &config);
        assert!(
            matches!(v, Verdict::NoTermination(..)),
            "expected NO-TERMINATION, got {}",
            v.label()
        );
    }

    #[test]
    fn reorder_bound_zero_matches_sc_verdicts() {
        // Fenceless Peterson violates mutex under PSO via write overtaking,
        // but is correct under SC. Bound 0 restricts PSO exploration to
        // SC-equivalent schedules, so the violation disappears.
        let mask = FenceMask::only(&[simlocks::peterson::SITE_RELEASE]);
        let inst = build_mutex(LockKind::Peterson, 2, mask);
        let full = check(&inst.machine(MemoryModel::Pso), &cfg());
        assert!(matches!(full, Verdict::MutexViolation(..)));

        let bounded = CheckConfig::default().with_engine(Engine::Dpor {
            reorder_bound: Some(0),
        });
        let v = check(&inst.machine(MemoryModel::Pso), &bounded);
        assert!(v.is_ok(), "bound 0 ≡ SC: {}", v.label());

        // One overtake is already enough for this bug.
        let bounded1 = CheckConfig::default().with_engine(Engine::Dpor {
            reorder_bound: Some(1),
        });
        let v = check(&inst.machine(MemoryModel::Pso), &bounded1);
        assert!(
            matches!(v, Verdict::MutexViolation(..)),
            "bound 1 finds it: {}",
            v.label()
        );
    }

    #[test]
    fn budget_expiry_reports_sleep_hits() {
        let inst = build_mutex(LockKind::Bakery, 3, FenceMask::ALL);
        let config = cfg().with_budget(std::time::Duration::ZERO);
        let v = check(&inst.machine(MemoryModel::Pso), &config);
        match v {
            Verdict::Inconclusive(stats, coverage) => {
                assert!(stats.states >= 1);
                assert!(coverage.frontier >= 1);
                // sleep_hits is a counter, not a guarantee — just make sure
                // the field is plumbed (type-level check, really).
                let _ = coverage.sleep_hits;
            }
            other => panic!("expected inconclusive, got {}", other.label()),
        }
    }
}
