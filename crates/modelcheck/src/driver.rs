//! Multi-model checking driver for fence synthesis.
//!
//! The CEGAR loop in `crates/synth` repeatedly asks one question: *is this
//! candidate program correct under every memory model I care about, and if
//! not, show me a counterexample.* This module packages that question over
//! the existing [`check`] entry point, so synthesis inherits the whole
//! `CheckConfig` surface — engine selection (`Dpor`/`ParallelDpor` for the
//! inner loop, `Undo` for final re-verification), crash-fault bounds,
//! wall-clock budgets, and checkpoint policies — without owning any
//! exploration machinery of its own.

use simlocks::OrderingInstance;
use wbmem::MemoryModel;

use crate::checker::{check, CheckConfig, Verdict};

/// The verdict for one memory model in a multi-model sweep.
#[derive(Clone, Debug)]
pub struct ModelVerdict {
    /// The model checked.
    pub model: MemoryModel,
    /// The checker's verdict (carries counterexample and stats).
    pub verdict: Verdict,
}

/// Check `inst` under each model in `models` with the same `config`.
///
/// With `stop_at_violation`, the sweep returns as soon as one model
/// produces a violation — the refinement loop only needs one
/// counterexample per iteration, and skipping the remaining models keeps
/// iterations cheap. Models are checked in the order given; put the
/// weakest model (most likely to fail) first for fastest refinement.
#[must_use]
pub fn check_under_models(
    inst: &OrderingInstance,
    models: &[MemoryModel],
    config: &CheckConfig,
    stop_at_violation: bool,
) -> Vec<ModelVerdict> {
    let mut out = Vec::with_capacity(models.len());
    let mut tctx = config.recorder.trace_ctx();
    for &model in models {
        // Each model gets its own span; the engine span `check` opens
        // nests under it via the trace-root handoff.
        let mspan = tctx.begin();
        let span_parent = config.recorder.trace_root();
        if tctx.enabled() {
            let _ = config.recorder.set_trace_root(mspan.id);
        }
        let verdict = check(&inst.machine(model), config);
        if tctx.enabled() {
            let _ = config.recorder.set_trace_root(span_parent);
            tctx.end(
                mspan,
                "model_check",
                span_parent,
                &[
                    ("model", ftobs::J::s(model.to_string())),
                    ("verdict", ftobs::J::s(verdict.label())),
                ],
            );
        }
        let bail = stop_at_violation && verdict.is_violation();
        out.push(ModelVerdict { model, verdict });
        if bail {
            break;
        }
    }
    out
}

/// Whether every verdict in a sweep is fully `Ok`. An incomplete sweep
/// (budget, state limit, checkpoint stop) is *not* ok: synthesis must
/// never accept a placement on less than a full proof.
#[must_use]
pub fn all_ok(verdicts: &[ModelVerdict]) -> bool {
    !verdicts.is_empty() && verdicts.iter().all(|v| v.verdict.is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Engine;
    use simlocks::{build_mutex, FenceMask, LockKind};

    #[test]
    fn fully_fenced_bakery_is_ok_everywhere() {
        let inst = build_mutex(LockKind::Bakery, 2, FenceMask::ALL);
        let cfg = CheckConfig::default().with_engine(Engine::Dpor {
            reorder_bound: None,
        });
        let vs = check_under_models(
            &inst,
            &[MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso],
            &cfg,
            true,
        );
        assert_eq!(vs.len(), 3);
        assert!(all_ok(&vs));
    }

    #[test]
    fn unfenced_bakery_stops_at_first_violation() {
        let inst = build_mutex(LockKind::Bakery, 2, FenceMask::NONE);
        let cfg = CheckConfig::default().with_engine(Engine::Dpor {
            reorder_bound: None,
        });
        let vs = check_under_models(&inst, &[MemoryModel::Pso, MemoryModel::Sc], &cfg, true);
        assert_eq!(vs.len(), 1, "sweep stops at the PSO violation");
        assert!(vs[0].verdict.is_violation());
        assert!(vs[0].verdict.counterexample().is_some());
        assert!(!all_ok(&vs));
    }
}
