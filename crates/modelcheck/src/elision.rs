//! Fence-elision search: which fence sites does each memory model actually
//! need?
//!
//! For a lock family, enumerate fence masks, model-check each under each
//! memory model, and tabulate. This regenerates the paper's qualitative
//! separation story: under SC nothing is needed, under TSO a single
//! store–load fence suffices for Peterson, and under PSO the write-ordering
//! fences become load-bearing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use simlocks::{build_mutex, FenceMask, LockKind};
use wbmem::MemoryModel;

use crate::checker::{check, CheckConfig, Stats};

/// One row of the elision table: a fence placement and its verdict under
/// each model.
#[derive(Clone, Debug)]
pub struct ElisionRow {
    /// The fence placement.
    pub mask: FenceMask,
    /// Human-readable mask description.
    pub mask_desc: String,
    /// Number of fence sites enabled.
    pub enabled: u32,
    /// `(model, verdict label, exploration stats)` per model checked.
    pub verdicts: Vec<(MemoryModel, &'static str, Stats)>,
}

impl ElisionRow {
    /// Whether this placement was fully correct under `model`.
    #[must_use]
    pub fn ok_under(&self, model: MemoryModel) -> bool {
        self.verdicts
            .iter()
            .any(|&(m, label, _)| m == model && label == "ok")
    }

    /// Total states explored across all models checked for this row.
    #[must_use]
    pub fn total_states(&self) -> usize {
        self.verdicts.iter().map(|&(_, _, s)| s.states).sum()
    }

    /// Total exploration wall-clock across all models checked for this row.
    #[must_use]
    pub fn total_elapsed(&self) -> Duration {
        self.verdicts.iter().map(|&(_, _, s)| s.elapsed).sum()
    }
}

fn elision_row(
    kind: LockKind,
    n: usize,
    sites: u32,
    mask: FenceMask,
    models: &[MemoryModel],
    config: &CheckConfig,
) -> ElisionRow {
    let inst = build_mutex(kind, n, mask);
    let verdicts = models
        .iter()
        .map(|&model| {
            let v = check(&inst.machine(model), config);
            (model, v.label(), v.stats())
        })
        .collect();
    ElisionRow {
        mask,
        mask_desc: mask.describe(sites),
        enabled: mask.count_enabled(sites),
        verdicts,
    }
}

/// Model-check every mask in `masks` for `kind` with `n` processes under
/// each of `models`, on up to `threads` scoped worker threads (each mask is
/// an independent model-checking job; `1` = fully sequential).
///
/// Each check runs whatever engine `config` selects — in particular
/// [`Engine::Dpor`](crate::Engine::Dpor) reduces the whole sweep — and row
/// order matches `masks` regardless of thread count, so for a fixed config
/// the output is identical at any parallelism level.
#[must_use]
pub fn elision_table(
    kind: LockKind,
    n: usize,
    masks: &[FenceMask],
    models: &[MemoryModel],
    config: &CheckConfig,
    threads: usize,
) -> Vec<ElisionRow> {
    let sites = build_mutex(kind, n, FenceMask::ALL).fence_sites;
    let threads = threads.max(1).min(masks.len());
    if threads <= 1 {
        return masks
            .iter()
            .map(|&mask| elision_row(kind, n, sites, mask, models, config))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, ElisionRow)>> = Mutex::new(Vec::with_capacity(masks.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&mask) = masks.get(i) else { break };
                    local.push((i, elision_row(kind, n, sites, mask, models, config)));
                }
                collected.lock().expect("unpoisoned").extend(local);
            });
        }
    });
    let mut rows = collected.into_inner().expect("unpoisoned");
    rows.sort_unstable_by_key(|&(i, _)| i);
    rows.into_iter().map(|(_, r)| r).collect()
}

/// The minimum number of enabled fence sites over rows correct under
/// `model`, if any placement is.
#[must_use]
pub fn minimal_fences(rows: &[ElisionRow], model: MemoryModel) -> Option<u32> {
    rows.iter()
        .filter(|r| r.ok_under(model))
        .map(|r| r.enabled)
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peterson_elision_separates_tso_from_pso() {
        let masks = FenceMask::enumerate(3);
        let models = [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso];
        let rows = elision_table(
            LockKind::Peterson,
            2,
            &masks,
            &models,
            &CheckConfig {
                check_termination: false,
                ..CheckConfig::default()
            },
            1,
        );
        assert_eq!(rows.len(), 8);

        // SC never needs an acquire fence.
        assert_eq!(minimal_fences(&rows, MemoryModel::Sc), Some(0));

        // TSO and PSO minimums differ in *acquire* fences: find the minimal
        // count of acquire-side fences (sites 0 and 1) among correct rows.
        let min_acquire = |model: MemoryModel| {
            rows.iter()
                .filter(|r| r.ok_under(model))
                .map(|r| u32::from(r.mask.has(0)) + u32::from(r.mask.has(1)))
                .min()
        };
        assert_eq!(
            min_acquire(MemoryModel::Tso),
            Some(1),
            "TSO: one store-load fence"
        );
        assert_eq!(
            min_acquire(MemoryModel::Pso),
            Some(2),
            "PSO: both write fences"
        );

        // And the specific witness: {victim fence} alone is TSO-ok, PSO-bad.
        let witness = rows
            .iter()
            .find(|r| r.mask.has(1) && !r.mask.has(0))
            .expect("witness row exists");
        assert!(witness.ok_under(MemoryModel::Tso));
        assert!(!witness.ok_under(MemoryModel::Pso));
    }
}
