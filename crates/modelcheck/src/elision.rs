//! Fence-elision search: which fence sites does each memory model actually
//! need?
//!
//! For a lock family, enumerate fence masks, model-check each under each
//! memory model, and tabulate. This regenerates the paper's qualitative
//! separation story: under SC nothing is needed, under TSO a single
//! store–load fence suffices for Peterson, and under PSO the write-ordering
//! fences become load-bearing.

use simlocks::{build_mutex, FenceMask, LockKind};
use wbmem::MemoryModel;

use crate::checker::{check, CheckConfig};

/// One row of the elision table: a fence placement and its verdict under
/// each model.
#[derive(Clone, Debug)]
pub struct ElisionRow {
    /// The fence placement.
    pub mask: FenceMask,
    /// Human-readable mask description.
    pub mask_desc: String,
    /// Number of fence sites enabled.
    pub enabled: u32,
    /// `(model, verdict label, states explored)` per model checked.
    pub verdicts: Vec<(MemoryModel, &'static str, usize)>,
}

impl ElisionRow {
    /// Whether this placement was fully correct under `model`.
    #[must_use]
    pub fn ok_under(&self, model: MemoryModel) -> bool {
        self.verdicts.iter().any(|&(m, label, _)| m == model && label == "ok")
    }
}

/// Model-check every mask in `masks` for `kind` with `n` processes under
/// each of `models`.
#[must_use]
pub fn elision_table(
    kind: LockKind,
    n: usize,
    masks: &[FenceMask],
    models: &[MemoryModel],
    config: &CheckConfig,
) -> Vec<ElisionRow> {
    let sites = build_mutex(kind, n, FenceMask::ALL).fence_sites;
    masks
        .iter()
        .map(|&mask| {
            let inst = build_mutex(kind, n, mask);
            let verdicts = models
                .iter()
                .map(|&model| {
                    let v = check(&inst.machine(model), config);
                    (model, v.label(), v.stats().states)
                })
                .collect();
            ElisionRow {
                mask,
                mask_desc: mask.describe(sites),
                enabled: mask.count_enabled(sites),
                verdicts,
            }
        })
        .collect()
}

/// The minimum number of enabled fence sites over rows correct under
/// `model`, if any placement is.
#[must_use]
pub fn minimal_fences(rows: &[ElisionRow], model: MemoryModel) -> Option<u32> {
    rows.iter().filter(|r| r.ok_under(model)).map(|r| r.enabled).min()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peterson_elision_separates_tso_from_pso() {
        let masks = FenceMask::enumerate(3);
        let models = [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso];
        let rows = elision_table(
            LockKind::Peterson,
            2,
            &masks,
            &models,
            &CheckConfig { check_termination: false, ..CheckConfig::default() },
        );
        assert_eq!(rows.len(), 8);

        // SC never needs an acquire fence.
        assert_eq!(minimal_fences(&rows, MemoryModel::Sc), Some(0));

        // TSO and PSO minimums differ in *acquire* fences: find the minimal
        // count of acquire-side fences (sites 0 and 1) among correct rows.
        let min_acquire = |model: MemoryModel| {
            rows.iter()
                .filter(|r| r.ok_under(model))
                .map(|r| u32::from(r.mask.has(0)) + u32::from(r.mask.has(1)))
                .min()
        };
        assert_eq!(min_acquire(MemoryModel::Tso), Some(1), "TSO: one store-load fence");
        assert_eq!(min_acquire(MemoryModel::Pso), Some(2), "PSO: both write fences");

        // And the specific witness: {victim fence} alone is TSO-ok, PSO-bad.
        let witness = rows
            .iter()
            .find(|r| r.mask.has(1) && !r.mask.has(0))
            .expect("witness row exists");
        assert!(witness.ok_under(MemoryModel::Tso));
        assert!(!witness.ok_under(MemoryModel::Pso));
    }
}
