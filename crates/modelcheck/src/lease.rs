//! Fleet lease execution — the worker-process half of multi-process
//! exploration (`ftfleet`).
//!
//! A **lease** is a self-contained slice of an interrupted exploration:
//! a [`por::Snapshot`] whose `visited` set is the supervisor's accepted
//! state set at issue time, whose `forks` are the frontier slice this
//! worker owns, and whose `base.states` carries the global state count
//! (so the `max_states` limit trips at the right global point). Base
//! transition/terminal counts and metrics are zeroed by the supervisor:
//! a lease result reports **deltas only**, and the supervisor owns the
//! accumulated totals.
//!
//! [`run_lease`] validates the lease against this process's program and
//! configuration (the same three checks [`crate::resume`] applies),
//! runs the seeded work-stealing sweep with the verdict discipline
//! stripped — no sequential rerun, no local termination pass — and
//! returns the raw outcome plus a result snapshot ready to ship back.
//!
//! ## Why results are exact
//!
//! The supervisor accepts results in deterministic lease order and
//! rejects any result whose claimed fingerprints intersect previously
//! accepted claims. An accepted run therefore never *reached* a state an
//! earlier accepted run claimed (reaching an unseeded state always
//! claims it), so its execution is bit-identical to the same slice run
//! sequentially after its predecessors — the resume-chain property the
//! differential suite already pins down. Summing accepted deltas thus
//! reproduces an uninterrupted single-process run exactly, including the
//! deterministic metrics in diagnostic mode.

use std::time::Instant;

use por::{RunMeta, Snapshot};
use wbmem::{Machine, Process};

use crate::checker::{config_hash, fingerprint, CheckConfig, Engine};
use crate::pardpor::{check_lease, ResumeSeed};

/// How a lease run ended. Encoded into result files by the fleet crate
/// via [`code`](LeaseStatus::code)/[`from_code`](LeaseStatus::from_code).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaseStatus {
    /// The slice was explored to exhaustion; `forks` is empty.
    Completed,
    /// The deadline or a stop trigger cut the sweep short; `forks` holds
    /// the unexplored remainder.
    BudgetHit,
    /// The global state count overran `max_states`. The supervisor
    /// cancels the fleet and reruns sequentially for the exact verdict.
    LimitHit,
    /// A property violation was found. The supervisor cancels the fleet
    /// and reruns sequentially for the exact counterexample.
    Violated,
}

impl LeaseStatus {
    /// Stable wire encoding for result files.
    #[must_use]
    pub const fn code(self) -> u8 {
        match self {
            LeaseStatus::Completed => 0,
            LeaseStatus::BudgetHit => 1,
            LeaseStatus::LimitHit => 2,
            LeaseStatus::Violated => 3,
        }
    }

    /// Decode [`code`](Self::code); `None` for unknown bytes (torn or
    /// corrupt result files).
    #[must_use]
    pub const fn from_code(code: u8) -> Option<LeaseStatus> {
        match code {
            0 => Some(LeaseStatus::Completed),
            1 => Some(LeaseStatus::BudgetHit),
            2 => Some(LeaseStatus::LimitHit),
            3 => Some(LeaseStatus::Violated),
            _ => None,
        }
    }
}

/// What [`run_lease`] hands back: the status plus a result snapshot
/// whose `visited` holds only the fingerprints this run claimed first,
/// whose `base`/`metrics` are this run's deltas, and whose `forks` are
/// the unexplored remainder (empty on [`LeaseStatus::Completed`]).
#[derive(Debug)]
pub struct LeaseOutcome {
    /// How the sweep ended.
    pub status: LeaseStatus,
    /// Delta snapshot to ship back to the supervisor.
    pub result: Snapshot,
}

/// The run metadata a checkpoint, lease, or result for `(initial,
/// config)` must carry — the shared source of truth for the three
/// validation checks in [`crate::resume`] and [`run_lease`]. The
/// program hash is taken over the crash-bounded root when the
/// configuration injects crashes, exactly as the engines hash it.
#[must_use]
pub fn run_meta<P: Process>(initial: &Machine<P>, config: &CheckConfig) -> RunMeta {
    let program_hash = if config.max_crashes > 0 {
        let mut m = initial.clone();
        m.set_crash_bound(config.crash_semantics, config.max_crashes);
        fingerprint(&m)
    } else {
        fingerprint(initial)
    };
    RunMeta {
        engine: config.engine.label().to_string(),
        config_hash: config_hash(config),
        program_hash,
    }
}

/// Validate a snapshot's metadata against the expected metadata for this
/// process's program and configuration. Error messages name the first
/// mismatch; shared by [`crate::resume`] and [`run_lease`] so the two
/// read paths cannot drift.
pub fn validate_meta(meta: &RunMeta, expect: &RunMeta) -> Result<(), String> {
    if meta.engine != expect.engine {
        return Err(format!(
            "engine mismatch: checkpoint was written by `{}`, resuming as `{}`",
            meta.engine, expect.engine
        ));
    }
    if meta.config_hash != expect.config_hash {
        return Err(
            "configuration mismatch: checkpoint was written under different \
             properties/bounds/crash settings"
                .to_string(),
        );
    }
    if meta.program_hash != expect.program_hash {
        return Err(
            "program mismatch: checkpoint was written for a different initial state".to_string(),
        );
    }
    Ok(())
}

/// Map a checkpointing engine onto the seeded continuation coordinator's
/// `(threads, reorder_bound)` parameters — one worker in diagnostic mode
/// replays the undo engine exactly, one worker with the original bound
/// replays the DPOR engine, and the parallel engine continues as itself.
/// Errors for engines that do not support checkpoint/resume.
pub fn continuation_params(engine: Engine) -> Result<(usize, Option<u32>), String> {
    match engine {
        Engine::Undo => Ok((1, Some(u32::MAX))),
        Engine::Dpor { reorder_bound } => Ok((1, reorder_bound)),
        Engine::ParallelDpor {
            threads,
            reorder_bound,
        } => Ok((threads, reorder_bound)),
        Engine::CloneDfs | Engine::Parallel { .. } => Err(format!(
            "engine `{}` does not support checkpoint/resume",
            engine.label()
        )),
    }
}

/// Execute one lease in this process and return the delta result.
///
/// `initial` is the **unbounded** root machine (the crash bound from
/// `config` is applied here, as in [`crate::check`]); `lease` is the
/// snapshot the supervisor issued. Errors — metadata mismatches, an
/// unsupported engine, or a worker panic — should surface as a nonzero
/// process exit so the supervisor retries (and eventually poisons) the
/// lease; they are never silently absorbed.
///
/// The `config.recorder` must be fresh for the delta metrics to mean
/// anything; `ft_worker` runs one lease per process, which guarantees
/// it.
pub fn run_lease<P: Process>(
    initial: &Machine<P>,
    config: &CheckConfig,
    lease: Snapshot,
) -> Result<LeaseOutcome, String> {
    let start = Instant::now();
    let expect = run_meta(initial, config);
    validate_meta(&lease.meta, &expect)?;
    let (threads, reorder_bound) = continuation_params(config.engine)?;

    let crash_root;
    let root = if config.max_crashes > 0 {
        let mut m = initial.clone();
        m.set_crash_bound(config.crash_semantics, config.max_crashes);
        crash_root = m;
        &crash_root
    } else {
        initial
    };

    let deadline = config.budget.map(|b| start + b);
    let seed = ResumeSeed {
        visited: lease.visited,
        forks: lease.forks,
        base: lease.base,
        metrics: lease.metrics,
        edges: Vec::new(),
        terminals: Vec::new(),
    };
    let run = check_lease(root, config, threads, reorder_bound, deadline, seed);
    if let Some(msg) = run.panicked {
        return Err(format!("lease worker panicked: {msg}"));
    }
    let status = if run.violated {
        LeaseStatus::Violated
    } else if run.limit_hit {
        LeaseStatus::LimitHit
    } else if run.budget_hit {
        LeaseStatus::BudgetHit
    } else {
        LeaseStatus::Completed
    };
    Ok(LeaseOutcome {
        status,
        result: Snapshot {
            meta: expect,
            base: run.base,
            metrics: config.recorder.snapshot(),
            forks: run.forks,
            visited: run.claimed,
            edges: run.edges,
            terminals: run.terminals,
        },
    })
}
