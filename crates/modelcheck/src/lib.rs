//! # modelcheck — exhaustive schedule exploration for write-buffer programs
//!
//! An explicit-state model checker over the [`wbmem`] machine. A state is a
//! full system configuration (shared memory, write buffers, process
//! states); transitions are every schedule element the machine accepts —
//! both *which process steps* and, crucially for PSO, *which buffered write
//! commits*. Exploration is exhaustive up to a state budget, so for small
//! `n` the checker decides:
//!
//! * **Mutual exclusion** — at most one process annotated in-CS in any
//!   reachable state. (Annotations flip exactly at acquire-completion and
//!   release-start, and because the explorer can always park a process
//!   inside its critical section, any hold-interval overlap in any
//!   execution manifests as a reachable double-annotation state.)
//! * **Permutation of returns** — object-level sanity for counters/queues.
//! * **Termination** — every reachable state can still reach an all-done
//!   state (no deadlock, no inescapable livelock).
//!
//! The [`elision`] module searches fence placements, regenerating the
//! paper's TSO/PSO separation as a machine-checked table: Peterson's lock
//! with a single store–load fence is correct under TSO and demonstrably
//! broken under PSO, with the violating schedule printed.
//!
//! ## Example
//!
//! ```
//! use modelcheck::{check, CheckConfig, Verdict};
//! use simlocks::{build_mutex, FenceMask, LockKind};
//! use wbmem::MemoryModel;
//!
//! let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
//! let verdict = check(&inst.machine(MemoryModel::Pso), &CheckConfig::default());
//! assert!(verdict.is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
mod dpor;
pub mod driver;
pub mod elision;
pub mod lease;
pub mod outcomes;
mod pardpor;
mod resume;

pub use checker::{
    check, CheckConfig, CheckError, CheckpointPolicy, Counterexample, Coverage, Engine, Stats,
    Verdict,
};
pub use driver::{all_ok, check_under_models, ModelVerdict};
pub use elision::{elision_table, minimal_fences, ElisionRow};
pub use ftobs::{MetricsSnapshot, Recorder};
pub use lease::{run_lease, LeaseOutcome, LeaseStatus};
pub use outcomes::{terminal_outcomes, Outcome};
pub use por::{Snapshot, SnapshotError};
pub use resume::resume;
