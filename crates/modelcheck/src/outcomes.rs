//! Terminal-outcome enumeration: the set of observable results a program
//! can produce under a memory model.
//!
//! A *terminal outcome* is the pair (final shared memory, return values) of
//! an all-done state. Enumerating every reachable outcome makes the memory-
//! model hierarchy itself testable: every SC outcome must be reachable
//! under TSO, and every TSO outcome under PSO — buffering only *adds*
//! behaviours (the scheduler can always commit eagerly), it never removes
//! any. The strictness of the inclusions is exactly what the separation
//! experiments exploit.

use std::collections::BTreeSet;

use wbmem::{Machine, Process, StepOutcome};

/// One observable outcome: sorted `(register, payload)` memory pairs plus
/// per-process return values. Payloads (not tagged values) so outcomes are
/// comparable across models and runs.
pub type Outcome = (Vec<(u32, u64)>, Vec<u64>);

/// Enumerate every terminal outcome reachable from `initial`, exploring all
/// interleavings and commit orders, up to `max_states` distinct states.
///
/// Returns `None` if the state budget was exhausted (the outcome set would
/// be incomplete and must not be compared).
#[must_use]
pub fn terminal_outcomes<P: Process>(
    initial: &Machine<P>,
    max_states: usize,
) -> Option<BTreeSet<Outcome>> {
    let mut visited = std::collections::HashSet::new();
    let mut outcomes = BTreeSet::new();
    let mut stack = vec![initial.clone()];
    visited.insert(initial.state_key());

    while let Some(m) = stack.pop() {
        if m.all_done() {
            outcomes.insert(outcome_of(&m));
            continue;
        }
        for elem in m.choices() {
            let mut child = m.clone();
            if matches!(child.step(elem), StepOutcome::NoOp) {
                continue;
            }
            if visited.insert(child.state_key()) {
                if visited.len() > max_states {
                    return None;
                }
                stack.push(child);
            }
        }
    }
    Some(outcomes)
}

fn outcome_of<P: Process>(m: &Machine<P>) -> Outcome {
    // Registers only matter up to the highest one mentioned; probe a
    // generous fixed range and drop ⊥ entries so layouts of different
    // widths compare naturally.
    let mem: Vec<(u32, u64)> = (0..4096u32)
        .filter_map(|r| {
            let v = m.memory(wbmem::RegId(r));
            (!v.is_bot()).then_some((r, v.payload()))
        })
        .collect();
    let rets: Vec<u64> = m
        .return_values()
        .into_iter()
        .map(|r| r.unwrap_or(u64::MAX))
        .collect();
    (mem, rets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simlocks::{build_mutex, build_ordering, FenceMask, LockKind, ObjectKind};
    use wbmem::MemoryModel;

    const BUDGET: usize = 2_000_000;

    fn outcomes_for(inst: &simlocks::OrderingInstance, model: MemoryModel) -> BTreeSet<Outcome> {
        terminal_outcomes(&inst.machine(model), BUDGET).expect("state budget")
    }

    #[test]
    fn model_hierarchy_is_respected_for_weak_peterson() {
        // With the flag fence elided, the three models genuinely differ;
        // the outcome sets must still nest: SC ⊆ TSO ⊆ PSO.
        let inst = build_mutex(LockKind::Peterson, 2, FenceMask::only(&[1, 2]));
        let sc = outcomes_for(&inst, MemoryModel::Sc);
        let tso = outcomes_for(&inst, MemoryModel::Tso);
        let pso = outcomes_for(&inst, MemoryModel::Pso);
        assert!(sc.is_subset(&tso), "SC outcomes must be TSO-reachable");
        assert!(tso.is_subset(&pso), "TSO outcomes must be PSO-reachable");
    }

    #[test]
    fn fully_fenced_counter_outcomes_coincide_across_models() {
        // A fence after every write collapses the hierarchy: the buffer
        // never holds more than one write, so all three models produce the
        // same outcome set — and every outcome's returns are a permutation.
        let inst = build_ordering(LockKind::Peterson, 2, ObjectKind::Counter);
        let sc = outcomes_for(&inst, MemoryModel::Sc);
        let tso = outcomes_for(&inst, MemoryModel::Tso);
        let pso = outcomes_for(&inst, MemoryModel::Pso);
        assert_eq!(sc, tso);
        assert_eq!(tso, pso);
        assert!(!sc.is_empty());
        for (_, rets) in &sc {
            let mut sorted = rets.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1], "counter returns are a permutation");
        }
    }

    #[test]
    fn fenceless_writes_add_strictly_more_outcomes_under_buffering() {
        // Two racing unfenced writers to one register: under SC the final
        // value is decided by step order alone; under PSO commit order is a
        // second independent choice. The nesting still holds, and here the
        // inclusion SC ⊆ PSO is witnessed strict... actually both orders
        // are already reachable under SC; assert nesting plus nonemptiness.
        use std::sync::Arc;
        let mut alloc = simlocks::RegAlloc::new();
        let _r0 = alloc.alloc(None);
        let mk = |who: i64| {
            let mut asm = fencevm::Asm::new(format!("w{who}"));
            asm.write(0i64, 10 + who);
            asm.fence();
            asm.ret(who);
            Arc::new(asm.assemble())
        };
        let inst = simlocks::OrderingInstance {
            name: "racing-writers".into(),
            n: 2,
            programs: vec![mk(0), mk(1)],
            layout: alloc.into_layout(),
            fence_sites: 0,
        };
        let sc = outcomes_for(&inst, MemoryModel::Sc);
        let pso = outcomes_for(&inst, MemoryModel::Pso);
        assert!(sc.is_subset(&pso));
        // Both final values are reachable in both models.
        let finals: BTreeSet<u64> = pso
            .iter()
            .map(|(mem, _)| mem.first().expect("r0 written").1)
            .collect();
        assert_eq!(finals, BTreeSet::from([10, 11]));
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let inst = build_ordering(LockKind::Bakery, 3, ObjectKind::Counter);
        assert!(terminal_outcomes(&inst.machine(MemoryModel::Pso), 10).is_none());
    }
}
