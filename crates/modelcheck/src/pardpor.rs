//! The work-stealing parallel DPOR engine ([`Engine::ParallelDpor`]).
//!
//! Multiplies the repo's two performance levers: the `por` reduction
//! (sleep sets + ample sets + reorder bound, exactly as in
//! [`crate::dpor`]) and multi-core sweep (as in `Engine::Parallel`).
//! Every worker runs the sequential reduced DFS verbatim; the only
//! additions are *where states are deduplicated* and *how idle workers
//! get work*:
//!
//! * **Dedup** rides on [`por::FpTable`], a lock-free sharded
//!   fingerprint table (CAS insert, write-once slots), so the one
//!   structure every worker touches on every transition takes no locks.
//!   The global table decides *first visits* — state counting and
//!   property checks happen exactly once across all workers. The
//!   sleep-set/budget *dominance* pruning ([`por::VisitTable`] is not
//!   thread-safe, and its antichains are order-dependent anyway) stays
//!   worker-local: a worker may therefore re-explore a state another
//!   worker covered. That is strictly *less* pruning than the
//!   sequential engine — sound by the same argument that makes
//!   dominance pruning optional. Under sleep sets alone (termination
//!   mode, diagnostic mode) both engines visit exactly the reachable
//!   states, so `Stats.states` matches the sequential count. Under
//!   *ample* pruning the dropped-state set is traversal-dependent for
//!   any DPOR (the cycle proviso consults the path that reached the
//!   state), so a re-exploration with a smaller sleep set can reach a
//!   handful of states the sequential order happened to drop — counts
//!   may differ by a sliver; verdicts never do.
//! * **Work distribution** is fork-point stealing: at its poll cadence a
//!   busy worker donates the unexplored remainder of its bottom-most
//!   frame — replay path, sleep set, taken siblings, ample-excluded
//!   choices, remaining reorder budget ([`por::ForkPoint`]) — into a
//!   bounded queue ([`por::ForkQueue`]); an idle worker re-materializes
//!   the state by replaying the path on a fresh machine clone
//!   ([`wbmem::Machine::replay_path`], unrecorded so metrics stay
//!   clean) and continues the frame as the owner would have. The path's
//!   intermediate fingerprints pre-seed the thief's on-stack set, so
//!   the cycle proviso fires for the thief exactly where it would have
//!   for the owner. See DESIGN.md §7 for the full soundness argument.
//!
//! **Verdict discipline** mirrors `Engine::Parallel`, with the
//! sequential fallback being [`crate::dpor::check_dpor`] so results stay
//! bit-identical to [`Engine::Dpor`](crate::Engine::Dpor): any
//! violation, state-limit overrun, stuck state, or worker panic cancels
//! the sweep (metrics reset) and reruns sequentially; budget expiry
//! returns [`Verdict::Inconclusive`] with merged coverage. In the
//! diagnostic disabled-reduction mode (`reorder_bound ==
//! Some(u32::MAX)`) the global table is the *only* pruning rule, a
//! completed sweep expands every reachable state exactly once, and the
//! run's [`ftobs::MetricsSnapshot`] is bit-identical to the sequential
//! engines' — the property the differential suite pins down. In reduced
//! mode `Stats.transitions` may exceed the sequential count by the
//! cross-worker re-explorations, and under ample pruning `Stats.states`
//! may drift by the proviso's path dependence (above); verdicts do not
//! differ.
//!
//! Tiny runs skip all of this: below a state threshold (default 4096;
//! override with `FT_PARDPOR_SEQ`, `0` disables the gate) the check
//! runs [`check_dpor`] outright — first capped at the threshold, and
//! only if that overflows does the parallel machinery spin up.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use ftobs::{Gauge, Metric, Progress};
use por::{expand, step_weight, ForkPoint, ForkQueue, FpTable, SleepSet, VisitTable};
use wbmem::{Machine, Process, SchedElem, StepOutcome, UndoToken};

use crate::checker::{
    find_stuck, fingerprint, in_cs_count, merge_id, panic_message, returns_are_permutation,
    violates_invariant, CheckConfig, CheckError, Coverage, Stats, Verdict,
};
use crate::dpor::check_dpor;

/// States below which coordination is not worth paying for (the
/// sequential engine explores them first; only an overflow starts the
/// workers). `FT_PARDPOR_SEQ` overrides; `0` disables the gate — the
/// differential tests use that to force the parallel path onto spaces
/// of every size.
fn seq_threshold() -> usize {
    std::env::var("FT_PARDPOR_SEQ")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096)
}

/// What one work-stealing worker reports back; the superset of the
/// plain parallel engine's report plus the DPOR- and stealing-specific
/// tallies.
#[derive(Default)]
struct PReport {
    transitions: usize,
    /// Fingerprints of the all-done states this worker first visited.
    terminal_fps: Vec<u128>,
    /// `(parent fp, child fp)` edges, taken and slept-probed (collected
    /// only when the termination check is on).
    edges: Vec<(u128, u128)>,
    /// Worker saw a property violation (details come from the
    /// sequential rerun).
    violated: bool,
    /// Open DFS frames when the worker stopped early.
    frontier: usize,
    sleep_hits: usize,
    /// Fork points this worker donated.
    published: u64,
    /// Fork points this worker took and re-materialized.
    stolen: u64,
}

/// One frame of a worker's reduced DFS — the sequential engine's frame
/// plus `depth` (how many schedule elements reach it from the root), so
/// a donation can snapshot the frame's replay path in O(depth).
struct PFrame<P> {
    fp: u128,
    depth: usize,
    sleep: SleepSet,
    choices: Vec<SchedElem>,
    next: usize,
    taken: Vec<(SchedElem, wbmem::Footprint)>,
    excluded: Vec<SchedElem>,
    remaining: u32,
    token: Option<UndoToken<P>>,
}

enum TaskEnd {
    Completed,
    Aborted,
}

/// The coordinator; see the module docs. Entered via [`crate::check`]
/// with [`Engine::ParallelDpor`](crate::Engine::ParallelDpor).
pub(crate) fn check_pardpor<P: Process>(
    initial: &Machine<P>,
    config: &CheckConfig,
    threads: usize,
    reorder_bound: Option<u32>,
    deadline: Option<Instant>,
) -> Verdict {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    };
    if threads <= 1 {
        return check_dpor(initial, config, reorder_bound, deadline);
    }

    // Sequential gate: small spaces never pay for coordination. A capped
    // sequential run either finishes (its verdict is what the uncapped
    // sequential engine would return, since the cap was never hit) or
    // overflows, in which case its partial metrics are dropped and the
    // parallel sweep starts from scratch.
    let threshold = seq_threshold();
    if threshold > 0 {
        if config.max_states <= threshold {
            return check_dpor(initial, config, reorder_bound, deadline);
        }
        let mut capped = config.clone();
        capped.max_states = threshold;
        let v = check_dpor(initial, &capped, reorder_bound, deadline);
        if !matches!(v, Verdict::StateLimit(_)) {
            return v;
        }
        config.recorder.reset_counts();
    }

    // Root-state checks mirror the sequential engine; any violation is
    // reproduced sequentially for an identical verdict. The invariant is
    // a user-supplied function, so even the root evaluation is guarded.
    if config.check_mutex && in_cs_count(initial) > 1 {
        return check_dpor(initial, config, reorder_bound, deadline);
    }
    match catch_unwind(AssertUnwindSafe(|| violates_invariant(config, initial))) {
        Ok(false) => {}
        Ok(true) => return check_dpor(initial, config, reorder_bound, deadline),
        Err(payload) => {
            return Verdict::Error(
                Stats::default(),
                CheckError::Panic(format!(
                    "root invariant: {}",
                    panic_message(payload.as_ref())
                )),
            )
        }
    }

    let disable_reduction = reorder_bound == Some(u32::MAX);
    let use_ample = !config.check_termination && !disable_reduction;
    let budget0 = reorder_bound.unwrap_or(u32::MAX);
    let obs = &config.recorder;

    let table = FpTable::new();
    let root_fp = fingerprint(initial);
    table.insert(root_fp);
    let state_count = AtomicUsize::new(1); // the root
    let cancel = AtomicBool::new(false);
    let budget_hit = AtomicBool::new(false);
    obs.on_state(0);
    if initial.all_done() {
        obs.incr(Metric::TerminalStates);
    }

    // Seed: the root's expansion as the first fork point. Root sleep is
    // empty, so nothing is slept (no probes) and `x.slept == 0`.
    let queue = ForkQueue::new(threads * 2);
    if !initial.all_done() {
        let root_choices = initial.choices();
        let mut x = expand(initial, &root_choices, &SleepSet::new(), use_ample, obs);
        if disable_reduction {
            x.explore.reverse();
        }
        let seeded = queue.publish(ForkPoint {
            path: Vec::new(),
            sleep: SleepSet::new(),
            taken: Vec::new(),
            choices: x.explore,
            excluded: x.excluded,
            remaining: budget0,
        });
        debug_assert!(seeded.is_ok(), "fresh queue rejected the root fork point");
    }

    // Workers run under `catch_unwind`: a panicking property closure (or
    // a bug, including a fingerprint-table overflow) must not abort the
    // checker. On panic the worker cancels its peers and closes the
    // queue so blocked takers wake; the caller then falls back to a
    // deterministic sequential rerun, itself guarded.
    let results: Vec<Result<PReport, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let table = &table;
                let queue = &queue;
                let state_count = &state_count;
                let cancel = &cancel;
                let budget_hit = &budget_hit;
                scope.spawn(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        Worker {
                            initial,
                            config,
                            table,
                            queue,
                            state_count,
                            cancel,
                            budget_hit,
                            deadline,
                            low_water: threads,
                            disable_reduction,
                            use_ample,
                            report: PReport::default(),
                            visited: VisitTable::new(),
                        }
                        .run()
                    }));
                    if out.is_err() {
                        cancel.store(true, Ordering::SeqCst);
                        queue.close();
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(Ok(report)) => Ok(report),
                Ok(Err(payload)) => Err(panic_message(payload.as_ref())),
                Err(payload) => Err(panic_message(payload.as_ref())),
            })
            .collect()
    });

    if let Some(msg) = results.iter().find_map(|r| r.as_ref().err().cloned()) {
        // A worker panicked. Rerun the sequential DPOR engine
        // (deterministic, guarded); if the panic is deterministic too,
        // surface it as an error verdict instead of aborting the
        // process. The partial sweep's metrics are dropped first.
        config.recorder.reset_counts();
        return match catch_unwind(AssertUnwindSafe(|| {
            check_dpor(initial, config, reorder_bound, deadline)
        })) {
            Ok(verdict) => verdict,
            Err(payload) => Verdict::Error(
                Stats::default(),
                CheckError::Panic(format!(
                    "pardpor worker: {msg}; sequential rerun: {}",
                    panic_message(payload.as_ref())
                )),
            ),
        };
    }
    let reports: Vec<PReport> = results.into_iter().filter_map(Result::ok).collect();

    // Stealing/contention observability. These counters sit past the
    // deterministic range, so the diagnostic-mode snapshot equality with
    // the sequential engines is unaffected; the rerun paths below reset
    // counts anyway, so their runs stand alone.
    if obs.is_enabled() {
        obs.add(
            Metric::ForkPublished,
            reports.iter().map(|r| r.published).sum(),
        );
        obs.add(Metric::ForkStolen, reports.iter().map(|r| r.stolen).sum());
        obs.add(Metric::FpContention, table.contention());
    }

    let stats = Stats {
        states: state_count.load(Ordering::SeqCst),
        transitions: reports.iter().map(|r| r.transitions).sum(),
        terminal_states: reports.iter().map(|r| r.terminal_fps.len()).sum::<usize>()
            + usize::from(initial.all_done()),
        ..Stats::default()
    };

    let limit_hit = state_count.load(Ordering::SeqCst) > config.max_states;
    if limit_hit || reports.iter().any(|r| r.violated) {
        // The sweep stopped early; reproduce the exact sequential
        // verdict (counterexample included, still honoring the remaining
        // budget), with the partial sweep's metrics dropped — the result
        // is bit-identical to a direct `Engine::Dpor` run.
        config.recorder.reset_counts();
        return check_dpor(initial, config, reorder_bound, deadline);
    }
    if budget_hit.load(Ordering::SeqCst) || cancel.load(Ordering::SeqCst) {
        return Verdict::Inconclusive(
            stats,
            Coverage {
                frontier: reports.iter().map(|r| r.frontier).sum(),
                sleep_hits: reports.iter().map(|r| r.sleep_hits).sum(),
            },
        );
    }

    if config.check_termination {
        // Merge the per-worker fingerprint graphs (taken + slept-probed
        // edges — with ample off under the termination check and sleep
        // sets pruning edges only, the merged graph covers the full
        // reachable graph, like the sequential engine's) and run the
        // same reverse-reachability pass. Ids are arbitrary; the stuck
        // state's identity and counterexample come from the rerun.
        let mut ids: HashMap<u128, u32> = HashMap::new();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut terminal: Vec<u32> = Vec::new();
        let Some(root) = merge_id(&mut ids, root_fp) else {
            return Verdict::Error(stats, CheckError::TooManyStates);
        };
        if initial.all_done() {
            terminal.push(root);
        }
        for report in &reports {
            for &(a, b) in &report.edges {
                match (merge_id(&mut ids, a), merge_id(&mut ids, b)) {
                    (Some(ia), Some(ib)) => edges.push((ia, ib)),
                    _ => return Verdict::Error(stats, CheckError::TooManyStates),
                }
            }
            for &t in &report.terminal_fps {
                let Some(it) = merge_id(&mut ids, t) else {
                    return Verdict::Error(stats, CheckError::TooManyStates);
                };
                terminal.push(it);
            }
        }
        if find_stuck(ids.len(), &edges, &terminal).is_some() {
            config.recorder.reset_counts();
            return check_dpor(initial, config, reorder_bound, deadline);
        }
    }

    obs.gauge_set(Gauge::DedupOccupancy, table.len() as u64);
    Verdict::Ok(stats)
}

/// One work-stealing worker: takes fork points off the queue,
/// re-materializes them, and runs the sequential reduced DFS over the
/// continuation, donating its own fork points when peers go hungry.
struct Worker<'a, P: Process> {
    initial: &'a Machine<P>,
    config: &'a CheckConfig,
    table: &'a FpTable,
    queue: &'a ForkQueue,
    state_count: &'a AtomicUsize,
    cancel: &'a AtomicBool,
    budget_hit: &'a AtomicBool,
    deadline: Option<Instant>,
    /// Donate when fewer than this many fork points are pending.
    low_water: usize,
    disable_reduction: bool,
    use_ample: bool,
    report: PReport,
    /// Worker-local dominance pruning (see the module docs: local-only
    /// is sound, it just prunes less than the sequential single table).
    visited: VisitTable,
}

impl<P: Process> Worker<'_, P> {
    fn run(mut self) -> PReport {
        while let Some(task) = self.queue.take() {
            let end = self.run_task(task);
            self.queue.done();
            if matches!(end, TaskEnd::Aborted) {
                break;
            }
        }
        self.report
    }

    /// Abort helper: raise `cancel`, wake blocked peers, record the open
    /// frontier.
    fn abort(&mut self, open_frames: usize) -> TaskEnd {
        self.cancel.store(true, Ordering::SeqCst);
        self.queue.close();
        self.report.frontier += open_frames;
        TaskEnd::Aborted
    }

    #[allow(clippy::too_many_lines)] // the sequential DFS body, kept in one piece on purpose
    fn run_task(&mut self, task: ForkPoint) -> TaskEnd {
        let obs = &self.config.recorder;
        let model = self.initial.config().model;
        self.report.stolen += 1;
        let mut scratch: Vec<SchedElem> = Vec::new();

        // Re-materialize the fork point on a fresh machine. The replay
        // is unrecorded (the recorder attaches afterwards) so it cannot
        // pollute the step metrics shared with the sequential engines.
        // The intermediate fingerprints pre-seed the on-stack multiset:
        // they are exactly the ancestors the owner had on its stack, so
        // the cycle proviso keeps firing at the same places. A replay
        // failure is a logic error; the panic lands in the coordinator's
        // catch_unwind and degrades to the sequential rerun.
        let mut m = self.initial.clone();
        let mut on_stack: HashMap<u128, u32> = HashMap::new();
        let mut path: Vec<SchedElem> = Vec::with_capacity(task.path.len() + 32);
        for &e in &task.path {
            *on_stack.entry(fingerprint(&m)).or_insert(0) += 1;
            assert!(
                m.replay_path(std::slice::from_ref(&e), &mut scratch),
                "pardpor: fork-point path failed to replay"
            );
            path.push(e);
        }
        let task_fp = fingerprint(&m);
        m.set_recorder(obs.clone());
        let mut tally = obs.tally();

        let mut frames: Vec<PFrame<P>> = Vec::new();
        *on_stack.entry(task_fp).or_insert(0) += 1;
        frames.push(PFrame {
            fp: task_fp,
            depth: path.len(),
            sleep: task.sleep,
            choices: task.choices,
            next: 0,
            taken: task.taken,
            excluded: task.excluded,
            remaining: task.remaining,
            token: None,
        });

        let mut steps_since_poll = 0usize;
        loop {
            steps_since_poll += 1;
            if steps_since_poll >= 256 {
                steps_since_poll = 0;
                if self.cancel.load(Ordering::Relaxed) {
                    self.report.frontier += frames.len();
                    return TaskEnd::Aborted;
                }
                if obs.is_enabled() {
                    obs.gauge_max(Gauge::MaxFrontier, (frames.len() + self.queue.len()) as u64);
                    let now = Instant::now();
                    let spent = match (self.config.budget, self.deadline) {
                        (Some(b), Some(d)) => {
                            Some(b.saturating_sub(d.saturating_duration_since(now)))
                        }
                        _ => None,
                    };
                    obs.maybe_heartbeat(&Progress {
                        states: self.state_count.load(Ordering::Relaxed) as u64,
                        transitions: self.report.transitions as u64,
                        frontier: frames.len() as u64,
                        budget: self.config.budget,
                        spent,
                    });
                }
                if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    self.budget_hit.store(true, Ordering::SeqCst);
                    return self.abort(frames.len());
                }
                if frames.len() > 1 && self.queue.wants_work(self.low_water) {
                    self.donate(&mut frames, &path);
                }
            }

            let Some(top) = frames.last_mut() else { break };
            if top.next == top.choices.len() {
                let frame = frames.pop().expect("non-empty stack");
                match on_stack.get_mut(&frame.fp) {
                    Some(1) => {
                        on_stack.remove(&frame.fp);
                    }
                    Some(c) => *c -= 1,
                    None => unreachable!("frame fingerprint missing from the stack set"),
                }
                if let Some(token) = frame.token {
                    m.undo(token);
                    path.pop();
                }
                continue;
            }
            let elem = top.choices[top.next];
            top.next += 1;
            let parent_fp = top.fp;
            let parent_depth = top.depth;
            let parent_remaining = top.remaining;

            let weight = if self.disable_reduction {
                0
            } else {
                step_weight(&m, elem)
            };
            if weight > parent_remaining {
                continue; // beyond the reorder bound: neither taken nor slept
            }

            let (out, token) = m.step_recorded(elem);
            if matches!(out, StepOutcome::NoOp) {
                tally.noop_step();
                m.undo(token);
                continue;
            }
            let efp = token.footprint();
            self.report.transitions += 1;
            tally.on_transition();
            let fp = fingerprint(&m);
            if self.config.check_termination {
                self.report.edges.push((parent_fp, fp));
            }

            // Cycle proviso (C3), exactly as in the sequential engine:
            // the thief's on-stack set contains the replayed ancestors,
            // so a cycle closing through the stolen subtree still forces
            // the full expansion.
            if on_stack.contains_key(&fp) && !top.excluded.is_empty() {
                let reinstated: Vec<SchedElem> = top.excluded.drain(..).collect();
                for e in reinstated {
                    if top.sleep.contains(e) {
                        self.report.sleep_hits += 1;
                        obs.incr(Metric::SleepHits);
                    } else {
                        top.choices.push(e);
                    }
                }
            }

            let mut child_sleep = if self.disable_reduction {
                SleepSet::new()
            } else {
                top.sleep.inherit(efp, model)
            };
            if !self.disable_reduction {
                for &(se, sf) in &top.taken {
                    if sf.independent(efp, model) {
                        child_sleep.insert(se, sf);
                    }
                }
                top.taken.push((elem, efp));
            }

            let child_remaining = parent_remaining - weight;
            // Global first-visit gate: state counting and property
            // checks happen exactly once across all workers. In
            // diagnostic mode this is also the (only) pruning rule; in
            // reduced mode pruning is the worker-local dominance table.
            let fresh = self.table.insert(fp);
            let claimed = if self.disable_reduction {
                fresh
            } else {
                self.visited.try_claim(fp, &child_sleep, child_remaining)
            };
            if !claimed {
                if self.disable_reduction {
                    tally.dedup_hit();
                } else {
                    self.report.sleep_hits += 1;
                    obs.incr(Metric::SleepHits);
                }
                m.undo(token);
                continue;
            }

            if fresh {
                tally.on_state(frames.len() as u64);
                let states = self.state_count.fetch_add(1, Ordering::SeqCst) + 1;
                if states > self.config.max_states {
                    return self.abort(frames.len());
                }
                if self.config.check_mutex && in_cs_count(&m) > 1 {
                    self.report.violated = true;
                    return self.abort(frames.len());
                }
                if violates_invariant(self.config, &m) {
                    self.report.violated = true;
                    return self.abort(frames.len());
                }
                if m.all_done() {
                    self.report.terminal_fps.push(fp);
                    tally.terminal_state();
                    if self.config.check_permutation && !returns_are_permutation(&m) {
                        self.report.violated = true;
                        return self.abort(frames.len());
                    }
                    m.undo(token);
                    continue;
                }
            } else if m.all_done() {
                // Re-entered terminal state (smaller sleep set or another
                // worker's first visit): nothing to expand.
                m.undo(token);
                continue;
            }

            m.choices_into(&mut scratch);
            debug_assert!(!scratch.is_empty(), "non-terminal state has no choices");
            let mut x = expand(&m, &scratch, &child_sleep, self.use_ample, obs);
            if self.disable_reduction {
                x.explore.reverse();
            }
            self.report.sleep_hits += x.slept;
            if self.config.check_termination && x.slept > 0 {
                // Slept-edge probes, fingerprint-keyed (no global id
                // space until merge time).
                for &e in &scratch {
                    if !child_sleep.contains(e) {
                        continue;
                    }
                    obs.incr(Metric::SleptProbes);
                    let (pout, ptoken) = m.step_recorded(e);
                    if !matches!(pout, StepOutcome::NoOp) {
                        self.report.edges.push((fp, fingerprint(&m)));
                    }
                    m.undo(ptoken);
                }
            }
            *on_stack.entry(fp).or_insert(0) += 1;
            path.push(elem);
            frames.push(PFrame {
                fp,
                depth: parent_depth + 1,
                sleep: child_sleep,
                choices: x.explore,
                next: 0,
                taken: Vec::new(),
                excluded: x.excluded,
                remaining: child_remaining,
                token: Some(token),
            });
        }
        TaskEnd::Completed
    }

    /// Donate the bottom-most frame with unexplored choices (the largest
    /// subtrees sit lowest) — unless it is the current top, which the
    /// owner keeps so it never strands itself. The donated remainder is
    /// an exact continuation relocation: same choices (in order), same
    /// sleep set, same taken list, the excluded choices move with it
    /// (the thief's on-stack set contains every ancestor the proviso
    /// could need them for), same remaining budget. On publish the
    /// owner's cursor jumps to the end — exactly one side owns the
    /// remainder at any time. A full queue puts everything back.
    fn donate(&mut self, frames: &mut [PFrame<P>], path: &[SchedElem]) {
        let top = frames.len() - 1;
        let Some(k) = (0..top).find(|&k| frames[k].next < frames[k].choices.len()) else {
            return;
        };
        let f = &mut frames[k];
        let fork = ForkPoint {
            path: path[..f.depth].to_vec(),
            sleep: f.sleep.clone(),
            taken: f.taken.clone(),
            choices: f.choices[f.next..].to_vec(),
            excluded: std::mem::take(&mut f.excluded),
            remaining: f.remaining,
        };
        match self.queue.publish(fork) {
            Ok(()) => {
                f.next = f.choices.len();
                self.report.published += 1;
            }
            Err(fork) => f.excluded = fork.excluded,
        }
    }
}
