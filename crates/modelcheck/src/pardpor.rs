//! The work-stealing parallel DPOR engine ([`Engine::ParallelDpor`]).
//!
//! Multiplies the repo's two performance levers: the `por` reduction
//! (sleep sets + ample sets + reorder bound, exactly as in
//! [`crate::dpor`]) and multi-core sweep (as in `Engine::Parallel`).
//! Every worker runs the sequential reduced DFS verbatim; the only
//! additions are *where states are deduplicated* and *how idle workers
//! get work*:
//!
//! * **Dedup** rides on [`por::FpTable`], a lock-free sharded
//!   fingerprint table (CAS insert, write-once slots), so the one
//!   structure every worker touches on every transition takes no locks.
//!   The global table decides *first visits* — state counting and
//!   property checks happen exactly once across all workers. The
//!   sleep-set/budget *dominance* pruning ([`por::VisitTable`] is not
//!   thread-safe, and its antichains are order-dependent anyway) stays
//!   worker-local: a worker may therefore re-explore a state another
//!   worker covered. That is strictly *less* pruning than the
//!   sequential engine — sound by the same argument that makes
//!   dominance pruning optional. Under sleep sets alone (termination
//!   mode, diagnostic mode) both engines visit exactly the reachable
//!   states, so `Stats.states` matches the sequential count. Under
//!   *ample* pruning the dropped-state set is traversal-dependent for
//!   any DPOR (the cycle proviso consults the path that reached the
//!   state), so a re-exploration with a smaller sleep set can reach a
//!   handful of states the sequential order happened to drop — counts
//!   may differ by a sliver; verdicts never do.
//! * **Work distribution** is fork-point stealing: at its poll cadence a
//!   busy worker donates the unexplored remainder of its bottom-most
//!   frame — replay path, sleep set, taken siblings, ample-excluded
//!   choices, remaining reorder budget ([`por::ForkPoint`]) — into a
//!   bounded queue ([`por::ForkQueue`]); an idle worker re-materializes
//!   the state by replaying the path on a fresh machine clone
//!   ([`wbmem::Machine::replay_path`], unrecorded so metrics stay
//!   clean) and continues the frame as the owner would have. The path's
//!   intermediate fingerprints pre-seed the thief's on-stack set, so
//!   the cycle proviso fires for the thief exactly where it would have
//!   for the owner. See DESIGN.md §7 for the full soundness argument.
//!
//! **Verdict discipline** mirrors `Engine::Parallel`, with the
//! sequential fallback being [`crate::dpor::check_dpor`] so results stay
//! bit-identical to [`Engine::Dpor`](crate::Engine::Dpor): any
//! violation, state-limit overrun, stuck state, or worker panic cancels
//! the sweep (metrics reset) and reruns sequentially; budget expiry
//! returns [`Verdict::Inconclusive`] with merged coverage. In the
//! diagnostic disabled-reduction mode (`reorder_bound ==
//! Some(u32::MAX)`) the global table is the *only* pruning rule, a
//! completed sweep expands every reachable state exactly once, and the
//! run's [`ftobs::MetricsSnapshot`] is bit-identical to the sequential
//! engines' — the property the differential suite pins down. In reduced
//! mode `Stats.transitions` may exceed the sequential count by the
//! cross-worker re-explorations, and under ample pruning `Stats.states`
//! may drift by the proviso's path dependence (above); verdicts do not
//! differ.
//!
//! Tiny runs skip all of this: below a state threshold (default 4096;
//! override with `FT_PARDPOR_SEQ`, `0` disables the gate) the check
//! runs [`check_dpor`] outright — first capped at the threshold, and
//! only if that overflows does the parallel machinery spin up.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ftobs::{
    EstStats, Gauge, Metric, MetricsSnapshot, Progress, SpanId, TraceCtx, TreeEstimator, J,
};
use por::{
    expand, step_weight, BaseCounts, ForkPoint, ForkQueue, FpTable, RunMeta, SleepSet, Snapshot,
    VisitTable,
};
use wbmem::{Machine, Process, SchedElem, StepOutcome, UndoToken};

use crate::checker::{
    config_hash, find_stuck, fingerprint, in_cs_count, merge_id, panic_message,
    returns_are_permutation, violates_invariant, without_checkpoint, write_checkpoint, CheckConfig,
    CheckError, CheckpointPolicy, Coverage, Stats, Verdict,
};
use crate::dpor::check_dpor;

/// States below which coordination is not worth paying for (the
/// sequential engine explores them first; only an overflow starts the
/// workers). `FT_PARDPOR_SEQ` overrides; `0` disables the gate — the
/// differential tests use that to force the parallel path onto spaces
/// of every size.
fn seq_threshold() -> usize {
    std::env::var("FT_PARDPOR_SEQ")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096)
}

/// What one work-stealing worker reports back; the superset of the
/// plain parallel engine's report plus the DPOR- and stealing-specific
/// tallies.
#[derive(Default)]
struct PReport {
    transitions: usize,
    /// Fingerprints of the all-done states this worker first visited.
    terminal_fps: Vec<u128>,
    /// `(parent fp, child fp)` edges, taken and slept-probed (collected
    /// only when the termination check is on).
    edges: Vec<(u128, u128)>,
    /// Worker saw a property violation (details come from the
    /// sequential rerun).
    violated: bool,
    /// Open DFS frames when the worker stopped early.
    frontier: usize,
    sleep_hits: usize,
    /// Fork points this worker donated.
    published: u64,
    /// Fork points this worker took and re-materialized.
    stolen: u64,
    /// Open frames serialized on a graceful stop (checkpoint policy
    /// only); merged with the queue's pending tasks into the snapshot.
    forks: Vec<ForkPoint>,
    /// This worker's tree-size samples, merged by the coordinator into
    /// the sweep-wide progress estimate.
    est: EstStats,
}

/// The exploration state a resumed run starts from, decoded from a
/// [`Snapshot`] by [`crate::resume`]: the fingerprints pre-seed the
/// global first-visit table (so already-counted states are not
/// re-counted or re-checked), the fork points seed the work queue, and
/// the base counts/metrics/graph fold into the final statistics so the
/// combined run reports what an uninterrupted one would have.
pub(crate) struct ResumeSeed {
    pub(crate) visited: Vec<u128>,
    pub(crate) forks: Vec<ForkPoint>,
    pub(crate) base: BaseCounts,
    pub(crate) metrics: MetricsSnapshot,
    pub(crate) edges: Vec<(u128, u128)>,
    pub(crate) terminals: Vec<u128>,
}

/// Watchdog cadence: a busy worker whose heartbeat does not advance for
/// two consecutive intervals is declared stalled. `FT_WATCHDOG_MS`
/// overrides the default 5000ms interval (the supervised tests use a
/// few tens of milliseconds).
fn watchdog_interval() -> Option<Duration> {
    std::env::var("FT_WATCHDOG_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
}

/// One frame of a worker's reduced DFS — the sequential engine's frame
/// plus `depth` (how many schedule elements reach it from the root), so
/// a donation can snapshot the frame's replay path in O(depth).
struct PFrame<P> {
    fp: u128,
    depth: usize,
    sleep: SleepSet,
    choices: Vec<SchedElem>,
    next: usize,
    taken: Vec<(SchedElem, wbmem::Footprint)>,
    excluded: Vec<SchedElem>,
    remaining: u32,
    token: Option<UndoToken<P>>,
}

enum TaskEnd {
    Completed,
    Aborted,
}

/// The coordinator; see the module docs. Entered via [`crate::check`]
/// with [`Engine::ParallelDpor`](crate::Engine::ParallelDpor), or via
/// [`crate::resume`] with a [`ResumeSeed`] decoded from a checkpoint —
/// the seeded path is also how the *sequential* engines resume: one
/// worker consuming their serialized frontier runs the same DFS they
/// would have (with the diagnostic mode reproducing `Engine::Undo`'s
/// exact edge multiset).
pub(crate) fn check_pardpor<P: Process>(
    initial: &Machine<P>,
    config: &CheckConfig,
    threads: usize,
    reorder_bound: Option<u32>,
    deadline: Option<Instant>,
    resume: Option<ResumeSeed>,
) -> Verdict {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    };
    let seeded = resume.is_some();
    if threads <= 1 && !seeded {
        return traced_seq("seq_gate", initial, config, reorder_bound, deadline);
    }

    // Sequential gate: small spaces never pay for coordination. A capped
    // sequential run either finishes (its verdict is what the uncapped
    // sequential engine would return, since the cap was never hit) or
    // overflows, in which case its partial metrics are dropped and the
    // parallel sweep starts from scratch. A resumed run skips the gate:
    // its work-list is the snapshot's frontier, not the root.
    let threshold = seq_threshold();
    if threshold > 0 && !seeded {
        if config.max_states <= threshold {
            return traced_seq("seq_gate", initial, config, reorder_bound, deadline);
        }
        let mut capped = config.clone();
        capped.max_states = threshold;
        let v = traced_seq("seq_gate", initial, &capped, reorder_bound, deadline);
        if !matches!(v, Verdict::StateLimit(_)) {
            return v;
        }
        config.recorder.reset_counts();
    }

    // Root-state checks mirror the sequential engine; any violation is
    // reproduced sequentially for an identical verdict. The invariant is
    // a user-supplied function, so even the root evaluation is guarded.
    // A resumed run skips them: the interrupted run already checked the
    // root (a root violation returns before any checkpoint is written).
    if !seeded {
        if config.check_mutex && in_cs_count(initial) > 1 {
            return traced_seq("seq_rerun", initial, config, reorder_bound, deadline);
        }
        match catch_unwind(AssertUnwindSafe(|| violates_invariant(config, initial))) {
            Ok(false) => {}
            Ok(true) => return traced_seq("seq_rerun", initial, config, reorder_bound, deadline),
            Err(payload) => {
                return Verdict::Error(
                    Stats::default(),
                    CheckError::Panic(format!(
                        "root invariant: {}",
                        panic_message(payload.as_ref())
                    )),
                )
            }
        }
    }

    let disable_reduction = reorder_bound == Some(u32::MAX);
    let use_ample = !config.check_termination && !disable_reduction;
    let budget0 = reorder_bound.unwrap_or(u32::MAX);
    let obs = &config.recorder;
    let policy = config.checkpoint.as_ref();

    let table = FpTable::new();
    let root_fp = fingerprint(initial);
    // Unpack the seed: pre-seed the global first-visit table (resumed
    // workers neither re-count nor re-check states the interrupted run
    // covered) and keep the base counts/metrics/graph for the merge.
    let (base, seed_metrics, seed_edges, seed_terminals, seed_forks) = match resume {
        Some(seed) => {
            for &fp in &seed.visited {
                table.insert(fp);
            }
            (
                seed.base,
                Some(seed.metrics),
                seed.edges,
                seed.terminals,
                Some(seed.forks),
            )
        }
        None => (BaseCounts::default(), None, Vec::new(), Vec::new(), None),
    };
    table.insert(root_fp);
    let state_count = AtomicUsize::new(if seeded { base.states as usize } else { 1 });
    // Transitions executed by *this* process — `stop_after_transitions`
    // is a per-run cut, so a resumed run makes progress before its own
    // cut can fire again.
    let transitions_now = AtomicUsize::new(0);
    let cancel = AtomicBool::new(false);
    let budget_hit = AtomicBool::new(false);
    let tripped = AtomicBool::new(false);
    if !seeded {
        obs.on_state(0);
        if initial.all_done() {
            obs.incr(Metric::TerminalStates);
        }
    }

    // Seed the queue: on a fresh run the root's expansion as the first
    // fork point (root sleep is empty, so nothing is slept and
    // `x.slept == 0`); on a resumed run the snapshot's frontier.
    let forks = match seed_forks {
        Some(forks) => forks,
        None => {
            let mut v = Vec::new();
            if !initial.all_done() {
                let root_choices = initial.choices();
                let mut x = expand(initial, &root_choices, &SleepSet::new(), use_ample, obs);
                if disable_reduction {
                    x.explore.reverse();
                }
                v.push(ForkPoint {
                    path: Vec::new(),
                    sleep: SleepSet::new(),
                    taken: Vec::new(),
                    choices: x.explore,
                    excluded: x.excluded,
                    remaining: budget0,
                    // Root work descends from the engine (or resume) span.
                    span: obs.trace_root().0,
                });
            }
            v
        }
    };
    if seeded {
        obs.add(Metric::ResumeReplayed, forks.len() as u64);
    }
    let queue = ForkQueue::new((threads * 2).max(forks.len()));
    for fork in forks {
        let accepted = queue.publish(fork);
        debug_assert!(accepted.is_ok(), "fresh queue rejected a seed fork point");
    }

    // Per-worker liveness for the watchdog: a heartbeat counter bumped at
    // every poll and task boundary, and a busy flag raised while a task
    // is being executed (an idle worker blocked on the queue is not
    // stalled — the queue wakes it on close).
    let heartbeats: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let busy: Vec<AtomicBool> = (0..threads).map(|_| AtomicBool::new(false)).collect();
    let workers_done = AtomicBool::new(false);
    // The watchdog runs whenever a checkpoint policy is set (supervised
    // mode) or `FT_WATCHDOG_MS` is exported explicitly.
    let watchdog = watchdog_interval()
        .or_else(|| policy.map(|_| Duration::from_millis(5000)))
        .filter(|d| !d.is_zero());

    // Workers run under `catch_unwind`: a panicking property closure (or
    // a bug, including a fingerprint-table overflow) must not abort the
    // checker. On panic the worker cancels its peers and closes the
    // queue so blocked takers wake; the caller then falls back to a
    // deterministic sequential rerun, itself guarded.
    let results: Vec<Result<PReport, String>> = std::thread::scope(|scope| {
        if let Some(interval) = watchdog {
            // Supervisor: declare a busy worker stalled after two
            // consecutive intervals without a heartbeat, then cancel the
            // sweep (the coordinator checkpoints what was saved and
            // falls back to the sequential engine). Scoped threads
            // cannot be abandoned, so a worker wedged in a non-polling
            // loop still delays the join — the watchdog covers the
            // slow-but-responsive case and turns it into a deterministic
            // sequential run instead of an indefinitely degraded sweep.
            let heartbeats = &heartbeats;
            let busy = &busy;
            let workers_done = &workers_done;
            let tripped = &tripped;
            let cancel = &cancel;
            let queue = &queue;
            scope.spawn(move || {
                let mut last: Vec<u64> = heartbeats
                    .iter()
                    .map(|h| h.load(Ordering::Relaxed))
                    .collect();
                let mut stale = vec![0u32; last.len()];
                let tick = interval.min(Duration::from_millis(25));
                let mut next = Instant::now() + interval;
                while !workers_done.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    if workers_done.load(Ordering::Relaxed) {
                        return;
                    }
                    if Instant::now() < next {
                        continue;
                    }
                    next = Instant::now() + interval;
                    for (w, h) in heartbeats.iter().enumerate() {
                        let beat = h.load(Ordering::Relaxed);
                        if busy[w].load(Ordering::Relaxed) && beat == last[w] {
                            stale[w] += 1;
                            if stale[w] >= 2 {
                                tripped.store(true, Ordering::SeqCst);
                                cancel.store(true, Ordering::SeqCst);
                                queue.close();
                                return;
                            }
                        } else {
                            stale[w] = 0;
                        }
                        last[w] = beat;
                    }
                }
            });
        }
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let table = &table;
                let queue = &queue;
                let state_count = &state_count;
                let transitions_now = &transitions_now;
                let cancel = &cancel;
                let budget_hit = &budget_hit;
                let heartbeat = &heartbeats[w];
                let busy = &busy[w];
                scope.spawn(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        Worker {
                            initial,
                            config,
                            table,
                            queue,
                            state_count,
                            transitions_now,
                            cancel,
                            budget_hit,
                            deadline,
                            policy,
                            heartbeat,
                            busy,
                            index: w,
                            low_water: threads,
                            disable_reduction,
                            use_ample,
                            synced_transitions: 0,
                            report: PReport::default(),
                            visited: VisitTable::new(),
                            est: TreeEstimator::new(),
                            tctx: config.recorder.trace_ctx(),
                            cur_span: SpanId::NONE,
                        }
                        .run()
                    }));
                    if out.is_err() {
                        cancel.store(true, Ordering::SeqCst);
                        queue.close();
                    }
                    out
                })
            })
            .collect();
        let results = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(Ok(report)) => Ok(report),
                Ok(Err(payload)) => Err(panic_message(payload.as_ref())),
                Err(payload) => Err(panic_message(payload.as_ref())),
            })
            .collect();
        workers_done.store(true, Ordering::SeqCst);
        results
    });

    if let Some(msg) = results.iter().find_map(|r| r.as_ref().err().cloned()) {
        // A worker panicked. Rerun the sequential DPOR engine
        // (deterministic, guarded); if the panic is deterministic too,
        // surface it as an error verdict instead of aborting the
        // process. The partial sweep's metrics are dropped first, and
        // the checkpoint policy is stripped so a stop trigger cannot cut
        // the rerun short of the verdict it exists to reproduce.
        config.recorder.reset_counts();
        let rerun = without_checkpoint(config);
        return match catch_unwind(AssertUnwindSafe(|| {
            traced_seq("seq_rerun", initial, &rerun, reorder_bound, deadline)
        })) {
            Ok(verdict) => verdict,
            Err(payload) => Verdict::Error(
                Stats::default(),
                CheckError::Panic(format!(
                    "pardpor worker: {msg}; sequential rerun: {}",
                    panic_message(payload.as_ref())
                )),
            ),
        };
    }
    let mut reports: Vec<PReport> = results.into_iter().filter_map(Result::ok).collect();

    // Stealing/contention observability. These counters sit past the
    // deterministic range, so the diagnostic-mode snapshot equality with
    // the sequential engines is unaffected; the rerun paths below reset
    // counts anyway, so their runs stand alone.
    if obs.is_enabled() {
        obs.add(
            Metric::ForkPublished,
            reports.iter().map(|r| r.published).sum(),
        );
        obs.add(Metric::ForkStolen, reports.iter().map(|r| r.stolen).sum());
        obs.add(Metric::FpContention, table.contention());
    }

    let sleep_total =
        reports.iter().map(|r| r.sleep_hits).sum::<usize>() + base.sleep_hits as usize;
    let stats = Stats {
        states: state_count.load(Ordering::SeqCst),
        transitions: reports.iter().map(|r| r.transitions).sum::<usize>()
            + base.transitions as usize,
        terminal_states: reports.iter().map(|r| r.terminal_fps.len()).sum::<usize>()
            + usize::from(!seeded && initial.all_done())
            + base.terminal_states as usize,
        ..Stats::default()
    };

    // Serialize the merged frontier — the queue's undrained tasks plus
    // every worker's stashed open frames — into one snapshot. The base
    // counts/metrics fold the resumed prior in, so a twice-interrupted
    // run still sums to the uninterrupted totals.
    let write_stop_checkpoint = |reports: &mut [PReport]| -> Option<std::path::PathBuf> {
        let pol = policy?;
        let mut forks: Vec<ForkPoint> = queue.drain();
        for r in reports.iter_mut() {
            forks.append(&mut r.forks);
        }
        let mut edges = seed_edges.clone();
        let mut terminals = seed_terminals.clone();
        if !seeded && initial.all_done() {
            terminals.push(root_fp);
        }
        for r in reports.iter() {
            edges.extend(r.edges.iter().copied());
            terminals.extend(r.terminal_fps.iter().copied());
        }
        let own = obs.snapshot();
        let metrics = match &seed_metrics {
            Some(prior) => prior.merged(&own),
            None => own,
        };
        let snap = Snapshot {
            meta: RunMeta {
                engine: config.engine.label().to_string(),
                config_hash: config_hash(config),
                program_hash: root_fp,
            },
            base: BaseCounts {
                states: stats.states as u64,
                transitions: stats.transitions as u64,
                terminal_states: stats.terminal_states as u64,
                sleep_hits: sleep_total as u64,
            },
            metrics,
            forks,
            visited: table.export(),
            edges,
            terminals,
        };
        write_checkpoint(obs, pol, &snap)
    };

    if tripped.load(Ordering::SeqCst) {
        // The watchdog declared a worker stalled: save what the sweep
        // covered (best effort), then degrade to the deterministic
        // sequential engine — same discipline as the panic path, so the
        // final verdict is still bit-identical to `Engine::Dpor`. The
        // trip counter is bumped *after* the reset so it survives into
        // the rerun's final snapshot.
        let _ = write_stop_checkpoint(&mut reports);
        let stalled_frontier = reports.iter().map(|r| r.frontier).sum::<usize>() as u64;
        obs.event("watchdog_trip", &[("frontier", J::U(stalled_frontier))]);
        {
            let mut tctx = obs.trace_ctx();
            let _ = tctx.instant(
                "watchdog",
                SpanId(obs.trace_root().0),
                &[("frontier", J::U(stalled_frontier))],
            );
        }
        config.recorder.reset_counts();
        obs.incr(Metric::WatchdogTrips);
        return traced_seq(
            "seq_rerun",
            initial,
            &without_checkpoint(config),
            reorder_bound,
            deadline,
        );
    }

    let limit_hit = state_count.load(Ordering::SeqCst) > config.max_states;
    if limit_hit || reports.iter().any(|r| r.violated) {
        // The sweep stopped early; reproduce the exact sequential
        // verdict (counterexample included, still honoring the remaining
        // budget), with the partial sweep's metrics dropped and the
        // checkpoint policy stripped — the result is bit-identical to a
        // direct `Engine::Dpor` run.
        config.recorder.reset_counts();
        return traced_seq(
            "seq_rerun",
            initial,
            &without_checkpoint(config),
            reorder_bound,
            deadline,
        );
    }
    if budget_hit.load(Ordering::SeqCst) || cancel.load(Ordering::SeqCst) {
        let checkpoint = write_stop_checkpoint(&mut reports);
        let est_merged = reports
            .iter()
            .fold(EstStats::default(), |acc, r| acc.merged(&r.est));
        return Verdict::Inconclusive(
            stats,
            Coverage {
                frontier: reports.iter().map(|r| r.frontier).sum(),
                sleep_hits: sleep_total,
                checkpoint,
                ..Coverage::default()
            }
            .with_estimate(est_merged.estimate(stats.states as u64)),
        );
    }

    if config.check_termination {
        // Merge the per-worker fingerprint graphs (taken + slept-probed
        // edges — with ample off under the termination check and sleep
        // sets pruning edges only, the merged graph covers the full
        // reachable graph, like the sequential engine's) plus, on a
        // resumed run, the interrupted run's serialized graph, and run
        // the same reverse-reachability pass. Ids are arbitrary; the
        // stuck state's identity and counterexample come from the rerun.
        let mut ids: HashMap<u128, u32> = HashMap::new();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut terminal: Vec<u32> = Vec::new();
        let Some(root) = merge_id(&mut ids, root_fp) else {
            return Verdict::Error(stats, CheckError::TooManyStates);
        };
        if !seeded && initial.all_done() {
            terminal.push(root);
        }
        for &(a, b) in &seed_edges {
            match (merge_id(&mut ids, a), merge_id(&mut ids, b)) {
                (Some(ia), Some(ib)) => edges.push((ia, ib)),
                _ => return Verdict::Error(stats, CheckError::TooManyStates),
            }
        }
        for &t in &seed_terminals {
            let Some(it) = merge_id(&mut ids, t) else {
                return Verdict::Error(stats, CheckError::TooManyStates);
            };
            terminal.push(it);
        }
        for report in &reports {
            for &(a, b) in &report.edges {
                match (merge_id(&mut ids, a), merge_id(&mut ids, b)) {
                    (Some(ia), Some(ib)) => edges.push((ia, ib)),
                    _ => return Verdict::Error(stats, CheckError::TooManyStates),
                }
            }
            for &t in &report.terminal_fps {
                let Some(it) = merge_id(&mut ids, t) else {
                    return Verdict::Error(stats, CheckError::TooManyStates);
                };
                terminal.push(it);
            }
        }
        if find_stuck(ids.len(), &edges, &terminal).is_some() {
            config.recorder.reset_counts();
            return traced_seq(
                "seq_rerun",
                initial,
                &without_checkpoint(config),
                reorder_bound,
                deadline,
            );
        }
    }

    obs.gauge_set(Gauge::DedupOccupancy, table.len() as u64);
    Verdict::Ok(stats)
}

/// What one fleet lease sweep produced: the raw outcome with **no
/// verdict discipline applied**. The fleet supervisor owns cancellation,
/// sequential reruns, and the merged termination pass, so a lease run
/// never falls back to [`check_dpor`] and never runs [`find_stuck`]
/// locally — a worker process only sees its slice of the graph, and a
/// partial graph would report bogus stuck states.
pub(crate) struct LeaseRun {
    /// A worker hit a property violation (mutex, permutation, or
    /// invariant). Details come from the supervisor's sequential rerun.
    pub(crate) violated: bool,
    /// The global state count (lease base + local claims) overran
    /// `max_states`.
    pub(crate) limit_hit: bool,
    /// The deadline or a stop trigger cut the sweep short; `forks` holds
    /// the unexplored remainder.
    pub(crate) budget_hit: bool,
    /// A worker thread panicked (message preserved); the caller should
    /// surface this as a process-level failure.
    pub(crate) panicked: Option<String>,
    /// Fingerprints this run claimed first — exactly the states *not* in
    /// the lease's visited seed that the sweep reached. The supervisor's
    /// conflict check intersects these against previously accepted
    /// claims.
    pub(crate) claimed: Vec<u128>,
    /// Delta counts (this run only; the lease's base is subtracted).
    pub(crate) base: BaseCounts,
    /// Unexplored fork points at an early stop (empty on completion).
    pub(crate) forks: Vec<ForkPoint>,
    /// New `(parent, child)` edges (termination mode only).
    pub(crate) edges: Vec<(u128, u128)>,
    /// New terminal-state fingerprints.
    pub(crate) terminals: Vec<u128>,
}

/// Run one fleet lease: the seeded work-stealing sweep of
/// [`check_pardpor`] with the coordinator's verdict discipline stripped.
/// The lease's visited set pre-seeds the global first-visit table (so
/// this run claims only states no earlier accepted run claimed — the
/// supervisor enforces that by conflict rejection), its fork points seed
/// the queue, and `seed.base.states` carries the global state count so
/// the `max_states` limit trips at the right global point. All counts
/// and metrics reported are this run's deltas.
///
/// No watchdog runs here: worker processes are supervised externally via
/// heartbeat files, and a wedged sweep is killed and re-leased.
pub(crate) fn check_lease<P: Process>(
    initial: &Machine<P>,
    config: &CheckConfig,
    threads: usize,
    reorder_bound: Option<u32>,
    deadline: Option<Instant>,
    seed: ResumeSeed,
) -> LeaseRun {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    };
    let disable_reduction = reorder_bound == Some(u32::MAX);
    let use_ample = !config.check_termination && !disable_reduction;
    let obs = &config.recorder;
    // A policy is required for workers to stash their open frames on an
    // early stop (that is how the unexplored remainder survives into the
    // result); when the caller did not set one, a trigger-less dummy
    // serves — its path is never written.
    let pol = config
        .checkpoint
        .clone()
        .unwrap_or_else(|| CheckpointPolicy::at(std::path::PathBuf::new()));
    let policy = Some(&pol);

    let table = FpTable::new();
    let seed_set: std::collections::HashSet<u128> = seed.visited.iter().copied().collect();
    for &fp in &seed.visited {
        table.insert(fp);
    }
    let state_count = AtomicUsize::new(seed.base.states as usize);
    let transitions_now = AtomicUsize::new(0);
    let cancel = AtomicBool::new(false);
    let budget_hit = AtomicBool::new(false);

    obs.add(Metric::ResumeReplayed, seed.forks.len() as u64);
    let queue = ForkQueue::new((threads * 2).max(seed.forks.len()));
    for fork in seed.forks {
        let accepted = queue.publish(fork);
        debug_assert!(accepted.is_ok(), "fresh queue rejected a lease fork point");
    }

    let heartbeats: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let busy: Vec<AtomicBool> = (0..threads).map(|_| AtomicBool::new(false)).collect();

    let results: Vec<Result<PReport, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let table = &table;
                let queue = &queue;
                let state_count = &state_count;
                let transitions_now = &transitions_now;
                let cancel = &cancel;
                let budget_hit = &budget_hit;
                let heartbeat = &heartbeats[w];
                let busy = &busy[w];
                scope.spawn(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        Worker {
                            initial,
                            config,
                            table,
                            queue,
                            state_count,
                            transitions_now,
                            cancel,
                            budget_hit,
                            deadline,
                            policy,
                            heartbeat,
                            busy,
                            index: w,
                            low_water: threads,
                            disable_reduction,
                            use_ample,
                            synced_transitions: 0,
                            report: PReport::default(),
                            visited: VisitTable::new(),
                            est: TreeEstimator::new(),
                            tctx: config.recorder.trace_ctx(),
                            cur_span: SpanId::NONE,
                        }
                        .run()
                    }));
                    if out.is_err() {
                        cancel.store(true, Ordering::SeqCst);
                        queue.close();
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(Ok(report)) => Ok(report),
                Ok(Err(payload)) => Err(panic_message(payload.as_ref())),
                Err(payload) => Err(panic_message(payload.as_ref())),
            })
            .collect()
    });

    let panicked = results.iter().find_map(|r| r.as_ref().err().cloned());
    let mut reports: Vec<PReport> = results.into_iter().filter_map(Result::ok).collect();

    if obs.is_enabled() {
        obs.add(
            Metric::ForkPublished,
            reports.iter().map(|r| r.published).sum(),
        );
        obs.add(Metric::ForkStolen, reports.iter().map(|r| r.stolen).sum());
        obs.add(Metric::FpContention, table.contention());
        obs.gauge_set(Gauge::DedupOccupancy, table.len() as u64);
    }

    let mut forks: Vec<ForkPoint> = queue.drain();
    for r in &mut reports {
        forks.append(&mut r.forks);
    }
    let states_now = state_count.load(Ordering::SeqCst);
    let claimed: Vec<u128> = table
        .export()
        .into_iter()
        .filter(|fp| !seed_set.contains(fp))
        .collect();
    LeaseRun {
        violated: reports.iter().any(|r| r.violated),
        limit_hit: states_now > config.max_states,
        budget_hit: budget_hit.load(Ordering::SeqCst),
        panicked,
        claimed,
        base: BaseCounts {
            states: (states_now as u64).saturating_sub(seed.base.states),
            transitions: reports.iter().map(|r| r.transitions).sum::<usize>() as u64,
            terminal_states: reports.iter().map(|r| r.terminal_fps.len()).sum::<usize>() as u64,
            sleep_hits: reports.iter().map(|r| r.sleep_hits).sum::<usize>() as u64,
        },
        forks,
        edges: reports
            .iter()
            .flat_map(|r| r.edges.iter().copied())
            .collect(),
        terminals: reports
            .iter()
            .flat_map(|r| r.terminal_fps.iter().copied())
            .collect(),
    }
}

/// Run the sequential DPOR engine wrapped in a causal span (`seq_gate`
/// for the small-space gate, `seq_rerun` for verdict-reproduction
/// fallbacks), parented on the surrounding engine span.
fn traced_seq<P: Process>(
    name: &str,
    initial: &Machine<P>,
    config: &CheckConfig,
    reorder_bound: Option<u32>,
    deadline: Option<Instant>,
) -> Verdict {
    let mut tctx = config.recorder.trace_ctx();
    let span = tctx.begin();
    let v = check_dpor(initial, config, reorder_bound, deadline);
    tctx.end(
        span,
        name,
        SpanId(config.recorder.trace_root().0),
        &[("verdict", J::s(v.label()))],
    );
    v
}

/// One work-stealing worker: takes fork points off the queue,
/// re-materializes them, and runs the sequential reduced DFS over the
/// continuation, donating its own fork points when peers go hungry.
struct Worker<'a, P: Process> {
    initial: &'a Machine<P>,
    config: &'a CheckConfig,
    table: &'a FpTable,
    queue: &'a ForkQueue,
    state_count: &'a AtomicUsize,
    /// Shared per-run transition total, fed from the per-worker counts
    /// at poll cadence — the `stop_after_transitions` trigger watches it.
    transitions_now: &'a AtomicUsize,
    cancel: &'a AtomicBool,
    budget_hit: &'a AtomicBool,
    deadline: Option<Instant>,
    /// Checkpoint policy: when set, graceful stops serialize the open
    /// frames into the report for the coordinator's snapshot.
    policy: Option<&'a CheckpointPolicy>,
    /// Liveness beacon for the watchdog, bumped at every poll and task
    /// boundary.
    heartbeat: &'a AtomicU64,
    /// Raised while a task is being executed (idle queue waits are not
    /// stalls).
    busy: &'a AtomicBool,
    /// This worker's index (the `worker` field on its task spans).
    index: usize,
    /// Donate when fewer than this many fork points are pending.
    low_water: usize,
    disable_reduction: bool,
    use_ample: bool,
    /// Transitions already pushed into `transitions_now`.
    synced_transitions: usize,
    report: PReport,
    /// Worker-local dominance pruning (see the module docs: local-only
    /// is sound, it just prunes less than the sequential single table).
    visited: VisitTable,
    /// Worker-local tree-size sampler (stats shipped in the report).
    est: TreeEstimator,
    /// Per-worker span writer (bounded buffer; flushed at task ends).
    tctx: TraceCtx,
    /// The task span currently open, parent for publish instants.
    cur_span: SpanId,
}

impl<P: Process> Worker<'_, P> {
    fn run(mut self) -> PReport {
        while let Some(task) = self.queue.take() {
            self.busy.store(true, Ordering::Relaxed);
            self.heartbeat.fetch_add(1, Ordering::Relaxed);
            // The steal edge: this task's span descends from the donor's
            // `publish` instant (or the engine/resume root for seeds).
            let steal_parent = SpanId(task.span);
            let depth = task.path.len();
            let tspan = self.tctx.begin();
            self.cur_span = tspan.id;
            let end = self.run_task(task);
            self.cur_span = SpanId::NONE;
            self.tctx.end(
                tspan,
                "task",
                steal_parent,
                &[
                    ("worker", J::U(self.index as u64)),
                    ("depth", J::U(depth as u64)),
                    ("aborted", J::B(matches!(end, TaskEnd::Aborted))),
                ],
            );
            self.busy.store(false, Ordering::Relaxed);
            self.heartbeat.fetch_add(1, Ordering::Relaxed);
            self.queue.done();
            if matches!(end, TaskEnd::Aborted) {
                break;
            }
        }
        self.sync_transitions();
        self.report.est = self.est.stats();
        self.tctx.flush();
        self.report
    }

    /// Fold the transitions executed since the last sync into the shared
    /// per-run total (what `stop_after_transitions` watches).
    fn sync_transitions(&mut self) {
        let delta = self.report.transitions - self.synced_transitions;
        if delta > 0 {
            self.transitions_now.fetch_add(delta, Ordering::Relaxed);
            self.synced_transitions = self.report.transitions;
        }
    }

    /// Abort helper: raise `cancel`, wake blocked peers, record the open
    /// frontier.
    fn abort(&mut self, open_frames: usize) -> TaskEnd {
        self.cancel.store(true, Ordering::SeqCst);
        self.queue.close();
        self.report.frontier += open_frames;
        TaskEnd::Aborted
    }

    /// Serialize every open frame with unexplored choices into the
    /// report, for the coordinator's stop snapshot. Only called on
    /// graceful stops with a checkpoint policy set — violation and
    /// state-limit aborts discard the sweep entirely.
    fn stash_frames(&mut self, frames: &[PFrame<P>], path: &[SchedElem]) {
        if self.policy.is_none() {
            return;
        }
        for f in frames {
            if f.next < f.choices.len() {
                self.report.forks.push(ForkPoint {
                    path: path[..f.depth].to_vec(),
                    sleep: f.sleep.clone(),
                    taken: f.taken.clone(),
                    choices: f.choices[f.next..].to_vec(),
                    excluded: f.excluded.clone(),
                    remaining: f.remaining,
                    span: self.cur_span.0,
                });
            }
        }
    }

    #[allow(clippy::too_many_lines)] // the sequential DFS body, kept in one piece on purpose
    fn run_task(&mut self, task: ForkPoint) -> TaskEnd {
        let obs = &self.config.recorder;
        let model = self.initial.config().model;
        self.report.stolen += 1;
        self.est.begin_task();
        let mut scratch: Vec<SchedElem> = Vec::new();

        // Re-materialize the fork point on a fresh machine. The replay
        // is unrecorded (the recorder attaches afterwards) so it cannot
        // pollute the step metrics shared with the sequential engines.
        // The intermediate fingerprints pre-seed the on-stack multiset:
        // they are exactly the ancestors the owner had on its stack, so
        // the cycle proviso keeps firing at the same places. A replay
        // failure is a logic error; the panic lands in the coordinator's
        // catch_unwind and degrades to the sequential rerun.
        let mut m = self.initial.clone();
        let mut on_stack: HashMap<u128, u32> = HashMap::new();
        let mut path: Vec<SchedElem> = Vec::with_capacity(task.path.len() + 32);
        for &e in &task.path {
            *on_stack.entry(fingerprint(&m)).or_insert(0) += 1;
            assert!(
                m.replay_path(std::slice::from_ref(&e), &mut scratch),
                "pardpor: fork-point path failed to replay"
            );
            path.push(e);
        }
        let task_fp = fingerprint(&m);
        m.set_recorder(obs.clone());
        let mut tally = obs.tally();

        let mut frames: Vec<PFrame<P>> = Vec::new();
        *on_stack.entry(task_fp).or_insert(0) += 1;
        self.est.push(task.choices.len());
        frames.push(PFrame {
            fp: task_fp,
            depth: path.len(),
            sleep: task.sleep,
            choices: task.choices,
            next: 0,
            taken: task.taken,
            excluded: task.excluded,
            remaining: task.remaining,
            token: None,
        });

        let mut steps_since_poll = 0usize;
        loop {
            steps_since_poll += 1;
            if steps_since_poll >= 256 {
                steps_since_poll = 0;
                self.heartbeat.fetch_add(1, Ordering::Relaxed);
                self.sync_transitions();
                if self.cancel.load(Ordering::Relaxed) {
                    // A peer stopped the sweep; if it stopped gracefully
                    // the coordinator still snapshots this frontier.
                    self.stash_frames(&frames, &path);
                    self.report.frontier += frames.len();
                    return TaskEnd::Aborted;
                }
                if let Some(pol) = self.policy {
                    let stop = pol
                        .stop_requested(self.transitions_now.load(Ordering::Relaxed) as u64)
                        || pol.max_occupancy.is_some_and(|cap| self.table.len() >= cap);
                    if stop {
                        self.budget_hit.store(true, Ordering::SeqCst);
                        self.stash_frames(&frames, &path);
                        return self.abort(frames.len());
                    }
                }
                if obs.is_enabled() {
                    obs.gauge_max(Gauge::MaxFrontier, (frames.len() + self.queue.len()) as u64);
                    let now = Instant::now();
                    let spent = match (self.config.budget, self.deadline) {
                        (Some(b), Some(d)) => {
                            Some(b.saturating_sub(d.saturating_duration_since(now)))
                        }
                        _ => None,
                    };
                    obs.maybe_heartbeat(&Progress {
                        states: self.state_count.load(Ordering::Relaxed) as u64,
                        transitions: self.report.transitions as u64,
                        frontier: frames.len() as u64,
                        budget: self.config.budget,
                        spent,
                        // Worker-local samples extrapolated over the
                        // global state count: coarse, but live.
                        estimate: self
                            .est
                            .estimate(self.state_count.load(Ordering::Relaxed) as u64),
                    });
                }
                if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    self.budget_hit.store(true, Ordering::SeqCst);
                    self.stash_frames(&frames, &path);
                    return self.abort(frames.len());
                }
                if frames.len() > 1 && self.queue.wants_work(self.low_water) {
                    self.donate(&mut frames, &path);
                }
            }

            let Some(top) = frames.last_mut() else { break };
            if top.next == top.choices.len() {
                let frame = frames.pop().expect("non-empty stack");
                self.est.pop();
                match on_stack.get_mut(&frame.fp) {
                    Some(1) => {
                        on_stack.remove(&frame.fp);
                    }
                    Some(c) => *c -= 1,
                    None => unreachable!("frame fingerprint missing from the stack set"),
                }
                if let Some(token) = frame.token {
                    m.undo(token);
                    path.pop();
                }
                continue;
            }
            let elem = top.choices[top.next];
            top.next += 1;
            let parent_fp = top.fp;
            let parent_depth = top.depth;
            let parent_remaining = top.remaining;

            let weight = if self.disable_reduction {
                0
            } else {
                step_weight(&m, elem)
            };
            if weight > parent_remaining {
                self.est.leaf();
                continue; // beyond the reorder bound: neither taken nor slept
            }

            let (out, token) = m.step_recorded(elem);
            if matches!(out, StepOutcome::NoOp) {
                tally.noop_step();
                self.est.leaf();
                m.undo(token);
                continue;
            }
            let efp = token.footprint();
            self.report.transitions += 1;
            tally.on_transition();
            let fp = fingerprint(&m);
            if self.config.check_termination {
                self.report.edges.push((parent_fp, fp));
            }

            // Cycle proviso (C3), exactly as in the sequential engine:
            // the thief's on-stack set contains the replayed ancestors,
            // so a cycle closing through the stolen subtree still forces
            // the full expansion.
            if on_stack.contains_key(&fp) && !top.excluded.is_empty() {
                let reinstated: Vec<SchedElem> = top.excluded.drain(..).collect();
                for e in reinstated {
                    if top.sleep.contains(e) {
                        self.report.sleep_hits += 1;
                        obs.incr(Metric::SleepHits);
                    } else {
                        top.choices.push(e);
                    }
                }
            }

            let mut child_sleep = if self.disable_reduction {
                SleepSet::new()
            } else {
                top.sleep.inherit(efp, model)
            };
            if !self.disable_reduction {
                for &(se, sf) in &top.taken {
                    if sf.independent(efp, model) {
                        child_sleep.insert(se, sf);
                    }
                }
                top.taken.push((elem, efp));
            }

            let child_remaining = parent_remaining - weight;
            // Global first-visit gate: state counting and property
            // checks happen exactly once across all workers. In
            // diagnostic mode this is also the (only) pruning rule; in
            // reduced mode pruning is the worker-local dominance table.
            let fresh = self.table.insert(fp);
            let claimed = if self.disable_reduction {
                fresh
            } else {
                self.visited.try_claim(fp, &child_sleep, child_remaining)
            };
            if !claimed {
                self.est.leaf();
                if self.disable_reduction {
                    tally.dedup_hit();
                } else {
                    self.report.sleep_hits += 1;
                    obs.incr(Metric::SleepHits);
                }
                m.undo(token);
                continue;
            }

            if fresh {
                tally.on_state(frames.len() as u64);
                let states = self.state_count.fetch_add(1, Ordering::SeqCst) + 1;
                if states > self.config.max_states {
                    return self.abort(frames.len());
                }
                if self.config.check_mutex && in_cs_count(&m) > 1 {
                    self.report.violated = true;
                    return self.abort(frames.len());
                }
                if violates_invariant(self.config, &m) {
                    self.report.violated = true;
                    return self.abort(frames.len());
                }
                if m.all_done() {
                    self.report.terminal_fps.push(fp);
                    tally.terminal_state();
                    self.est.leaf();
                    if self.config.check_permutation && !returns_are_permutation(&m) {
                        self.report.violated = true;
                        return self.abort(frames.len());
                    }
                    m.undo(token);
                    continue;
                }
            } else if m.all_done() {
                // Re-entered terminal state (smaller sleep set or another
                // worker's first visit): nothing to expand.
                self.est.leaf();
                m.undo(token);
                continue;
            }

            m.choices_into(&mut scratch);
            debug_assert!(!scratch.is_empty(), "non-terminal state has no choices");
            let mut x = expand(&m, &scratch, &child_sleep, self.use_ample, obs);
            if self.disable_reduction {
                x.explore.reverse();
            }
            self.report.sleep_hits += x.slept;
            if self.config.check_termination && x.slept > 0 {
                // Slept-edge probes, fingerprint-keyed (no global id
                // space until merge time).
                for &e in &scratch {
                    if !child_sleep.contains(e) {
                        continue;
                    }
                    obs.incr(Metric::SleptProbes);
                    let (pout, ptoken) = m.step_recorded(e);
                    if !matches!(pout, StepOutcome::NoOp) {
                        self.report.edges.push((fp, fingerprint(&m)));
                    }
                    m.undo(ptoken);
                }
            }
            *on_stack.entry(fp).or_insert(0) += 1;
            self.est.push(x.explore.len());
            path.push(elem);
            frames.push(PFrame {
                fp,
                depth: parent_depth + 1,
                sleep: child_sleep,
                choices: x.explore,
                next: 0,
                taken: Vec::new(),
                excluded: x.excluded,
                remaining: child_remaining,
                token: Some(token),
            });
        }
        TaskEnd::Completed
    }

    /// Donate the bottom-most frame with unexplored choices (the largest
    /// subtrees sit lowest) — unless it is the current top, which the
    /// owner keeps so it never strands itself. The donated remainder is
    /// an exact continuation relocation: same choices (in order), same
    /// sleep set, same taken list, the excluded choices move with it
    /// (the thief's on-stack set contains every ancestor the proviso
    /// could need them for), same remaining budget. On publish the
    /// owner's cursor jumps to the end — exactly one side owns the
    /// remainder at any time. A full queue puts everything back.
    fn donate(&mut self, frames: &mut [PFrame<P>], path: &[SchedElem]) {
        let top = frames.len() - 1;
        let Some(k) = (0..top).find(|&k| frames[k].next < frames[k].choices.len()) else {
            return;
        };
        let f = &mut frames[k];
        // The publish instant is the causal anchor the thief's task span
        // points back at. Emitted before the publish so its id precedes
        // any span the thief allocates; a rejected publish leaves a
        // childless instant behind, which the validator tolerates.
        let shed = (f.choices.len() - f.next) as u64;
        let span = self.tctx.instant(
            "publish",
            self.cur_span,
            &[("worker", J::U(self.index as u64)), ("choices", J::U(shed))],
        );
        let fork = ForkPoint {
            path: path[..f.depth].to_vec(),
            sleep: f.sleep.clone(),
            taken: f.taken.clone(),
            choices: f.choices[f.next..].to_vec(),
            excluded: std::mem::take(&mut f.excluded),
            remaining: f.remaining,
            span: span.0,
        };
        match self.queue.publish(fork) {
            Ok(()) => {
                f.next = f.choices.len();
                self.report.published += 1;
            }
            Err(fork) => f.excluded = fork.excluded,
        }
    }
}
