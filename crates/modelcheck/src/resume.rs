//! Resuming an interrupted exploration from a durable checkpoint.
//!
//! [`resume`] is the read side of [`CheckConfig::checkpoint`]: it loads a
//! [`por::Snapshot`] written by an interrupted run, validates that it
//! belongs to *this* program and configuration, and continues the
//! exploration from the serialized frontier until a definitive verdict
//! (or the next interrupt).
//!
//! ## One continuation engine
//!
//! All three checkpointing engines resume through the seeded
//! work-stealing coordinator ([`crate::pardpor`]):
//!
//! * `Engine::Undo` snapshots serialize plain frames (empty sleep sets,
//!   unlimited budget) and resume as one worker in the diagnostic
//!   disabled-reduction mode — which executes exactly the undo engine's
//!   edge multiset, so interrupted + resumed metrics sum bit-identically
//!   to an uninterrupted run's.
//! * `Engine::Dpor` snapshots carry the full reduction state per fork
//!   point (sleep set, taken siblings, ample exclusions, remaining
//!   reorder budget) and resume as one worker with the original bound.
//! * `Engine::ParallelDpor` resumes with its original worker count; the
//!   merged frontier from all workers seeds the queue.
//!
//! ## Soundness
//!
//! The snapshot's visited fingerprints pre-seed the global first-visit
//! table, so states counted and property-checked before the interrupt
//! are not re-counted or re-checked, and every state not yet expanded is
//! reachable from some serialized fork point (frames are serialized with
//! their unconsumed choices; nothing else was pending). The resumed
//! run's dominance pruning starts from an empty table, which can only
//! *reduce* pruning — never skip work the interrupted run still owed.
//! Violations, state limits, and stuck states discovered after a resume
//! defer to the usual deterministic sequential rerun, so those verdicts
//! are bit-identical to an uninterrupted run's.

use std::path::Path;
use std::time::Instant;

use por::Snapshot;
use wbmem::{Machine, Process};

use crate::checker::{fingerprint, fold_fp, run_id, CheckConfig, CheckError, Stats, Verdict};
use crate::lease::{continuation_params, run_meta, validate_meta};
use crate::pardpor::{check_pardpor, ResumeSeed};
use ftobs::J;

/// Continue an exploration from the checkpoint at `path`.
///
/// `initial` and `config` must be the machine and configuration of the
/// interrupted run (engine included); the snapshot's run metadata is
/// validated against both, and any mismatch — as well as a torn,
/// truncated, or corrupt checkpoint file — returns
/// [`Verdict::Error`] with [`CheckError::Checkpoint`] rather than
/// silently starting over.
///
/// On success the returned verdict describes the *combined* exploration:
/// state/transition counts include the interrupted run's, and (when the
/// recorder is enabled) the metrics snapshot is the merge of both runs.
/// If the resumed run is interrupted again (its `config` may carry a
/// fresh [`crate::CheckpointPolicy`]), the new checkpoint folds the
/// prior totals in, so chains of interrupts keep summing correctly.
/// Note that `stop_after_transitions` counts each run's own transitions
/// and a still-raised `interrupt` flag stops the resumed run
/// immediately — clear it before resuming.
#[must_use]
pub fn resume<P: Process>(initial: &Machine<P>, config: &CheckConfig, path: &Path) -> Verdict {
    let start = Instant::now();
    let snap = match Snapshot::read(path) {
        Ok(snap) => snap,
        Err(e) => return Verdict::Error(Stats::default(), CheckError::from(e)),
    };

    let crash_root;
    let root = if config.max_crashes > 0 {
        let mut m = initial.clone();
        m.set_crash_bound(config.crash_semantics, config.max_crashes);
        crash_root = m;
        &crash_root
    } else {
        initial
    };

    // The three identity checks and the engine → continuation mapping are
    // shared with the fleet worker's lease validation (`crate::lease`),
    // so the two read paths cannot drift.
    if let Err(msg) = validate_meta(&snap.meta, &run_meta(initial, config)) {
        return Verdict::Error(Stats::default(), CheckError::Checkpoint(msg));
    }
    let (threads, reorder_bound) = match continuation_params(config.engine) {
        Ok(params) => params,
        Err(msg) => return Verdict::Error(Stats::default(), CheckError::Checkpoint(msg)),
    };

    let deadline = config.budget.map(|b| start + b);
    let prior_metrics = snap.metrics;
    let mut seed = ResumeSeed {
        visited: snap.visited,
        forks: snap.forks,
        base: snap.base,
        metrics: snap.metrics,
        edges: snap.edges,
        terminals: snap.terminals,
    };
    // The resume span links this continuation to the interrupted run:
    // `prev_run` is the run id the checkpoint's meta reconstructs, which
    // matches the `run` field on the interrupted run's `engine` span.
    let mut tctx = config.recorder.trace_ctx();
    let rspan = tctx.begin();
    let span_parent = config.recorder.trace_root();
    let seeded_forks = seed.forks.len() as u64;
    if tctx.enabled() {
        let _ = config.recorder.set_trace_root(rspan.id);
        // Snapshot span ids belong to the writing process; rebase the
        // seeded forks onto the resume span so every steal edge in this
        // process's trace resolves locally.
        for f in &mut seed.forks {
            f.span = rspan.id.0;
        }
    }
    let mut verdict = check_pardpor(root, config, threads, reorder_bound, deadline, Some(seed));
    verdict.stats_mut().elapsed = start.elapsed();
    if tctx.enabled() {
        let _ = config.recorder.set_trace_root(span_parent);
        tctx.end(
            rspan,
            "resume",
            span_parent,
            &[
                (
                    "prev_run",
                    J::U(snap.meta.config_hash ^ fold_fp(snap.meta.program_hash)),
                ),
                ("run", J::U(run_id(config, fingerprint(root)))),
                ("forks", J::U(seeded_forks)),
                ("verdict", J::s(verdict.label())),
            ],
        );
        tctx.flush();
    }
    if config.recorder.is_enabled() {
        // Ok/Inconclusive verdicts describe the combined run, so their
        // metrics merge the interrupted run's snapshot with this one's.
        // Every other verdict came from a standalone deterministic
        // rerun (counters reset first) and stands alone.
        let own = config.recorder.snapshot();
        verdict.stats_mut().metrics = match &verdict {
            Verdict::Ok(_) | Verdict::Inconclusive(..) => prior_metrics.merged(&own),
            _ => own,
        };
        config.recorder.emit_snapshot(&[
            ("engine", ftobs::J::s(config.engine.label())),
            ("resumed", ftobs::J::B(true)),
            ("verdict", ftobs::J::s(verdict.label())),
            (
                "elapsed_ms",
                ftobs::J::U(start.elapsed().as_millis() as u64),
            ),
        ]);
        config.recorder.flush();
    }
    verdict
}
