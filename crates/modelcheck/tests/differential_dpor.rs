//! Differential test for the DPOR engine against the exhaustive engines.
//!
//! Unlike `differential_engines.rs` (which demands bit-identical `Stats`),
//! the reduced search legitimately explores *fewer* states and transitions
//! — that difference is the point. What must coincide is the **verdict
//! label**: on every lock × memory-model × fence-mask × crash configuration
//! at `n = 2`, `Engine::Dpor` and `Engine::Undo` must agree on whether the
//! properties hold, and any mutex counterexample the reduced engine
//! produces must replay on a fresh *unreduced* machine to a real
//! two-in-CS state without ever taking a no-op step.
//!
//! `max_states` is set high enough that no configuration in the matrix
//! hits the limit: a `StateLimit` cut-off point is engine-specific, so a
//! capped run would turn a legitimate stats difference into a spurious
//! label difference. A guard assertion enforces this.

use modelcheck::{check, CheckConfig, Engine, Verdict};
use proptest::prelude::*;
use simlocks::{build_mutex, FenceMask, LockKind, ANNOT_IN_CS};
use wbmem::{
    CrashSemantics, Machine, MachineConfig, MemoryLayout, MemoryModel, ProcId, StepOutcome,
};

fn dpor() -> Engine {
    Engine::Dpor {
        reorder_bound: None,
    }
}

const MODELS: [MemoryModel; 4] = [
    MemoryModel::Sc,
    MemoryModel::Tso,
    MemoryModel::Pso,
    MemoryModel::Rmo,
];

/// Replay a mutex counterexample on a fresh machine (crash bound applied
/// when the config used one): every element must take a real step and the
/// final state must witness the violation.
fn assert_mutex_cex_replays(
    inst: &simlocks::OrderingInstance,
    model: MemoryModel,
    config: &CheckConfig,
    cex: &modelcheck::Counterexample,
) {
    let mut m = inst.machine(model);
    if config.max_crashes > 0 {
        m.set_crash_bound(config.crash_semantics, config.max_crashes);
    }
    for (i, &elem) in cex.schedule.iter().enumerate() {
        let out = m.step(elem);
        assert!(
            !matches!(out, StepOutcome::NoOp),
            "{}/{model}: counterexample step {i} ({elem:?}) was a no-op",
            inst.name
        );
    }
    let in_cs = (0..2)
        .filter(|&i| m.annotation(ProcId::from(i)) == ANNOT_IN_CS)
        .count();
    assert!(
        in_cs >= 2,
        "{}/{model}: replayed counterexample ends with {in_cs} processes in CS",
        inst.name
    );
}

/// Run one configuration under both engines and compare labels; returns
/// whether the configuration was violating.
fn compare(inst: &simlocks::OrderingInstance, model: MemoryModel, config: &CheckConfig) -> bool {
    let undo = check(
        &inst.machine(model),
        &config.clone().with_engine(Engine::Undo),
    );
    let red = check(&inst.machine(model), &config.clone().with_engine(dpor()));
    let ctx = format!(
        "{} {model} crashes={} term={}",
        inst.name, config.max_crashes, config.check_termination
    );
    assert!(
        !matches!(undo, Verdict::StateLimit(_)) && !matches!(red, Verdict::StateLimit(_)),
        "{ctx}: raise max_states — a capped run cannot be compared"
    );
    assert_eq!(undo.label(), red.label(), "{ctx}: verdict labels");
    // Only completed explorations have comparable state counts: a violating
    // run stops at the first violation, and the engines reach theirs at
    // different points. (NO-TERMINATION *is* a completed exploration — the
    // verdict comes from the reverse pass after the sweep finishes.)
    if undo.is_ok() || matches!(undo, Verdict::NoTermination(..)) {
        assert!(
            red.stats().states <= undo.stats().states,
            "{ctx}: reduction must never visit more states ({} vs {})",
            red.stats().states,
            undo.stats().states
        );
    }
    if let Verdict::MutexViolation(_, cex) = &red {
        assert_mutex_cex_replays(inst, model, config, cex);
    }
    red.is_violation()
}

/// The full n = 2 safety matrix: every fence mask of every lock under every
/// model, with and without a crash budget.
#[test]
fn dpor_agrees_on_the_full_n2_safety_matrix() {
    let base = CheckConfig {
        check_termination: false,
        max_states: 1_000_000,
        ..CheckConfig::default()
    };
    let mut configs = 0usize;
    let mut violations = 0usize;
    for kind in [LockKind::Peterson, LockKind::Ttas, LockKind::Bakery] {
        let probe = build_mutex(kind, 2, FenceMask::ALL);
        for mask in FenceMask::enumerate(probe.fence_sites) {
            let inst = build_mutex(kind, 2, mask);
            for model in MODELS {
                for max_crashes in [0u32, 1] {
                    let config = base
                        .clone()
                        .with_crashes(CrashSemantics::DiscardBuffer, max_crashes);
                    violations += usize::from(compare(&inst, model, &config));
                    configs += 1;
                }
            }
        }
    }
    assert!(configs >= 200, "matrix actually swept ({configs} configs)");
    assert!(
        violations >= 20,
        "matrix includes violating configs ({violations})"
    );
}

/// With termination checking on, the engine switches to sleep-sets-only
/// (plus edge probing); verdicts must still coincide — including the
/// crash-induced NO-TERMINATION cases.
#[test]
fn dpor_agrees_with_termination_checking() {
    let base = CheckConfig {
        max_states: 1_000_000,
        ..CheckConfig::default()
    };
    let mut violations = 0usize;
    for (kind, mask, model, max_crashes) in [
        (LockKind::Peterson, FenceMask::ALL, MemoryModel::Tso, 0u32),
        (LockKind::Peterson, FenceMask::ALL, MemoryModel::Pso, 0),
        (
            LockKind::Peterson,
            FenceMask::only(&[simlocks::peterson::SITE_VICTIM]),
            MemoryModel::Pso,
            0,
        ),
        (LockKind::Ttas, FenceMask::ALL, MemoryModel::Pso, 1),
        (
            LockKind::RecoverableTtas,
            FenceMask::ALL,
            MemoryModel::Pso,
            1,
        ),
        (LockKind::Bakery, FenceMask::ALL, MemoryModel::Pso, 0),
        (LockKind::Bakery, FenceMask::NONE, MemoryModel::Tso, 0),
    ] {
        let inst = build_mutex(kind, 2, mask);
        let config = base
            .clone()
            .with_crashes(CrashSemantics::DiscardBuffer, max_crashes);
        violations += usize::from(compare(&inst, model, &config));
    }
    assert!(violations >= 2, "set includes violating configs");
}

/// Drain-buffer crash semantics change the dependence footprint of crash
/// steps (a draining crash commits the buffer); the engines must agree
/// there too.
#[test]
fn dpor_agrees_under_drain_buffer_crashes() {
    let base = CheckConfig {
        check_termination: false,
        max_states: 1_000_000,
        ..CheckConfig::default()
    };
    for kind in [
        LockKind::Ttas,
        LockKind::RecoverableTtas,
        LockKind::Peterson,
    ] {
        let inst = build_mutex(kind, 2, FenceMask::ALL);
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            let config = base.clone().with_crashes(CrashSemantics::DrainBuffer, 1);
            compare(&inst, model, &config);
        }
    }
    // Multi-crash drain cells: with `max_crashes >= 2` the same process
    // can crash, recover, refill its buffer, and drain again — the
    // second drain's dependence footprint covers writes the first drain
    // already committed, a chain single-crash cells never exercise.
    // (Trimmed to the two cheapest locks; the full-lock single-crash
    // sweep above pins the rest of the matrix.)
    for kind in [LockKind::Ttas, LockKind::RecoverableTtas] {
        let inst = build_mutex(kind, 2, FenceMask::ALL);
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            let config = base.clone().with_crashes(CrashSemantics::DrainBuffer, 2);
            compare(&inst, model, &config);
        }
    }
}

// --- random programs ---

/// One step of a random straight-line program.
#[derive(Clone, Copy, Debug)]
enum Op {
    Write { reg: i64, val: i64 },
    Read { reg: i64 },
    Cas { reg: i64, expect: i64, new: i64 },
    Swap { reg: i64, val: i64 },
    Fence,
    Annot { in_cs: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..3i64, 0..3i64).prop_map(|(reg, val)| Op::Write { reg, val }),
        (0..3i64).prop_map(|reg| Op::Read { reg }),
        (0..3i64, 0..2i64, 0..3i64).prop_map(|(reg, expect, new)| Op::Cas { reg, expect, new }),
        (0..3i64, 0..3i64).prop_map(|(reg, val)| Op::Swap { reg, val }),
        Just(Op::Fence),
        any::<bool>().prop_map(|in_cs| Op::Annot { in_cs }),
    ]
}

fn assemble(name: &str, ops: &[Op]) -> fencevm::VmProc {
    let mut a = fencevm::Asm::new(name);
    let scratch = a.local("scratch");
    for &op in ops {
        match op {
            Op::Write { reg, val } => a.write(reg, val),
            Op::Read { reg } => a.read(reg, scratch),
            Op::Cas { reg, expect, new } => a.cas(reg, expect, new, scratch),
            Op::Swap { reg, val } => a.swap(reg, val, scratch),
            Op::Fence => a.fence(),
            Op::Annot { in_cs } => a.annot(if in_cs { ANNOT_IN_CS } else { 7 }),
        }
    }
    a.ret(0i64);
    fencevm::VmProc::new(a.assemble().into())
}

fn random_machine(progs: &[Vec<Op>], model: MemoryModel) -> Machine<fencevm::VmProc> {
    let procs = progs
        .iter()
        .enumerate()
        .map(|(i, ops)| assemble(&format!("p{i}"), ops))
        .collect();
    Machine::new(MachineConfig::new(model, MemoryLayout::unowned()), procs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// On arbitrary small two-process programs — random register traffic,
    /// RMW ops, fences, and annotations (so mutex violations actually
    /// occur) — the reduced engine returns the same verdict label as the
    /// undo engine, under every model, with and without a crash budget.
    #[test]
    fn dpor_matches_undo_on_random_programs(
        prog0 in prop::collection::vec(op_strategy(), 0..6),
        prog1 in prop::collection::vec(op_strategy(), 0..6),
        model_ix in 0usize..4,
        max_crashes in 0u32..2,
        termination in any::<bool>(),
    ) {
        let model = MODELS[model_ix];
        let config = CheckConfig {
            check_termination: termination,
            max_states: 1_000_000,
            ..CheckConfig::default()
        }
        .with_crashes(CrashSemantics::DiscardBuffer, max_crashes);

        let progs = [prog0, prog1];
        let undo = check(
            &random_machine(&progs, model),
            &config.clone().with_engine(Engine::Undo),
        );
        let red = check(
            &random_machine(&progs, model),
            &config.clone().with_engine(dpor()),
        );
        prop_assert_eq!(
            undo.label(),
            red.label(),
            "{:?} {} crashes={} term={}",
            progs,
            model,
            max_crashes,
            termination
        );
        if undo.is_ok() {
            prop_assert!(red.stats().states <= undo.stats().states);
        }
    }
}
