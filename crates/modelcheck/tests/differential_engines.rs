//! Differential test for the three exploration engines.
//!
//! For every seed lock × memory-model configuration at `n = 2, 3`, the
//! clone-based DFS (the original engine, kept as oracle), the undo-log DFS,
//! and the parallel sweep must produce **identical** `Stats.states` /
//! `Stats.transitions` / `Stats.terminal_states` and identical verdict
//! labels; violation counterexamples must carry the *same* schedule, and
//! that schedule must replay on a fresh machine to an actual two-in-CS
//! state (for mutex violations) without ever hitting a no-op element.

use modelcheck::{check, CheckConfig, Engine, Verdict};
use proptest::prelude::*;
use simlocks::{build_mutex, FenceMask, LockKind, ANNOT_IN_CS};
use wbmem::{CrashSemantics, MemoryModel, ProcId, StepOutcome};

fn kinds_for(n: usize) -> Vec<LockKind> {
    let mut kinds = vec![
        LockKind::Bakery,
        LockKind::BakeryPaperListing,
        LockKind::Gt { f: 2 },
        LockKind::Ttas,
        LockKind::Mcs,
        LockKind::Filter,
    ];
    if n == 2 {
        kinds.push(LockKind::Peterson);
    }
    if n.is_power_of_two() && n >= 2 {
        kinds.push(LockKind::Tournament);
    }
    kinds
}

fn engines() -> [Engine; 3] {
    [
        Engine::CloneDfs,
        Engine::Undo,
        Engine::Parallel { threads: 4 },
    ]
}

/// Replay a counterexample schedule on a fresh machine; every element must
/// take a real step, and the final state must witness the violation.
fn assert_mutex_cex_replays(
    inst: &simlocks::OrderingInstance,
    model: MemoryModel,
    n: usize,
    cex: &modelcheck::Counterexample,
) {
    let mut m = inst.machine(model);
    for (i, &elem) in cex.schedule.iter().enumerate() {
        let out = m.step(elem);
        assert!(
            !matches!(out, StepOutcome::NoOp),
            "{}/{model}: counterexample step {i} ({elem:?}) was a no-op",
            inst.name
        );
    }
    let in_cs = (0..n)
        .filter(|&i| m.annotation(ProcId::from(i)) == ANNOT_IN_CS)
        .count();
    assert!(
        in_cs >= 2,
        "{}/{model}: replayed counterexample ends with {in_cs} processes in CS",
        inst.name
    );
}

#[test]
fn engines_agree_on_every_seed_config() {
    let models = [
        MemoryModel::Sc,
        MemoryModel::Tso,
        MemoryModel::Pso,
        MemoryModel::Rmo,
    ];
    // Cap the space so the heaviest configs (n = 3 under PSO) stay cheap:
    // an equal `StateLimit` on every engine is still a differential check.
    let base = CheckConfig {
        check_termination: false,
        max_states: 20_000,
        ..CheckConfig::default()
    };

    let mut configs = 0usize;
    let mut violations = 0usize;
    for n in [2usize, 3] {
        for kind in kinds_for(n) {
            let inst = build_mutex(kind, n, FenceMask::ALL);
            for model in models {
                let verdicts: Vec<Verdict> = engines()
                    .iter()
                    .map(|&engine| check(&inst.machine(model), &base.clone().with_engine(engine)))
                    .collect();

                let ctx = format!("{} n={n} {model}", inst.name);
                assert_eq!(
                    verdicts[0].label(),
                    verdicts[1].label(),
                    "{ctx}: clone vs undo label"
                );
                assert_eq!(
                    verdicts[0].label(),
                    verdicts[2].label(),
                    "{ctx}: clone vs parallel label"
                );
                // `Stats` equality ignores `elapsed`, so this is exactly
                // states + transitions + terminal_states, bit-identical.
                assert_eq!(
                    verdicts[0].stats(),
                    verdicts[1].stats(),
                    "{ctx}: clone vs undo stats"
                );
                assert_eq!(
                    verdicts[0].stats(),
                    verdicts[2].stats(),
                    "{ctx}: clone vs parallel stats"
                );

                if let Some(cex0) = verdicts[0].counterexample() {
                    violations += 1;
                    for v in &verdicts[1..] {
                        let cex = v.counterexample().expect("violating engines agree");
                        assert_eq!(cex0.schedule, cex.schedule, "{ctx}: schedules");
                        assert_eq!(cex0.trace, cex.trace, "{ctx}: traces");
                    }
                    if matches!(verdicts[0], Verdict::MutexViolation(..)) {
                        assert_mutex_cex_replays(&inst, model, n, cex0);
                    }
                }
                configs += 1;
            }
        }
    }
    assert!(configs >= 48, "matrix actually swept ({configs} configs)");
    assert!(
        violations >= 4,
        "matrix includes violating configs ({violations})"
    );
}

/// The engines must also agree when termination checking is on (it adds the
/// edge bookkeeping and reverse-reachability pass to every engine).
#[test]
fn engines_agree_with_termination_checking() {
    let cfg = CheckConfig {
        max_states: 20_000,
        ..CheckConfig::default()
    };
    for (kind, n, model) in [
        (LockKind::Peterson, 2usize, MemoryModel::Tso),
        (LockKind::Bakery, 2, MemoryModel::Pso),
        (LockKind::Ttas, 3, MemoryModel::Pso),
    ] {
        let inst = build_mutex(kind, n, FenceMask::ALL);
        let verdicts: Vec<Verdict> = engines()
            .iter()
            .map(|&engine| check(&inst.machine(model), &cfg.clone().with_engine(engine)))
            .collect();
        let ctx = format!("{} n={n} {model}", inst.name);
        assert_eq!(verdicts[0].label(), verdicts[1].label(), "{ctx}");
        assert_eq!(verdicts[0].label(), verdicts[2].label(), "{ctx}");
        assert_eq!(verdicts[0].stats(), verdicts[1].stats(), "{ctx}");
        assert_eq!(verdicts[0].stats(), verdicts[2].stats(), "{ctx}");
    }
}

/// Crash schedules are explored bit-identically by all three engines: for
/// every crash budget and both crash semantics, labels, stats, and (where a
/// violation exists) the counterexample schedules coincide.
#[test]
fn engines_agree_on_crash_schedules() {
    let base = CheckConfig {
        check_termination: false,
        max_states: 20_000,
        ..CheckConfig::default()
    };
    let kinds = [
        LockKind::Ttas,
        LockKind::RecoverableTtas,
        LockKind::Bakery,
        LockKind::RecoverableBakery,
        LockKind::Peterson,
    ];
    for max_crashes in [0u32, 1, 2] {
        for sem in [CrashSemantics::DiscardBuffer, CrashSemantics::DrainBuffer] {
            if max_crashes == 0 && sem == CrashSemantics::DrainBuffer {
                continue; // semantics is irrelevant without crashes
            }
            for kind in kinds {
                let inst = build_mutex(kind, 2, FenceMask::ALL);
                for model in [MemoryModel::Tso, MemoryModel::Pso] {
                    let cfg = base.clone().with_crashes(sem, max_crashes);
                    let verdicts: Vec<Verdict> = engines()
                        .iter()
                        .map(|&engine| {
                            check(&inst.machine(model), &cfg.clone().with_engine(engine))
                        })
                        .collect();
                    let ctx = format!("{} {model} crashes={max_crashes} {sem:?}", inst.name);
                    for v in &verdicts[1..] {
                        assert_eq!(verdicts[0].label(), v.label(), "{ctx}: labels");
                        assert_eq!(verdicts[0].stats(), v.stats(), "{ctx}: stats");
                        assert_eq!(
                            verdicts[0].counterexample().map(|c| &c.schedule),
                            v.counterexample().map(|c| &c.schedule),
                            "{ctx}: counterexample schedules"
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A crash budget of zero must be a perfect no-op: for any seed config
    /// and engine, `with_crashes(sem, 0)` yields bit-identical stats and the
    /// same label as a config that never mentions crashes at all.
    #[test]
    fn crash_free_runs_are_bit_identical_to_the_seed(
        kind_ix in 0usize..6,
        model_ix in 0usize..4,
        engine_ix in 0usize..3,
        sem_drain in any::<bool>(),
        termination in any::<bool>(),
    ) {
        let kinds = [
            LockKind::Bakery,
            LockKind::BakeryPaperListing,
            LockKind::Ttas,
            LockKind::Peterson,
            LockKind::RecoverableTtas,
            LockKind::Mcs,
        ];
        let models = [
            MemoryModel::Sc,
            MemoryModel::Tso,
            MemoryModel::Pso,
            MemoryModel::Rmo,
        ];
        let sem = if sem_drain {
            CrashSemantics::DrainBuffer
        } else {
            CrashSemantics::DiscardBuffer
        };
        let base = CheckConfig {
            check_termination: termination,
            max_states: 5_000,
            ..CheckConfig::default()
        }
        .with_engine(engines()[engine_ix]);

        let inst = build_mutex(kinds[kind_ix], 2, FenceMask::ALL);
        let m = inst.machine(models[model_ix]);
        let plain = check(&m, &base);
        let crash_free = check(&m, &base.clone().with_crashes(sem, 0));
        prop_assert_eq!(plain.label(), crash_free.label());
        prop_assert_eq!(plain.stats(), crash_free.stats());
    }
}
