//! Differential observability: every exhaustive engine executes the same
//! edge multiset, so the deterministic part of its [`MetricsSnapshot`]
//! (states, transitions, per-step-class counts, per-process fence/RMR/crash
//! counts, dedup hits, buffer-depth histogram) must be **bit-identical**
//! across [`Engine::CloneDfs`], [`Engine::Undo`], [`Engine::Parallel`],
//! and [`Engine::Dpor`] in its `Some(u32::MAX)` disabled-reduction
//! diagnostic mode — on every cell of the n=2 lock × model matrix,
//! violating cells included.

use modelcheck::{check, CheckConfig, Engine, MetricsSnapshot, Recorder, Verdict};
use simlocks::{build_mutex, FenceMask, LockKind};
use wbmem::MemoryModel;

fn quiet_recorder() -> Recorder {
    Recorder::builder().quiet(true).build()
}

fn engines() -> [Engine; 4] {
    [
        Engine::CloneDfs,
        Engine::Undo,
        Engine::Parallel { threads: 2 },
        Engine::Dpor {
            reorder_bound: Some(u32::MAX),
        },
    ]
}

/// The matrix cells: (lock, fences, models). Small enough to stay fast,
/// varied enough to cover ok, mutex-violating, and crashy searches.
fn matrix() -> Vec<(LockKind, FenceMask, &'static str)> {
    vec![
        (LockKind::Peterson, FenceMask::ALL, "peterson_all"),
        (
            LockKind::Peterson,
            FenceMask::only(&[simlocks::peterson::SITE_VICTIM]),
            "peterson_victim_only",
        ),
        (LockKind::Ttas, FenceMask::ALL, "ttas_all"),
        (LockKind::Filter, FenceMask::ALL, "filter_all"),
    ]
}

fn run(engine: Engine, kind: LockKind, mask: FenceMask, model: MemoryModel) -> (Verdict, Recorder) {
    let inst = build_mutex(kind, 2, mask);
    let rec = quiet_recorder();
    let config = CheckConfig::default()
        .with_engine(engine)
        .with_recorder(rec.clone());
    (check(&inst.machine(model), &config), rec)
}

#[test]
fn all_engines_emit_bit_identical_metrics_on_the_n2_matrix() {
    for (kind, mask, name) in matrix() {
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            let mut baseline: Option<(Verdict, MetricsSnapshot)> = None;
            // RMRs are excluded from snapshot equality (cache-history
            // dependent; see MetricsSnapshot::deterministic_key) but must
            // still agree exactly across the engines that share one DFS
            // order: clone_dfs, undo, and diagnostic-mode dpor.
            let mut seq_rmrs: Option<u64> = None;
            for engine in engines() {
                let (v, rec) = run(engine, kind, mask, model);
                let snap = rec.snapshot();
                if !matches!(engine, Engine::Parallel { .. }) {
                    let rmrs = snap.get(ftobs::Metric::Rmrs);
                    match seq_rmrs {
                        None => seq_rmrs = Some(rmrs),
                        Some(r0) => assert_eq!(
                            r0,
                            rmrs,
                            "{name}/{model}/{}: sequential RMR drift",
                            engine.label()
                        ),
                    }
                }
                assert!(
                    !snap.is_empty(),
                    "{name}/{model}/{}: recorder saw nothing",
                    engine.label()
                );
                assert_eq!(
                    snap.states(),
                    v.stats().states as u64,
                    "{name}/{model}/{}: metric states vs stats",
                    engine.label()
                );
                assert_eq!(
                    snap.transitions(),
                    v.stats().transitions as u64,
                    "{name}/{model}/{}: metric transitions vs stats",
                    engine.label()
                );
                // The final snapshot is also stamped into the verdict.
                assert_eq!(
                    v.stats().metrics,
                    snap,
                    "{name}/{model}/{}: stamped snapshot differs",
                    engine.label()
                );
                match &baseline {
                    None => baseline = Some((v, snap)),
                    Some((v0, snap0)) => {
                        assert_eq!(
                            v0.label(),
                            v.label(),
                            "{name}/{model}/{}: verdict drift",
                            engine.label()
                        );
                        assert_eq!(
                            *snap0,
                            snap,
                            "{name}/{model}/{}: metrics drift vs clone_dfs\n  \
                             clone_dfs: {:?}\n  this:      {:?}",
                            engine.label(),
                            snap0.deterministic_key(),
                            snap.deterministic_key()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn crash_workload_metrics_agree_and_count_crashes() {
    let engines = engines();
    let mut baseline: Option<MetricsSnapshot> = None;
    for engine in engines {
        let inst = build_mutex(LockKind::RecoverableTtas, 2, FenceMask::ALL);
        let rec = quiet_recorder();
        let config = CheckConfig {
            check_termination: false,
            max_states: 200_000,
            ..CheckConfig::default()
        }
        .with_crashes(wbmem::CrashSemantics::DiscardBuffer, 1)
        .with_engine(engine)
        .with_recorder(rec.clone());
        let v = check(&inst.machine(MemoryModel::Pso), &config);
        assert!(v.is_ok(), "{}: {}", engine.label(), v.label());
        let snap = rec.snapshot();
        let crashes: u64 = snap.per_proc.iter().map(|p| p.crashes).sum();
        assert!(crashes > 0, "{}: no crash steps recorded", engine.label());
        match &baseline {
            None => baseline = Some(snap),
            Some(snap0) => assert_eq!(*snap0, snap, "{}: crash metrics drift", engine.label()),
        }
    }
}

#[test]
fn reduced_dpor_reports_fewer_transitions_than_its_diagnostic_mode() {
    let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
    let base = CheckConfig {
        check_termination: false, // enable ample pruning
        ..CheckConfig::default()
    };
    let rec_full = quiet_recorder();
    let full = check(
        &inst.machine(MemoryModel::Pso),
        &base
            .clone()
            .with_engine(Engine::Dpor {
                reorder_bound: Some(u32::MAX),
            })
            .with_recorder(rec_full.clone()),
    );
    let rec_red = quiet_recorder();
    let reduced = check(
        &inst.machine(MemoryModel::Pso),
        &base
            .with_engine(Engine::Dpor {
                reorder_bound: None,
            })
            .with_recorder(rec_red.clone()),
    );
    assert!(full.is_ok() && reduced.is_ok());
    let (f, r) = (rec_full.snapshot(), rec_red.snapshot());
    assert!(
        r.transitions() < f.transitions(),
        "reduction must shrink the edge count: {} vs {}",
        r.transitions(),
        f.transitions()
    );
    use ftobs::Metric;
    assert_eq!(f.get(Metric::SleepHits), 0, "diagnostic mode never sleeps");
    assert!(
        r.get(Metric::SleepHits) + r.get(Metric::AmpleApplied) > 0,
        "the reduced run must report reduction work"
    );
}
