//! Differential test for the work-stealing parallel DPOR engine against
//! the sequential DPOR engine.
//!
//! `Engine::ParallelDpor` promises *bit-identical verdicts* to
//! `Engine::Dpor` with the same reorder bound, on every configuration: it
//! runs the same reduction per worker, shares only a fingerprint table
//! (which can never prune more than the sequential visit table), and
//! defers every early stop (violation, state limit, stuck state, panic)
//! to a sequential rerun. In the `Some(u32::MAX)` diagnostic mode it
//! additionally promises a *bit-identical* [`MetricsSnapshot`]: with
//! reduction off, the global table is the only pruning rule, so a
//! completed sweep executes the exact edge multiset of the sequential
//! engines.
//!
//! The engine normally short-circuits small runs to the sequential engine
//! (`FT_PARDPOR_SEQ` threshold); these tests pin the threshold to `0` so
//! the fork-queue/fingerprint-table machinery is actually exercised on
//! every configuration, however small.

use std::sync::Once;

use modelcheck::{check, CheckConfig, Engine, Verdict};
use proptest::prelude::*;
use simlocks::{build_mutex, FenceMask, LockKind, ANNOT_IN_CS};
use wbmem::{
    CrashSemantics, Machine, MachineConfig, MemoryLayout, MemoryModel, ProcId, StepOutcome,
};

static FORCE_PARALLEL: Once = Once::new();

/// Disable the sequential-prefix gate so even tiny state spaces go
/// through the work-stealing path (the thing under test).
fn force_parallel() {
    FORCE_PARALLEL.call_once(|| std::env::set_var("FT_PARDPOR_SEQ", "0"));
}

/// Worker count: `FT_THREADS` if set (the CI entry point runs this suite
/// with `FT_THREADS=2`), otherwise 4 — enough that stealing actually
/// happens even on a single-core host (blocked takers still race for
/// published fork points).
fn threads() -> usize {
    std::env::var("FT_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

fn dpor() -> Engine {
    Engine::Dpor {
        reorder_bound: None,
    }
}

fn pardpor() -> Engine {
    Engine::ParallelDpor {
        threads: threads(),
        reorder_bound: None,
    }
}

const MODELS: [MemoryModel; 4] = [
    MemoryModel::Sc,
    MemoryModel::Tso,
    MemoryModel::Pso,
    MemoryModel::Rmo,
];

/// Replay a mutex counterexample on a fresh *unreduced* machine: every
/// element must take a real step and the final state must witness the
/// violation.
fn assert_mutex_cex_replays(
    inst: &simlocks::OrderingInstance,
    model: MemoryModel,
    config: &CheckConfig,
    cex: &modelcheck::Counterexample,
) {
    let mut m = inst.machine(model);
    if config.max_crashes > 0 {
        m.set_crash_bound(config.crash_semantics, config.max_crashes);
    }
    for (i, &elem) in cex.schedule.iter().enumerate() {
        let out = m.step(elem);
        assert!(
            !matches!(out, StepOutcome::NoOp),
            "{}/{model}: counterexample step {i} ({elem:?}) was a no-op",
            inst.name
        );
    }
    let in_cs = (0..2)
        .filter(|&i| m.annotation(ProcId::from(i)) == ANNOT_IN_CS)
        .count();
    assert!(
        in_cs >= 2,
        "{}/{model}: replayed counterexample ends with {in_cs} processes in CS",
        inst.name
    );
}

/// Run one configuration under both engines and compare labels; returns
/// whether the configuration was violating.
fn compare(inst: &simlocks::OrderingInstance, model: MemoryModel, config: &CheckConfig) -> bool {
    let seq = check(&inst.machine(model), &config.clone().with_engine(dpor()));
    let par = check(&inst.machine(model), &config.clone().with_engine(pardpor()));
    let ctx = format!(
        "{} {model} crashes={} term={}",
        inst.name, config.max_crashes, config.check_termination
    );
    assert!(
        !matches!(seq, Verdict::StateLimit(_)) && !matches!(par, Verdict::StateLimit(_)),
        "{ctx}: raise max_states — a capped run cannot be compared"
    );
    assert_eq!(seq.label(), par.label(), "{ctx}: verdict labels");
    // Sleep sets preserve *every* reachable state, so completed
    // sleep-sets-only sweeps (termination mode) agree on the
    // visited-state set — the global first-visit gate counts each state
    // once. Ample pruning drops states, and which states is
    // traversal-dependent (the cycle proviso consults the reaching
    // path), so ample-mode sweeps pin verdicts only; violating runs
    // stop at engine-specific points and are likewise not comparable.
    if config.check_termination && (seq.is_ok() || matches!(seq, Verdict::NoTermination(..))) {
        assert_eq!(
            seq.stats().states,
            par.stats().states,
            "{ctx}: completed sweeps must count the same states"
        );
        assert_eq!(
            seq.stats().terminal_states,
            par.stats().terminal_states,
            "{ctx}: terminal-state counts"
        );
    }
    if let Verdict::MutexViolation(_, cex) = &par {
        assert_mutex_cex_replays(inst, model, config, cex);
    }
    par.is_violation()
}

/// The full n = 2 safety matrix: every fence mask of every lock under
/// every model, with and without a crash budget.
#[test]
fn pardpor_agrees_on_the_full_n2_safety_matrix() {
    force_parallel();
    let base = CheckConfig {
        check_termination: false,
        max_states: 1_000_000,
        ..CheckConfig::default()
    };
    let mut configs = 0usize;
    let mut violations = 0usize;
    for kind in [LockKind::Peterson, LockKind::Ttas, LockKind::Bakery] {
        let probe = build_mutex(kind, 2, FenceMask::ALL);
        for mask in FenceMask::enumerate(probe.fence_sites) {
            let inst = build_mutex(kind, 2, mask);
            for model in MODELS {
                for max_crashes in [0u32, 1] {
                    let config = base
                        .clone()
                        .with_crashes(CrashSemantics::DiscardBuffer, max_crashes);
                    violations += usize::from(compare(&inst, model, &config));
                    configs += 1;
                }
            }
        }
    }
    assert!(configs >= 200, "matrix actually swept ({configs} configs)");
    assert!(
        violations >= 20,
        "matrix includes violating configs ({violations})"
    );
}

/// With termination checking on, both engines switch to sleep-sets-only
/// plus edge probing; the merged fingerprint graph must support the same
/// NO-TERMINATION verdicts, including the crash-induced ones.
#[test]
fn pardpor_agrees_with_termination_checking() {
    force_parallel();
    let base = CheckConfig {
        max_states: 1_000_000,
        ..CheckConfig::default()
    };
    let mut violations = 0usize;
    for (kind, mask, model, max_crashes) in [
        (LockKind::Peterson, FenceMask::ALL, MemoryModel::Tso, 0u32),
        (LockKind::Peterson, FenceMask::ALL, MemoryModel::Pso, 0),
        (
            LockKind::Peterson,
            FenceMask::only(&[simlocks::peterson::SITE_VICTIM]),
            MemoryModel::Pso,
            0,
        ),
        (LockKind::Ttas, FenceMask::ALL, MemoryModel::Pso, 1),
        (
            LockKind::RecoverableTtas,
            FenceMask::ALL,
            MemoryModel::Pso,
            1,
        ),
        (LockKind::Bakery, FenceMask::ALL, MemoryModel::Pso, 0),
        (LockKind::Bakery, FenceMask::NONE, MemoryModel::Tso, 0),
    ] {
        let inst = build_mutex(kind, 2, mask);
        let config = base
            .clone()
            .with_crashes(CrashSemantics::DiscardBuffer, max_crashes);
        violations += usize::from(compare(&inst, model, &config));
    }
    assert!(violations >= 2, "set includes violating configs");
}

/// Drain-buffer crash semantics with a multi-crash budget: a crash's
/// drain commits the whole buffer (a many-cell dependence footprint),
/// and with `max_crashes >= 2` a recovered process can refill and drain
/// *again* — fork points donated across workers must carry the remaining
/// crash budget and the post-drain buffer state exactly. The existing
/// matrices stop at single-crash drain cells; this pins the chain.
#[test]
fn pardpor_agrees_under_multi_crash_drain() {
    force_parallel();
    let base = CheckConfig {
        check_termination: false,
        max_states: 1_000_000,
        ..CheckConfig::default()
    };
    for kind in [LockKind::Ttas, LockKind::RecoverableTtas] {
        let inst = build_mutex(kind, 2, FenceMask::ALL);
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            for max_crashes in [1u32, 2] {
                let config = base
                    .clone()
                    .with_crashes(CrashSemantics::DrainBuffer, max_crashes);
                compare(&inst, model, &config);
            }
        }
    }
}

/// Reorder bounds travel with the donated fork points (the remaining
/// budget is part of the continuation); bounded verdicts must coincide,
/// including the bound-0 ≡ SC collapse.
#[test]
fn pardpor_agrees_under_reorder_bounds() {
    force_parallel();
    let mask = FenceMask::only(&[simlocks::peterson::SITE_RELEASE]);
    let inst = build_mutex(LockKind::Peterson, 2, mask);
    for bound in [Some(0u32), Some(1), Some(2), None] {
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            let seq = check(
                &inst.machine(model),
                &CheckConfig::default().with_engine(Engine::Dpor {
                    reorder_bound: bound,
                }),
            );
            let par = check(
                &inst.machine(model),
                &CheckConfig::default().with_engine(Engine::ParallelDpor {
                    threads: threads(),
                    reorder_bound: bound,
                }),
            );
            assert_eq!(
                seq.label(),
                par.label(),
                "bound {bound:?} under {model}: verdict labels"
            );
        }
    }
}

/// Diagnostic disabled-reduction mode: the sweep executes the exact edge
/// multiset of the exhaustive engines, so the deterministic part of the
/// metrics snapshot — and the `Stats` stamped into the verdict — must be
/// **bit-identical** to sequential diagnostic DPOR, on ok and violating
/// cells alike.
#[test]
fn diagnostic_mode_metrics_are_bit_identical() {
    force_parallel();
    let quiet = || modelcheck::Recorder::builder().quiet(true).build();
    for (kind, mask, name) in [
        (LockKind::Peterson, FenceMask::ALL, "peterson_all"),
        (
            LockKind::Peterson,
            FenceMask::only(&[simlocks::peterson::SITE_VICTIM]),
            "peterson_victim_only",
        ),
        (LockKind::Ttas, FenceMask::ALL, "ttas_all"),
        (LockKind::Filter, FenceMask::ALL, "filter_all"),
    ] {
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            let inst = build_mutex(kind, 2, mask);
            let rec_seq = quiet();
            let seq = check(
                &inst.machine(model),
                &CheckConfig::default()
                    .with_engine(Engine::Dpor {
                        reorder_bound: Some(u32::MAX),
                    })
                    .with_recorder(rec_seq.clone()),
            );
            let rec_par = quiet();
            let par = check(
                &inst.machine(model),
                &CheckConfig::default()
                    .with_engine(Engine::ParallelDpor {
                        threads: 2,
                        reorder_bound: Some(u32::MAX),
                    })
                    .with_recorder(rec_par.clone()),
            );
            assert_eq!(seq.label(), par.label(), "{name}/{model}: verdict labels");
            assert_eq!(
                seq.stats().states,
                par.stats().states,
                "{name}/{model}: states"
            );
            assert_eq!(
                seq.stats().transitions,
                par.stats().transitions,
                "{name}/{model}: transitions"
            );
            let (s, p) = (rec_seq.snapshot(), rec_par.snapshot());
            assert_eq!(
                s,
                p,
                "{name}/{model}: diagnostic metrics drift\n  dpor:    {:?}\n  pardpor: {:?}",
                s.deterministic_key(),
                p.deterministic_key()
            );
            // The final snapshot is also stamped into the verdict.
            assert_eq!(par.stats().metrics, p, "{name}/{model}: stamped snapshot");
        }
    }
}

/// The sequential-prefix gate (left at its default here) must be
/// transparent: small spaces complete inside the capped prefix and the
/// verdict is the sequential engine's, bit for bit.
#[test]
fn sequential_gate_is_transparent_on_small_spaces() {
    let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
    for model in [MemoryModel::Tso, MemoryModel::Pso] {
        let seq = check(
            &inst.machine(model),
            &CheckConfig::default().with_engine(dpor()),
        );
        let par = check(
            &inst.machine(model),
            &CheckConfig::default().with_engine(pardpor()),
        );
        assert_eq!(seq.label(), par.label(), "{model}: verdict labels");
        assert_eq!(seq.stats().states, par.stats().states, "{model}: states");
        assert_eq!(
            seq.stats().transitions,
            par.stats().transitions,
            "{model}: transitions"
        );
    }
}

// --- random programs ---

/// One step of a random straight-line program.
#[derive(Clone, Copy, Debug)]
enum Op {
    Write { reg: i64, val: i64 },
    Read { reg: i64 },
    Cas { reg: i64, expect: i64, new: i64 },
    Swap { reg: i64, val: i64 },
    Fence,
    Annot { in_cs: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..3i64, 0..3i64).prop_map(|(reg, val)| Op::Write { reg, val }),
        (0..3i64).prop_map(|reg| Op::Read { reg }),
        (0..3i64, 0..2i64, 0..3i64).prop_map(|(reg, expect, new)| Op::Cas { reg, expect, new }),
        (0..3i64, 0..3i64).prop_map(|(reg, val)| Op::Swap { reg, val }),
        Just(Op::Fence),
        any::<bool>().prop_map(|in_cs| Op::Annot { in_cs }),
    ]
}

fn assemble(name: &str, ops: &[Op]) -> fencevm::VmProc {
    let mut a = fencevm::Asm::new(name);
    let scratch = a.local("scratch");
    for &op in ops {
        match op {
            Op::Write { reg, val } => a.write(reg, val),
            Op::Read { reg } => a.read(reg, scratch),
            Op::Cas { reg, expect, new } => a.cas(reg, expect, new, scratch),
            Op::Swap { reg, val } => a.swap(reg, val, scratch),
            Op::Fence => a.fence(),
            Op::Annot { in_cs } => a.annot(if in_cs { ANNOT_IN_CS } else { 7 }),
        }
    }
    a.ret(0i64);
    fencevm::VmProc::new(a.assemble().into())
}

fn random_machine(progs: &[Vec<Op>], model: MemoryModel) -> Machine<fencevm::VmProc> {
    let procs = progs
        .iter()
        .enumerate()
        .map(|(i, ops)| assemble(&format!("p{i}"), ops))
        .collect();
    Machine::new(MachineConfig::new(model, MemoryLayout::unowned()), procs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On arbitrary small two-process programs — random register traffic,
    /// RMW ops, fences, and annotations (so mutex violations actually
    /// occur) — the parallel engine returns the same verdict label as the
    /// sequential DPOR engine, under every model, with and without a
    /// crash budget, with the work-stealing path forced on.
    #[test]
    fn pardpor_matches_dpor_on_random_programs(
        prog0 in prop::collection::vec(op_strategy(), 0..6),
        prog1 in prop::collection::vec(op_strategy(), 0..6),
        model_ix in 0usize..4,
        max_crashes in 0u32..2,
        termination in any::<bool>(),
    ) {
        force_parallel();
        let model = MODELS[model_ix];
        let config = CheckConfig {
            check_termination: termination,
            max_states: 1_000_000,
            ..CheckConfig::default()
        }
        .with_crashes(CrashSemantics::DiscardBuffer, max_crashes);

        let progs = [prog0, prog1];
        let seq = check(
            &random_machine(&progs, model),
            &config.clone().with_engine(dpor()),
        );
        let par = check(
            &random_machine(&progs, model),
            &config.clone().with_engine(pardpor()),
        );
        prop_assert_eq!(
            seq.label(),
            par.label(),
            "{:?} {} crashes={} term={}",
            progs,
            model,
            max_crashes,
            termination
        );
        // Sleep-sets-only sweeps (termination mode) visit exactly the
        // reachable states in both engines; ample-mode state sets are
        // traversal-dependent (see `compare` in this file).
        if termination && (seq.is_ok() || matches!(seq, Verdict::NoTermination(..))) {
            prop_assert_eq!(seq.stats().states, par.stats().states);
        }
    }
}
