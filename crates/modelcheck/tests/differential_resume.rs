//! Differential tests for durable checkpoint/resume.
//!
//! The contract under test: interrupting a run (transition cut, raised
//! interrupt flag, or periodic snapshot) and resuming from the resulting
//! checkpoint must reach the **same verdict** as the uninterrupted run —
//! on every lock × model × fence-mask × crash configuration, for all
//! three checkpointing engines. In the exhaustive modes (`Engine::Undo`,
//! diagnostic-bound DPOR) the combined run must additionally count the
//! exact same states/transitions and — because the global first-visit
//! table partitions the executed edge multiset between the interrupted
//! and resumed halves — merge to a **bit-identical** deterministic
//! metrics snapshot.
//!
//! Torn, corrupt, or mismatched checkpoints must surface as the typed
//! [`CheckError::Checkpoint`] — never a panic, and never a silent fresh
//! start.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Once};

use modelcheck::{check, resume, CheckConfig, CheckError, CheckpointPolicy, Engine, Verdict};
use proptest::prelude::*;
use simlocks::{build_mutex, FenceMask, LockKind};
use wbmem::{CrashSemantics, MemoryModel};

static FORCE_PARALLEL: Once = Once::new();

/// Disable the sequential-prefix gate so `Engine::ParallelDpor` cells
/// exercise the work-stealing path even on tiny state spaces.
fn force_parallel() {
    FORCE_PARALLEL.call_once(|| std::env::set_var("FT_PARDPOR_SEQ", "0"));
}

static NEXT_CKPT: AtomicUsize = AtomicUsize::new(0);

/// A unique checkpoint path under a per-process temp directory (tests in
/// this binary run concurrently).
fn ckpt_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ft_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!(
        "{tag}_{}.ckpt",
        NEXT_CKPT.fetch_add(1, Ordering::Relaxed)
    ))
}

const MODELS: [MemoryModel; 4] = [
    MemoryModel::Sc,
    MemoryModel::Tso,
    MemoryModel::Pso,
    MemoryModel::Rmo,
];

/// Does this engine execute the full edge multiset (no ample pruning),
/// making combined state/transition counts exactly comparable?
fn is_exhaustive(engine: &Engine) -> bool {
    match engine {
        Engine::Undo => true,
        Engine::Dpor { reorder_bound } | Engine::ParallelDpor { reorder_bound, .. } => {
            *reorder_bound == Some(u32::MAX)
        }
        _ => false,
    }
}

/// Run `config` uninterrupted, then again with a transition cut at
/// roughly half the total, resume from the checkpoint, and require the
/// combined verdict to match. Returns whether the cell was violating.
fn compare_resumed(
    inst: &simlocks::OrderingInstance,
    model: MemoryModel,
    config: &CheckConfig,
    tag: &str,
) -> bool {
    let fresh = check(&inst.machine(model), config);
    assert!(
        fresh.coverage().is_none(),
        "{tag}: uninterrupted reference run must complete"
    );
    let cut = (fresh.stats().transitions as u64 / 2).max(1);
    let path = ckpt_path(tag);
    let stopped = check(
        &inst.machine(model),
        &config
            .clone()
            .with_checkpoint(CheckpointPolicy::at(&path).stop_after(cut)),
    );
    let ctx = format!("{tag} {} {model}", inst.name);
    match stopped {
        Verdict::Inconclusive(_, cov) => {
            let cp = cov
                .checkpoint
                .unwrap_or_else(|| panic!("{ctx}: stop must write a checkpoint"));
            let resumed = resume(&inst.machine(model), config, &cp);
            assert_eq!(
                fresh.label(),
                resumed.label(),
                "{ctx}: resumed verdict diverges from uninterrupted run"
            );
            if is_exhaustive(&config.engine) && fresh.is_ok() {
                assert_eq!(
                    fresh.stats().states,
                    resumed.stats().states,
                    "{ctx}: combined state count"
                );
                assert_eq!(
                    fresh.stats().transitions,
                    resumed.stats().transitions,
                    "{ctx}: combined transition count"
                );
                assert_eq!(
                    fresh.stats().terminal_states,
                    resumed.stats().terminal_states,
                    "{ctx}: combined terminal count"
                );
            }
            let _ = std::fs::remove_file(&cp);
        }
        other => {
            // The cut landed after the last expansion (only frame pops
            // remained), or a parallel worker raced to the verdict
            // first; either way the verdict must already agree.
            assert_eq!(
                fresh.label(),
                other.label(),
                "{ctx}: run that beat its cut must agree"
            );
            let _ = std::fs::remove_file(&path);
        }
    }
    fresh.is_violation()
}

/// One engine's sweep of the full n = 2 safety matrix: every fence mask
/// of every lock under every model, with and without a crash budget.
fn matrix_for(engine: Engine, tag: &str) {
    let base = CheckConfig {
        check_termination: false,
        max_states: 1_000_000,
        ..CheckConfig::default()
    }
    .with_engine(engine);
    let mut configs = 0usize;
    let mut violations = 0usize;
    for kind in [LockKind::Peterson, LockKind::Ttas, LockKind::Bakery] {
        let probe = build_mutex(kind, 2, FenceMask::ALL);
        for mask in FenceMask::enumerate(probe.fence_sites) {
            let inst = build_mutex(kind, 2, mask);
            for model in MODELS {
                for max_crashes in [0u32, 1] {
                    let config = base
                        .clone()
                        .with_crashes(CrashSemantics::DiscardBuffer, max_crashes);
                    violations += usize::from(compare_resumed(&inst, model, &config, tag));
                    configs += 1;
                }
            }
        }
    }
    assert!(configs >= 200, "{tag}: matrix actually swept ({configs})");
    assert!(
        violations >= 20,
        "{tag}: matrix includes violating configs ({violations})"
    );
}

#[test]
fn undo_resumes_across_the_full_n2_matrix() {
    matrix_for(Engine::Undo, "undo");
}

#[test]
fn dpor_resumes_across_the_full_n2_matrix() {
    matrix_for(
        Engine::Dpor {
            reorder_bound: None,
        },
        "dpor",
    );
}

#[test]
fn pardpor_resumes_across_the_full_n2_matrix() {
    force_parallel();
    matrix_for(
        Engine::ParallelDpor {
            threads: 2,
            reorder_bound: None,
        },
        "pardpor",
    );
}

/// Termination checking serializes the fingerprint graph (edges and
/// terminals) into the snapshot; the merged graph must support the same
/// NO-TERMINATION verdicts after a resume.
#[test]
fn resume_preserves_termination_verdicts() {
    force_parallel();
    let engines = [
        Engine::Undo,
        Engine::Dpor {
            reorder_bound: None,
        },
        Engine::ParallelDpor {
            threads: 2,
            reorder_bound: None,
        },
    ];
    for (kind, mask, model, max_crashes) in [
        (LockKind::Peterson, FenceMask::ALL, MemoryModel::Tso, 0u32),
        (
            LockKind::Peterson,
            FenceMask::only(&[simlocks::peterson::SITE_VICTIM]),
            MemoryModel::Pso,
            0,
        ),
        (LockKind::Ttas, FenceMask::ALL, MemoryModel::Pso, 1),
        (LockKind::Bakery, FenceMask::NONE, MemoryModel::Tso, 0),
    ] {
        let inst = build_mutex(kind, 2, mask);
        for engine in engines {
            let config = CheckConfig {
                max_states: 1_000_000,
                ..CheckConfig::default()
            }
            .with_engine(engine)
            .with_crashes(CrashSemantics::DiscardBuffer, max_crashes);
            compare_resumed(&inst, model, &config, "term");
        }
    }
}

/// Exhaustive modes promise more than verdict equality: the interrupted
/// and resumed halves partition the executed edge multiset, so merging
/// their metrics snapshots reproduces the uninterrupted run's snapshot
/// bit for bit (deterministic projection).
#[test]
fn diagnostic_merged_metrics_are_bit_identical() {
    force_parallel();
    let quiet = || modelcheck::Recorder::builder().quiet(true).build();
    let engines = [
        Engine::Undo,
        Engine::Dpor {
            reorder_bound: Some(u32::MAX),
        },
        Engine::ParallelDpor {
            threads: 2,
            reorder_bound: Some(u32::MAX),
        },
    ];
    for (kind, mask, model) in [
        (LockKind::Peterson, FenceMask::ALL, MemoryModel::Tso),
        (
            LockKind::Peterson,
            FenceMask::only(&[simlocks::peterson::SITE_VICTIM]),
            MemoryModel::Pso,
        ),
        (LockKind::Ttas, FenceMask::ALL, MemoryModel::Pso),
    ] {
        let inst = build_mutex(kind, 2, mask);
        for engine in engines {
            let tag = format!("metrics_{}", engine.label());
            let config = CheckConfig::default().with_engine(engine);
            let fresh = check(&inst.machine(model), &config.clone().with_recorder(quiet()));
            let cut = (fresh.stats().transitions as u64 / 2).max(1);
            let path = ckpt_path(&tag);
            let stopped = check(
                &inst.machine(model),
                &config
                    .clone()
                    .with_recorder(quiet())
                    .with_checkpoint(CheckpointPolicy::at(&path).stop_after(cut)),
            );
            let Verdict::Inconclusive(_, cov) = &stopped else {
                // Violating cells stop at the violation either way.
                assert_eq!(fresh.label(), stopped.label(), "{tag}: verdicts");
                continue;
            };
            let cp = cov.checkpoint.clone().expect("checkpoint written");
            let resumed = resume(
                &inst.machine(model),
                &config.clone().with_recorder(quiet()),
                &cp,
            );
            assert_eq!(fresh.label(), resumed.label(), "{tag}: verdicts");
            if fresh.is_ok() {
                assert_eq!(
                    fresh.stats().metrics,
                    resumed.stats().metrics,
                    "{tag} {model}: merged snapshot must be bit-identical\n  fresh:  {:?}\n  merged: {:?}",
                    fresh.stats().metrics.deterministic_key(),
                    resumed.stats().metrics.deterministic_key()
                );
            }
            let _ = std::fs::remove_file(&cp);
        }
    }
}

/// A raised interrupt flag checkpoints almost immediately; clearing it
/// and resuming completes the run with the uninterrupted verdict.
#[test]
fn interrupt_flag_checkpoints_and_resumes() {
    let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
    let config = CheckConfig::default().with_engine(Engine::Undo);
    let fresh = check(&inst.machine(MemoryModel::Pso), &config);
    let flag = Arc::new(AtomicBool::new(true));
    let path = ckpt_path("interrupt");
    let stopped = check(
        &inst.machine(MemoryModel::Pso),
        &config
            .clone()
            .with_checkpoint(CheckpointPolicy::at(&path).on_interrupt(flag.clone())),
    );
    let cp = stopped
        .coverage()
        .expect("raised flag stops the run")
        .checkpoint
        .expect("and writes a checkpoint");
    flag.store(false, Ordering::Relaxed);
    let resumed = resume(&inst.machine(MemoryModel::Pso), &config, &cp);
    assert_eq!(fresh.label(), resumed.label());
    assert_eq!(fresh.stats().states, resumed.stats().states);
    let _ = std::fs::remove_file(&cp);
}

/// Repeatedly interrupting every few hundred transitions and resuming
/// each time must still converge to the uninterrupted verdict, with the
/// chained checkpoints folding prior totals in correctly.
#[test]
fn chained_interrupts_converge() {
    let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
    let config = CheckConfig::default().with_engine(Engine::Undo);
    let fresh = check(&inst.machine(MemoryModel::Pso), &config);
    let path = ckpt_path("chain");
    let policy = CheckpointPolicy::at(&path).stop_after(300);
    let mut verdict = check(
        &inst.machine(MemoryModel::Pso),
        &config.clone().with_checkpoint(policy.clone()),
    );
    let mut hops = 0usize;
    while let Verdict::Inconclusive(_, cov) = &verdict {
        let cp = cov.checkpoint.clone().expect("checkpoint written");
        verdict = resume(
            &inst.machine(MemoryModel::Pso),
            &config.clone().with_checkpoint(policy.clone()),
            &cp,
        );
        hops += 1;
        assert!(hops < 500, "resume chain must converge");
    }
    assert!(hops >= 2, "the cut actually fired repeatedly ({hops} hops)");
    assert_eq!(fresh.label(), verdict.label());
    assert_eq!(fresh.stats().states, verdict.stats().states);
    assert_eq!(fresh.stats().transitions, verdict.stats().transitions);
    let _ = std::fs::remove_file(&path);
}

/// A periodic checkpoint left behind by a run that *completed* is a
/// valid (if conservative) resume point: resuming re-explores only what
/// followed the snapshot and lands on the same verdict and counts.
#[test]
fn periodic_checkpoint_from_completed_run_resumes_cleanly() {
    let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
    let path = ckpt_path("periodic");
    let config = CheckConfig::default().with_engine(Engine::Undo);
    let fresh = check(
        &inst.machine(MemoryModel::Tso),
        &config
            .clone()
            .with_checkpoint(CheckpointPolicy::at(&path).every_transitions(400)),
    );
    assert!(fresh.is_ok(), "reference cell is correct under TSO");
    assert!(path.exists(), "periodic snapshot persisted");
    let resumed = resume(&inst.machine(MemoryModel::Tso), &config, &path);
    assert_eq!(fresh.label(), resumed.label());
    assert_eq!(fresh.stats().states, resumed.stats().states);
    assert_eq!(fresh.stats().transitions, resumed.stats().transitions);
    let _ = std::fs::remove_file(&path);
}

/// A cut the run never reaches must not write a checkpoint — the verdict
/// completes normally.
#[test]
fn unreached_cut_writes_no_checkpoint() {
    let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
    let path = ckpt_path("unreached");
    let verdict = check(
        &inst.machine(MemoryModel::Tso),
        &CheckConfig::default()
            .with_engine(Engine::Undo)
            .with_checkpoint(CheckpointPolicy::at(&path).stop_after(u64::MAX / 2)),
    );
    assert!(verdict.is_ok());
    assert!(!path.exists(), "no stop, no snapshot");
}

// --- corrupt / mismatched checkpoints ---

/// Produce a real checkpoint to corrupt, together with the config that
/// wrote it.
fn checkpoint_fixture(tag: &str) -> (simlocks::OrderingInstance, CheckConfig, PathBuf) {
    let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
    let config = CheckConfig::default().with_engine(Engine::Undo);
    let path = ckpt_path(tag);
    let stopped = check(
        &inst.machine(MemoryModel::Pso),
        &config
            .clone()
            .with_checkpoint(CheckpointPolicy::at(&path).stop_after(100)),
    );
    let cp = stopped
        .coverage()
        .expect("cut fires well before the ~1e3-transition sweep ends")
        .checkpoint
        .expect("checkpoint written");
    (inst, config, cp)
}

/// Every corruption and mismatch must come back as the typed
/// `CheckError::Checkpoint` — no panic, no silent fresh start.
fn assert_rejected(v: Verdict, what: &str) {
    match v {
        Verdict::Error(_, CheckError::Checkpoint(msg)) => {
            assert!(!msg.is_empty(), "{what}: diagnostic message present");
        }
        other => panic!(
            "{what}: expected a typed checkpoint error, got {}",
            other.label()
        ),
    }
}

#[test]
fn torn_and_corrupt_checkpoints_are_rejected() {
    let (inst, config, cp) = checkpoint_fixture("corrupt");
    let bytes = std::fs::read(&cp).expect("checkpoint readable");
    assert!(bytes.len() > 64, "snapshot has real content");
    let m = &inst.machine(MemoryModel::Pso);

    // Truncated mid-stream (torn write simulacrum).
    let torn = ckpt_path("torn");
    std::fs::write(&torn, &bytes[..bytes.len() - 7]).unwrap();
    assert_rejected(resume(m, &config, &torn), "truncated");

    // One flipped payload byte must fail the checksum.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    let flip = ckpt_path("flip");
    std::fs::write(&flip, &flipped).unwrap();
    assert_rejected(resume(m, &config, &flip), "flipped byte");

    // Wrong magic.
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    let magic = ckpt_path("magic");
    std::fs::write(&magic, &bad_magic).unwrap();
    assert_rejected(resume(m, &config, &magic), "bad magic");

    // Unknown format version (byte right after the 6-byte magic).
    let mut bad_ver = bytes.clone();
    bad_ver[6] = 0xEE;
    let ver = ckpt_path("version");
    std::fs::write(&ver, &bad_ver).unwrap();
    assert_rejected(resume(m, &config, &ver), "bad version");

    // Empty and missing files.
    let empty = ckpt_path("empty");
    std::fs::write(&empty, b"").unwrap();
    assert_rejected(resume(m, &config, &empty), "empty");
    assert_rejected(resume(m, &config, &ckpt_path("missing")), "missing file");

    let _ = std::fs::remove_file(&cp);
}

#[test]
fn mismatched_runs_are_rejected() {
    let (inst, config, cp) = checkpoint_fixture("mismatch");
    let m = &inst.machine(MemoryModel::Pso);

    // Same engine, different properties/bounds → config hash mismatch.
    assert_rejected(
        resume(
            m,
            &config
                .clone()
                .with_crashes(CrashSemantics::DiscardBuffer, 1),
            &cp,
        ),
        "config mismatch",
    );

    // Different engine.
    assert_rejected(
        resume(
            m,
            &config.clone().with_engine(Engine::Dpor {
                reorder_bound: None,
            }),
            &cp,
        ),
        "engine mismatch",
    );

    // Same config, different program: the fence mask changes the
    // program text and hence the initial-state fingerprint.
    let other = build_mutex(LockKind::Peterson, 2, FenceMask::NONE);
    assert_rejected(
        resume(&other.machine(MemoryModel::Pso), &config, &cp),
        "program mismatch",
    );

    // Same program under a different model is a different state space.
    assert_rejected(
        resume(&inst.machine(MemoryModel::Tso), &config, &cp),
        "model mismatch",
    );

    let _ = std::fs::remove_file(&cp);
}

// --- random cut points ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interrupting at an arbitrary transition count and resuming agrees
    /// with the uninterrupted run — ok and violating cells alike, for
    /// the undo and DPOR engines.
    #[test]
    fn resume_agrees_at_random_cut_points(
        cut in 1u64..2_000,
        model_ix in 0usize..4,
        engine_ix in 0usize..2,
        violating in any::<bool>(),
    ) {
        let engine = if engine_ix == 0 {
            Engine::Undo
        } else {
            Engine::Dpor { reorder_bound: None }
        };
        let mask = if violating {
            FenceMask::only(&[simlocks::peterson::SITE_VICTIM])
        } else {
            FenceMask::ALL
        };
        let inst = build_mutex(LockKind::Peterson, 2, mask);
        let model = MODELS[model_ix];
        let config = CheckConfig::default().with_engine(engine);
        let fresh = check(&inst.machine(model), &config);
        let path = ckpt_path("prop");
        let stopped = check(
            &inst.machine(model),
            &config
                .clone()
                .with_checkpoint(CheckpointPolicy::at(&path).stop_after(cut)),
        );
        match stopped {
            Verdict::Inconclusive(_, cov) => {
                let cp = cov.checkpoint.expect("checkpoint written");
                let resumed = resume(&inst.machine(model), &config, &cp);
                prop_assert_eq!(fresh.label(), resumed.label());
                if is_exhaustive(&config.engine) && fresh.is_ok() {
                    prop_assert_eq!(fresh.stats().states, resumed.stats().states);
                    prop_assert_eq!(
                        fresh.stats().transitions,
                        resumed.stats().transitions
                    );
                }
                let _ = std::fs::remove_file(&cp);
            }
            other => {
                prop_assert_eq!(fresh.label(), other.label());
                let _ = std::fs::remove_file(&path);
            }
        }
    }
}
