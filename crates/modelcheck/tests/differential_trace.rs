//! Differential tracing: turning the causal span layer ON must not
//! change what the engines compute. For every engine in its
//! deterministic diagnostic mode, a traced run must produce the same
//! verdict and a bit-identical deterministic [`MetricsSnapshot`]
//! projection as the untraced run — tracing observes the exploration,
//! it never steers it. On top of that, a property test checks the span
//! forest invariants on randomly parameterized traced runs: ids unique,
//! every parent edge points at a strictly earlier span (no cycles by
//! construction), and no `task` span carries an orphan steal edge.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ftobs::{parse_spans, validate_spans, JsonlSink, SpanRow};
use modelcheck::{check, CheckConfig, CheckpointPolicy, Engine, Recorder, Verdict};
use proptest::prelude::*;
use simlocks::{build_mutex, FenceMask, LockKind};
use wbmem::MemoryModel;

/// Unique stream path per traced run: the tests in this binary run on
/// parallel threads and must never share a sink file.
fn stream_path() -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "ft_difftrace_{}_{}.jsonl",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn quiet() -> Recorder {
    Recorder::builder().quiet(true).build()
}

/// A quiet recorder with tracing on, streaming to `path` through the
/// crash-safe sink (the same write path production runs use).
fn traced(sink: &Arc<JsonlSink>) -> Recorder {
    Recorder::builder()
        .quiet(true)
        .trace(true)
        .sink(sink.clone())
        .build()
}

/// The four engines, each in its deterministic diagnostic mode (DPOR
/// reductions disabled so the edge multiset is engine-independent).
fn engines() -> [Engine; 4] {
    [
        Engine::CloneDfs,
        Engine::Undo,
        Engine::Dpor {
            reorder_bound: Some(u32::MAX),
        },
        Engine::ParallelDpor {
            threads: 2,
            reorder_bound: Some(u32::MAX),
        },
    ]
}

/// Run `engine` traced; returns the verdict, the final metrics
/// snapshot, and the parsed spans its stream carried. Every recorder
/// clone must be gone before the sink publishes (`.partial` -> final),
/// so the snapshot is taken eagerly rather than handing the recorder out.
fn run_traced(
    engine: Engine,
    kind: LockKind,
    model: MemoryModel,
) -> (Verdict, ftobs::MetricsSnapshot, Vec<SpanRow>) {
    let path = stream_path();
    let sink = Arc::new(JsonlSink::create(&path).expect("temp sink"));
    let rec = traced(&sink);
    let config = CheckConfig::default()
        .with_engine(engine)
        .with_recorder(rec.clone());
    let inst = build_mutex(kind, 2, FenceMask::ALL);
    let v = check(&inst.machine(model), &config);
    let snap = rec.snapshot();
    drop((config, rec));
    drop(sink); // publish .partial -> final
    let text = std::fs::read_to_string(&path).expect("published stream");
    let _ = std::fs::remove_file(&path);
    (v, snap, parse_spans(&text))
}

#[test]
fn tracing_on_is_observationally_identical_to_tracing_off() {
    // Exercise the real work-stealing path, not the small-instance
    // sequential fallback (this binary owns the env var).
    std::env::set_var("FT_PARDPOR_SEQ", "0");
    for kind in [LockKind::Peterson, LockKind::Ttas] {
        for engine in engines() {
            let rec_off = quiet();
            let config = CheckConfig::default()
                .with_engine(engine)
                .with_recorder(rec_off.clone());
            let inst = build_mutex(kind, 2, FenceMask::ALL);
            let v_off = check(&inst.machine(MemoryModel::Pso), &config);

            let (v_on, snap_on, spans) = run_traced(engine, kind, MemoryModel::Pso);

            let label = engine.label();
            assert_eq!(
                v_off.label(),
                v_on.label(),
                "{kind:?}/{label}: tracing changed the verdict"
            );
            assert_eq!(
                v_off.stats().states,
                v_on.stats().states,
                "{kind:?}/{label}: tracing changed the state count"
            );
            assert_eq!(
                v_off.stats().transitions,
                v_on.stats().transitions,
                "{kind:?}/{label}: tracing changed the transition count"
            );
            assert_eq!(
                rec_off.snapshot(),
                snap_on,
                "{kind:?}/{label}: tracing changed the deterministic metrics projection"
            );
            assert!(
                spans.iter().any(|s| s.name == "engine"),
                "{kind:?}/{label}: traced run emitted no engine span"
            );
            validate_spans(&spans)
                .unwrap_or_else(|e| panic!("{kind:?}/{label}: invalid forest: {e}"));
        }
    }
}

#[test]
fn untraced_runs_emit_no_spans() {
    let path = stream_path();
    let sink = Arc::new(JsonlSink::create(&path).expect("temp sink"));
    // Sink present but tracing NOT enabled: the stream must carry the
    // usual events and zero spans (disabled tracing costs nothing and
    // writes nothing).
    let rec = Recorder::builder().quiet(true).sink(sink.clone()).build();
    let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
    let config = CheckConfig::default()
        .with_engine(Engine::Undo)
        .with_recorder(rec);
    let v = check(&inst.machine(MemoryModel::Pso), &config);
    assert!(v.is_ok());
    drop(config);
    drop(sink);
    let text = std::fs::read_to_string(&path).expect("published stream");
    let _ = std::fs::remove_file(&path);
    assert!(!text.is_empty(), "stream must carry the metric events");
    assert!(
        parse_spans(&text).is_empty(),
        "untraced run leaked span events"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Forest invariants hold on arbitrarily parameterized traced runs:
    /// any engine, lock, model, thread count, and — when a cut fires —
    /// an interrupted run's partial stream is just as valid as a
    /// completed one.
    #[test]
    fn traced_runs_always_produce_a_valid_span_forest(
        eng_ix in 0usize..4,
        kind_ix in 0usize..3,
        model_ix in 0usize..2,
        threads in 2usize..4,
        cut in prop::option::of(50u64..400),
    ) {
        std::env::set_var("FT_PARDPOR_SEQ", "0");
        let engine = match eng_ix {
            0 => Engine::CloneDfs,
            1 => Engine::Undo,
            2 => Engine::Dpor { reorder_bound: None },
            _ => Engine::ParallelDpor { threads, reorder_bound: None },
        };
        let kind = [LockKind::Peterson, LockKind::Ttas, LockKind::Bakery][kind_ix];
        let model = [MemoryModel::Tso, MemoryModel::Pso][model_ix];

        let path = stream_path();
        let sink = Arc::new(JsonlSink::create(&path).expect("temp sink"));
        let mut config = CheckConfig {
            check_termination: false,
            ..CheckConfig::default()
        }
        .with_engine(engine)
        .with_recorder(traced(&sink));
        let ckpt = stream_path().with_extension("ckpt");
        if let Some(n) = cut {
            config = config.with_checkpoint(CheckpointPolicy::at(&ckpt).stop_after(n));
        }
        let inst = build_mutex(kind, 2, FenceMask::ALL);
        let _ = check(&inst.machine(model), &config);
        drop(config);
        drop(sink);
        let text = std::fs::read_to_string(&path).expect("published stream");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&ckpt);

        let spans = parse_spans(&text);
        prop_assert!(!spans.is_empty(), "traced run emitted no spans");
        if let Err(e) = validate_spans(&spans) {
            return Err(TestCaseError::fail(format!(
                "{kind:?}/{model:?}/{}: {e}", engine.label()
            )));
        }
        // Every steal edge resolves to a span that closed *before* the
        // task started being attributable to it is impossible to assert
        // on wall-clock (buffers flush late), but id ordering is the
        // forest's causal order and validate_spans checked it; spot-check
        // the engine span is the forest's root-most span.
        let min_id = spans.iter().map(|s| s.id).min().unwrap_or(0);
        let root = spans.iter().find(|s| s.id == min_id).expect("nonempty");
        prop_assert_eq!(
            root.parent, 0,
            "earliest span {} ({}) must be a root", root.id, &root.name
        );
    }
}
