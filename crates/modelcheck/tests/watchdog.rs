//! Supervisor watchdog test, isolated in its own binary because it pins
//! `FT_WATCHDOG_MS` process-wide.
//!
//! A worker that stops heartbeating while marked busy must be cancelled
//! by the supervisor, and the engine must fall back to the deterministic
//! sequential rerun — same verdict discipline as the panic path — while
//! recording the trip in the `watchdog_trips` metric.

use std::sync::atomic::{AtomicUsize, Ordering};

use modelcheck::{check, CheckConfig, Engine};
use simlocks::{build_mutex, FenceMask, LockKind};
use wbmem::MemoryModel;

static SLOW_CALLS: AtomicUsize = AtomicUsize::new(0);

/// An always-true invariant that stalls the calling worker for ~120 ms on
/// each of the first six states it sees — far longer than the 25 ms
/// watchdog interval pinned below, so the supervisor observes at least
/// two unchanged heartbeats on a busy worker and trips.
fn slow_invariant(_annots: &[u64]) -> bool {
    if SLOW_CALLS.fetch_add(1, Ordering::Relaxed) < 6 {
        std::thread::sleep(std::time::Duration::from_millis(120));
    }
    true
}

#[test]
fn stalled_worker_trips_watchdog_and_falls_back_sequentially() {
    std::env::set_var("FT_WATCHDOG_MS", "25");
    std::env::set_var("FT_PARDPOR_SEQ", "0");
    let rec = modelcheck::Recorder::builder().quiet(true).build();
    let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
    let config = CheckConfig::default()
        .with_engine(Engine::ParallelDpor {
            threads: 2,
            reorder_bound: None,
        })
        .with_invariant(slow_invariant)
        .with_recorder(rec.clone());
    let verdict = check(&inst.machine(MemoryModel::Tso), &config);
    assert!(
        verdict.is_ok(),
        "sequential fallback still proves the cell, got {}",
        verdict.label()
    );
    assert!(
        verdict.stats().metrics.get(ftobs::Metric::WatchdogTrips) >= 1,
        "the stalled worker actually tripped the watchdog"
    );
    // The fallback is the plain sequential engine, bit for bit.
    let seq = check(
        &inst.machine(MemoryModel::Tso),
        &CheckConfig::default()
            .with_engine(Engine::Dpor {
                reorder_bound: None,
            })
            .with_invariant(slow_invariant),
    );
    assert_eq!(verdict.label(), seq.label());
    assert_eq!(verdict.stats().states, seq.stats().states);
    assert_eq!(verdict.stats().transitions, seq.stats().transitions);
}
