//! Incremental search-tree size estimation (Knuth path sampling).
//!
//! The engines explore a DFS tree over machine states (dedup hits,
//! terminals, and no-op children are its leaves). Knuth's classic
//! estimator observes that for a *single* root-to-leaf walk that picks a
//! uniformly random child at every node, the quantity
//!
//! ```text
//! cost = 1 + b₀ + b₀b₁ + … + b₀b₁⋯b_d
//! ```
//!
//! (where `bᵢ` is the branching factor at depth `i`) is an unbiased
//! estimate of the total tree node count. A depth-first search visits
//! *every* leaf, each with descent probability `w = 1/(b₀⋯b_d)` under
//! the random-walk measure, so the importance-weighted average
//! `Σ w·cost / Σ w` over the leaves seen so far converges to the exact
//! node count when the search completes — and is a usable estimate at
//! any prefix of it. [`TreeEstimator`] maintains `cost`, the weights,
//! and the visited-node count incrementally in O(1) per push/pop/leaf,
//! so the engines can keep one alive on the hot path for the price of a
//! few float operations per *frame* (not per transition).
//!
//! Converting tree nodes to *states*: the engines report distinct states
//! (post-dedup), not tree nodes. The estimator extrapolates by ratio —
//! `est_total_states = states · N̂ / nodes_visited` — assuming the
//! states-per-node ratio seen so far holds for the unexplored remainder.
//!
//! ## Bias caveats (see DESIGN.md §6a)
//!
//! * Leaves are weighted, not sampled: a DFS prefix covers the leftmost
//!   part of the tree, so early estimates lean on whatever that region
//!   looks like. Deep, skinny left subtrees under-estimate; bushy ones
//!   over-estimate. The estimate sharpens monotonically toward exact as
//!   coverage grows.
//! * Branching factors count *scheduled* choices; the few that turn out
//!   to be no-ops still inflate `cost` slightly.
//! * The work-stealing engine treats every stolen task as a fresh tree
//!   root and multiplies the per-task estimate by the task count, which
//!   double-counts nothing but the task roots — yet the per-task
//!   subtree sizes vary wildly, so its estimates are coarser than the
//!   sequential engines'.

/// A point-in-time progress estimate derived from a [`TreeEstimator`]
/// (or a merge of several workers' [`EstStats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Estimate {
    /// Estimated total distinct states the completed run would visit.
    pub total_states: u64,
    /// Estimated states still unvisited (`total - visited`, saturating).
    pub remaining: u64,
}

/// Mergeable accumulator state of a [`TreeEstimator`] — what the
/// work-stealing workers ship back so the coordinator can estimate over
/// the whole sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct EstStats {
    /// Sum of leaf weights `1/(b₀⋯b_d)`.
    pub wsum: f64,
    /// Sum of weighted Knuth costs `w · cost`.
    pub wcost: f64,
    /// Tree nodes visited (frames pushed + leaves).
    pub nodes: u64,
    /// Task roots seen (`1` for a sequential engine; stolen-task count
    /// for a work-stealing worker).
    pub tasks: u64,
}

impl EstStats {
    /// Combine two accumulators (associative and commutative).
    #[must_use]
    pub fn merged(&self, other: &EstStats) -> EstStats {
        EstStats {
            wsum: self.wsum + other.wsum,
            wcost: self.wcost + other.wcost,
            nodes: self.nodes + other.nodes,
            tasks: self.tasks + other.tasks,
        }
    }

    /// The progress estimate given `states` distinct states visited so
    /// far, or `None` before the first completed leaf (no sample yet).
    #[must_use]
    pub fn estimate(&self, states: u64) -> Option<Estimate> {
        if self.wsum <= 0.0 || self.nodes == 0 || states == 0 {
            return None;
        }
        // Estimated tree nodes: per-task weighted mean × task count.
        #[allow(clippy::cast_precision_loss)]
        let n_hat = (self.wcost / self.wsum) * self.tasks.max(1) as f64;
        #[allow(clippy::cast_precision_loss)]
        let frac = (self.nodes as f64 / n_hat).min(1.0);
        if frac.is_nan() || frac <= 0.0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        let total_f = states as f64 / frac;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let total = if total_f >= u64::MAX as f64 {
            u64::MAX
        } else {
            (total_f.round() as u64).max(states)
        };
        Some(Estimate {
            total_states: total,
            remaining: total - states,
        })
    }
}

/// Incremental Knuth-style tree-size estimator; see the module docs.
///
/// The owning engine calls [`begin_task`](Self::begin_task) at each DFS
/// (re)start, [`push`](Self::push) with the child count when it pushes a
/// frame, [`pop`](Self::pop) when it pops one, and [`leaf`](Self::leaf)
/// for every explored child that does not become a frame (no-op, dedup
/// hit, sleep/bound prune, terminal state).
#[derive(Clone, Debug, Default)]
pub struct TreeEstimator {
    /// Product of branching factors along the current stack.
    prod: f64,
    /// Knuth cost of a leaf hanging off the current stack top.
    cost: f64,
    /// Saved `(prod, cost)` per frame, for O(1) pop.
    saved: Vec<(f64, f64)>,
    stats: EstStats,
}

impl TreeEstimator {
    /// A fresh estimator with no task started.
    #[must_use]
    pub fn new() -> TreeEstimator {
        TreeEstimator::default()
    }

    /// Start a (new) DFS task rooted at the current machine state: resets
    /// the path-local accumulators, keeps the sample statistics. The task
    /// root itself is counted by the [`push`](Self::push) of its frame.
    pub fn begin_task(&mut self) {
        self.prod = 1.0;
        self.cost = 1.0;
        self.saved.clear();
        self.stats.tasks += 1;
    }

    /// A frame with `branching` children was pushed.
    pub fn push(&mut self, branching: usize) {
        self.saved.push((self.prod, self.cost));
        #[allow(clippy::cast_precision_loss)]
        let b = branching.max(1) as f64;
        self.prod *= b;
        self.cost += self.prod;
        self.stats.nodes += 1;
    }

    /// The top frame was popped (backtrack).
    pub fn pop(&mut self) {
        if let Some((prod, cost)) = self.saved.pop() {
            self.prod = prod;
            self.cost = cost;
        }
    }

    /// An explored child that did not become a frame: record one Knuth
    /// sample for the root-to-leaf path ending at it.
    pub fn leaf(&mut self) {
        self.stats.nodes += 1;
        if self.prod.is_finite() && self.prod >= 1.0 {
            let w = 1.0 / self.prod;
            self.stats.wsum += w;
            self.stats.wcost += w * self.cost;
        }
    }

    /// The mergeable accumulator state (for cross-worker merges).
    #[must_use]
    pub fn stats(&self) -> EstStats {
        self.stats
    }

    /// The progress estimate given `states` distinct states visited so
    /// far; see [`EstStats::estimate`].
    #[must_use]
    pub fn estimate(&self, states: u64) -> Option<Estimate> {
        self.stats.estimate(states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walk a complete `b`-ary tree with leaves at depth `d`, calling the
    /// estimator exactly as an engine would (interior node = frame push,
    /// depth-`d` node = leaf); returns the true node count.
    fn walk_uniform(est: &mut TreeEstimator, b: usize, depth: usize) -> u64 {
        fn visit(est: &mut TreeEstimator, b: usize, remaining: usize) -> u64 {
            if remaining == 0 {
                est.leaf();
                return 1;
            }
            est.push(b);
            let mut nodes = 1;
            for _ in 0..b {
                nodes += visit(est, b, remaining - 1);
            }
            est.pop();
            nodes
        }
        est.begin_task();
        visit(est, b, depth)
    }

    #[test]
    fn exact_on_completed_uniform_tree() {
        let mut est = TreeEstimator::new();
        // Depth-3 ternary tree: 1 + 3 + 9 + 27 = 40 nodes.
        let truth = walk_uniform(&mut est, 3, 3);
        assert_eq!(truth, 40);
        let s = est.stats();
        assert_eq!(s.nodes, truth);
        // Completed DFS: weights sum to 1 and the weighted cost is exact.
        assert!((s.wsum - 1.0).abs() < 1e-9, "wsum {}", s.wsum);
        assert!(
            (s.wcost / s.wsum - truth as f64).abs() < 1e-6,
            "estimate {} vs {truth}",
            s.wcost / s.wsum
        );
        // State extrapolation degenerates to the exact count at 100%.
        let e = est.estimate(truth).expect("has samples");
        assert_eq!(e.total_states, truth);
        assert_eq!(e.remaining, 0);
    }

    #[test]
    fn partial_walk_estimates_within_factor_two_on_uniform_tree() {
        // Explore only the first child of the root (a third of the tree),
        // as a DFS prefix would.
        let mut est = TreeEstimator::new();
        est.begin_task();
        est.push(3); // root has 3 children
        est.push(3); // first child, 3 grandchildren
        for _ in 0..3 {
            est.leaf();
        }
        est.pop();
        let truth = 13u64; // 1 + 3 + 9
        let e = est.estimate(5).expect("has samples"); // 5 of 13 nodes seen
        let ratio = e.total_states as f64 / truth as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "estimate {} vs truth {truth}",
            e.total_states
        );
    }

    #[test]
    fn no_samples_means_no_estimate() {
        let mut est = TreeEstimator::new();
        assert!(est.estimate(10).is_none());
        est.begin_task();
        est.push(4);
        assert!(est.estimate(10).is_none(), "no leaf yet");
    }

    #[test]
    fn merge_is_associative_and_counts_tasks() {
        let mut a = TreeEstimator::new();
        a.begin_task();
        a.push(2);
        a.leaf();
        a.leaf();
        a.pop();
        let mut b = TreeEstimator::new();
        b.begin_task();
        b.push(4);
        for _ in 0..4 {
            b.leaf();
        }
        b.pop();
        let m = a.stats().merged(&b.stats());
        assert_eq!(m.tasks, 2);
        assert_eq!(m.nodes, a.stats().nodes + b.stats().nodes);
        let ab = a.stats().merged(&b.stats());
        let ba = b.stats().merged(&a.stats());
        assert!((ab.wcost - ba.wcost).abs() < 1e-12);
        assert!(m.estimate(6).is_some());
    }

    #[test]
    fn estimate_never_below_visited() {
        let mut est = TreeEstimator::new();
        est.begin_task();
        est.push(2);
        est.leaf();
        est.leaf();
        est.pop();
        // Claim more visited states than the tree estimate supports.
        let e = est.estimate(1_000_000).expect("has samples");
        assert!(e.total_states >= 1_000_000);
    }
}
