//! Flat JSONL event encoding, the bounded in-memory event ring, and the
//! file sink.
//!
//! Events are single-line JSON objects with only scalar values (string /
//! integer / float / bool / null) — no nesting — so they can be parsed
//! back by the dependency-free scanner in [`crate::report`] and grepped
//! with line tools. Every event carries `t_ms` (milliseconds since the
//! recorder was created) and `kind`, followed by the recorder's static
//! meta fields (e.g. `engine`, `workload`) and the event's own fields.

use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A scalar JSON value for one event field.
#[derive(Clone, Debug, PartialEq)]
pub enum J {
    /// String (escaped on encode).
    S(String),
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// Float, rendered with up to 3 decimals.
    F(f64),
    /// Boolean.
    B(bool),
    /// Null.
    N,
}

impl J {
    /// Borrowed-str convenience constructor.
    #[must_use]
    pub fn s(v: impl Into<String>) -> J {
        J::S(v.into())
    }

    fn encode_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            J::S(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            J::U(v) => {
                let _ = write!(out, "{v}");
            }
            J::I(v) => {
                let _ = write!(out, "{v}");
            }
            J::F(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.3}");
                } else {
                    out.push_str("null");
                }
            }
            J::B(v) => out.push_str(if *v { "true" } else { "false" }),
            J::N => out.push_str("null"),
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render one flat JSON object line (no trailing newline). `head` fields
/// come first (in order), then `fields`.
#[must_use]
pub fn encode_line<'a>(
    head: impl IntoIterator<Item = (&'a str, &'a J)>,
    fields: impl IntoIterator<Item = (&'a str, &'a J)>,
) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    let mut first = true;
    for (k, v) in head.into_iter().chain(fields) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        escape_into(k, &mut out);
        out.push_str("\":");
        v.encode_into(&mut out);
    }
    out.push('}');
    out
}

/// Bounded FIFO of rendered event lines: the newest `cap` events are kept
/// so a failure artifact can embed the recent event history.
#[derive(Debug)]
pub struct EventRing {
    lines: Mutex<VecDeque<String>>,
    cap: usize,
}

impl EventRing {
    /// An empty ring holding at most `cap` lines (`cap == 0` disables it).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        EventRing {
            lines: Mutex::new(VecDeque::with_capacity(cap.min(256))),
            cap,
        }
    }

    /// Append a line, evicting the oldest when full.
    pub fn push(&self, line: &str) {
        if self.cap == 0 {
            return;
        }
        let mut q = self.lines.lock().expect("unpoisoned");
        if q.len() == self.cap {
            q.pop_front();
        }
        q.push_back(line.to_string());
    }

    /// Snapshot of the retained lines, oldest first.
    #[must_use]
    pub fn drain_snapshot(&self) -> Vec<String> {
        self.lines
            .lock()
            .expect("unpoisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Discard all retained lines.
    pub fn clear(&self) {
        self.lines.lock().expect("unpoisoned").clear();
    }
}

/// JSONL file sink, written crash-safely.
///
/// Lines are flushed to the OS as they are written (line-buffered), so a
/// crashed process loses at most the line being written — and only that
/// line can be torn, which the report scanner skips and counts rather
/// than erroring on. A [`create`](Self::create)d sink additionally
/// streams into a `<path>.partial` sibling and atomically renames it to
/// the final name on close (drop), so the final path either holds a
/// complete stream or nothing; a leftover `.partial` file is the
/// recognizable signature of a crashed run.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    /// Temp path the stream is being written to; renamed to `path` on
    /// drop. `None` for append-mode sinks, which write in place.
    partial: Option<PathBuf>,
    file: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Open `path` for appending, creating parent directories on demand.
    /// Appending writes in place (there is existing content an atomic
    /// rename would orphan); each line is still flushed as written.
    pub fn append(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(JsonlSink {
            path,
            partial: None,
            file: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Open a fresh stream that will land at `path` when the sink is
    /// dropped, creating parents on demand. Until then the bytes live in
    /// `<path>.partial`; a stale final file from a previous run is
    /// removed up front so readers never mix runs.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut partial = path.clone().into_os_string();
        partial.push(".partial");
        let partial = PathBuf::from(partial);
        let file = File::create(&partial)?;
        match fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(JsonlSink {
            path,
            partial: Some(partial),
            file: Mutex::new(BufWriter::new(file)),
        })
    }

    /// The sink's final file path (where the stream is readable once the
    /// sink has been dropped; append-mode sinks write here directly).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Write one line (newline appended) and flush it. Errors are
    /// swallowed — losing telemetry must never fail the run being
    /// observed.
    pub fn write_line(&self, line: &str) {
        let mut f = self.file.lock().expect("unpoisoned");
        let _ = f.write_all(line.as_bytes());
        let _ = f.write_all(b"\n");
        let _ = f.flush();
    }

    /// Flush buffered lines to disk.
    pub fn flush(&self) {
        let _ = self.file.lock().expect("unpoisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        {
            let mut f = self.file.lock().expect("unpoisoned");
            let _ = f.flush();
            let _ = f.get_ref().sync_all();
        }
        if let Some(partial) = &self.partial {
            // Publish the completed stream under its final name. Errors
            // are swallowed like every other sink error; the .partial
            // file then survives as the crashed-run artifact it is.
            let _ = fs::rename(partial, &self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_escapes_and_orders() {
        let kind = J::s("info");
        let msg = J::s("a\"b\\c\nd");
        let n = J::U(3);
        let line = encode_line([("kind", &kind)], [("msg", &msg), ("n", &n)]);
        assert_eq!(line, r#"{"kind":"info","msg":"a\"b\\c\nd","n":3}"#);
    }

    #[test]
    fn floats_render_fixed_and_nonfinite_as_null() {
        let mut s = String::new();
        J::F(1.0 / 3.0).encode_into(&mut s);
        assert_eq!(s, "0.333");
        s.clear();
        J::F(f64::NAN).encode_into(&mut s);
        assert_eq!(s, "null");
    }

    #[test]
    fn created_sink_publishes_on_drop() {
        let dir = std::env::temp_dir().join(format!("ftobs_sink_test_{}", std::process::id()));
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::create(&path).expect("create");
        sink.write_line(r#"{"kind":"a"}"#);
        // While the sink is live, the stream is in the .partial sibling
        // (already flushed line by line) and the final path is absent.
        assert!(!path.exists(), "final path appears only on close");
        let partial = dir.join("events.jsonl.partial");
        assert_eq!(
            std::fs::read_to_string(&partial).expect("partial readable"),
            "{\"kind\":\"a\"}\n",
            "lines are flushed as written"
        );
        drop(sink);
        assert!(!partial.exists(), "partial renamed away on close");
        assert_eq!(
            std::fs::read_to_string(&path).expect("final readable"),
            "{\"kind\":\"a\"}\n"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_removes_stale_final_file() {
        let dir = std::env::temp_dir().join(format!("ftobs_stale_test_{}", std::process::id()));
        let path = dir.join("events.jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, "old run\n").unwrap();
        let sink = JsonlSink::create(&path).expect("create");
        assert!(!path.exists(), "stale stream removed up front");
        drop(sink);
        assert_eq!(std::fs::read_to_string(&path).expect("final"), "");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_is_bounded_fifo() {
        let ring = EventRing::new(2);
        ring.push("a");
        ring.push("b");
        ring.push("c");
        assert_eq!(
            ring.drain_snapshot(),
            vec!["b".to_string(), "c".to_string()]
        );
    }
}
