//! `ftobs`: a zero-dependency metrics + tracing layer for the fence-trade
//! exploration engines.
//!
//! Everything a checking run can tell you flows through one [`Recorder`]:
//!
//! - **Counters** (states, transitions, per-class machine steps — fences
//!   β(E), RMRs ρ(E), crashes — sleep-set hits, ample fallbacks, …),
//!   lock-sharded so the parallel engine's workers never contend;
//! - **Histograms** (write-buffer depth, DFS depth) with log-scale
//!   buckets and bit-exact mergeable snapshots;
//! - **Gauges** (frontier high-water mark, dedup-table occupancy);
//! - **Spans**: RAII wall-clock timers per [`Phase`];
//! - **Events**: flat single-line JSON records fanned out to a bounded
//!   in-memory ring and an optional shared JSONL file sink, including a
//!   rate-limited `heartbeat` (states/sec, frontier, budget ETA) and a
//!   final `snapshot` rollup;
//! - **Hot-pc table**: per-process program-counter hit counts with
//!   human-readable labels registered from `fencevm` programs.
//!
//! The zero-cost contract: [`Recorder::disabled`] carries no allocation
//! and every method on it is a single branch, so instrumented code paths
//! (`wbmem::Machine::emit`, the four `modelcheck` engines, `por::expand`)
//! pay nothing measurable when observability is off — the `obs_overhead`
//! guard in CI holds the enabled path to ≤5% and the disabled path to
//! noise. [`MetricsSnapshot`] is `Copy` and its equality covers only the
//! deterministic counter subset, so `modelcheck::Stats` embeds one and
//! the engine differential suites can assert bit-identical metrics across
//! CloneDfs/Undo/Parallel/Dpor.
//!
//! Offline report rendering for the JSONL streams lives in [`report`]
//! (driven by the `obs_report` binary in `crates/bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimate;
pub mod events;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod trace;

pub use estimate::{EstStats, Estimate, TreeEstimator};
pub use events::{encode_line, EventRing, JsonlSink, J};
pub use metrics::{
    bucket_floor, bucket_index, hist_field, Gauge, HistSnapshot, Metric, MetricsSnapshot, Phase,
    ProcSteps, GAUGES, HIST_BUCKETS, MAX_PROCS, METRICS, PHASES,
};
pub use recorder::{
    global, install_global, Progress, Recorder, RecorderBuilder, Span, StepClass, Tally,
    DEFAULT_HEARTBEAT_MS, MAX_PCS, SHARDS,
};
pub use trace::{
    chrome_trace, follow_line, parse_spans, phase_table, validate_spans, OpenSpan, SpanId, SpanRow,
    TraceCtx, DEFAULT_TRACE_BUF,
};
