//! Metric taxonomy and the mergeable, `Copy` [`MetricsSnapshot`].
//!
//! Every quantity the recorder tracks is either a **counter** (monotone,
//! summed on merge), a **gauge** (last/max value, maxed on merge), a
//! **histogram** (log-bucketed counts, summed bucket-wise on merge), or a
//! **span** (accumulated wall-clock nanoseconds per phase, summed on
//! merge). The snapshot packs all of them into fixed-size arrays so it
//! stays `Copy` and can be embedded in `modelcheck::Stats` without
//! breaking that type's `Copy` bound.
//!
//! Equality is deliberately *partial*: only the deterministic subset of
//! counters — the quantities that depend solely on the multiset of
//! executed `(state, choice)` steps, not on traversal strategy, wall
//! clock, or thread interleaving — participate in `PartialEq`/`Eq` and
//! `Hash`. This mirrors `modelcheck::Stats`, whose equality ignores
//! `elapsed`, and is what lets the differential suites assert bit-identical
//! snapshots across the CloneDfs/Undo/Parallel/Dpor engines.

/// Maximum number of processes tracked per-process (the paper's matrices
/// top out at n=4; power-of-2 tournament instances reach 8).
pub const MAX_PROCS: usize = 8;

/// Number of log-scale histogram buckets. Bucket `i` counts samples whose
/// value `v` satisfies `bucket_index(v) == i`; see [`bucket_index`].
pub const HIST_BUCKETS: usize = 32;

/// Monotone event counters. Order matters: every metric with index below
/// [`Metric::DETERMINISTIC_END`] is engine-independent (a pure function of
/// the executed step multiset) and participates in snapshot equality;
/// everything at or after it is traversal- or timing-dependent and is
/// excluded, again mirroring how `Stats` equality ignores `elapsed`. One
/// exception inside the deterministic range: [`Metric::Rmrs`] is zeroed in
/// the equality projection, because an access's remote-ness consults the
/// locality tracker's caches, which live outside the machine's hashed
/// state — see [`MetricsSnapshot::deterministic_key`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Metric {
    /// Distinct states inserted into the visited set.
    States,
    /// Executed (non-no-op) transitions.
    Transitions,
    /// States with no enabled successor (termination-relevant).
    TerminalStates,
    /// Transitions whose successor was already visited.
    DedupHits,
    /// Scheduler choices that produced `StepOutcome::NoOp`.
    NoopSteps,
    /// Machine-level step classes (one per executed event).
    Reads,
    /// Reads served from the process's own write buffer.
    BufferReads,
    /// Buffered (or SC-immediate) writes.
    Writes,
    /// Buffer-to-memory commits (including crash drains under
    /// `DrainBuffer` semantics).
    Commits,
    /// Fence instructions retired — the paper's β(E).
    Fences,
    /// Remote memory references — the paper's ρ(E).
    Rmrs,
    /// Compare-and-swap operations.
    CasOps,
    /// Swap (fetch-and-store) operations.
    SwapOps,
    /// Crash-fault injections.
    Crashes,
    /// Process returns (passage completions).
    Returns,
    /// Sleep-set suppressions in the DPOR engine (zero for exhaustive
    /// engines and for disabled-reduction diagnostic runs).
    SleepHits,
    /// States expanded with a proper ample subset.
    AmpleApplied,
    /// States where ample selection fell back to the full enabled set.
    AmpleFallbacks,
    /// Slept-edge termination probes (DPOR with `check_termination`).
    SleptProbes,
    /// Undo-log pops (engine-specific; CloneDfs performs none).
    UndoSteps,
    /// Lowerbound solo-check retries with a doubled schedule bound.
    SoloRetries,
    /// Heartbeat events emitted.
    Heartbeats,
    /// Fork points published into the work-stealing queue (parallel DPOR;
    /// scheduling-dependent, like every counter past `DETERMINISTIC_END`).
    ForkPublished,
    /// Fork points stolen and re-materialized by an idle worker.
    ForkStolen,
    /// Fingerprint-table contention events (failed claim CASes plus
    /// occupied slots stepped over while probing).
    FpContention,
    /// Checkpoints successfully written to disk.
    CheckpointWritten,
    /// Bytes written across all checkpoints.
    CheckpointBytes,
    /// Fork points replayed while resuming from a checkpoint.
    ResumeReplayed,
    /// Watchdog trips: stalled workers cancelled by the supervisor.
    WatchdogTrips,
    /// Fence-synthesis CEGAR refinement iterations completed.
    SynthIterations,
    /// Fences inserted by synthesized placements (cumulative across
    /// refinement iterations).
    FencesInserted,
    /// Candidate fence sites accumulated into counterexample cores
    /// (cumulative core sizes).
    CoreSize,
    /// Causal trace spans written to the JSONL sink.
    TraceSpans,
    /// Causal trace spans dropped (tracing on but no sink attached).
    TraceDropped,
    /// Fleet leases issued to worker processes (initial grants and
    /// re-grants alike).
    LeasesIssued,
    /// Fleet leases reassigned after a worker death, stall, or torn
    /// result.
    LeasesReassigned,
    /// Worker processes that died or stalled past their heartbeat
    /// deadline.
    WorkersLost,
    /// Leases that exhausted their retry budget and were completed by the
    /// in-process degradation path.
    PoisonedLeases,
}

/// All counters, in `repr(usize)` order.
pub const METRICS: [Metric; Metric::COUNT] = [
    Metric::States,
    Metric::Transitions,
    Metric::TerminalStates,
    Metric::DedupHits,
    Metric::NoopSteps,
    Metric::Reads,
    Metric::BufferReads,
    Metric::Writes,
    Metric::Commits,
    Metric::Fences,
    Metric::Rmrs,
    Metric::CasOps,
    Metric::SwapOps,
    Metric::Crashes,
    Metric::Returns,
    Metric::SleepHits,
    Metric::AmpleApplied,
    Metric::AmpleFallbacks,
    Metric::SleptProbes,
    Metric::UndoSteps,
    Metric::SoloRetries,
    Metric::Heartbeats,
    Metric::ForkPublished,
    Metric::ForkStolen,
    Metric::FpContention,
    Metric::CheckpointWritten,
    Metric::CheckpointBytes,
    Metric::ResumeReplayed,
    Metric::WatchdogTrips,
    Metric::SynthIterations,
    Metric::FencesInserted,
    Metric::CoreSize,
    Metric::TraceSpans,
    Metric::TraceDropped,
    Metric::LeasesIssued,
    Metric::LeasesReassigned,
    Metric::WorkersLost,
    Metric::PoisonedLeases,
];

impl Metric {
    /// Total number of counters.
    pub const COUNT: usize = Metric::PoisonedLeases as usize + 1;

    /// Counters with index `< DETERMINISTIC_END` compare in snapshot
    /// equality; the rest are traversal- or timing-dependent.
    pub const DETERMINISTIC_END: usize = Metric::SleptProbes as usize;

    /// Snake-case name used as the JSONL field key.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Metric::States => "states",
            Metric::Transitions => "transitions",
            Metric::TerminalStates => "terminal_states",
            Metric::DedupHits => "dedup_hits",
            Metric::NoopSteps => "noop_steps",
            Metric::Reads => "reads",
            Metric::BufferReads => "buffer_reads",
            Metric::Writes => "writes",
            Metric::Commits => "commits",
            Metric::Fences => "fences",
            Metric::Rmrs => "rmrs",
            Metric::CasOps => "cas_ops",
            Metric::SwapOps => "swap_ops",
            Metric::Crashes => "crashes",
            Metric::Returns => "returns",
            Metric::SleepHits => "sleep_hits",
            Metric::AmpleApplied => "ample_applied",
            Metric::AmpleFallbacks => "ample_fallbacks",
            Metric::SleptProbes => "slept_probes",
            Metric::UndoSteps => "undo_steps",
            Metric::SoloRetries => "solo_retries",
            Metric::Heartbeats => "heartbeats",
            Metric::ForkPublished => "fork_published",
            Metric::ForkStolen => "fork_stolen",
            Metric::FpContention => "fp_contention",
            Metric::CheckpointWritten => "checkpoint_written",
            Metric::CheckpointBytes => "checkpoint_bytes",
            Metric::ResumeReplayed => "resume_replayed",
            Metric::WatchdogTrips => "watchdog_trips",
            Metric::SynthIterations => "synth_iterations",
            Metric::FencesInserted => "fences_inserted",
            Metric::CoreSize => "core_size",
            Metric::TraceSpans => "trace_spans",
            Metric::TraceDropped => "trace_dropped",
            Metric::LeasesIssued => "leases_issued",
            Metric::LeasesReassigned => "leases_reassigned",
            Metric::WorkersLost => "workers_lost",
            Metric::PoisonedLeases => "poisoned_leases",
        }
    }
}

/// Gauges: merged by `max`, not by sum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Gauge {
    /// High-water mark of the exploration frontier (stack/arena frames).
    MaxFrontier,
    /// Entries resident in the dedup (visited) table at snapshot time.
    DedupOccupancy,
    /// Deepest DFS frame observed.
    MaxDepth,
    /// Deepest write buffer observed across all processes.
    MaxBufferDepth,
}

impl Gauge {
    /// Total number of gauges.
    pub const COUNT: usize = Gauge::MaxBufferDepth as usize + 1;

    /// Snake-case name used as the JSONL field key.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::MaxFrontier => "max_frontier",
            Gauge::DedupOccupancy => "dedup_occupancy",
            Gauge::MaxDepth => "max_depth",
            Gauge::MaxBufferDepth => "max_buffer_depth",
        }
    }
}

/// All gauges, in `repr(usize)` order.
pub const GAUGES: [Gauge; Gauge::COUNT] = [
    Gauge::MaxFrontier,
    Gauge::DedupOccupancy,
    Gauge::MaxDepth,
    Gauge::MaxBufferDepth,
];

/// Timed phases for RAII [`Span`](crate::Span)s.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Main state-space sweep.
    Explore,
    /// Terminal-state / stuck-state analysis.
    Termination,
    /// Counterexample replay and rendering.
    Replay,
    /// Lowerbound solo-check decoding.
    Solo,
}

impl Phase {
    /// Total number of phases.
    pub const COUNT: usize = Phase::Solo as usize + 1;

    /// Snake-case name used as the JSONL field key.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Explore => "explore",
            Phase::Termination => "termination",
            Phase::Replay => "replay",
            Phase::Solo => "solo",
        }
    }
}

/// All phases, in `repr(usize)` order.
pub const PHASES: [Phase; Phase::COUNT] = [
    Phase::Explore,
    Phase::Termination,
    Phase::Replay,
    Phase::Solo,
];

/// Log-scale bucket index for a histogram sample: bucket 0 holds value 0,
/// bucket `i ≥ 1` holds values whose bit length is `i` (i.e. `v` in
/// `[2^(i-1), 2^i)`), clamped to the last bucket.
#[must_use]
pub const fn bucket_index(v: u64) -> usize {
    let bits = (u64::BITS - v.leading_zeros()) as usize;
    if bits >= HIST_BUCKETS {
        HIST_BUCKETS - 1
    } else {
        bits
    }
}

/// Inclusive lower bound of a bucket's value range (for report rendering).
#[must_use]
pub const fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A merged, immutable histogram: per-bucket counts on a log scale.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct HistSnapshot {
    /// Sample count per log bucket; see [`bucket_index`].
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistSnapshot {
    /// Total number of samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Bucket-wise sum.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Index of the highest non-empty bucket, if any sample was recorded.
    #[must_use]
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }
}

/// Per-process deterministic step counts: the paper's per-process fence
/// count β_p(E), RMR count ρ_p(E), and injected crash count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ProcSteps {
    /// Fence instructions retired by this process.
    pub fences: u64,
    /// Remote memory references charged to this process.
    pub rmrs: u64,
    /// Crash faults injected into this process.
    pub crashes: u64,
}

impl ProcSteps {
    fn merge(&mut self, other: &ProcSteps) {
        self.fences += other.fences;
        self.rmrs += other.rmrs;
        self.crashes += other.crashes;
    }

    fn is_zero(&self) -> bool {
        self.fences == 0 && self.rmrs == 0 && self.crashes == 0
    }
}

/// A point-in-time, mergeable rollup of everything a recorder has seen.
///
/// `Copy` by construction (fixed-size arrays only) so it can live inside
/// `modelcheck::Stats`. Merging two snapshots sums counters, per-process
/// steps, histograms and span times, and maxes gauges — and is associative
/// and commutative (gauges use `max`, everything else `+`), which the obs
/// proptest suite checks bit-exactly.
#[derive(Clone, Copy, Debug)]
pub struct MetricsSnapshot {
    /// Counter values indexed by `Metric as usize`.
    pub counters: [u64; Metric::COUNT],
    /// Per-process fence/RMR/crash counts (processes ≥ [`MAX_PROCS`] fold
    /// into the last slot).
    pub per_proc: [ProcSteps; MAX_PROCS],
    /// Write-buffer depth observed at each buffered write.
    pub buffer_depth: HistSnapshot,
    /// DFS frame depth observed at each state insertion.
    pub frame_depth: HistSnapshot,
    /// Gauge values indexed by `Gauge as usize`.
    pub gauges: [u64; Gauge::COUNT],
    /// Accumulated nanoseconds per phase, indexed by `Phase as usize`.
    pub span_ns: [u64; Phase::COUNT],
    /// Completed spans per phase, indexed by `Phase as usize`.
    pub span_count: [u64; Phase::COUNT],
}

impl Default for MetricsSnapshot {
    // Manual: `[u64; N]` stops deriving `Default` past 32 elements.
    fn default() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: [0; Metric::COUNT],
            per_proc: [ProcSteps::default(); MAX_PROCS],
            buffer_depth: HistSnapshot::default(),
            frame_depth: HistSnapshot::default(),
            gauges: [0; Gauge::COUNT],
            span_ns: [0; Phase::COUNT],
            span_count: [0; Phase::COUNT],
        }
    }
}

impl MetricsSnapshot {
    /// Value of one counter.
    #[must_use]
    pub fn get(&self, m: Metric) -> u64 {
        self.counters[m as usize]
    }

    /// Value of one gauge.
    #[must_use]
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// Distinct states visited.
    #[must_use]
    pub fn states(&self) -> u64 {
        self.get(Metric::States)
    }

    /// Executed transitions.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.get(Metric::Transitions)
    }

    /// True when nothing has been recorded (e.g. the recorder was
    /// disabled); lets callers skip rendering empty snapshots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.gauges.iter().all(|&g| g == 0)
            && self.span_count.iter().all(|&c| c == 0)
    }

    /// Fold `other` into `self`: counters/histograms/spans sum, gauges max.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        for (a, b) in self.per_proc.iter_mut().zip(other.per_proc.iter()) {
            a.merge(b);
        }
        self.buffer_depth.merge(&other.buffer_depth);
        self.frame_depth.merge(&other.frame_depth);
        for (a, b) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            *a = (*a).max(*b);
        }
        for (a, b) in self.span_ns.iter_mut().zip(other.span_ns.iter()) {
            *a += b;
        }
        for (a, b) in self.span_count.iter_mut().zip(other.span_count.iter()) {
            *a += b;
        }
    }

    /// Merged copy (functional form of [`merge`](Self::merge)).
    #[must_use]
    pub fn merged(mut self, other: &MetricsSnapshot) -> MetricsSnapshot {
        self.merge(other);
        self
    }

    /// The deterministic projection compared by `PartialEq`: counters below
    /// [`Metric::DETERMINISTIC_END`], per-process steps, and the
    /// write-buffer depth histogram. Exposed so tests can state exactly
    /// what "bit-identical across engines" means.
    ///
    /// RMR counts (total and per-process) are zeroed in the projection:
    /// whether an access is *remote* consults the locality tracker's
    /// caches, which are deliberately outside the machine's hashed state,
    /// so an edge's classification depends on the traversal history that
    /// reached it. The sequential engines share one DFS order and agree
    /// exactly; the parallel sweep's workers do not, by a handful of
    /// accesses. RMRs are therefore reported faithfully but excluded from
    /// the cross-engine determinism contract.
    #[must_use]
    pub fn deterministic_key(
        &self,
    ) -> (
        [u64; Metric::DETERMINISTIC_END],
        [ProcSteps; MAX_PROCS],
        HistSnapshot,
    ) {
        let mut det = [0u64; Metric::DETERMINISTIC_END];
        det.copy_from_slice(&self.counters[..Metric::DETERMINISTIC_END]);
        det[Metric::Rmrs as usize] = 0;
        let mut per_proc = self.per_proc;
        for p in &mut per_proc {
            p.rmrs = 0;
        }
        (det, per_proc, self.buffer_depth)
    }

    /// Render the snapshot as flat JSONL fields (zero-valued per-process
    /// slots and empty histograms are omitted to keep lines compact).
    #[must_use]
    pub fn to_json_fields(&self) -> Vec<(String, crate::events::J)> {
        use crate::events::J;
        let mut out = Vec::new();
        for m in METRICS {
            out.push((m.name().to_string(), J::U(self.get(m))));
        }
        for g in GAUGES {
            out.push((g.name().to_string(), J::U(self.gauge(g))));
        }
        for (p, steps) in self.per_proc.iter().enumerate() {
            if !steps.is_zero() {
                out.push((format!("p{p}_fences"), J::U(steps.fences)));
                out.push((format!("p{p}_rmrs"), J::U(steps.rmrs)));
                if steps.crashes > 0 {
                    out.push((format!("p{p}_crashes"), J::U(steps.crashes)));
                }
            }
        }
        if self.buffer_depth.total() > 0 {
            out.push((
                "buffer_depth_hist".to_string(),
                J::S(hist_field(&self.buffer_depth)),
            ));
        }
        if self.frame_depth.total() > 0 {
            out.push((
                "frame_depth_hist".to_string(),
                J::S(hist_field(&self.frame_depth)),
            ));
        }
        for ph in PHASES {
            let n = self.span_count[ph as usize];
            if n > 0 {
                out.push((
                    format!("span_{}_ns", ph.name()),
                    J::U(self.span_ns[ph as usize]),
                ));
                out.push((format!("span_{}_count", ph.name()), J::U(n)));
            }
        }
        out
    }
}

/// Compact `count@bucket` encoding for a histogram JSONL field, e.g.
/// `"3@0,17@2,1@5"`. Parsed back by [`crate::report::parse_hist`].
#[must_use]
pub fn hist_field(h: &HistSnapshot) -> String {
    let mut parts = Vec::new();
    for (i, &c) in h.buckets.iter().enumerate() {
        if c > 0 {
            parts.push(format!("{c}@{i}"));
        }
    }
    parts.join(",")
}

impl PartialEq for MetricsSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.deterministic_key() == other.deterministic_key()
    }
}

impl Eq for MetricsSnapshot {}

impl std::hash::Hash for MetricsSnapshot {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.deterministic_key().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log_scale() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        for i in 1..HIST_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_floor(i)), i);
        }
    }

    #[test]
    fn equality_ignores_traversal_dependent_fields() {
        let mut a = MetricsSnapshot::default();
        let mut b = MetricsSnapshot::default();
        a.counters[Metric::States as usize] = 7;
        b.counters[Metric::States as usize] = 7;
        b.counters[Metric::UndoSteps as usize] = 99;
        b.gauges[Gauge::MaxFrontier as usize] = 42;
        b.span_ns[Phase::Explore as usize] = 1_000_000;
        b.frame_depth.buckets[3] = 5;
        assert_eq!(a, b, "undo/gauge/span/frame-depth differences ignored");
        b.counters[Metric::Fences as usize] = 1;
        assert_ne!(a, b, "deterministic counters compare");
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = MetricsSnapshot::default();
        a.counters[Metric::States as usize] = 3;
        a.gauges[Gauge::MaxFrontier as usize] = 10;
        a.per_proc[1].fences = 2;
        let mut b = MetricsSnapshot::default();
        b.counters[Metric::States as usize] = 4;
        b.gauges[Gauge::MaxFrontier as usize] = 6;
        b.per_proc[1].fences = 5;
        let m = a.merged(&b);
        assert_eq!(m.states(), 7);
        assert_eq!(m.gauge(Gauge::MaxFrontier), 10);
        assert_eq!(m.per_proc[1].fences, 7);
    }
}
