//! The [`Recorder`]: lock-sharded counters/histograms, RAII spans, the
//! hot-pc table, the heartbeat reporter, and the event fan-out to the
//! bounded ring and the optional JSONL sink.
//!
//! A recorder is either **disabled** — `inner == None`, every method is a
//! branch-on-`None` and returns immediately, so threading it through the
//! engines costs a predictable well-predicted branch per call site — or
//! **enabled**, in which case counter updates go to one of [`SHARDS`]
//! cache-line-independent shards selected per thread (round-robin on
//! first touch), keeping the parallel engine's workers from bouncing a
//! shared line. Snapshots fold the shards with
//! [`MetricsSnapshot::merge`], which the proptest suite checks is
//! associative/commutative, so shard count and fold order never change
//! the totals.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::estimate::Estimate;
use crate::events::{encode_line, EventRing, JsonlSink, J};
use crate::metrics::{bucket_index, Gauge, Metric, MetricsSnapshot, HIST_BUCKETS, MAX_PROCS};
use crate::trace::{SpanId, TraceCtx, DEFAULT_TRACE_BUF};
use crate::Phase;

/// Number of counter shards. Eight covers the parallel engine's default
/// worker counts; threads beyond that share shards round-robin.
pub const SHARDS: usize = 8;

/// Highest pc tracked per process in the hot-pc table; larger pcs fold
/// into the last slot.
pub const MAX_PCS: usize = 256;

/// Default heartbeat interval when `FT_OBS_HEARTBEAT_MS` is unset.
pub const DEFAULT_HEARTBEAT_MS: u64 = 1000;

/// Default capacity of the in-memory event ring.
pub const DEFAULT_RING_CAP: usize = 64;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

// Trace span ids are process-global, not per-recorder: several checks in
// one process (a sweep, a resume chain) append to one JSONL file, and the
// forest invariant (`parent < id`, ids unique) must hold across all of
// them. `0` is reserved for [`SpanId::NONE`].
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    // Const-initialized (no lazy-init guard on the TLS access path);
    // `usize::MAX` marks "not yet assigned" and the first touch claims
    // the next round-robin shard.
    static MY_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

#[inline]
fn my_shard() -> usize {
    MY_SHARD.with(|c| {
        let s = c.get();
        if s != usize::MAX {
            s
        } else {
            let s = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            c.set(s);
            s
        }
    })
}

/// Raise a max-merged gauge. The plain load makes the steady-state case
/// (value does not exceed the current max) branch-and-done instead of a
/// `fetch_max` CAS loop; the race where two threads pass the check is
/// resolved by `fetch_max` itself.
#[inline]
fn bump_max(gauge: &AtomicU64, value: u64) {
    if gauge.load(Ordering::Relaxed) < value {
        gauge.fetch_max(value, Ordering::Relaxed);
    }
}

/// One machine-level step, classified for metric purposes. Built by
/// `wbmem::Machine` from the step's `EventKind` — one `record_step` call
/// per executed (non-no-op) event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepClass {
    /// A read; `buffered` when served from the process's own write buffer,
    /// `remote` when charged as an RMR.
    Read {
        /// Served from the write buffer rather than shared memory.
        buffered: bool,
        /// Charged as an RMR under the model's remoteness rule.
        remote: bool,
    },
    /// A buffered (or SC-immediate) write; `buffer_depth` is the buffer
    /// length after the write enters it.
    Write {
        /// Buffer occupancy after the write.
        buffer_depth: u64,
    },
    /// A buffer-to-memory commit (including crash drains).
    Commit {
        /// Charged as an RMR.
        remote: bool,
    },
    /// A compare-and-swap.
    Cas {
        /// Charged as an RMR.
        remote: bool,
    },
    /// A fetch-and-store.
    Swap {
        /// Charged as an RMR.
        remote: bool,
    },
    /// A fence.
    Fence,
    /// A process return.
    Return,
    /// A crash-fault injection.
    Crash,
}

/// One lock-free shard of counters and histograms.
#[derive(Debug)]
struct Shard {
    counters: [AtomicU64; Metric::COUNT],
    per_proc: [[AtomicU64; 3]; MAX_PROCS], // fences, rmrs, crashes
    buffer_depth: [AtomicU64; HIST_BUCKETS],
    frame_depth: [AtomicU64; HIST_BUCKETS],
    span_ns: [AtomicU64; Phase::COUNT],
    span_count: [AtomicU64; Phase::COUNT],
    // Pad shards apart so adjacent shards' hot counters do not share a
    // cache line under the parallel engine.
    _pad: [u64; 8],
}

impl Default for Shard {
    // Manual: `[AtomicU64; N]` stops deriving `Default` past 32 elements.
    fn default() -> Shard {
        Shard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            per_proc: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            buffer_depth: std::array::from_fn(|_| AtomicU64::new(0)),
            frame_depth: std::array::from_fn(|_| AtomicU64::new(0)),
            span_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            span_count: std::array::from_fn(|_| AtomicU64::new(0)),
            _pad: [0; 8],
        }
    }
}

impl Shard {
    fn snapshot(&self) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        for (dst, src) in s.counters.iter_mut().zip(self.counters.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        for (dst, src) in s.per_proc.iter_mut().zip(self.per_proc.iter()) {
            dst.fences = src[0].load(Ordering::Relaxed);
            dst.rmrs = src[1].load(Ordering::Relaxed);
            dst.crashes = src[2].load(Ordering::Relaxed);
        }
        for (dst, src) in s
            .buffer_depth
            .buckets
            .iter_mut()
            .zip(self.buffer_depth.iter())
        {
            *dst = src.load(Ordering::Relaxed);
        }
        for (dst, src) in s
            .frame_depth
            .buckets
            .iter_mut()
            .zip(self.frame_depth.iter())
        {
            *dst = src.load(Ordering::Relaxed);
        }
        for (dst, src) in s.span_ns.iter_mut().zip(self.span_ns.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        for (dst, src) in s.span_count.iter_mut().zip(self.span_count.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        s
    }

    fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for p in &self.per_proc {
            for c in p {
                c.store(0, Ordering::Relaxed);
            }
        }
        for c in self.buffer_depth.iter().chain(self.frame_depth.iter()) {
            c.store(0, Ordering::Relaxed);
        }
        for c in self.span_ns.iter().chain(self.span_count.iter()) {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[derive(Debug)]
struct Inner {
    shards: [Shard; SHARDS],
    gauges: [AtomicU64; Gauge::COUNT],
    hot_pc: Vec<[AtomicU64; MAX_PCS]>,
    pc_labels: Mutex<Vec<Vec<String>>>,
    meta: Vec<(String, J)>,
    start: Instant,
    heartbeat_ms: u64,
    last_heartbeat_ms: AtomicU64,
    quiet: bool,
    ring: EventRing,
    sink: Option<Arc<JsonlSink>>,
    trace: bool,
    trace_root: AtomicU64,
}

/// Configures and builds an enabled [`Recorder`].
#[derive(Debug, Default)]
pub struct RecorderBuilder {
    meta: Vec<(String, J)>,
    sink: Option<Arc<JsonlSink>>,
    heartbeat_ms: Option<u64>,
    quiet: Option<bool>,
    ring_cap: Option<usize>,
    trace: Option<bool>,
}

impl RecorderBuilder {
    /// Attach a static meta field included in every emitted event (e.g.
    /// `engine`, `workload`). Order of insertion is preserved.
    #[must_use]
    pub fn meta(mut self, key: &str, value: impl Into<String>) -> Self {
        self.meta.push((key.to_string(), J::S(value.into())));
        self
    }

    /// Stream events to a (possibly shared) JSONL sink.
    #[must_use]
    pub fn sink(mut self, sink: Arc<JsonlSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Heartbeat interval in milliseconds (`0` disables heartbeats).
    /// Defaults to `FT_OBS_HEARTBEAT_MS` or [`DEFAULT_HEARTBEAT_MS`].
    #[must_use]
    pub fn heartbeat_ms(mut self, ms: u64) -> Self {
        self.heartbeat_ms = Some(ms);
        self
    }

    /// Suppress stderr output (events still reach the ring and sink).
    /// Defaults to the `FT_OBS_QUIET` environment variable.
    #[must_use]
    pub fn quiet(mut self, quiet: bool) -> Self {
        self.quiet = Some(quiet);
        self
    }

    /// Capacity of the in-memory event ring.
    #[must_use]
    pub fn ring_cap(mut self, cap: usize) -> Self {
        self.ring_cap = Some(cap);
        self
    }

    /// Record causal trace spans (see [`crate::trace`]). Defaults to the
    /// `FT_OBS_TRACE` environment variable; off otherwise.
    #[must_use]
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = Some(on);
        self
    }

    /// Build the enabled recorder.
    #[must_use]
    pub fn build(self) -> Recorder {
        let heartbeat_ms = self.heartbeat_ms.unwrap_or_else(|| {
            std::env::var("FT_OBS_HEARTBEAT_MS")
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(DEFAULT_HEARTBEAT_MS)
        });
        let quiet = self.quiet.unwrap_or_else(|| {
            std::env::var("FT_OBS_QUIET").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        });
        let trace = self.trace.unwrap_or_else(|| {
            std::env::var("FT_OBS_TRACE").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        });
        Recorder {
            inner: Some(Arc::new(Inner {
                shards: std::array::from_fn(|_| Shard::default()),
                gauges: std::array::from_fn(|_| AtomicU64::new(0)),
                hot_pc: (0..MAX_PROCS)
                    .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                    .collect(),
                pc_labels: Mutex::new(Vec::new()),
                meta: self.meta,
                start: Instant::now(),
                heartbeat_ms,
                last_heartbeat_ms: AtomicU64::new(0),
                quiet,
                ring: EventRing::new(self.ring_cap.unwrap_or(DEFAULT_RING_CAP)),
                sink: self.sink,
                trace,
                trace_root: AtomicU64::new(0),
            })),
        }
    }
}

/// Live exploration figures supplied by an engine to
/// [`Recorder::maybe_heartbeat`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Progress {
    /// Distinct states visited so far.
    pub states: u64,
    /// Transitions executed so far.
    pub transitions: u64,
    /// Current frontier size (DFS stack / arena frames / queued work).
    pub frontier: u64,
    /// Wall-clock budget for the whole check, if one was configured.
    pub budget: Option<Duration>,
    /// Time already consumed against that budget.
    pub spent: Option<Duration>,
    /// Tree-size progress estimate, when the engine maintains one.
    pub estimate: Option<Estimate>,
}

/// A metrics/tracing recorder handle. Cheap to clone (an `Arc` — or
/// nothing at all when disabled); all methods take `&self`.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// The no-op recorder: every method returns after one `None` check.
    #[must_use]
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder with default settings (no sink, env-derived
    /// heartbeat interval and quietness).
    #[must_use]
    pub fn enabled() -> Recorder {
        Recorder::builder().build()
    }

    /// Start configuring an enabled recorder.
    #[must_use]
    pub fn builder() -> RecorderBuilder {
        RecorderBuilder::default()
    }

    /// Whether this recorder actually records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether `self` and `other` share the same underlying recorder state.
    #[must_use]
    pub fn same_as(&self, other: &Recorder) -> bool {
        match (&self.inner, &other.inner) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    #[inline]
    fn shard(inner: &Inner) -> &Shard {
        &inner.shards[my_shard()]
    }

    /// Add `delta` to a counter.
    #[inline]
    pub fn add(&self, m: Metric, delta: u64) {
        if let Some(inner) = &self.inner {
            Self::shard(inner).counters[m as usize].fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Increment a counter by one.
    #[inline]
    pub fn incr(&self, m: Metric) {
        self.add(m, 1);
    }

    /// Record one classified machine step for process `proc` (processes
    /// beyond [`MAX_PROCS`] fold into the last per-process slot), plus the
    /// post-step pc for the hot-pc table when the process exposes one.
    #[inline]
    pub fn record_step(&self, proc: usize, class: StepClass, pc: Option<u32>) {
        let Some(inner) = &self.inner else { return };
        let shard = Self::shard(inner);
        let c = &shard.counters;
        let p = proc.min(MAX_PROCS - 1);
        let mut remote = false;
        match class {
            StepClass::Read {
                buffered,
                remote: r,
            } => {
                c[Metric::Reads as usize].fetch_add(1, Ordering::Relaxed);
                if buffered {
                    c[Metric::BufferReads as usize].fetch_add(1, Ordering::Relaxed);
                }
                remote = r;
            }
            StepClass::Write { buffer_depth } => {
                c[Metric::Writes as usize].fetch_add(1, Ordering::Relaxed);
                shard.buffer_depth[bucket_index(buffer_depth)].fetch_add(1, Ordering::Relaxed);
                bump_max(&inner.gauges[Gauge::MaxBufferDepth as usize], buffer_depth);
            }
            StepClass::Commit { remote: r } => {
                c[Metric::Commits as usize].fetch_add(1, Ordering::Relaxed);
                remote = r;
            }
            StepClass::Cas { remote: r } => {
                c[Metric::CasOps as usize].fetch_add(1, Ordering::Relaxed);
                remote = r;
            }
            StepClass::Swap { remote: r } => {
                c[Metric::SwapOps as usize].fetch_add(1, Ordering::Relaxed);
                remote = r;
            }
            StepClass::Fence => {
                c[Metric::Fences as usize].fetch_add(1, Ordering::Relaxed);
                shard.per_proc[p][0].fetch_add(1, Ordering::Relaxed);
            }
            StepClass::Return => {
                c[Metric::Returns as usize].fetch_add(1, Ordering::Relaxed);
            }
            StepClass::Crash => {
                c[Metric::Crashes as usize].fetch_add(1, Ordering::Relaxed);
                shard.per_proc[p][2].fetch_add(1, Ordering::Relaxed);
            }
        }
        if remote {
            c[Metric::Rmrs as usize].fetch_add(1, Ordering::Relaxed);
            shard.per_proc[p][1].fetch_add(1, Ordering::Relaxed);
        }
        if let Some(pc) = pc {
            let pc = (pc as usize).min(MAX_PCS - 1);
            inner.hot_pc[p][pc].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one undo-log pop.
    #[inline]
    pub fn on_undo(&self) {
        self.add(Metric::UndoSteps, 1);
    }

    /// Record a newly visited state at DFS depth `depth`.
    #[inline]
    pub fn on_state(&self, depth: u64) {
        if let Some(inner) = &self.inner {
            let shard = Self::shard(inner);
            shard.counters[Metric::States as usize].fetch_add(1, Ordering::Relaxed);
            shard.frame_depth[bucket_index(depth)].fetch_add(1, Ordering::Relaxed);
            bump_max(&inner.gauges[Gauge::MaxDepth as usize], depth);
        }
    }

    /// Record an executed transition.
    #[inline]
    pub fn on_transition(&self) {
        self.add(Metric::Transitions, 1);
    }

    /// Update a `max`-merged gauge.
    #[inline]
    pub fn gauge_max(&self, g: Gauge, value: u64) {
        if let Some(inner) = &self.inner {
            bump_max(&inner.gauges[g as usize], value);
        }
    }

    /// Overwrite a gauge (last write wins; used for occupancy-style
    /// gauges sampled at snapshot time).
    #[inline]
    pub fn gauge_set(&self, g: Gauge, value: u64) {
        if let Some(inner) = &self.inner {
            inner.gauges[g as usize].store(value, Ordering::Relaxed);
        }
    }

    /// Open an engine-local [`Tally`] that batches the checker-side
    /// counters in plain fields and folds them into the recorder when
    /// dropped (or on [`Tally::flush`]).
    #[must_use]
    pub fn tally(&self) -> Tally {
        Tally {
            rec: self.clone(),
            states: 0,
            transitions: 0,
            terminal_states: 0,
            dedup_hits: 0,
            noop_steps: 0,
            max_depth: 0,
            frame_depth: [0; HIST_BUCKETS],
        }
    }

    /// Open an RAII timer for `phase`; drop stops it and accumulates the
    /// elapsed nanoseconds.
    #[must_use]
    pub fn span(&self, phase: Phase) -> Span {
        Span {
            rec: self
                .inner
                .as_ref()
                .map(|i| (Arc::clone(i), phase, Instant::now())),
        }
    }

    /// Register pc → label names for process `proc`'s program (used by the
    /// hot-pc table; unlabelled pcs render as `pc<N>`).
    pub fn set_pc_labels(&self, proc: usize, labels: &[String]) {
        if let Some(inner) = &self.inner {
            let mut all = inner.pc_labels.lock().expect("unpoisoned");
            let p = proc.min(MAX_PROCS - 1);
            if all.len() <= p {
                all.resize(p + 1, Vec::new());
            }
            all[p] = labels.to_vec();
        }
    }

    /// The `k` hottest `(proc, pc, hits, label)` entries, hits descending.
    /// Hits approximate time-in-state: one hit per executed step that left
    /// the process at that pc.
    #[must_use]
    pub fn hot_pcs(&self, k: usize) -> Vec<(usize, u32, u64, Option<String>)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let labels = inner.pc_labels.lock().expect("unpoisoned");
        let mut all: Vec<(usize, u32, u64, Option<String>)> = Vec::new();
        for (p, row) in inner.hot_pc.iter().enumerate() {
            for (pc, cell) in row.iter().enumerate() {
                let hits = cell.load(Ordering::Relaxed);
                if hits > 0 {
                    let label = labels
                        .get(p)
                        .and_then(|ls| ls.get(pc))
                        .filter(|l| !l.is_empty())
                        .cloned();
                    #[allow(clippy::cast_possible_truncation)]
                    all.push((p, pc as u32, hits, label));
                }
            }
        }
        all.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    /// The hot-pc top-`k` as one compact JSONL field, e.g.
    /// `"p0@7:woo_wait=120;p1@3=88"`.
    #[must_use]
    pub fn hot_pc_field(&self, k: usize) -> String {
        self.hot_pcs(k)
            .into_iter()
            .map(|(p, pc, hits, label)| match label {
                Some(l) => format!("p{p}@{pc}:{l}={hits}"),
                None => format!("p{p}@{pc}={hits}"),
            })
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Fold all shards (plus gauges) into one [`MetricsSnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let mut total = MetricsSnapshot::default();
        for shard in &inner.shards {
            total.merge(&shard.snapshot());
        }
        for (dst, src) in total.gauges.iter_mut().zip(inner.gauges.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        total
    }

    /// Per-shard snapshots (gauges excluded — they are recorder-global).
    /// Folding these in any order with [`MetricsSnapshot::merge`] must
    /// reproduce [`snapshot`](Self::snapshot) minus gauges; the obs
    /// proptest suite checks exactly that.
    #[must_use]
    pub fn shard_snapshots(&self) -> Vec<MetricsSnapshot> {
        self.inner
            .as_ref()
            .map(|inner| inner.shards.iter().map(Shard::snapshot).collect())
            .unwrap_or_default()
    }

    /// Zero every counter, histogram, span, gauge, and hot-pc cell,
    /// keeping meta fields, the sink, and the event ring. Used by the
    /// parallel engine before its sequential fallback rerun so totals stay
    /// bit-identical with the other engines.
    pub fn reset_counts(&self) {
        if let Some(inner) = &self.inner {
            for shard in &inner.shards {
                shard.reset();
            }
            for g in &inner.gauges {
                g.store(0, Ordering::Relaxed);
            }
            for row in &inner.hot_pc {
                for cell in row {
                    cell.store(0, Ordering::Relaxed);
                }
            }
        }
    }

    /// Emit one event: rendered as a flat JSON line, pushed to the ring,
    /// streamed to the sink (if any). `kind` is the event discriminator.
    pub fn event(&self, kind: &str, fields: &[(&str, J)]) {
        let Some(inner) = &self.inner else { return };
        let line = self.render_event(inner, kind, fields);
        inner.ring.push(&line);
        if let Some(sink) = &inner.sink {
            sink.write_line(&line);
        }
    }

    fn render_event(&self, inner: &Inner, kind: &str, fields: &[(&str, J)]) -> String {
        #[allow(clippy::cast_possible_truncation)]
        let t_ms = J::U(inner.start.elapsed().as_millis() as u64);
        let kind_v = J::s(kind);
        let head = [("t_ms", &t_ms), ("kind", &kind_v)];
        let meta = inner.meta.iter().map(|(k, v)| (k.as_str(), v));
        let body = fields.iter().map(|(k, v)| (*k, v));
        encode_line(head, meta.chain(body).collect::<Vec<_>>())
    }

    /// Emit an `info` event and (unless quiet) mirror it to stderr. The
    /// one replacement for ad-hoc `eprintln!` progress lines.
    pub fn info(&self, msg: &str) {
        let Some(inner) = &self.inner else { return };
        self.event("info", &[("msg", J::s(msg))]);
        if !inner.quiet {
            eprintln!("[ftobs] {msg}");
        }
    }

    /// Emit a `snapshot` event carrying the full metrics rollup plus
    /// `extra` fields (e.g. the final verdict label). Also includes the
    /// hot-pc top-12 when non-empty.
    pub fn emit_snapshot(&self, extra: &[(&str, J)]) {
        if self.inner.is_none() {
            return;
        }
        let snap = self.snapshot();
        let mut fields: Vec<(String, J)> = snap.to_json_fields();
        let hot = self.hot_pc_field(12);
        if !hot.is_empty() {
            fields.push(("hot_pcs".to_string(), J::S(hot)));
        }
        let mut refs: Vec<(&str, J)> = fields
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        refs.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
        self.event("snapshot", &refs);
    }

    /// Rate-limited heartbeat: at most one per configured interval, as a
    /// `heartbeat` event (and a stderr line unless quiet) with states/sec,
    /// frontier size, and budget consumption / ETA when a budget is set.
    /// Safe to call at very high frequency — the fast path is one load
    /// and a compare.
    pub fn maybe_heartbeat(&self, p: &Progress) {
        let Some(inner) = &self.inner else { return };
        if inner.heartbeat_ms == 0 {
            return;
        }
        #[allow(clippy::cast_possible_truncation)]
        let now_ms = inner.start.elapsed().as_millis() as u64;
        let last = inner.last_heartbeat_ms.load(Ordering::Relaxed);
        if now_ms.saturating_sub(last) < inner.heartbeat_ms {
            return;
        }
        if inner
            .last_heartbeat_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return; // another thread just heartbeat
        }
        self.incr(Metric::Heartbeats);
        #[allow(clippy::cast_precision_loss)]
        let per_sec = if now_ms == 0 {
            0.0
        } else {
            p.states as f64 * 1000.0 / now_ms as f64
        };
        let mut fields = vec![
            ("elapsed_ms", J::U(now_ms)),
            ("states", J::U(p.states)),
            ("transitions", J::U(p.transitions)),
            ("frontier", J::U(p.frontier)),
            ("states_per_sec", J::F(per_sec)),
        ];
        let mut est_note = String::new();
        if let Some(est) = p.estimate {
            fields.push(("est_total_states", J::U(est.total_states)));
            fields.push(("est_remaining", J::U(est.remaining)));
            est_note = format!(" est {}≈{}", p.states, est.total_states);
            if per_sec > 0.0 {
                #[allow(clippy::cast_precision_loss)]
                let eta = est.remaining as f64 * 1000.0 / per_sec;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                fields.push(("eta_ms", J::U(eta.min(u64::MAX as f64) as u64)));
                est_note.push_str(&format!(" eta {:.1}s", eta / 1000.0));
            }
        }
        let mut budget_note = String::new();
        if let (Some(budget), Some(spent)) = (p.budget, p.spent) {
            let total_ms = budget.as_millis().max(1);
            #[allow(clippy::cast_precision_loss)]
            let used_pct = spent.as_millis() as f64 * 100.0 / total_ms as f64;
            let left = budget.saturating_sub(spent);
            #[allow(clippy::cast_possible_truncation)]
            fields.push(("budget_used_pct", J::F(used_pct)));
            #[allow(clippy::cast_possible_truncation)]
            fields.push(("budget_left_ms", J::U(left.as_millis() as u64)));
            budget_note = format!(
                " budget {used_pct:.0}% used, {:.1}s left",
                left.as_secs_f64()
            );
        }
        self.event("heartbeat", &fields);
        if !inner.quiet {
            eprintln!(
                "[ftobs] {:.1}s states={} ({per_sec:.0}/s) transitions={} \
                 frontier={}{est_note}{budget_note}",
                now_ms as f64 / 1000.0,
                p.states,
                p.transitions,
                p.frontier,
            );
        }
    }

    /// Whether causal trace spans are being recorded (requires an
    /// enabled recorder built with `.trace(true)` or `FT_OBS_TRACE=1`).
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.trace)
    }

    /// Allocate a fresh process-unique span id (strictly monotonic, so a
    /// parent id is always smaller than any child allocated after it).
    #[must_use]
    pub fn alloc_span_id(&self) -> SpanId {
        SpanId(NEXT_SPAN.fetch_add(1, Ordering::Relaxed))
    }

    /// Monotonic microseconds since this recorder was built (the `ts_us`
    /// clock of its trace spans).
    #[must_use]
    pub fn now_us(&self) -> u64 {
        #[allow(clippy::cast_possible_truncation)]
        let us = self
            .inner
            .as_ref()
            .map_or(0, |i| i.start.elapsed().as_micros() as u64);
        us
    }

    /// The current root span new engine-level spans should parent under
    /// ([`SpanId::NONE`] outside any enclosing span).
    #[must_use]
    pub fn trace_root(&self) -> SpanId {
        self.inner.as_ref().map_or(SpanId::NONE, |i| {
            SpanId(i.trace_root.load(Ordering::Relaxed))
        })
    }

    /// Set the root span for subsequently opened engine-level spans and
    /// return the previous root, so callers can restore it on exit.
    pub fn set_trace_root(&self, id: SpanId) -> SpanId {
        self.inner.as_ref().map_or(SpanId::NONE, |i| {
            SpanId(i.trace_root.swap(id.0, Ordering::Relaxed))
        })
    }

    /// Open a per-worker trace writer with the default buffer bound.
    #[must_use]
    pub fn trace_ctx(&self) -> TraceCtx {
        TraceCtx::new(self.clone(), DEFAULT_TRACE_BUF)
    }

    /// Render a span line (meta + timestamps included), or `None` when
    /// tracing is off.
    pub(crate) fn render_trace(&self, fields: &[(&str, J)]) -> Option<String> {
        let inner = self.inner.as_ref()?;
        if !inner.trace {
            return None;
        }
        Some(self.render_event(inner, "span", fields))
    }

    /// Drain a [`TraceCtx`] buffer into the sink, counting written spans
    /// (or drops, when no sink is attached).
    pub(crate) fn trace_flush(&self, lines: &mut Vec<String>) {
        if lines.is_empty() {
            return;
        }
        let Some(inner) = &self.inner else {
            lines.clear();
            return;
        };
        let n = lines.len() as u64;
        if let Some(sink) = &inner.sink {
            for line in lines.iter() {
                sink.write_line(line);
            }
            self.add(Metric::TraceSpans, n);
        } else {
            self.add(Metric::TraceDropped, n);
        }
        lines.clear();
    }

    /// The newest ring-buffered event lines, oldest first.
    #[must_use]
    pub fn recent_events(&self) -> Vec<String> {
        self.inner
            .as_ref()
            .map(|i| i.ring.drain_snapshot())
            .unwrap_or_default()
    }

    /// Flush the JSONL sink, if attached.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            if let Some(sink) = &inner.sink {
                sink.flush();
            }
        }
    }

    /// The sink path, if a sink is attached.
    #[must_use]
    pub fn sink_path(&self) -> Option<std::path::PathBuf> {
        self.inner
            .as_ref()
            .and_then(|i| i.sink.as_ref())
            .map(|s| s.path().to_path_buf())
    }
}

/// Engine-local batch of the checker-side counters, flushed into the
/// recorder in one shot when dropped (or via [`Tally::flush`]).
///
/// The exploration loops increment states/transitions/dedup counters on
/// *every* edge; going through the sharded atomics each time costs a TLS
/// lookup plus a `lock`-prefixed RMW per counter, which is the bulk of
/// the enabled-recorder overhead the E13 budget caps. A `Tally` keeps
/// those counts in plain fields (and the frame-depth histogram in a plain
/// array) for the duration of one engine run — each parallel worker owns
/// its own — and folds them into the shards once at the end, which is
/// exactly the merge the proptest suite proves order-insensitive. Machine
/// -level step classes (reads/writes/fences/RMRs) still record live:
/// their per-process attribution and the buffer-depth histogram are
/// consumed mid-run by heartbeats and belong to `wbmem`, not the engines.
#[derive(Debug)]
pub struct Tally {
    rec: Recorder,
    states: u64,
    transitions: u64,
    terminal_states: u64,
    dedup_hits: u64,
    noop_steps: u64,
    max_depth: u64,
    frame_depth: [u64; HIST_BUCKETS],
}

impl Tally {
    /// Record a newly visited state at DFS depth `depth`.
    #[inline]
    pub fn on_state(&mut self, depth: u64) {
        self.states += 1;
        self.frame_depth[bucket_index(depth)] += 1;
        if depth > self.max_depth {
            self.max_depth = depth;
        }
    }

    /// Record an executed transition.
    #[inline]
    pub fn on_transition(&mut self) {
        self.transitions += 1;
    }

    /// Record a transition into an already-visited state.
    #[inline]
    pub fn dedup_hit(&mut self) {
        self.dedup_hits += 1;
    }

    /// Record a scheduler choice that produced a no-op.
    #[inline]
    pub fn noop_step(&mut self) {
        self.noop_steps += 1;
    }

    /// Record an all-done (terminal) state.
    #[inline]
    pub fn terminal_state(&mut self) {
        self.terminal_states += 1;
    }

    /// Fold the batched counts into the recorder and zero the batch.
    /// Dropping the tally does the same.
    pub fn flush(&mut self) {
        if let Some(inner) = &self.rec.inner {
            let shard = Recorder::shard(inner);
            for (m, v) in [
                (Metric::States, self.states),
                (Metric::Transitions, self.transitions),
                (Metric::TerminalStates, self.terminal_states),
                (Metric::DedupHits, self.dedup_hits),
                (Metric::NoopSteps, self.noop_steps),
            ] {
                if v > 0 {
                    shard.counters[m as usize].fetch_add(v, Ordering::Relaxed);
                }
            }
            for (bucket, &count) in shard.frame_depth.iter().zip(self.frame_depth.iter()) {
                if count > 0 {
                    bucket.fetch_add(count, Ordering::Relaxed);
                }
            }
            if self.max_depth > 0 {
                bump_max(&inner.gauges[Gauge::MaxDepth as usize], self.max_depth);
            }
        }
        self.states = 0;
        self.transitions = 0;
        self.terminal_states = 0;
        self.dedup_hits = 0;
        self.noop_steps = 0;
        self.max_depth = 0;
        self.frame_depth = [0; HIST_BUCKETS];
    }
}

impl Drop for Tally {
    fn drop(&mut self) {
        self.flush();
    }
}

/// RAII phase timer returned by [`Recorder::span`]; accumulates elapsed
/// nanoseconds into the recorder on drop.
#[derive(Debug)]
pub struct Span {
    rec: Option<(Arc<Inner>, Phase, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, phase, started)) = self.rec.take() {
            #[allow(clippy::cast_possible_truncation)]
            let ns = started.elapsed().as_nanos() as u64;
            let shard = Recorder::shard(&inner);
            shard.span_ns[phase as usize].fetch_add(ns, Ordering::Relaxed);
            shard.span_count[phase as usize].fetch_add(1, Ordering::Relaxed);
        }
    }
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-wide recorder — [`Recorder::disabled`] until
/// [`install_global`] runs. For call sites (like the lowerbound decoder)
/// where threading a recorder through `Copy` option structs is not
/// practical.
#[must_use]
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::disabled)
}

/// Install the process-wide recorder. Returns `false` (and changes
/// nothing) if one was already installed or read.
pub fn install_global(rec: Recorder) -> bool {
    GLOBAL.set(rec).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        r.incr(Metric::States);
        r.record_step(0, StepClass::Fence, Some(3));
        r.on_state(5);
        r.maybe_heartbeat(&Progress::default());
        drop(r.span(Phase::Explore));
        assert!(r.snapshot().is_empty());
        assert!(r.recent_events().is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn step_classification_counts() {
        let r = Recorder::builder().heartbeat_ms(0).quiet(true).build();
        r.record_step(
            0,
            StepClass::Read {
                buffered: true,
                remote: false,
            },
            None,
        );
        r.record_step(
            1,
            StepClass::Read {
                buffered: false,
                remote: true,
            },
            None,
        );
        r.record_step(1, StepClass::Write { buffer_depth: 3 }, None);
        r.record_step(0, StepClass::Commit { remote: true }, None);
        r.record_step(0, StepClass::Fence, Some(7));
        r.record_step(1, StepClass::Crash, None);
        let s = r.snapshot();
        assert_eq!(s.get(Metric::Reads), 2);
        assert_eq!(s.get(Metric::BufferReads), 1);
        assert_eq!(s.get(Metric::Writes), 1);
        assert_eq!(s.get(Metric::Commits), 1);
        assert_eq!(s.get(Metric::Fences), 1);
        assert_eq!(s.get(Metric::Crashes), 1);
        assert_eq!(s.get(Metric::Rmrs), 2);
        assert_eq!(s.per_proc[0].fences, 1);
        assert_eq!(s.per_proc[0].rmrs, 1);
        assert_eq!(s.per_proc[1].rmrs, 1);
        assert_eq!(s.per_proc[1].crashes, 1);
        assert_eq!(s.gauge(Gauge::MaxBufferDepth), 3);
        assert_eq!(s.buffer_depth.total(), 1);
        let hot = r.hot_pcs(4);
        assert_eq!(hot, vec![(0, 7, 1, None)]);
    }

    #[test]
    fn shard_fold_matches_snapshot_counters() {
        let r = Recorder::builder().heartbeat_ms(0).quiet(true).build();
        for _ in 0..100 {
            r.on_transition();
        }
        r.on_state(2);
        let mut folded = MetricsSnapshot::default();
        for s in r.shard_snapshots() {
            folded.merge(&s);
        }
        assert_eq!(folded, r.snapshot(), "deterministic projection matches");
        assert_eq!(folded.transitions(), 100);
    }

    #[test]
    fn reset_zeroes_everything() {
        let r = Recorder::builder().heartbeat_ms(0).quiet(true).build();
        r.record_step(0, StepClass::Fence, Some(1));
        r.gauge_max(Gauge::MaxFrontier, 9);
        r.reset_counts();
        assert!(r.snapshot().is_empty());
        assert!(r.hot_pcs(4).is_empty());
    }

    #[test]
    fn events_reach_ring_with_meta() {
        let r = Recorder::builder()
            .meta("engine", "undo")
            .heartbeat_ms(0)
            .quiet(true)
            .build();
        r.event("probe", &[("n", J::U(3))]);
        let lines = r.recent_events();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"kind\":\"probe\""));
        assert!(lines[0].contains("\"engine\":\"undo\""));
        assert!(lines[0].contains("\"n\":3"));
    }

    #[test]
    fn spans_accumulate() {
        let r = Recorder::builder().heartbeat_ms(0).quiet(true).build();
        {
            let _s = r.span(Phase::Explore);
        }
        let s = r.snapshot();
        assert_eq!(s.span_count[Phase::Explore as usize], 1);
    }
}
