//! Offline rendering of JSONL event streams: a dependency-free flat-JSON
//! scanner plus Markdown/ASCII report builders (per-engine comparison
//! table, histogram sketches, hot-pc top-k, heartbeat summary). Consumed
//! by the `obs_report` binary in `crates/bench` and by tests.

use std::collections::BTreeMap;

use crate::metrics::{bucket_floor, HistSnapshot, HIST_BUCKETS};

/// Parse one flat JSON object line (scalar values only — the shape every
/// recorder event has) into key → raw-value pairs. String values are
/// unescaped; numbers/bools/null keep their literal text. Returns `None`
/// on malformed input (report tooling skips such lines).
#[must_use]
pub fn parse_line(line: &str) -> Option<BTreeMap<String, String>> {
    let mut out = BTreeMap::new();
    let bytes = line.trim().as_bytes();
    let mut i = 0usize;
    let skip_ws = |bytes: &[u8], mut i: usize| {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    };
    i = skip_ws(bytes, i);
    if i >= bytes.len() || bytes[i] != b'{' {
        return None;
    }
    i += 1;
    loop {
        i = skip_ws(bytes, i);
        if i < bytes.len() && bytes[i] == b'}' {
            return Some(out);
        }
        let (key, next) = parse_string(bytes, i)?;
        i = skip_ws(bytes, next);
        if i >= bytes.len() || bytes[i] != b':' {
            return None;
        }
        i = skip_ws(bytes, i + 1);
        let (value, next) = if i < bytes.len() && bytes[i] == b'"' {
            parse_string(bytes, i)?
        } else {
            let start = i;
            while i < bytes.len() && bytes[i] != b',' && bytes[i] != b'}' {
                i += 1;
            }
            (
                String::from_utf8_lossy(&bytes[start..i]).trim().to_string(),
                i,
            )
        };
        out.insert(key, value);
        i = skip_ws(bytes, next);
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => return Some(out),
            _ => return None,
        }
    }
}

/// Parse a JSON string starting at `bytes[i] == b'"'`; returns the
/// unescaped contents and the index just past the closing quote.
fn parse_string(bytes: &[u8], i: usize) -> Option<(String, usize)> {
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    let mut s = String::new();
    let mut i = i + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some((s, i + 1)),
            b'\\' => {
                i += 1;
                match bytes.get(i)? {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'n' => s.push('\n'),
                    b'r' => s.push('\r'),
                    b't' => s.push('\t'),
                    b'u' => {
                        let hex = std::str::from_utf8(bytes.get(i + 1..i + 5)?).ok()?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        s.push(char::from_u32(code)?);
                        i += 4;
                    }
                    _ => return None,
                }
                i += 1;
            }
            c => {
                // Multi-byte UTF-8 sequences pass through byte-wise.
                let start = i;
                let len = utf8_len(c);
                let chunk = bytes.get(start..start + len)?;
                s.push_str(std::str::from_utf8(chunk).ok()?);
                i += len;
            }
        }
    }
    None
}

const fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parse the compact `count@bucket` histogram field written by
/// [`crate::metrics::hist_field`].
#[must_use]
pub fn parse_hist(field: &str) -> HistSnapshot {
    let mut h = HistSnapshot::default();
    for part in field.split(',') {
        if let Some((count, bucket)) = part.split_once('@') {
            if let (Ok(c), Ok(b)) = (count.trim().parse::<u64>(), bucket.trim().parse::<usize>()) {
                if b < HIST_BUCKETS {
                    h.buckets[b] += c;
                }
            }
        }
    }
    h
}

/// Render a histogram as an ASCII bar sketch, one line per non-empty
/// bucket prefix, bars scaled to the largest bucket.
#[must_use]
pub fn sketch(h: &HistSnapshot) -> String {
    use std::fmt::Write as _;
    let Some(max_bucket) = h.max_bucket() else {
        return "  (no samples)\n".to_string();
    };
    let peak = h.buckets.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, &c) in h.buckets.iter().enumerate().take(max_bucket + 1) {
        let label = if i == 0 {
            "0".to_string()
        } else if bucket_floor(i) == (bucket_floor(i + 1).saturating_sub(1)) {
            format!("{}", bucket_floor(i))
        } else {
            format!("{}-{}", bucket_floor(i), 2 * bucket_floor(i) - 1)
        };
        #[allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]
        let width = ((c as f64 / peak as f64) * 24.0).round() as usize;
        let _ = writeln!(out, "  {label:>9} |{:<24}| {c}", "#".repeat(width));
    }
    out
}

/// Split a raw JSONL stream into complete lines plus a trailing
/// truncated line, if any. A process killed mid-write (the sink flushes
/// line by line) can tear at most the final line: no terminating
/// newline *and* unparseable. Such a tail is returned separately so
/// callers skip and count it instead of erroring; a parseable final
/// line merely missing its newline is kept.
#[must_use]
pub fn stream_lines(text: &str) -> (Vec<String>, Option<String>) {
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    if !text.is_empty() && !text.ends_with('\n') {
        if let Some(last) = lines.last() {
            if parse_line(last).is_none() {
                return (lines[..lines.len() - 1].to_vec(), lines.pop());
            }
        }
    }
    (lines, None)
}

/// What [`scan_stream`] found in one raw JSONL stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamScan {
    /// The well-formed event lines, in stream order.
    pub lines: Vec<String>,
    /// Malformed non-empty lines *before* the tail — corruption in the
    /// middle of a stream (interleaved writers, disk errors). Skipped,
    /// never fatal: one bad line must not cost the rest of the stream.
    pub lines_skipped: usize,
    /// A truncated trailing line (no newline, unparseable — the
    /// signature of a process killed mid-write), if any.
    pub torn_tail: Option<String>,
}

/// Scan a raw JSONL stream, keeping every well-formed event line and
/// counting what had to be skipped. Consumers (`obs_report`,
/// `obs_trace`) surface [`StreamScan::lines_skipped`] as a warning
/// rather than erroring — a report over a terabyte of telemetry must
/// survive one corrupt line.
#[must_use]
pub fn scan_stream(text: &str) -> StreamScan {
    let (raw, torn_tail) = stream_lines(text);
    let mut lines = Vec::with_capacity(raw.len());
    let mut lines_skipped = 0usize;
    for l in raw {
        if l.trim().is_empty() {
            continue;
        }
        if parse_line(&l).is_some() {
            lines.push(l);
        } else {
            lines_skipped += 1;
        }
    }
    StreamScan {
        lines,
        lines_skipped,
        torn_tail,
    }
}

/// One parsed event line grouped under its `(workload, engine)` identity.
#[derive(Clone, Debug)]
pub struct EventRow {
    /// `workload` meta field (empty if absent).
    pub workload: String,
    /// `engine` meta field (empty if absent).
    pub engine: String,
    /// All fields of the line.
    pub fields: BTreeMap<String, String>,
}

/// Parse every well-formed line, tagging each with its workload/engine.
#[must_use]
pub fn parse_events(lines: &[String]) -> Vec<EventRow> {
    lines
        .iter()
        .filter_map(|l| parse_line(l))
        .map(|fields| EventRow {
            workload: fields.get("workload").cloned().unwrap_or_default(),
            engine: fields.get("engine").cloned().unwrap_or_default(),
            fields,
        })
        .collect()
}

fn get_u64(f: &BTreeMap<String, String>, key: &str) -> u64 {
    f.get(key).and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// Snapshot keys that are identity/formatting or already aggregated
/// elsewhere — everything else that parses as an unsigned integer
/// becomes a comparison-table column, so a newly added metric or gauge
/// (e.g. the work-stealing `fork_published`/`fork_stolen`/
/// `fp_contention` counters) is never silently dropped from reports.
fn non_counter_key(key: &str) -> bool {
    matches!(key, "t_ms" | "kind" | "workload" | "engine" | "hot_pcs")
        || RESILIENCE_COLS.contains(&key)
        || SYNTH_COLS.contains(&key)
        || FLEET_COLS.contains(&key)
        || key.ends_with("_hist")
        || key.starts_with("span_")
        || is_per_proc(key)
}

/// Checkpoint/resume counters get their own table (below) rather than
/// trailing columns in the per-engine comparison.
const RESILIENCE_COLS: [&str; 4] = [
    "checkpoint_written",
    "checkpoint_bytes",
    "resume_replayed",
    "watchdog_trips",
];

/// Multi-process fleet supervision counters likewise get their own table.
const FLEET_COLS: [&str; 4] = [
    "leases_issued",
    "leases_reassigned",
    "workers_lost",
    "poisoned_leases",
];

/// Fence-synthesis counters likewise get their own table.
const SYNTH_COLS: [&str; 3] = ["synth_iterations", "fences_inserted", "core_size"];

/// `p0_fences` / `p12_rmrs` / `p3_crashes` — per-process breakdowns of
/// totals the table already shows.
fn is_per_proc(key: &str) -> bool {
    key.strip_prefix('p')
        .is_some_and(|r| r.starts_with(|c: char| c.is_ascii_digit()) && r.contains('_'))
}

/// Render the full Markdown report for a set of JSONL lines (possibly
/// concatenated from several streams): per-engine comparison table,
/// histogram sketches, hot-pc top-k, and a heartbeat summary.
#[must_use]
pub fn render_report(title: &str, lines: &[String]) -> String {
    use std::fmt::Write as _;
    let events = parse_events(lines);
    let mut out = String::new();
    let _ = writeln!(out, "# {title}\n");
    let _ = writeln!(
        out,
        "{} events parsed ({} skipped as malformed).\n",
        events.len(),
        lines.iter().filter(|l| !l.trim().is_empty()).count() - events.len()
    );

    // --- Per-engine comparison table (last snapshot per workload/engine).
    let mut snaps: BTreeMap<(String, String), BTreeMap<String, String>> = BTreeMap::new();
    for e in &events {
        if e.fields.get("kind").map(String::as_str) == Some("snapshot") {
            snaps.insert((e.workload.clone(), e.engine.clone()), e.fields.clone());
        }
    }
    let _ = writeln!(out, "## Per-engine comparison\n");
    if snaps.is_empty() {
        let _ = writeln!(out, "(no snapshot events)\n");
    } else {
        let base_cols = [
            "states",
            "transitions",
            "fences",
            "rmrs",
            "crashes",
            "sleep_hits",
            "dedup_hits",
            "max_frontier",
        ];
        // Any other integer-valued snapshot key becomes a trailing
        // column (sorted for a stable layout) — unknown counter names
        // render instead of vanishing.
        let mut extra: Vec<String> = Vec::new();
        for f in snaps.values() {
            for (k, v) in f {
                if !base_cols.contains(&k.as_str())
                    && !non_counter_key(k)
                    && !extra.iter().any(|e| e == k)
                    && v.parse::<u64>().is_ok()
                {
                    extra.push(k.clone());
                }
            }
        }
        extra.sort();
        let cols: Vec<&str> = base_cols
            .iter()
            .copied()
            .chain(extra.iter().map(String::as_str))
            .collect();
        let _ = writeln!(out, "| workload | engine | {} |", cols.join(" | "));
        let _ = writeln!(
            out,
            "|---|---|{}|",
            cols.iter().map(|_| "---:").collect::<Vec<_>>().join("|")
        );
        for ((workload, engine), f) in &snaps {
            let cells: Vec<String> = cols.iter().map(|c| get_u64(f, c).to_string()).collect();
            let _ = writeln!(out, "| {workload} | {engine} | {} |", cells.join(" | "));
        }
        let _ = writeln!(out);
    }

    // --- Histogram sketches.
    for (hist_key, name) in [
        ("buffer_depth_hist", "write-buffer depth at buffered writes"),
        ("frame_depth_hist", "DFS depth at state insertion"),
    ] {
        let mut merged = HistSnapshot::default();
        for f in snaps.values() {
            if let Some(field) = f.get(hist_key) {
                merged.merge(&parse_hist(field));
            }
        }
        if merged.total() > 0 {
            let _ = writeln!(out, "## Histogram: {name}\n");
            let _ = writeln!(out, "```");
            out.push_str(&sketch(&merged));
            let _ = writeln!(out, "```\n");
        }
    }

    // --- Hot pcs.
    let hot: Vec<((String, String), String)> = snaps
        .iter()
        .filter_map(|(k, f)| f.get("hot_pcs").map(|h| (k.clone(), h.clone())))
        .filter(|(_, h)| !h.is_empty())
        .collect();
    if !hot.is_empty() {
        let _ = writeln!(out, "## Hottest pcs (hits ≈ time-in-state)\n");
        for ((workload, engine), field) in &hot {
            let pretty: Vec<String> = field
                .split(';')
                .take(8)
                .map(|entry| entry.replace('=', " × "))
                .collect();
            let _ = writeln!(out, "- `{workload}/{engine}`: {}", pretty.join(", "));
        }
        let _ = writeln!(out);
    }

    // --- Resilience: checkpoint/resume and supervisor activity.
    let res_rows: Vec<(&(String, String), [u64; 4])> = snaps
        .iter()
        .map(|(k, f)| {
            let mut vals = [0u64; 4];
            for (i, col) in RESILIENCE_COLS.iter().enumerate() {
                vals[i] = get_u64(f, col);
            }
            (k, vals)
        })
        .filter(|(_, vals)| vals.iter().any(|&v| v > 0))
        .collect();
    let mut res_events: BTreeMap<String, u64> = BTreeMap::new();
    for e in &events {
        if let Some(kind) = e.fields.get("kind") {
            if matches!(
                kind.as_str(),
                "checkpoint" | "checkpoint_retry" | "checkpoint_failed" | "watchdog_trip"
            ) {
                *res_events.entry(kind.clone()).or_insert(0) += 1;
            }
        }
    }
    if !res_rows.is_empty() || !res_events.is_empty() {
        let _ = writeln!(out, "## Resilience\n");
        if !res_rows.is_empty() {
            let _ = writeln!(
                out,
                "| workload | engine | checkpoints written | checkpoint bytes | forks replayed on resume | watchdog trips |"
            );
            let _ = writeln!(out, "|---|---|---:|---:|---:|---:|");
            for ((workload, engine), vals) in &res_rows {
                let _ = writeln!(
                    out,
                    "| {workload} | {engine} | {} | {} | {} | {} |",
                    vals[0], vals[1], vals[2], vals[3]
                );
            }
            let _ = writeln!(out);
        }
        if !res_events.is_empty() {
            let pretty: Vec<String> = res_events
                .iter()
                .map(|(k, n)| format!("`{k}` × {n}"))
                .collect();
            let _ = writeln!(out, "Resilience events: {}.\n", pretty.join(", "));
        }
    }

    // --- Fleet: multi-process lease supervision activity.
    let fleet_rows: Vec<(&(String, String), [u64; 4])> = snaps
        .iter()
        .map(|(k, f)| {
            let mut vals = [0u64; 4];
            for (i, col) in FLEET_COLS.iter().enumerate() {
                vals[i] = get_u64(f, col);
            }
            (k, vals)
        })
        .filter(|(_, vals)| vals.iter().any(|&v| v > 0))
        .collect();
    let mut fleet_events: BTreeMap<String, u64> = BTreeMap::new();
    for e in &events {
        if let Some(kind) = e.fields.get("kind") {
            if kind.starts_with("fleet_") {
                *fleet_events.entry(kind.clone()).or_insert(0) += 1;
            }
        }
    }
    if !fleet_rows.is_empty() || !fleet_events.is_empty() {
        let _ = writeln!(out, "## Fleet\n");
        if !fleet_rows.is_empty() {
            let _ = writeln!(
                out,
                "| workload | engine | leases issued | leases reassigned | workers lost | poisoned leases |"
            );
            let _ = writeln!(out, "|---|---|---:|---:|---:|---:|");
            for ((workload, engine), vals) in &fleet_rows {
                let _ = writeln!(
                    out,
                    "| {workload} | {engine} | {} | {} | {} | {} |",
                    vals[0], vals[1], vals[2], vals[3]
                );
            }
            let _ = writeln!(out);
        }
        if !fleet_events.is_empty() {
            let pretty: Vec<String> = fleet_events
                .iter()
                .map(|(k, n)| format!("`{k}` × {n}"))
                .collect();
            let _ = writeln!(out, "Fleet events: {}.\n", pretty.join(", "));
        }
    }

    // --- Synthesis: CEGAR fence-insertion activity.
    let synth_rows: Vec<(&(String, String), [u64; 3])> = snaps
        .iter()
        .map(|(k, f)| {
            let mut vals = [0u64; 3];
            for (i, col) in SYNTH_COLS.iter().enumerate() {
                vals[i] = get_u64(f, col);
            }
            (k, vals)
        })
        .filter(|(_, vals)| vals.iter().any(|&v| v > 0))
        .collect();
    if !synth_rows.is_empty() {
        let _ = writeln!(out, "## Synthesis\n");
        let _ = writeln!(
            out,
            "| workload | engine | CEGAR iterations | fences inserted | core sites accumulated |"
        );
        let _ = writeln!(out, "|---|---|---:|---:|---:|");
        for ((workload, engine), vals) in &synth_rows {
            let _ = writeln!(
                out,
                "| {workload} | {engine} | {} | {} | {} |",
                vals[0], vals[1], vals[2]
            );
        }
        let _ = writeln!(out);
    }

    // --- Progress (heartbeat trajectory): latest position, rate, and —
    // when the estimator has samples — projected size and ETA. Estimate
    // keys are consumed here rather than dropped as unknown.
    #[derive(Default)]
    struct BeatAgg {
        n: u64,
        peak_rate: f64,
        elapsed_ms: u64,
        states: u64,
        est_total: Option<u64>,
        eta_ms: Option<u64>,
    }
    let mut beats: BTreeMap<(String, String), BeatAgg> = BTreeMap::new();
    for e in &events {
        if e.fields.get("kind").map(String::as_str) == Some("heartbeat") {
            let rate: f64 = e
                .fields
                .get("states_per_sec")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0);
            let entry = beats
                .entry((e.workload.clone(), e.engine.clone()))
                .or_default();
            entry.n += 1;
            entry.peak_rate = entry.peak_rate.max(rate);
            // Lines arrive in emission order; keep the latest position.
            entry.elapsed_ms = entry
                .elapsed_ms
                .max(get_u64(&e.fields, "elapsed_ms").max(get_u64(&e.fields, "t_ms")));
            entry.states = entry.states.max(get_u64(&e.fields, "states"));
            if let Some(total) = e
                .fields
                .get("est_total_states")
                .and_then(|v| v.parse().ok())
            {
                entry.est_total = Some(total);
            }
            if let Some(eta) = e.fields.get("eta_ms").and_then(|v| v.parse().ok()) {
                entry.eta_ms = Some(eta);
            }
        }
    }
    if !beats.is_empty() {
        let _ = writeln!(out, "## Progress\n");
        let _ = writeln!(
            out,
            "| workload | engine | beats | elapsed s | states | peak states/sec | est. total states | ETA s |"
        );
        let _ = writeln!(out, "|---|---|---:|---:|---:|---:|---:|---:|");
        #[allow(clippy::cast_precision_loss)]
        for ((workload, engine), b) in &beats {
            let est = b
                .est_total
                .map_or_else(|| "-".to_string(), |v| v.to_string());
            let eta = b
                .eta_ms
                .map_or_else(|| "-".to_string(), |v| format!("{:.1}", v as f64 / 1000.0));
            let _ = writeln!(
                out,
                "| {workload} | {engine} | {} | {:.1} | {} | {:.0} | {est} | {eta} |",
                b.n,
                b.elapsed_ms as f64 / 1000.0,
                b.states,
                b.peak_rate,
            );
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_recorder_lines() {
        let line = r#"{"t_ms":12,"kind":"snapshot","engine":"undo","states":345,"rate":1.500,"ok":true,"none":null,"msg":"a\"b"}"#;
        let f = parse_line(line).expect("parses");
        assert_eq!(f["kind"], "snapshot");
        assert_eq!(f["engine"], "undo");
        assert_eq!(f["states"], "345");
        assert_eq!(f["rate"], "1.500");
        assert_eq!(f["ok"], "true");
        assert_eq!(f["none"], "null");
        assert_eq!(f["msg"], "a\"b");
        assert!(parse_line("not json").is_none());
        assert!(parse_line("{\"unterminated\":").is_none());
    }

    #[test]
    fn hist_field_roundtrip() {
        let mut h = HistSnapshot::default();
        h.buckets[0] = 3;
        h.buckets[2] = 17;
        h.buckets[5] = 1;
        let field = crate::metrics::hist_field(&h);
        assert_eq!(field, "3@0,17@2,1@5");
        assert_eq!(parse_hist(&field), h);
        let s = sketch(&h);
        assert!(s.contains("17"), "sketch shows counts: {s}");
    }

    #[test]
    fn report_renders_engine_table() {
        let lines = vec![
            r#"{"t_ms":1,"kind":"snapshot","workload":"peterson2_pso","engine":"undo","states":10,"transitions":20,"fences":4,"rmrs":8,"crashes":0,"sleep_hits":0,"dedup_hits":5,"max_frontier":3}"#.to_string(),
            r#"{"t_ms":2,"kind":"snapshot","workload":"peterson2_pso","engine":"dpor","states":7,"transitions":12,"fences":4,"rmrs":6,"crashes":0,"sleep_hits":3,"dedup_hits":2,"max_frontier":3,"hot_pcs":"p0@7:wait=9;p1@2=5"}"#.to_string(),
            r#"{"t_ms":3,"kind":"heartbeat","workload":"peterson2_pso","engine":"undo","states":5,"states_per_sec":123.000}"#.to_string(),
            "garbage".to_string(),
        ];
        let r = render_report("Test", &lines);
        assert!(r.contains("| peterson2_pso | undo | 10 | 20 |"));
        assert!(r.contains("| peterson2_pso | dpor | 7 | 12 |"));
        assert!(r.contains("Hottest pcs"));
        assert!(r.contains("p0@7:wait × 9"));
        assert!(r.contains("## Progress"), "{r}");
        assert!(
            r.contains("| peterson2_pso | undo | 1 | 0.0 | 5 | 123 | - | - |"),
            "{r}"
        );
    }

    #[test]
    fn stream_lines_separates_a_torn_tail() {
        // A torn final line (no newline, unparseable) is split off…
        let (lines, torn) = stream_lines("{\"kind\":\"a\"}\n{\"kind\":\"b\",\"x\"");
        assert_eq!(lines, vec!["{\"kind\":\"a\"}".to_string()]);
        assert_eq!(torn.as_deref(), Some("{\"kind\":\"b\",\"x\""));
        // …a parseable final line merely missing its newline is kept…
        let (lines, torn) = stream_lines("{\"kind\":\"a\"}\n{\"kind\":\"b\"}");
        assert_eq!(lines.len(), 2);
        assert!(torn.is_none());
        // …and clean or empty streams pass through.
        let (lines, torn) = stream_lines("{\"kind\":\"a\"}\n");
        assert_eq!(lines.len(), 1);
        assert!(torn.is_none());
        assert_eq!(stream_lines(""), (vec![], None));
    }

    #[test]
    fn progress_table_carries_estimates_and_eta() {
        let lines = vec![
            r#"{"t_ms":1000,"kind":"heartbeat","workload":"gt3","engine":"pardpor","elapsed_ms":1000,"states":40,"states_per_sec":40.000}"#.to_string(),
            r#"{"t_ms":2000,"kind":"heartbeat","workload":"gt3","engine":"pardpor","elapsed_ms":2000,"states":100,"states_per_sec":50.000,"est_total_states":400,"est_remaining":300,"eta_ms":6000}"#.to_string(),
        ];
        let r = render_report("Test", &lines);
        assert!(
            r.contains("| gt3 | pardpor | 2 | 2.0 | 100 | 50 | 400 | 6.0 |"),
            "latest estimate wins: {r}"
        );
    }

    #[test]
    fn report_renders_resilience_table() {
        let lines = vec![
            r#"{"t_ms":1,"kind":"snapshot","workload":"gt3_pso","engine":"pardpor","states":9,"checkpoint_written":2,"checkpoint_bytes":4096,"resume_replayed":5,"watchdog_trips":1}"#.to_string(),
            r#"{"t_ms":2,"kind":"checkpoint","workload":"gt3_pso","engine":"pardpor","bytes":2048}"#.to_string(),
            r#"{"t_ms":3,"kind":"watchdog_trip","workload":"gt3_pso","engine":"pardpor","worker":1}"#.to_string(),
            r#"{"t_ms":4,"kind":"snapshot","workload":"quiet","engine":"undo","states":3}"#.to_string(),
        ];
        let r = render_report("Test", &lines);
        assert!(r.contains("## Resilience"), "section present: {r}");
        assert!(
            r.contains("| gt3_pso | pardpor | 2 | 4096 | 5 | 1 |"),
            "counters tabulated: {r}"
        );
        assert!(
            r.contains("`checkpoint` × 1") && r.contains("`watchdog_trip` × 1"),
            "events counted: {r}"
        );
        // Rows with all-zero resilience counters stay out of the table,
        // and the counters do not leak into the comparison extras.
        assert!(!r.contains("| quiet | undo | 0 | 0 | 0 | 0 |"));
        assert!(!r.contains("checkpoint_written |"), "no extra column: {r}");
    }

    #[test]
    fn scan_stream_skips_malformed_midfile_lines_with_a_count() {
        // Corruption in the middle of a stream (a half-line from an
        // interleaved writer, binary garbage) is skipped and counted;
        // everything around it survives, torn tails stay separate.
        let text = "{\"kind\":\"a\"}\n\
                    {\"kind\":\"b\",\"x\"\n\
                    \x00\x01binary garbage\n\
                    \n\
                    {\"kind\":\"c\"}\n\
                    {\"kind\":\"d\",\"y\"";
        let scan = scan_stream(text);
        assert_eq!(
            scan.lines,
            vec![
                "{\"kind\":\"a\"}".to_string(),
                "{\"kind\":\"c\"}".to_string()
            ]
        );
        assert_eq!(scan.lines_skipped, 2, "two malformed mid-file lines");
        assert_eq!(scan.torn_tail.as_deref(), Some("{\"kind\":\"d\",\"y\""));
        // Clean streams scan clean.
        let scan = scan_stream("{\"kind\":\"a\"}\n");
        assert_eq!((scan.lines.len(), scan.lines_skipped), (1, 0));
        assert!(scan.torn_tail.is_none());
        assert_eq!(scan_stream(""), StreamScan::default());
    }

    #[test]
    fn report_renders_fleet_table() {
        let lines = vec![
            r#"{"t_ms":1,"kind":"snapshot","workload":"peterson2_tso","engine":"pardpor","states":9,"leases_issued":6,"leases_reassigned":2,"workers_lost":1,"poisoned_leases":1}"#.to_string(),
            r#"{"t_ms":2,"kind":"fleet_lease_reassigned","workload":"peterson2_tso","engine":"pardpor","lease":1,"faults":1}"#.to_string(),
            r#"{"t_ms":3,"kind":"fleet_endgame","workload":"peterson2_tso","engine":"pardpor","leftover_forks":3}"#.to_string(),
            r#"{"t_ms":4,"kind":"snapshot","workload":"quiet","engine":"undo","states":3}"#.to_string(),
        ];
        let r = render_report("Test", &lines);
        assert!(r.contains("## Fleet"), "section present: {r}");
        assert!(
            r.contains("| peterson2_tso | pardpor | 6 | 2 | 1 | 1 |"),
            "counters tabulated: {r}"
        );
        assert!(
            r.contains("`fleet_lease_reassigned` × 1") && r.contains("`fleet_endgame` × 1"),
            "events counted: {r}"
        );
        // All-zero rows stay out; fleet counters never leak into the
        // comparison extras.
        assert!(!r.contains("| quiet | undo | 0 | 0 | 0 | 0 |"));
        assert!(!r.contains("leases_issued |"), "no extra column: {r}");
    }

    #[test]
    fn report_renders_unknown_counters_as_extra_columns() {
        let lines = vec![
            r#"{"t_ms":1,"kind":"snapshot","workload":"filter3_pso","engine":"dpor","states":50,"transitions":90,"fences":4,"rmrs":8,"crashes":0,"sleep_hits":9,"dedup_hits":5,"max_frontier":3}"#.to_string(),
            r#"{"t_ms":2,"kind":"snapshot","workload":"filter3_pso","engine":"pardpor","states":50,"transitions":95,"fences":4,"rmrs":8,"crashes":0,"sleep_hits":9,"dedup_hits":5,"max_frontier":3,"fork_published":6,"fork_stolen":7,"fp_contention":2,"p0_fences":1,"span_explore_ns":900,"buffer_depth_hist":"3@0"}"#.to_string(),
        ];
        let r = render_report("Test", &lines);
        // The steal/contention counters appear as (sorted) trailing
        // columns rather than being silently dropped…
        assert!(
            r.contains("| fork_published | fork_stolen | fp_contention |"),
            "new counters become columns: {r}"
        );
        assert!(
            r.contains("| filter3_pso | pardpor | 50 | 95 | 4 | 8 | 0 | 9 | 5 | 3 | 6 | 7 | 2 |")
        );
        // …rows without them render zeros…
        assert!(r.contains("| filter3_pso | dpor | 50 | 90 | 4 | 8 | 0 | 9 | 5 | 3 | 0 | 0 | 0 |"));
        // …and structural / per-proc / span keys stay out of the table.
        assert!(!r.contains("| p0_fences"), "per-proc keys excluded: {r}");
        assert!(!r.contains("span_explore_ns |"), "span keys excluded: {r}");
    }
}
