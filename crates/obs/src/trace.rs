//! Causal trace spans: who ran what, when, and *because of whom*.
//!
//! The aggregate metrics in [`crate::metrics`] say how much work a run
//! did; this module says where the wall-clock went and how the work
//! propagated — which worker stole which fork, which checkpoint a
//! resumed run continued from, which CEGAR iteration burned the budget.
//! A **span** is one flat JSONL event (`kind:"span"`) with:
//!
//! - `id`: process-unique, strictly monotonically allocated (so a parent
//!   is always allocated before any child — `parent < id` is the forest
//!   invariant the validator and the proptest suite check);
//! - `parent`: the causal predecessor's span id (`0` = root). Steal
//!   edges cross threads: a stolen task's parent is the `publish` span
//!   the donor emitted when it shed the fork;
//! - `ts_us`/`dur_us`: monotonic microseconds since recorder start
//!   (instants have `dur_us:0`);
//! - `name` plus free-form fields (engine label, run ids, verdicts, …).
//!
//! Span taxonomy (see DESIGN.md §6a): `engine` (one `check` dispatch),
//! `model_check` (one model of a multi-model sweep), `task` (one DFS
//! task on a work-stealing worker), `publish` (a fork donated to the
//! queue), `seq_gate`/`seq_rerun` (sequential paths inside the parallel
//! engine), `checkpoint`, `resume` (carries `prev_run` linking to the
//! interrupted run), `watchdog` (a trip instant), `synth` and
//! `cegar_iter` (the synthesis loop).
//!
//! Writing goes through a [`TraceCtx`]: a per-worker *bounded* buffer of
//! rendered lines, flushed to the recorder's shared JSONL sink when full
//! and on drop. Workers therefore never contend on the sink inside the
//! hot loop, memory stays bounded, and a sink-less recorder just counts
//! the spans it dropped. Tracing is off by default ([`RecorderBuilder`]
//! `.trace(true)` or `FT_OBS_TRACE=1` turns it on); every `TraceCtx`
//! operation on a non-tracing recorder is a branch and a return, which
//! is what keeps the tracing-disabled path bit-identical and inside the
//! `obs_overhead` budget.
//!
//! Reading back: [`parse_spans`] on a (possibly torn) JSONL stream,
//! [`validate_spans`] for the forest invariants, [`chrome_trace`] for a
//! Perfetto-loadable Chrome trace-event JSON, [`phase_table`] for a
//! per-phase wall-time attribution table. The `obs_trace` bin in
//! `crates/bench` drives all four.
//!
//! [`RecorderBuilder`]: crate::recorder::RecorderBuilder

use std::collections::{BTreeMap, BTreeSet};

use crate::events::J;
use crate::recorder::Recorder;
use crate::report::{parse_line, stream_lines};

/// Default [`TraceCtx`] buffer capacity (rendered lines held before a
/// flush to the sink).
pub const DEFAULT_TRACE_BUF: usize = 256;

/// A span identifier. `0` ([`SpanId::NONE`]) means "no span" — the
/// parent of a root span, or any id minted while tracing is off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span (parent of roots; disabled-tracing ids).
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is [`SpanId::NONE`].
    #[must_use]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// An in-flight span returned by [`TraceCtx::begin`]; pass it back to
/// [`TraceCtx::end`] to emit the completed span line. `Copy`, so it can
/// cross `catch_unwind` and loop boundaries freely; dropping one without
/// `end` simply emits nothing.
#[derive(Clone, Copy, Debug)]
pub struct OpenSpan {
    /// The allocated id ([`SpanId::NONE`] when tracing is off).
    pub id: SpanId,
    t0_us: u64,
}

/// A per-worker trace writer: bounded buffer of rendered span lines,
/// flushed through the owning recorder's JSONL sink when full and on
/// drop. Obtain one from `Recorder::trace_ctx`.
#[derive(Debug)]
pub struct TraceCtx {
    rec: Recorder,
    buf: Vec<String>,
    cap: usize,
}

impl TraceCtx {
    pub(crate) fn new(rec: Recorder, cap: usize) -> TraceCtx {
        TraceCtx {
            rec,
            buf: Vec::new(),
            cap: cap.max(1),
        }
    }

    /// Whether spans written here go anywhere. Callers can skip building
    /// field values when this is false.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.rec.trace_enabled()
    }

    /// Open a span: allocates the id and timestamps the start. Emits
    /// nothing until [`end`](Self::end).
    #[must_use]
    pub fn begin(&mut self) -> OpenSpan {
        if !self.enabled() {
            return OpenSpan {
                id: SpanId::NONE,
                t0_us: 0,
            };
        }
        OpenSpan {
            id: self.rec.alloc_span_id(),
            t0_us: self.rec.now_us(),
        }
    }

    /// Close `span`, emitting its line with `name`, causal `parent`, and
    /// extra `fields`. A span begun while tracing was off is a no-op.
    pub fn end(&mut self, span: OpenSpan, name: &str, parent: SpanId, fields: &[(&str, J)]) {
        if span.id.is_none() {
            return;
        }
        let dur = self.rec.now_us().saturating_sub(span.t0_us);
        self.push_line(name, span.id, parent, span.t0_us, dur, fields);
    }

    /// Emit a zero-duration instant span and return its id (for use as a
    /// causal parent — e.g. the `publish` instant a stolen task points
    /// back at).
    pub fn instant(&mut self, name: &str, parent: SpanId, fields: &[(&str, J)]) -> SpanId {
        if !self.enabled() {
            return SpanId::NONE;
        }
        let id = self.rec.alloc_span_id();
        let ts = self.rec.now_us();
        self.push_line(name, id, parent, ts, 0, fields);
        id
    }

    fn push_line(
        &mut self,
        name: &str,
        id: SpanId,
        parent: SpanId,
        ts_us: u64,
        dur_us: u64,
        fields: &[(&str, J)],
    ) {
        let name_v = J::s(name);
        let id_v = J::U(id.0);
        let parent_v = J::U(parent.0);
        let ts_v = J::U(ts_us);
        let dur_v = J::U(dur_us);
        let mut all: Vec<(&str, J)> = Vec::with_capacity(5 + fields.len());
        all.push(("name", name_v));
        all.push(("id", id_v));
        all.push(("parent", parent_v));
        all.push(("ts_us", ts_v));
        all.push(("dur_us", dur_v));
        all.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
        if let Some(line) = self.rec.render_trace(&all) {
            self.buf.push(line);
            if self.buf.len() >= self.cap {
                self.flush();
            }
        }
    }

    /// Flush buffered lines to the sink now (drop does this too).
    pub fn flush(&mut self) {
        self.rec.trace_flush(&mut self.buf);
    }
}

impl Drop for TraceCtx {
    fn drop(&mut self) {
        self.flush();
    }
}

/// One parsed span line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanRow {
    /// Span name (taxonomy in the module docs).
    pub name: String,
    /// Unique span id.
    pub id: u64,
    /// Causal parent id (`0` = root).
    pub parent: u64,
    /// Start, microseconds since recorder start.
    pub ts_us: u64,
    /// Duration in microseconds (`0` for instants).
    pub dur_us: u64,
    /// Worker index for `task` spans, when present.
    pub worker: Option<u64>,
    /// All remaining fields (meta + span extras), verbatim.
    pub fields: BTreeMap<String, String>,
}

/// Parse every `kind:"span"` line out of a JSONL stream, tolerating a
/// torn (kill -9) final line exactly like the metrics report does.
#[must_use]
pub fn parse_spans(text: &str) -> Vec<SpanRow> {
    let (lines, _torn) = stream_lines(text);
    lines
        .iter()
        .filter_map(|l| parse_line(l))
        .filter(|f| f.get("kind").map(String::as_str) == Some("span"))
        .filter_map(span_from_fields)
        .collect()
}

fn span_from_fields(mut f: BTreeMap<String, String>) -> Option<SpanRow> {
    let name = f.remove("name")?;
    let id = f.remove("id")?.parse().ok()?;
    let parent = f.remove("parent")?.parse().ok()?;
    let ts_us = f.remove("ts_us")?.parse().ok()?;
    let dur_us = f.remove("dur_us")?.parse().ok()?;
    let worker = f.get("worker").and_then(|w| w.parse().ok());
    f.remove("kind");
    f.remove("t_ms");
    Some(SpanRow {
        name,
        id,
        parent,
        ts_us,
        dur_us,
        worker,
        fields: f,
    })
}

/// Check the forest invariants over a set of spans: ids are unique and
/// nonzero, every parent edge points at a *strictly earlier* id (which
/// rules out cycles by construction), and every steal edge — the parent
/// of a `task` span — resolves to a span present in the set.
pub fn validate_spans(rows: &[SpanRow]) -> Result<(), String> {
    let mut ids = BTreeSet::new();
    for r in rows {
        if r.id == 0 {
            return Err(format!("span named {:?} uses reserved id 0", r.name));
        }
        if !ids.insert(r.id) {
            return Err(format!("duplicate span id {}", r.id));
        }
    }
    for r in rows {
        if r.parent != 0 {
            if r.parent >= r.id {
                return Err(format!(
                    "span {} ({:?}) has parent {} >= its own id: parent edges must point at \
                     earlier spans",
                    r.id, r.name, r.parent
                ));
            }
            if r.name == "task" && !ids.contains(&r.parent) {
                return Err(format!(
                    "task span {} has an orphan steal edge to unknown span {}",
                    r.id, r.parent
                ));
            }
        }
    }
    Ok(())
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Render spans as Chrome trace-event JSON (the `traceEvents` format
/// Perfetto and `chrome://tracing` load). Complete (`ph:"X"`) events for
/// durations, thread-scoped instants (`ph:"i"`) for `dur_us == 0`; the
/// `tid` lane is the `worker` field when present so each worker's tasks
/// stack in their own track, and `id`/`parent` plus all extra fields
/// land in `args`.
#[must_use]
pub fn chrome_trace(rows: &[SpanRow]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(&r.name, &mut out);
        out.push_str("\",\"cat\":\"ft\",\"ph\":\"");
        if r.dur_us == 0 {
            out.push_str("i\",\"s\":\"t");
        } else {
            out.push('X');
        }
        out.push_str("\",\"ts\":");
        out.push_str(&r.ts_us.to_string());
        if r.dur_us > 0 {
            out.push_str(",\"dur\":");
            out.push_str(&r.dur_us.to_string());
        }
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&r.worker.map_or(0, |w| w + 1).to_string());
        out.push_str(",\"args\":{\"id\":\"");
        out.push_str(&r.id.to_string());
        out.push_str("\",\"parent\":\"");
        out.push_str(&r.parent.to_string());
        out.push('"');
        for (k, v) in &r.fields {
            out.push_str(",\"");
            escape_json(k, &mut out);
            out.push_str("\":\"");
            escape_json(v, &mut out);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// A per-phase wall-time attribution table (markdown). Phases are span
/// names; the `% of wall` column is relative to the stream's overall
/// span extent, so concurrent phases (parallel `task` spans) can sum
/// past 100% — that excess *is* the parallelism.
#[must_use]
pub fn phase_table(rows: &[SpanRow]) -> String {
    let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    for r in rows {
        let e = agg.entry(r.name.as_str()).or_insert((0, 0));
        e.0 += 1;
        e.1 += r.dur_us;
        t_min = t_min.min(r.ts_us);
        t_max = t_max.max(r.ts_us + r.dur_us);
    }
    let wall_us = t_max.saturating_sub(t_min).max(1);
    let mut phases: Vec<(&str, u64, u64)> = agg.into_iter().map(|(k, (n, d))| (k, n, d)).collect();
    phases.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
    let mut out = String::new();
    out.push_str("| phase | spans | total ms | % of wall |\n");
    out.push_str("|---|---:|---:|---:|\n");
    #[allow(clippy::cast_precision_loss)]
    for (name, n, dur_us) in phases {
        let ms = dur_us as f64 / 1000.0;
        let pct = dur_us as f64 * 100.0 / wall_us as f64;
        out.push_str(&format!("| {name} | {n} | {ms:.1} | {pct:.1}% |\n"));
    }
    #[allow(clippy::cast_precision_loss)]
    {
        out.push_str(&format!(
            "\nwall extent: {:.1} ms across {} spans\n",
            wall_us as f64 / 1000.0,
            rows.len()
        ));
    }
    out
}

/// Render one parsed JSONL event as a human `--follow` line: heartbeats
/// (with ETA when the estimator has one), watchdog trips, and final
/// snapshots. Returns `None` for events a live tail should not print.
#[must_use]
pub fn follow_line(fields: &BTreeMap<String, String>) -> Option<String> {
    let get = |k: &str| fields.get(k).map(String::as_str);
    match get("kind")? {
        "heartbeat" => {
            let elapsed = get("elapsed_ms")
                .or(get("t_ms"))
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(0.0)
                / 1000.0;
            let mut line = format!(
                "[{elapsed:7.1}s] states={} ({}/s) transitions={} frontier={}",
                get("states").unwrap_or("?"),
                get("states_per_sec")
                    .and_then(|v| v.parse::<f64>().ok())
                    .map_or_else(|| "?".to_string(), |v| format!("{v:.0}")),
                get("transitions").unwrap_or("?"),
                get("frontier").unwrap_or("?"),
            );
            if let Some(total) = get("est_total_states") {
                line.push_str(&format!(
                    " est_total={total} remaining={}",
                    get("est_remaining").unwrap_or("?")
                ));
            }
            if let Some(eta) = get("eta_ms").and_then(|v| v.parse::<f64>().ok()) {
                line.push_str(&format!(" eta={:.1}s", eta / 1000.0));
            }
            if let Some(pct) = get("budget_used_pct").and_then(|v| v.parse::<f64>().ok()) {
                line.push_str(&format!(" budget={pct:.0}%"));
            }
            Some(line)
        }
        "watchdog_trip" => Some(format!(
            "[watchdog] stalled — frontier={} (sequential fallback)",
            get("frontier").unwrap_or("?")
        )),
        "snapshot" => Some(format!(
            "[done] engine={} verdict={} states={} elapsed={}ms",
            get("engine").unwrap_or("?"),
            get("verdict").unwrap_or("?"),
            get("states").unwrap_or("?"),
            get("elapsed_ms").unwrap_or("?"),
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metric;
    use crate::recorder::Recorder;

    fn traced_recorder() -> Recorder {
        Recorder::builder()
            .trace(true)
            .heartbeat_ms(0)
            .quiet(true)
            .build()
    }

    #[test]
    fn disabled_tracing_emits_nothing_and_allocates_no_ids() {
        let r = Recorder::builder().heartbeat_ms(0).quiet(true).build();
        let mut t = r.trace_ctx();
        assert!(!t.enabled());
        let s = t.begin();
        assert!(s.id.is_none());
        t.end(s, "engine", SpanId::NONE, &[]);
        assert_eq!(t.instant("publish", SpanId::NONE, &[]), SpanId::NONE);
        t.flush();
        assert_eq!(r.snapshot().get(Metric::TraceSpans), 0);
        assert_eq!(r.snapshot().get(Metric::TraceDropped), 0);
    }

    #[test]
    fn sinkless_tracing_counts_drops() {
        let r = traced_recorder();
        let mut t = r.trace_ctx();
        let s = t.begin();
        assert!(!s.id.is_none());
        t.end(s, "engine", SpanId::NONE, &[("verdict", J::s("ok"))]);
        t.flush();
        assert_eq!(r.snapshot().get(Metric::TraceDropped), 1);
        assert_eq!(r.snapshot().get(Metric::TraceSpans), 0);
    }

    #[test]
    fn span_ids_are_monotonic_and_parents_precede_children() {
        let r = traced_recorder();
        let mut t = r.trace_ctx();
        let a = t.begin();
        let b = t.begin();
        assert!(a.id < b.id, "{:?} < {:?}", a.id, b.id);
        let i = t.instant("publish", a.id, &[]);
        assert!(b.id < i);
    }

    #[test]
    fn parse_validate_roundtrip() {
        let text = concat!(
            "{\"t_ms\":0,\"kind\":\"span\",\"engine\":\"pardpor\",\"name\":\"engine\",",
            "\"id\":1,\"parent\":0,\"ts_us\":10,\"dur_us\":500,\"run\":\"42\"}\n",
            "{\"t_ms\":0,\"kind\":\"span\",\"name\":\"publish\",\"id\":2,\"parent\":1,",
            "\"ts_us\":20,\"dur_us\":0}\n",
            "{\"t_ms\":0,\"kind\":\"heartbeat\",\"states\":5}\n",
            "{\"t_ms\":1,\"kind\":\"span\",\"name\":\"task\",\"id\":3,\"parent\":2,",
            "\"ts_us\":30,\"dur_us\":100,\"worker\":1}\n",
            "{\"t_ms\":1,\"kind\":\"span\",\"name\":\"task\",\"id\":4,\"par", // torn tail
        );
        let rows = parse_spans(text);
        assert_eq!(rows.len(), 3, "heartbeat skipped, torn tail dropped");
        assert_eq!(rows[0].name, "engine");
        assert_eq!(rows[0].fields.get("run").map(String::as_str), Some("42"));
        assert_eq!(rows[2].worker, Some(1));
        validate_spans(&rows).expect("valid forest");
    }

    #[test]
    fn validate_rejects_cycles_duplicates_and_orphans() {
        let mk = |name: &str, id: u64, parent: u64| SpanRow {
            name: name.to_string(),
            id,
            parent,
            ..SpanRow::default()
        };
        let dup = vec![mk("engine", 1, 0), mk("task", 1, 0)];
        assert!(validate_spans(&dup).unwrap_err().contains("duplicate"));
        let cycle = vec![mk("engine", 2, 2)];
        assert!(validate_spans(&cycle).unwrap_err().contains(">="));
        let orphan = vec![mk("engine", 5, 0), mk("task", 6, 3)];
        assert!(validate_spans(&orphan).unwrap_err().contains("orphan"));
        let ok = vec![mk("engine", 1, 0), mk("publish", 2, 1), mk("task", 3, 2)];
        validate_spans(&ok).expect("forest");
    }

    #[test]
    fn chrome_trace_is_wellformed_and_carries_edges() {
        let rows = parse_spans(concat!(
            "{\"t_ms\":0,\"kind\":\"span\",\"name\":\"engine\",\"id\":1,\"parent\":0,",
            "\"ts_us\":0,\"dur_us\":900}\n",
            "{\"t_ms\":0,\"kind\":\"span\",\"name\":\"task\",\"id\":2,\"parent\":1,",
            "\"ts_us\":50,\"dur_us\":0,\"worker\":0}\n",
        ));
        let json = chrome_trace(&rows);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"parent\":\"1\""));
        // The parser in report.rs handles flat objects only, so spot-check
        // balance instead: every brace opened is closed.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn phase_table_attributes_time() {
        let rows = parse_spans(concat!(
            "{\"t_ms\":0,\"kind\":\"span\",\"name\":\"engine\",\"id\":1,\"parent\":0,",
            "\"ts_us\":0,\"dur_us\":1000}\n",
            "{\"t_ms\":0,\"kind\":\"span\",\"name\":\"task\",\"id\":2,\"parent\":1,",
            "\"ts_us\":100,\"dur_us\":400,\"worker\":0}\n",
            "{\"t_ms\":0,\"kind\":\"span\",\"name\":\"task\",\"id\":3,\"parent\":1,",
            "\"ts_us\":100,\"dur_us\":600,\"worker\":1}\n",
        ));
        let table = phase_table(&rows);
        assert!(table.contains("| engine | 1 | 1.0 | 100.0% |"), "{table}");
        assert!(table.contains("| task | 2 | 1.0 | 100.0% |"), "{table}");
    }

    #[test]
    fn follow_lines_render_heartbeats_and_ignore_spans() {
        let hb = parse_line(concat!(
            "{\"t_ms\":2500,\"kind\":\"heartbeat\",\"elapsed_ms\":2500,\"states\":10,",
            "\"transitions\":20,\"frontier\":3,\"states_per_sec\":4.000,",
            "\"est_total_states\":40,\"est_remaining\":30,\"eta_ms\":7500}"
        ))
        .expect("parses");
        let line = follow_line(&hb).expect("heartbeat renders");
        assert!(line.contains("states=10"));
        assert!(line.contains("est_total=40"));
        assert!(line.contains("eta=7.5s"), "{line}");
        let span = parse_line("{\"t_ms\":0,\"kind\":\"span\",\"name\":\"x\",\"id\":1}").unwrap();
        assert!(follow_line(&span).is_none());
    }
}
