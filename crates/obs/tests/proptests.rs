//! Property-based tests for the metrics algebra: snapshot merging must be
//! associative and commutative with [`MetricsSnapshot::default`] as the
//! identity (counters, per-process steps, histograms, and span times add;
//! gauges max), and folding a recorder's per-shard snapshots must equal
//! its single merged snapshot bit-for-bit. These are the laws that make
//! the sharded, multi-threaded recorder's totals trustworthy.

use ftobs::{
    Gauge, Metric, MetricsSnapshot, Phase, ProcSteps, Recorder, StepClass, HIST_BUCKETS, MAX_PROCS,
};
use proptest::prelude::*;

/// Flat slot count of one snapshot (counters + per-proc triples + two
/// histograms + gauges + span ns/counts).
const SLOTS: usize =
    Metric::COUNT + MAX_PROCS * 3 + 2 * HIST_BUCKETS + Gauge::COUNT + 2 * Phase::COUNT;

fn snapshot_from_slots(slots: &[u64]) -> MetricsSnapshot {
    assert_eq!(slots.len(), SLOTS);
    let mut it = slots.iter().copied();
    let mut s = MetricsSnapshot::default();
    for c in &mut s.counters {
        *c = it.next().unwrap();
    }
    for p in &mut s.per_proc {
        *p = ProcSteps {
            fences: it.next().unwrap(),
            rmrs: it.next().unwrap(),
            crashes: it.next().unwrap(),
        };
    }
    for b in &mut s.buffer_depth.buckets {
        *b = it.next().unwrap();
    }
    for b in &mut s.frame_depth.buckets {
        *b = it.next().unwrap();
    }
    for g in &mut s.gauges {
        *g = it.next().unwrap();
    }
    for n in &mut s.span_ns {
        *n = it.next().unwrap();
    }
    for n in &mut s.span_count {
        *n = it.next().unwrap();
    }
    s
}

fn arb_snapshot() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..10_000, SLOTS..SLOTS + 1)
}

/// Every observable slot of the snapshot, flattened, so equality here is
/// *bit* equality, not the deterministic-projection `PartialEq`.
fn all_slots(s: &MetricsSnapshot) -> Vec<u64> {
    let mut out = Vec::with_capacity(SLOTS);
    out.extend_from_slice(&s.counters);
    for p in &s.per_proc {
        out.extend_from_slice(&[p.fences, p.rmrs, p.crashes]);
    }
    out.extend_from_slice(&s.buffer_depth.buckets);
    out.extend_from_slice(&s.frame_depth.buckets);
    out.extend_from_slice(&s.gauges);
    out.extend_from_slice(&s.span_ns);
    out.extend_from_slice(&s.span_count);
    out
}

proptest! {
    #[test]
    fn merge_is_commutative(a in arb_snapshot(), b in arb_snapshot()) {
        let (a, b) = (snapshot_from_slots(&a), snapshot_from_slots(&b));
        prop_assert_eq!(all_slots(&a.merged(&b)), all_slots(&b.merged(&a)));
    }

    #[test]
    fn merge_is_associative(
        a in arb_snapshot(),
        b in arb_snapshot(),
        c in arb_snapshot(),
    ) {
        let (a, b, c) = (
            snapshot_from_slots(&a),
            snapshot_from_slots(&b),
            snapshot_from_slots(&c),
        );
        let left = a.merged(&b).merged(&c);
        let right = a.merged(&b.merged(&c));
        prop_assert_eq!(all_slots(&left), all_slots(&right));
    }

    #[test]
    fn default_is_the_merge_identity(a in arb_snapshot()) {
        let a = snapshot_from_slots(&a);
        let id = MetricsSnapshot::default();
        prop_assert_eq!(all_slots(&a.merged(&id)), all_slots(&a));
        prop_assert_eq!(all_slots(&id.merged(&a)), all_slots(&a));
    }

    /// Replaying the same step sequence through N concurrent threads and
    /// through one thread yields identical counter totals, and folding the
    /// recorder's per-shard snapshots reproduces `snapshot()` exactly.
    #[test]
    fn shard_fold_equals_snapshot(ops in prop::collection::vec((0usize..4, 0u64..6, 0u32..16), 1..200)) {
        let classify = |tag: u64, depth: u64| match tag {
            0 => StepClass::Read { buffered: depth % 2 == 0, remote: depth % 3 == 0 },
            1 => StepClass::Write { buffer_depth: depth },
            2 => StepClass::Commit { remote: depth % 2 == 1 },
            3 => StepClass::Fence,
            4 => StepClass::Cas { remote: depth % 2 == 0 },
            _ => StepClass::Crash,
        };

        let record_all = |rec: &Recorder, chunk: &[(usize, u64, u32)]| {
            for &(p, tag, pc) in chunk {
                rec.record_step(p, classify(tag, u64::from(pc)), Some(pc));
                rec.on_transition();
                rec.on_state(u64::from(pc));
            }
        };

        // Single-threaded reference.
        let seq = Recorder::builder().quiet(true).build();
        record_all(&seq, &ops);

        // The same ops split across threads (each thread lands on its own
        // shard via the round-robin thread-local).
        let par = Recorder::builder().quiet(true).build();
        std::thread::scope(|scope| {
            for chunk in ops.chunks(ops.len().div_ceil(3)) {
                let par = par.clone();
                scope.spawn(move || record_all(&par, chunk));
            }
        });

        let (s, p) = (seq.snapshot(), par.snapshot());
        prop_assert_eq!(s.counters, p.counters);
        prop_assert_eq!(s.per_proc, p.per_proc);
        prop_assert_eq!(s.buffer_depth.buckets, p.buffer_depth.buckets);
        prop_assert_eq!(s.frame_depth.buckets, p.frame_depth.buckets);
        prop_assert_eq!(s.gauges, p.gauges);

        // Folding the parallel recorder's shards reproduces its own
        // merged snapshot (gauges live recorder-global, outside shards).
        let mut fold = MetricsSnapshot::default();
        for shard in par.shard_snapshots() {
            fold.merge(&shard);
        }
        prop_assert_eq!(fold.counters, p.counters);
        prop_assert_eq!(fold.per_proc, p.per_proc);
        prop_assert_eq!(fold.buffer_depth.buckets, p.buffer_depth.buckets);
        prop_assert_eq!(fold.frame_depth.buckets, p.frame_depth.buckets);
    }

    /// The equality projection ignores exactly the traversal-dependent
    /// slots: two snapshots that differ only in RMRs, post-deterministic
    /// counters, frame depths, gauges, and spans still compare equal.
    #[test]
    fn equality_ignores_nondeterministic_slots(a in arb_snapshot(), noise in 1u64..999) {
        let a = snapshot_from_slots(&a);
        let mut b = a;
        b.counters[Metric::Rmrs as usize] += noise;
        for i in Metric::DETERMINISTIC_END..Metric::COUNT {
            b.counters[i] += noise;
        }
        for p in &mut b.per_proc {
            p.rmrs += noise;
        }
        for bucket in &mut b.frame_depth.buckets {
            *bucket += noise;
        }
        for g in &mut b.gauges {
            *g += noise;
        }
        for n in &mut b.span_ns {
            *n += noise;
        }
        prop_assert_eq!(a, b);

        // ...but not in the deterministic ones.
        let mut c = a;
        c.counters[Metric::States as usize] += noise;
        prop_assert!(a != c);
        let mut d = a;
        d.per_proc[0].fences += noise;
        prop_assert!(a != d);
        let mut e = a;
        e.buffer_depth.buckets[0] += noise;
        prop_assert!(a != e);
    }
}
