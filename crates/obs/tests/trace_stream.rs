//! Trace-stream durability: spans ride the same crash-safe JSONL sink as
//! the metric events, so the two crash signatures that sink is designed
//! around must hold for spans too — a live (never-renamed) `.partial`
//! stream is readable, and a `kill -9` mid-write leaves at most one torn
//! trailing line, which the span parser skips without dropping any
//! complete span.

use std::sync::Arc;

use ftobs::report::stream_lines;
use ftobs::{parse_spans, validate_spans, JsonlSink, Recorder, SpanId, J};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ft_trace_stream_{}_{name}", std::process::id()))
}

/// Emit a small two-span forest through the real recorder/sink path and
/// return the raw bytes of the live `.partial` stream (the sink is still
/// open — exactly the state a crashed run leaves behind).
fn live_stream_bytes(path: &std::path::Path) -> String {
    let sink = Arc::new(JsonlSink::create(path).expect("create sink"));
    let rec = Recorder::builder()
        .quiet(true)
        .trace(true)
        .sink(sink.clone())
        .build();
    let mut tctx = rec.trace_ctx();
    let engine = tctx.begin();
    let engine_id = engine.id;
    let task = tctx.begin();
    tctx.end(task, "task", SpanId(engine_id.0), &[("worker", J::U(0))]);
    tctx.end(engine, "engine", SpanId::NONE, &[("verdict", J::s("ok"))]);
    // Written last, so it is the line a mid-write kill tears: losing it
    // never orphans a steal edge.
    tctx.instant("watchdog", SpanId(engine_id.0), &[("frontier", J::U(1))]);
    tctx.flush();
    sink.flush();
    let mut partial = path.to_path_buf().into_os_string();
    partial.push(".partial");
    std::fs::read_to_string(std::path::PathBuf::from(partial)).expect("live .partial stream")
}

#[test]
fn partial_stream_parses_and_validates() {
    let path = tmp("live.jsonl");
    let text = live_stream_bytes(&path);
    let spans = parse_spans(&text);
    assert_eq!(spans.len(), 3, "all spans visible in the live stream");
    validate_spans(&spans).expect("live stream is a valid forest");
    assert!(
        spans.iter().any(|s| s.name == "task" && s.parent != 0),
        "steal edge survives in the crash artifact"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_trailing_line_is_skipped_not_fatal() {
    let path = tmp("torn.jsonl");
    let text = live_stream_bytes(&path);
    let full = parse_spans(&text).len();
    assert_eq!(full, 3);

    // kill -9 mid-write: the final line is cut short and unterminated.
    let torn_at = text.trim_end().len() - 9;
    let torn_text = &text[..torn_at];
    let (complete, torn) = stream_lines(torn_text);
    assert!(torn.is_some(), "the cut line must be detected as torn");
    assert_eq!(
        complete.len(),
        text.trim_end().lines().count() - 1,
        "only the torn line is dropped"
    );

    let spans = parse_spans(torn_text);
    assert_eq!(spans.len(), full - 1, "every complete span survives");
    validate_spans(&spans).expect("torn stream still validates");
    let _ = std::fs::remove_file(&path);
}
