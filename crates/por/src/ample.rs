//! Ample (persistent) process sets.
//!
//! At a state where some process `p`'s next steps provably cannot interact
//! with anything any *other* process will ever do, every interleaving is
//! equivalent to one that lets `p` move first — so it suffices to explore
//! only `p`'s choices. This is the classical ample-set construction,
//! instantiated for the write-buffer machine:
//!
//! * **C0/C1 (persistence)** — every choice of `p` must be independent of
//!   every other unfinished process's *entire future*. The future is
//!   over-approximated by the process's static [`FutureAccess`] summary
//!   (from its current pc, folding in the recovery section when it can
//!   still crash) plus the registers currently in its write buffer (future
//!   commits, and the target of a buffer-draining crash). A process's own
//!   choice set depends only on its local state, so other processes can
//!   never enable or disable a choice of `p`; independence of effects is
//!   all that must be checked.
//! * **C2 (invisibility)** — the checked properties observe annotations
//!   and return values only. A choice of `p` is invisible iff it is not a
//!   crash, not a return, and — for the operation choice — advancing
//!   cannot execute an `Annot` ([`wbmem::Process::op_may_annotate`]).
//!   Commits never touch either.
//! * **C3 (cycle proviso)** — enforced by the *caller*: if an ample step
//!   closes a cycle (lands on a state still on the DFS stack), the state
//!   is upgraded to full expansion. [`select`] only proposes candidates.

use wbmem::{AccessSet, FootprintKind, Machine, ProcId, Process, RegId, SchedElem};

/// Whether register `r` may ever be read (resp. written) again by process
/// `q`, per its static summary plus its currently buffered writes.
struct Future<'a> {
    reads: AccessSet<'a>,
    writes: AccessSet<'a>,
    buffered: Vec<RegId>,
}

impl Future<'_> {
    fn may_read(&self, r: RegId) -> bool {
        self.reads.may_contain(r)
    }

    fn may_write(&self, r: RegId) -> bool {
        self.writes.may_contain(r) || self.buffered.contains(&r)
    }
}

/// Pick a process whose choices form an ample set at the machine's current
/// state, or `None` if every candidate fails (the caller then expands
/// fully). Candidates are tried in process-id order, so selection is
/// deterministic. Returns `None` when only one process still has choices —
/// reduction would be vacuous.
#[must_use]
pub fn select<P: Process>(m: &Machine<P>, choices: &[SchedElem]) -> Option<ProcId> {
    let mut active: Vec<ProcId> = Vec::new();
    for e in choices {
        if active.last() != Some(&e.proc) {
            active.push(e.proc);
        }
    }
    active.sort_unstable_by_key(|p| p.0);
    active.dedup();
    if active.len() < 2 {
        return None;
    }

    'candidates: for &p in &active {
        // Gather the other unfinished processes' futures once per candidate.
        let mut futures: Vec<Future<'_>> = Vec::new();
        for &q in &active {
            if q == p {
                continue;
            }
            let can_crash = choices.iter().any(|e| e.proc == q && e.crash);
            let fa = m.process(q).future_access(can_crash);
            futures.push(Future {
                reads: fa.reads,
                writes: fa.writes,
                buffered: m.buffer(q).regs(),
            });
        }

        for &e in choices.iter().filter(|e| e.proc == p) {
            if e.crash {
                continue 'candidates; // crashes are visible (annotation reset)
            }
            if e.reg.is_none() && m.process(p).op_may_annotate() {
                continue 'candidates; // advancing may change the annotation
            }
            let fp = m.choice_footprint(e);
            let ok = match fp.kind {
                FootprintKind::Local => true,
                FootprintKind::Return | FootprintKind::Crash { .. } => false, // visible
                FootprintKind::Read(r) => futures.iter().all(|f| !f.may_write(r)),
                FootprintKind::Write(r) | FootprintKind::Commit(r) => {
                    futures.iter().all(|f| !f.may_write(r) && !f.may_read(r))
                }
            };
            if !ok {
                continue 'candidates;
            }
        }
        return Some(p);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fencevm::{Asm, VmProc};
    use wbmem::{MachineConfig, MemoryLayout, MemoryModel, Value};

    fn machine(procs: Vec<VmProc>) -> Machine<VmProc> {
        let cfg = MachineConfig::new(MemoryModel::Pso, MemoryLayout::unowned());
        Machine::new(cfg, procs)
    }

    fn writer(name: &str, reg: i64) -> VmProc {
        let mut a = Asm::new(name);
        a.write(reg, 1i64);
        a.fence();
        a.ret(0i64);
        VmProc::new(a.assemble().into())
    }

    fn reader(name: &str, reg: i64) -> VmProc {
        let mut a = Asm::new(name);
        let t = a.local("t");
        a.read(reg, t);
        a.ret(t);
        VmProc::new(a.assemble().into())
    }

    #[test]
    fn disjoint_registers_admit_an_ample_process() {
        let m = machine(vec![writer("w0", 0), writer("w1", 1)]);
        let choices = m.choices();
        assert_eq!(
            select(&m, &choices),
            Some(ProcId(0)),
            "disjoint writers commute; lowest id wins"
        );
    }

    #[test]
    fn shared_register_blocks_both_candidates() {
        // A CAS hits memory directly (no buffering), so its write-like
        // footprint conflicts with the other process's future read — and
        // the reader's footprint conflicts with the future CAS. (A plain
        // buffered write would be `Local` and legitimately ample: the
        // conflict only appears once the commit is pending, see
        // `pending_buffered_write_counts_as_a_future_write`.)
        let mut a = Asm::new("casser");
        let t = a.local("t");
        a.cas(0i64, 0i64, 1i64, t);
        a.ret(0i64);
        let m = machine(vec![VmProc::new(a.assemble().into()), reader("r", 0)]);
        let choices = m.choices();
        assert_eq!(select(&m, &choices), None, "CAS vs future read conflict");
    }

    #[test]
    fn pending_buffered_write_counts_as_a_future_write() {
        // p1 has already buffered a write to reg 0 and is fence-blocked on
        // it; p0 wants to read reg 0. The static summary of p1's *future*
        // instructions no longer contains the write — only the buffer does.
        let mut a = Asm::new("buffered");
        a.write(0i64, 1i64);
        a.fence();
        a.ret(0i64);
        let p1 = VmProc::new(a.assemble().into());
        let mut m = machine(vec![reader("r", 0), p1]);
        m.step(SchedElem::op(ProcId(1))); // the write enters p1's buffer
        let choices = m.choices();
        assert!(
            choices.iter().any(|e| e.reg.is_some()),
            "commit choice exists"
        );
        assert_eq!(
            select(&m, &choices),
            None,
            "p0's read conflicts with the pending commit; p1's commit \
             conflicts with p0's future read"
        );
    }

    #[test]
    fn annotating_step_is_never_ample() {
        let mut a = Asm::new("annotator");
        a.write(0i64, 1i64);
        a.annot(1);
        a.fence();
        a.ret(0i64);
        let p0 = VmProc::new(a.assemble().into());
        let m = machine(vec![p0, writer("w1", 1)]);
        let choices = m.choices();
        assert_eq!(
            select(&m, &choices),
            Some(ProcId(1)),
            "p0's op would annotate (visible); p1 still qualifies"
        );
    }

    #[test]
    fn returning_step_is_never_ample() {
        let mut a = Asm::new("ret_now");
        a.ret(0i64);
        let m = machine(vec![VmProc::new(a.assemble().into()), writer("w", 1)]);
        let choices = m.choices();
        assert_eq!(
            select(&m, &choices),
            Some(ProcId(1)),
            "returns are visible; the disjoint writer qualifies"
        );
    }

    #[test]
    fn crash_choices_disqualify_the_crashing_process() {
        let cfg = MachineConfig::new(MemoryModel::Pso, MemoryLayout::unowned())
            .with_crashes(wbmem::CrashSemantics::DiscardBuffer, 1);
        let m = Machine::new(cfg, vec![writer("w0", 0), writer("w1", 1)]);
        let choices = m.choices();
        assert!(choices.iter().any(|e| e.crash));
        assert_eq!(
            select(&m, &choices),
            None,
            "every process can still crash (visible)"
        );
    }

    #[test]
    fn solo_process_needs_no_reduction() {
        let mut m = machine(vec![writer("w0", 0), writer("w1", 1)]);
        m.init_reg(RegId(9), Value::Int(0));
        // Finish p1 entirely; only p0 remains active.
        while m.return_value(ProcId(1)).is_none() {
            m.step(SchedElem::op(ProcId(1)));
        }
        let choices = m.choices();
        assert!(choices.iter().all(|e| e.proc == ProcId(0)));
        assert_eq!(select(&m, &choices), None);
    }
}
