//! The reorder (preemption-style) bound.
//!
//! A schedule's *reorder weight* counts the steps where a process's
//! program advances while writes of its own are still pending in its
//! buffer — exactly the moments where the execution diverges from a
//! sequentially consistent one (an SC machine drains every write before
//! the next program step can observe anything). Bounding the weight turns
//! the exploration into a staged under-approximation in the spirit of
//! context bounding:
//!
//! * bound `0` explores only SC-equivalent interleavings;
//! * bound `k+1` adds schedules with one more overtaking step than
//!   bound `k`;
//! * no bound (`None`) degenerates to the full search.
//!
//! Most fence-elision bugs in the paper's algorithms manifest with one or
//! two overtakes, so small bounds find the same counterexamples orders of
//! magnitude faster — but an `Ok` verdict under a bound only covers the
//! bounded schedule set.

use wbmem::{Machine, Process, SchedElem};

/// The reorder weight of taking `elem` at the machine's current state: `1`
/// if it is an operation element and the process's own buffer is
/// non-empty (the program overtakes its pending stores), `0` otherwise.
/// Commit and crash elements never weigh anything — they *resolve*
/// pending writes rather than race past them.
#[must_use]
pub fn step_weight<P: Process>(m: &Machine<P>, elem: SchedElem) -> u32 {
    if elem.crash || elem.reg.is_some() {
        return 0;
    }
    u32::from(!m.buffer_is_empty(elem.proc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fencevm::{Asm, VmProc};
    use wbmem::{MachineConfig, MemoryLayout, MemoryModel, ProcId, RegId};

    #[test]
    fn ops_over_a_nonempty_buffer_weigh_one() {
        let mut a = Asm::new("w2");
        a.write(0i64, 1i64);
        a.write(1i64, 2i64);
        a.fence();
        a.ret(0i64);
        let cfg = MachineConfig::new(MemoryModel::Pso, MemoryLayout::unowned());
        let mut m = Machine::new(cfg, vec![VmProc::new(a.assemble().into())]);
        let p = ProcId(0);

        assert_eq!(step_weight(&m, SchedElem::op(p)), 0, "buffer still empty");
        m.step(SchedElem::op(p)); // first write buffered
        assert_eq!(step_weight(&m, SchedElem::op(p)), 1, "overtakes the store");
        assert_eq!(
            step_weight(&m, SchedElem::commit(p, RegId(0))),
            0,
            "commits resolve, never overtake"
        );
        assert_eq!(step_weight(&m, SchedElem::crash(p)), 0);
        m.step(SchedElem::commit(p, RegId(0)));
        assert_eq!(step_weight(&m, SchedElem::op(p)), 0, "drained again");
    }
}
