//! Counterexample-core diagnostics: conflict statistics over a replayed
//! schedule.
//!
//! Fence synthesis (`crates/synth`) refines candidate fence placements
//! from counterexamples. The *sites* come from `wbmem::reorder_edges`;
//! what this module adds is a **ranking signal** built from the very
//! independence relation the DPOR sleep/ample machinery prunes with
//! ([`wbmem::Footprint::independent`]): replay the counterexample, take
//! every step's footprint, and count — per shared register — how many
//! cross-process *dependent* pairs the schedule contains. Registers with
//! high conflict counts are where the interleaving actually communicated;
//! fencing writes to them is more likely to break the violation than
//! fencing an uncontended cell, so the synthesis hitting-set solver uses
//! these counts to weight otherwise-equal candidate sites.
//!
//! The counts are diagnostics only: soundness of a synthesized placement
//! rests on the re-check, never on this ranking.

use std::collections::BTreeMap;

use wbmem::{Machine, Process, RegId, SchedElem};

/// Per-register cross-process conflict counts for one schedule (see the
/// module docs). Registers never involved in a dependent pair are absent.
#[must_use]
pub fn conflict_counts<P: Process>(
    machine: &Machine<P>,
    schedule: &[SchedElem],
) -> BTreeMap<RegId, u64> {
    let mut m = machine.clone();
    let model = m.config().model;
    let mut footprints = Vec::with_capacity(schedule.len());
    for &elem in schedule {
        footprints.push(m.choice_footprint(elem));
        if m.try_step(elem).is_err() {
            break;
        }
    }
    let mut counts: BTreeMap<RegId, u64> = BTreeMap::new();
    for (i, a) in footprints.iter().enumerate() {
        for b in footprints.iter().skip(i + 1) {
            if a.proc == b.proc || a.independent(*b, model) {
                continue;
            }
            for fp in [a, b] {
                if let Some(reg) = fp.writes().or_else(|| fp.reads()) {
                    *counts.entry(reg).or_default() += 1;
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbmem::{MachineConfig, MemoryLayout, MemoryModel, Poised, ProcId, Value};

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Script {
        ops: Vec<Poised>,
        at: usize,
    }

    impl Process for Script {
        fn poised(&self) -> Poised {
            self.ops.get(self.at).copied().unwrap_or(Poised::Done)
        }
        fn advance(&mut self, _read: Option<Value>) {
            self.at += 1;
        }
    }

    #[test]
    fn dependent_pairs_are_counted_per_register() {
        // p0 writes r0 (SC: immediate Write footprint), p1 reads r0 —
        // one dependent pair on r0; p1's read of r9 conflicts with nothing.
        let scripts = vec![
            Script {
                ops: vec![Poised::Write(RegId(0), Value::Int(1)), Poised::Return(0)],
                at: 0,
            },
            Script {
                ops: vec![
                    Poised::Read(RegId(0)),
                    Poised::Read(RegId(9)),
                    Poised::Return(0),
                ],
                at: 0,
            },
        ];
        let m = Machine::new(
            MachineConfig::new(MemoryModel::Sc, MemoryLayout::unowned()),
            scripts,
        );
        let sched = [
            SchedElem::op(ProcId(0)),
            SchedElem::op(ProcId(1)),
            SchedElem::op(ProcId(1)),
        ];
        let counts = conflict_counts(&m, &sched);
        assert_eq!(counts.get(&RegId(0)).copied(), Some(2));
        assert_eq!(counts.get(&RegId(9)), None);
    }

    #[test]
    fn independent_schedule_has_no_conflicts() {
        let scripts = vec![
            Script {
                ops: vec![Poised::Write(RegId(0), Value::Int(1)), Poised::Return(0)],
                at: 0,
            },
            Script {
                ops: vec![Poised::Write(RegId(1), Value::Int(1)), Poised::Return(0)],
                at: 0,
            },
        ];
        let m = Machine::new(
            MachineConfig::new(MemoryModel::Sc, MemoryLayout::unowned()),
            scripts,
        );
        let sched = [SchedElem::op(ProcId(0)), SchedElem::op(ProcId(1))];
        assert!(conflict_counts(&m, &sched).is_empty());
    }
}
